#include "algos/connected_components.h"

#include <algorithm>

#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"

namespace sfdf {

namespace {

std::vector<Record> BuildInitialLabels(const Graph& graph) {
  std::vector<Record> labels;
  labels.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    labels.push_back(Record::OfInts(v, v));
  }
  return labels;
}

/// Initial workset: for every edge (u,v), u's initial component id (= u)
/// is a candidate for v (INCR-CC of Table 1: w contains all pairs (v, c)
/// where c is the component id of a neighbor of v).
std::vector<Record> BuildInitialWorkset(const Graph& graph) {
  std::vector<Record> workset;
  workset.reserve(graph.num_directed_edges());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const VertexId* v = graph.NeighborsBegin(u);
         v != graph.NeighborsEnd(u); ++v) {
      workset.push_back(Record::OfInts(*v, u));
    }
  }
  return workset;
}

/// FIXPOINT-CC as a bulk iteration.
Result<CcResult> RunBulk(const Graph& graph, const CcOptions& options,
                         std::vector<Record>* output) {
  PlanBuilder pb;
  auto labels = pb.Source("V", BuildInitialLabels(graph));
  auto edges = pb.Source("N", BuildEdgeRecords(graph));

  auto it = pb.BeginBulkIteration("cc", labels, options.max_iterations,
                                  /*solution_key=*/{0});
  // Each vertex offers its current cid to every neighbor.
  auto candidates = pb.Match(
      "propagate", it.PartialSolution(), edges, {0}, {0},
      [](const Record& label, const Record& edge, Collector* out) {
        out->Emit(Record::OfInts(edge.GetInt(1), label.GetInt(1)));
      });
  pb.DeclarePreserved(candidates, 1, 1, 0);
  // Keep the vertex's own cid in the running (min of self and neighbors).
  auto unioned = pb.Union("selfAndCandidates", candidates,
                          it.PartialSolution());
  // Note: no combiner here — the paper's bulk CC ships the raw candidate
  // records every iteration (Figure 12 shows an essentially constant, high
  // message count for the bulk plan), which is exactly what makes bulk
  // iterations pay for the converged regions.
  auto next = pb.Reduce(
      "minCid", unioned, {0},
      [](const std::vector<Record>& group, Collector* out) {
        int64_t min_cid = group.front().GetInt(1);
        for (const Record& rec : group) {
          min_cid = std::min(min_cid, rec.GetInt(1));
        }
        out->Emit(Record::OfInts(group.front().GetInt(0), min_cid));
      });
  pb.DeclarePreserved(next, 0, 0, 0);
  // T: emit a record for every vertex whose component id still changed.
  auto term = pb.Match("changed", it.PartialSolution(), next, {0}, {0},
                       [](const Record& oldl, const Record& newl,
                          Collector* out) {
                         if (newl.GetInt(1) < oldl.GetInt(1)) {
                           out->Emit(Record::OfInts(1));
                         }
                       });
  auto result = it.Close(next, term);
  pb.Sink("labels", result, output);
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  oopt.enable_caching = options.enable_caching;
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ExecutionOptions eopt;
  eopt.parallelism = options.parallelism;
  eopt.record_superstep_stats = options.record_superstep_stats;
  // Forwarded so a non-superstep request fails loudly (bulk iterations
  // have no record-level ∪̇ to reorder) instead of silently running sync.
  eopt.sync_mode = options.sync_mode;
  eopt.staleness_bound = options.staleness_bound;
  Executor executor(eopt);
  auto exec = executor.Run(*physical);
  if (!exec.ok()) return exec.status();

  CcResult cc;
  cc.exec = std::move(exec).value();
  cc.iterations = cc.exec.bulk_reports[0].iterations;
  cc.converged = cc.exec.bulk_reports[0].converged;
  return cc;
}

/// INCR-CC / MICRO-CC as a workset iteration (Figure 5).
Result<CcResult> RunIncremental(const Graph& graph, const CcOptions& options,
                                std::vector<Record>* output) {
  const bool match_variant = options.variant != CcVariant::kIncrementalCoGroup;
  PlanBuilder pb;
  auto labels = pb.Source("V", BuildInitialLabels(graph));
  auto workset0 = pb.Source("W0", BuildInitialWorkset(graph));
  auto edges = pb.Source("N", BuildEdgeRecords(graph));

  IterationMode mode = options.variant == CcVariant::kAsyncMicrostep
                           ? IterationMode::kMicrostep
                           : IterationMode::kAuto;
  // Progress in the CPO means a lower component id: the record with the
  // smaller cid wins the ∪̇ conflict resolution.
  auto it = pb.BeginWorksetIteration("cc", labels, workset0,
                                     /*solution_key=*/{0},
                                     OrderByIntFieldDesc(1), mode,
                                     options.max_iterations);

  DataSet delta;
  if (match_variant) {
    // MICRO-CC: each candidate individually probes (and possibly updates)
    // the partial solution.
    delta = pb.Match("update", it.Workset(), it.SolutionSet(), {0}, {0},
                     [](const Record& cand, const Record& current,
                        Collector* out) {
                       if (cand.GetInt(1) < current.GetInt(1)) {
                         out->Emit(Record::OfInts(cand.GetInt(0),
                                                  cand.GetInt(1)));
                       }
                     });
    pb.DeclarePreserved(delta, 1, 0, 0);  // S.vid -> D.vid: local updates
  } else {
    // INCR-CC: group all candidates of a vertex, touch the solution once.
    delta = pb.InnerCoGroup(
        "update", it.Workset(), it.SolutionSet(), {0}, {0},
        [](const std::vector<Record>& candidates,
           const std::vector<Record>& current, Collector* out) {
          int64_t min_cid = candidates.front().GetInt(1);
          for (const Record& rec : candidates) {
            min_cid = std::min(min_cid, rec.GetInt(1));
          }
          if (min_cid < current.front().GetInt(1)) {
            out->Emit(Record::OfInts(current.front().GetInt(0), min_cid));
          }
        });
    pb.DeclarePreserved(delta, 1, 0, 0);
  }
  // A changed vertex offers its new cid to all neighbors (Figure 5's Match
  // between D and the neighborhood mapping N).
  auto next_workset = pb.Match(
      "neighbors", delta, edges, {0}, {0},
      [](const Record& changed, const Record& edge, Collector* out) {
        out->Emit(Record::OfInts(edge.GetInt(1), changed.GetInt(1)));
      });
  pb.DeclarePreserved(next_workset, 1, 1, 0);

  auto result = it.Close(delta, next_workset);
  pb.Sink("labels", result, output);
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  oopt.enable_caching = options.enable_caching;
  oopt.force_solution_index = options.force_solution_index;
  oopt.disable_immediate_apply = options.disable_immediate_apply;
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ExecutionOptions eopt;
  eopt.parallelism = options.parallelism;
  eopt.record_superstep_stats = options.record_superstep_stats;
  eopt.sync_mode = options.sync_mode;
  eopt.staleness_bound = options.staleness_bound;
  Executor executor(eopt);
  auto exec = executor.Run(*physical);
  if (!exec.ok()) return exec.status();

  CcResult cc;
  cc.exec = std::move(exec).value();
  cc.iterations = cc.exec.workset_reports[0].iterations;
  cc.converged = cc.exec.workset_reports[0].converged;
  return cc;
}

}  // namespace

std::vector<Record> BuildEdgeRecords(const Graph& graph) {
  std::vector<Record> edges;
  edges.reserve(graph.num_directed_edges());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const VertexId* v = graph.NeighborsBegin(u);
         v != graph.NeighborsEnd(u); ++v) {
      edges.push_back(Record::OfInts(u, *v));
    }
  }
  return edges;
}

Result<CcResult> RunConnectedComponents(const Graph& graph,
                                        const CcOptions& options) {
  std::vector<Record> output;
  Result<CcResult> result =
      options.variant == CcVariant::kBulk
          ? RunBulk(graph, options, &output)
          : RunIncremental(graph, options, &output);
  if (!result.ok()) return result;

  CcResult cc = std::move(result).value();
  cc.labels.assign(graph.num_vertices(), -1);
  for (const Record& rec : output) {
    cc.labels[rec.GetInt(0)] = rec.GetInt(1);
  }
  return cc;
}

Status AppendCcMutationSeeds(
    const std::function<int64_t(VertexId)>& component_of,
    const GraphMutation& mutation, std::vector<Record>* seeds) {
  switch (mutation.kind) {
    case MutationKind::kEdgeInsert: {
      if (mutation.u == mutation.v) return Status::OK();
      seeds->push_back(
          Record::OfInts(mutation.u, component_of(mutation.v)));
      seeds->push_back(
          Record::OfInts(mutation.v, component_of(mutation.u)));
      return Status::OK();
    }
    case MutationKind::kVertexUpsert:
      return Status::OK();
    case MutationKind::kEdgeRemove:
      return Status::Unsupported(
          "edge removal can split a component — not monotone under the "
          "min-label CPO; run a cold recompute instead: " +
          mutation.ToString());
  }
  return Status::Internal("unknown mutation kind");
}

}  // namespace sfdf
