// Adaptive / incremental PageRank as a workset iteration — the paper's
// Section 7.2 example of an algorithm that fits incremental iterations
// naturally but is awkward in Pregel ("The adaptive version of PageRank
// [25], for example, can be expressed as an incremental iteration, while it
// is hard to express it on top of Pregel. The reason ... is that Pregel
// combines vertex activation with messaging, while incremental iterations
// give you the freedom to separate these aspects.").
//
// Formulation (push-style residual propagation):
//   solution set  S(pid, rank)          — current rank estimate
//   workset       W(pid, push)          — pending rank mass for pid
//   ∆, part 1     CoGroup(W, S):        rank' = rank + Σ pushes; emit the
//                                        delta (pid, rank', Σ pushes)
//   ∆, part 2     Match(D, A on pid):   forward d·Σpushes·prob to each
//                                        out-neighbor — but only while the
//                                        vertex's accumulated change
//                                        exceeds the adaptivity threshold ε
//
// Converged pages stop pushing (their residual falls below ε) while hot
// pages keep refining — vertex "activation" is simply membership in the
// workset, fully decoupled from messaging. The fixpoint equals batch
// PageRank up to O(ε) per page.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dataflow/udf.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "runtime/executor.h"

namespace sfdf {

struct IncrementalPageRankOptions {
  double damping = 0.85;
  /// Adaptivity threshold: a page pushes to its neighbors only while its
  /// accumulated residual exceeds epsilon. Smaller = more precise, more
  /// supersteps.
  double epsilon = 1e-9;
  int max_iterations = 10000;
  int parallelism = 0;
  bool record_superstep_stats = true;
  /// Barrier coupling of the workset loop (see ExecutionOptions::sync_mode).
  /// Residual pushes are additive and applied through the ∪̇ merge, so all
  /// modes reach the same fixpoint up to O(ε) per page.
  SyncMode sync_mode = SyncMode::kSuperstep;
  /// Staleness window for SyncMode::kBoundedStale.
  int staleness_bound = 1;
};

struct IncrementalPageRankResult {
  /// Final (pid, rank), sorted by pid; only vertices with out-degree > 0
  /// participate (like the batch dataflow formulation).
  std::vector<std::pair<VertexId, double>> ranks;
  ExecutionResult exec;
  int iterations = 0;
  bool converged = false;
};

/// Runs incremental PageRank to its fixpoint on the dataflow engine.
Result<IncrementalPageRankResult> RunIncrementalPageRank(
    const Graph& graph, const IncrementalPageRankOptions& options);

/// S_0 of the push formulation: every page at the base rank (1-d)/n.
/// Shared by the batch run above and the serving plan (src/service/).
std::vector<Record> BuildInitialRankRecords(int64_t num_vertices,
                                            double damping);

/// W_0 of the push formulation: the base rank mass pushed once along every
/// edge, as (pid, push) records.
std::vector<Record> BuildInitialPushRecords(const Graph& graph,
                                            double damping);

/// ∆ part 1 — the "absorb" InnerCoGroup UDF: rank' = rank + Σ pushes,
/// emitted as (pid, rank', Σ pushes); the residual rides along in field 2
/// to feed the push stage. One definition so the batch and serving plans
/// cannot diverge.
CoGroupUdf PageRankAbsorbUdf();

/// Mutation-to-workset translator for the continuous serving subsystem
/// (src/service/): turns one streamed graph mutation into §7.2 residual
/// pushes, appended to `seeds` as (pid, push) workset records.
///
/// At the old fixpoint, rank r satisfies r ≈ base + d·AᵀT r for the old
/// transition matrix A. Changing one row of the adjacency perturbs the
/// residual only at the mutated vertex's neighbors, with `r_u = rank_of(u)`:
///
///   insert (u,v):  v gains  d·r_u/(deg+1); every old neighbor loses
///                  d·r_u/(deg·(deg+1))          (deg = old out-degree of u)
///   remove (u,v):  v loses  d·r_u/deg; every remaining neighbor gains
///                  d·r_u/(deg·(deg−1))
///   vertex upsert: injects `value` rank mass at u (0 = no seed)
///
/// Seeding exactly these pushes as W_0 of a warm round re-converges the
/// resident solution to the mutated graph's fixpoint (up to the adaptivity
/// threshold ε), touching only the region the change actually reaches.
///
/// `graph` must be the adjacency BEFORE the mutation is applied — the
/// caller applies it afterwards. `rank_of` reads the resident solution set
/// (return the base rank for vertices it does not contain). Inserting an
/// existing edge, removing a missing one and self-loops are no-ops.
Status AppendPageRankMutationSeeds(
    const DynamicGraph& graph,
    const std::function<double(VertexId)>& rank_of, double damping,
    const GraphMutation& mutation, std::vector<Record>* seeds);

}  // namespace sfdf
