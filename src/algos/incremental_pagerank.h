// Adaptive / incremental PageRank as a workset iteration — the paper's
// Section 7.2 example of an algorithm that fits incremental iterations
// naturally but is awkward in Pregel ("The adaptive version of PageRank
// [25], for example, can be expressed as an incremental iteration, while it
// is hard to express it on top of Pregel. The reason ... is that Pregel
// combines vertex activation with messaging, while incremental iterations
// give you the freedom to separate these aspects.").
//
// Formulation (push-style residual propagation):
//   solution set  S(pid, rank)          — current rank estimate
//   workset       W(pid, push)          — pending rank mass for pid
//   ∆, part 1     CoGroup(W, S):        rank' = rank + Σ pushes; emit the
//                                        delta (pid, rank', Σ pushes)
//   ∆, part 2     Match(D, A on pid):   forward d·Σpushes·prob to each
//                                        out-neighbor — but only while the
//                                        vertex's accumulated change
//                                        exceeds the adaptivity threshold ε
//
// Converged pages stop pushing (their residual falls below ε) while hot
// pages keep refining — vertex "activation" is simply membership in the
// workset, fully decoupled from messaging. The fixpoint equals batch
// PageRank up to O(ε) per page.
#pragma once

#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "runtime/executor.h"

namespace sfdf {

struct IncrementalPageRankOptions {
  double damping = 0.85;
  /// Adaptivity threshold: a page pushes to its neighbors only while its
  /// accumulated residual exceeds epsilon. Smaller = more precise, more
  /// supersteps.
  double epsilon = 1e-9;
  int max_iterations = 10000;
  int parallelism = 0;
  bool record_superstep_stats = true;
};

struct IncrementalPageRankResult {
  /// Final (pid, rank), sorted by pid; only vertices with out-degree > 0
  /// participate (like the batch dataflow formulation).
  std::vector<std::pair<VertexId, double>> ranks;
  ExecutionResult exec;
  int iterations = 0;
  bool converged = false;
};

/// Runs incremental PageRank to its fixpoint on the dataflow engine.
Result<IncrementalPageRankResult> RunIncrementalPageRank(
    const Graph& graph, const IncrementalPageRankOptions& options);

}  // namespace sfdf
