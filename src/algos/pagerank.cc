#include "algos/pagerank.h"

#include <algorithm>
#include <cmath>

#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"

namespace sfdf {

std::vector<Record> BuildTransitionMatrix(const Graph& graph) {
  std::vector<Record> matrix;
  matrix.reserve(graph.num_directed_edges());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    int64_t degree = graph.OutDegree(u);
    if (degree == 0) continue;
    double prob = 1.0 / static_cast<double>(degree);
    for (const VertexId* v = graph.NeighborsBegin(u);
         v != graph.NeighborsEnd(u); ++v) {
      matrix.push_back(Record::OfIntIntDouble(*v, u, prob));
    }
  }
  return matrix;
}

std::vector<Record> BuildInitialRanks(const Graph& graph) {
  std::vector<Record> ranks;
  ranks.reserve(graph.num_vertices());
  double r0 = 1.0 / static_cast<double>(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ranks.push_back(Record::OfIntDouble(v, r0));
  }
  return ranks;
}

Result<PageRankResult> RunPageRank(const Graph& graph,
                                   const PageRankOptions& options) {
  const double n = static_cast<double>(graph.num_vertices());
  const double damping = options.damping;
  const double base_rank = (1.0 - damping) / n;
  const double epsilon = options.epsilon;

  std::vector<Record> output;
  PlanBuilder pb;
  auto ranks = pb.Source("p", BuildInitialRanks(graph));
  auto matrix = pb.Source("A", BuildTransitionMatrix(graph));

  auto it = pb.BeginBulkIteration("pagerank", ranks, options.iterations,
                                  /*solution_key=*/{0});
  // Match p and A on pid: emit (tid, rank * prob).
  auto contribs = pb.Match(
      "joinPA", it.PartialSolution(), matrix, {0}, {1},
      [](const Record& p, const Record& a, Collector* out) {
        out->Emit(Record::OfIntDouble(a.GetInt(0),
                                      p.GetDouble(1) * a.GetDouble(2)));
      });
  // The matrix row index tid (field 0 of A) becomes field 0 of the output:
  // partitioning/sorting by tid survives the join (Figure 4's enabler).
  pb.DeclarePreserved(contribs, 1, 0, 0);

  // Sum the partial ranks per tid; tid is the result vector's pid.
  auto next = pb.Reduce(
      "sumRanks", contribs, {0},
      [base_rank, damping](const std::vector<Record>& group, Collector* out) {
        double sum = 0;
        for (const Record& rec : group) sum += rec.GetDouble(1);
        out->Emit(Record::OfIntDouble(group.front().GetInt(0),
                                      base_rank + damping * sum));
      },
      /*combiner=*/
      [](const Record& a, const Record& b) {
        return Record::OfIntDouble(a.GetInt(0),
                                   a.GetDouble(1) + b.GetDouble(1));
      });
  pb.DeclarePreserved(next, 0, 0, 0);

  DataSet term;
  if (options.use_termination_criterion) {
    // T: join old and new ranks on pid, emit a record when the rank moved
    // by more than epsilon (Figure 3).
    term = pb.Match("term", it.PartialSolution(), next, {0}, {0},
                    [epsilon](const Record& oldr, const Record& newr,
                              Collector* out) {
                      if (std::abs(oldr.GetDouble(1) - newr.GetDouble(1)) >
                          epsilon) {
                        out->Emit(Record::OfInts(1));
                      }
                    });
  }
  auto result = it.Close(next, term);
  pb.Sink("ranks", result, &output);
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  oopt.expected_iterations = options.iterations;
  switch (options.plan) {
    case PageRankPlan::kAuto:
      break;
    case PageRankPlan::kBroadcast:
      oopt.broadcast_cost_factor = 1e-9;
      break;
    case PageRankPlan::kPartition:
      oopt.broadcast_cost_factor = 1e9;
      break;
  }
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  PageRankResult pr_result;
  for (const PhysicalTask& task : physical->tasks) {
    if (task.name == "joinPA") {
      for (const PhysicalInput& input : task.inputs) {
        if (input.ship == ShipStrategy::kBroadcast) {
          pr_result.chose_broadcast = true;
        }
      }
    }
  }

  ExecutionOptions eopt;
  eopt.parallelism = options.parallelism;
  Executor executor(eopt);
  auto exec = executor.Run(*physical);
  if (!exec.ok()) return exec.status();
  pr_result.exec = std::move(exec).value();

  pr_result.ranks.reserve(output.size());
  for (const Record& rec : output) {
    pr_result.ranks.emplace_back(rec.GetInt(0), rec.GetDouble(1));
  }
  std::sort(pr_result.ranks.begin(), pr_result.ranks.end());
  return pr_result;
}

std::vector<double> ReferencePageRank(const Graph& graph, int iterations,
                                      double damping) {
  const int64_t n = graph.num_vertices();
  std::vector<double> ranks(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const double base = (1.0 - damping) / static_cast<double>(n);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      int64_t degree = graph.OutDegree(u);
      if (degree == 0) continue;
      double share = ranks[u] / static_cast<double>(degree);
      for (const VertexId* v = graph.NeighborsBegin(u);
           v != graph.NeighborsEnd(u); ++v) {
        next[*v] += share;
      }
    }
    // Note: like the dataflow version (and the paper's formulation), ranks
    // of vertices without in-edges are meaningless — the Reduce only emits
    // entries for pages that received contributions. Validation compares
    // vertices with degree > 0 only.
    for (VertexId v = 0; v < n; ++v) {
      ranks[v] = base + damping * next[v];
    }
  }
  return ranks;
}

}  // namespace sfdf
