#include "algos/pregel.h"

#include "algos/connected_components.h"  // BuildEdgeRecords
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"

namespace sfdf {

Result<PregelResult> RunPregel(
    const Graph& graph, std::vector<int64_t> initial_values,
    std::vector<std::pair<VertexId, int64_t>> initial_messages,
    const VertexProgram& program, const PregelOptions& options) {
  if (static_cast<int64_t>(initial_values.size()) != graph.num_vertices()) {
    return Status::InvalidArgument(
        "initial_values must have one entry per vertex");
  }

  std::vector<Record> states;
  states.reserve(initial_values.size());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    states.push_back(Record::OfInts(v, initial_values[v]));
  }
  std::vector<Record> messages;
  messages.reserve(initial_messages.size());
  for (const auto& [vid, msg] : initial_messages) {
    messages.push_back(Record::OfInts(vid, msg));
  }

  std::vector<Record> output;
  PlanBuilder pb;
  auto solution = pb.Source("vertexStates", std::move(states));
  auto workset0 = pb.Source("initialMessages", std::move(messages));
  auto edges = pb.Source("topology", BuildEdgeRecords(graph));

  auto it = pb.BeginWorksetIteration("pregel", solution, workset0,
                                     /*solution_key=*/{0},
                                     /*comparator=*/nullptr,
                                     IterationMode::kAuto,
                                     options.max_supersteps);
  const VertexProgram* prog = &program;
  // Superstep: gather all messages per vertex, run compute().
  auto delta = pb.InnerCoGroup(
      "compute", it.Workset(), it.SolutionSet(), {0}, {0},
      [prog](const std::vector<Record>& msgs,
             const std::vector<Record>& state, Collector* out) {
        std::vector<int64_t> values;
        values.reserve(msgs.size());
        for (const Record& rec : msgs) values.push_back(rec.GetInt(1));
        int64_t new_value;
        if (prog->Compute(state.front().GetInt(0), state.front().GetInt(1),
                          values, &new_value)) {
          out->Emit(Record::OfInts(state.front().GetInt(0), new_value));
        }
      });
  pb.DeclarePreserved(delta, 1, 0, 0);
  // Changed vertices message all their neighbors.
  auto next_messages = pb.Match(
      "sendMessages", delta, edges, {0}, {0},
      [prog](const Record& changed, const Record& edge, Collector* out) {
        out->Emit(Record::OfInts(
            edge.GetInt(1),
            prog->MessageValue(changed.GetInt(0), changed.GetInt(1))));
      });
  pb.DeclarePreserved(next_messages, 1, 1, 0);
  auto result = it.Close(delta, next_messages);
  pb.Sink("finalStates", result, &output);
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ExecutionOptions eopt;
  eopt.parallelism = options.parallelism;
  eopt.record_superstep_stats = options.record_superstep_stats;
  Executor executor(eopt);
  auto exec = executor.Run(*physical);
  if (!exec.ok()) return exec.status();

  PregelResult pregel;
  pregel.exec = std::move(exec).value();
  pregel.supersteps = pregel.exec.workset_reports[0].iterations;
  pregel.converged = pregel.exec.workset_reports[0].converged;
  pregel.values.assign(graph.num_vertices(), 0);
  for (const Record& rec : output) {
    pregel.values[rec.GetInt(0)] = rec.GetInt(1);
  }
  return pregel;
}

}  // namespace sfdf
