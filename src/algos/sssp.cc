#include "algos/sssp.h"

#include <algorithm>
#include <queue>

#include "common/rng.h"
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"
#include "record/comparator.h"

namespace sfdf {

double EdgeWeightOf(VertexId u, VertexId v, int max_weight) {
  if (max_weight <= 1) return 1.0;
  // Symmetric deterministic weight so (u,v) and (v,u) agree.
  uint64_t lo = static_cast<uint64_t>(std::min(u, v));
  uint64_t hi = static_cast<uint64_t>(std::max(u, v));
  uint64_t h = HashMix64(lo * 0x9e3779b97f4a7c15ULL + hi);
  return 1.0 + static_cast<double>(h % static_cast<uint64_t>(max_weight));
}

Result<SsspResult> RunSssp(const Graph& graph, const SsspOptions& options) {
  const double inf = std::numeric_limits<double>::infinity();

  std::vector<Record> initial_distances;
  initial_distances.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    initial_distances.push_back(
        Record::OfIntDouble(v, v == options.source ? 0.0 : inf));
  }
  // Weighted edge records (src, dst, w).
  std::vector<Record> edge_records;
  edge_records.reserve(graph.num_directed_edges());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const VertexId* v = graph.NeighborsBegin(u);
         v != graph.NeighborsEnd(u); ++v) {
      edge_records.push_back(
          Record::OfIntIntDouble(u, *v, EdgeWeightOf(u, *v, options.max_weight)));
    }
  }
  // Initial workset: relaxations of the source's edges.
  std::vector<Record> initial_workset;
  for (const VertexId* v = graph.NeighborsBegin(options.source);
       v != graph.NeighborsEnd(options.source); ++v) {
    initial_workset.push_back(Record::OfIntDouble(
        *v, EdgeWeightOf(options.source, *v, options.max_weight)));
  }

  std::vector<Record> output;
  PlanBuilder pb;
  auto dists = pb.Source("S0", std::move(initial_distances));
  auto workset0 = pb.Source("W0", std::move(initial_workset));
  auto edges = pb.Source("E", std::move(edge_records));

  auto it = pb.BeginWorksetIteration(
      "sssp", dists, workset0, /*solution_key=*/{0},
      OrderByDoubleFieldDesc(1),
      options.async_microsteps ? IterationMode::kMicrostep
                               : IterationMode::kAuto,
      options.max_iterations);
  auto delta = pb.Match("relax", it.Workset(), it.SolutionSet(), {0}, {0},
                        [](const Record& cand, const Record& current,
                           Collector* out) {
                          if (cand.GetDouble(1) < current.GetDouble(1)) {
                            out->Emit(Record::OfIntDouble(cand.GetInt(0),
                                                          cand.GetDouble(1)));
                          }
                        });
  pb.DeclarePreserved(delta, 1, 0, 0);
  auto next_workset = pb.Match(
      "expand", delta, edges, {0}, {0},
      [](const Record& changed, const Record& edge, Collector* out) {
        out->Emit(Record::OfIntDouble(edge.GetInt(1),
                                      changed.GetDouble(1) + edge.GetDouble(2)));
      });
  pb.DeclarePreserved(next_workset, 1, 1, 0);
  auto result = it.Close(delta, next_workset);
  pb.Sink("distances", result, &output);
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ExecutionOptions eopt;
  eopt.parallelism = options.parallelism;
  eopt.record_superstep_stats = options.record_superstep_stats;
  Executor executor(eopt);
  auto exec = executor.Run(*physical);
  if (!exec.ok()) return exec.status();

  SsspResult sssp;
  sssp.exec = std::move(exec).value();
  sssp.iterations = sssp.exec.workset_reports[0].iterations;
  sssp.converged = sssp.exec.workset_reports[0].converged;
  sssp.distances.assign(graph.num_vertices(), inf);
  for (const Record& rec : output) {
    sssp.distances[rec.GetInt(0)] = rec.GetDouble(1);
  }
  return sssp;
}

std::vector<double> ReferenceSssp(const Graph& graph, VertexId source,
                                  int max_weight) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(graph.num_vertices(), inf);
  dist[source] = 0.0;
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const VertexId* v = graph.NeighborsBegin(u);
         v != graph.NeighborsEnd(u); ++v) {
      double nd = d + EdgeWeightOf(u, *v, max_weight);
      if (nd < dist[*v]) {
        dist[*v] = nd;
        queue.emplace(nd, *v);
      }
    }
  }
  return dist;
}

}  // namespace sfdf
