// Batch Gradient Descent as a bulk iteration — the other machine-learning
// family the paper's Section 1 assigns to bulk iterations ("machine
// learning algorithms like Batch Gradient Descend").
//
// Linear regression y ≈ w·x + b on a loop-invariant training set. The
// partial solution is the single model record (0, w, b); each iteration
// crosses the (cached) data with the model, sums the gradient, and applies
// the step — the model is broadcast, the data never moves, exactly the
// "replicate the model, cache the data" pattern of Figure 4.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "runtime/executor.h"

namespace sfdf {

struct Sample1D {
  double x = 0;
  double y = 0;
};

struct GradientDescentOptions {
  double learning_rate = 0.1;
  int max_iterations = 200;
  /// Stop when the parameter step falls below this L1 threshold.
  double epsilon = 1e-9;
  int parallelism = 0;
};

struct GradientDescentResult {
  double w = 0;
  double b = 0;
  ExecutionResult exec;
  int iterations = 0;
  bool converged = false;
};

/// Fits y = w·x + b by least squares on the dataflow engine.
Result<GradientDescentResult> RunGradientDescent(
    const std::vector<Sample1D>& samples,
    const GradientDescentOptions& options);

/// Sequential reference with the identical update rule.
void ReferenceGradientDescent(const std::vector<Sample1D>& samples,
                              double learning_rate, int iterations, double* w,
                              double* b);

/// Deterministic noisy samples around y = true_w·x + true_b.
std::vector<Sample1D> MakeLinearSamples(int n, double true_w, double true_b,
                                        double noise, uint64_t seed);

}  // namespace sfdf
