// PageRank as an iterative dataflow (Section 4.1, Figure 3).
//
// The rank vector is a set of (pid, rank) tuples; the sparse transition
// matrix A a set of (tid, pid, prob) tuples. Each iteration joins vector and
// matrix on pid (Match), then groups the products by tid (Reduce with a sum
// combiner). The optimizer chooses between the two Figure 4 plans:
//  * broadcast plan — replicate the rank vector, cache A partitioned and
//    sorted by tid on the constant path (Mahout-style);
//  * partition plan — repartition the rank vector, cache A as the join hash
//    table (Pegasus-style).
#pragma once

#include <utility>
#include <vector>

#include "common/result.h"
#include "dataflow/plan.h"
#include "graph/graph.h"
#include "runtime/executor.h"

namespace sfdf {

/// Which Figure 4 execution plan to compile.
enum class PageRankPlan {
  kAuto,       ///< let the cost-based optimizer decide
  kBroadcast,  ///< force the broadcast plan (Figure 4 left)
  kPartition,  ///< force the partition plan (Figure 4 right)
};

struct PageRankOptions {
  int iterations = 20;
  double damping = 0.85;
  /// If true, attach the Figure 3 termination criterion T: stop once no
  /// page's rank changed by more than epsilon.
  bool use_termination_criterion = false;
  double epsilon = 1e-6;
  PageRankPlan plan = PageRankPlan::kAuto;
  int parallelism = 0;  ///< 0 = default
};

struct PageRankResult {
  /// Final (pid, rank) pairs, sorted by pid.
  std::vector<std::pair<VertexId, double>> ranks;
  ExecutionResult exec;
  /// Which plan the optimizer chose ("broadcast" / "partition").
  bool chose_broadcast = false;
};

/// Builds the (tid, pid, prob) transition-matrix records of `graph`
/// (row-normalized by out-degree).
std::vector<Record> BuildTransitionMatrix(const Graph& graph);

/// Builds the uniform initial rank vector (pid, 1/N).
std::vector<Record> BuildInitialRanks(const Graph& graph);

/// Runs PageRank on the dataflow engine.
Result<PageRankResult> RunPageRank(const Graph& graph,
                                   const PageRankOptions& options);

/// Sequential reference implementation for validation.
std::vector<double> ReferencePageRank(const Graph& graph, int iterations,
                                      double damping);

}  // namespace sfdf
