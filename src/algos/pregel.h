// A Pregel-style vertex-centric API implemented *on top of* the workset
// iteration abstraction — the Section 7.2 claim made executable: "It is
// straightforward to implement Pregel on top of Stratosphere's iterative
// abstraction: the partial solution holds the state of the vertices, the
// workset holds the messages."
//
// The adapter compiles a vertex program into the Figure 5 dataflow:
//   S(vid, state)   — vertex states (the solution set)
//   W(vid, msg)     — messages addressed to vid (the workset)
//   ∆ = InnerCoGroup(W, S) running compute(), then Match(D, N) fanning the
//       produced value out to the neighbors as next-superstep messages.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "record/comparator.h"
#include "runtime/executor.h"

namespace sfdf {

/// A vertex program over int64 state and int64 messages.
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Called once per superstep for every vertex that received messages.
  /// Returns true and sets `*new_value` to update the vertex state (which
  /// also triggers messages to all neighbors); false leaves the vertex
  /// unchanged and silent — the vote-to-halt of Pregel.
  virtual bool Compute(VertexId vid, int64_t current_value,
                       const std::vector<int64_t>& messages,
                       int64_t* new_value) const = 0;

  /// The message sent to each neighbor after a state change.
  virtual int64_t MessageValue(VertexId vid, int64_t new_value) const = 0;
};

struct PregelOptions {
  int max_supersteps = 1000000;
  int parallelism = 0;
  bool record_superstep_stats = true;
};

struct PregelResult {
  /// Final vertex values, indexed by vertex id.
  std::vector<int64_t> values;
  ExecutionResult exec;
  int supersteps = 0;
  bool converged = false;
};

/// Runs `program` until no messages remain.
/// `initial_values[v]` seeds vertex v; `initial_messages` seeds superstep 0.
Result<PregelResult> RunPregel(
    const Graph& graph, std::vector<int64_t> initial_values,
    std::vector<std::pair<VertexId, int64_t>> initial_messages,
    const VertexProgram& program, const PregelOptions& options);

}  // namespace sfdf
