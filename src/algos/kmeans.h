// K-Means clustering as a bulk iteration — one of the paper's motivating
// bulk-iterative algorithm families (Section 1: "many clustering algorithms
// (such as K-Means)").
//
// The partial solution is the centroid set; the points are loop-invariant
// and live on the constant data path (cached by the optimizer). Each
// iteration recomputes every centroid — the textbook case where bulk
// iterations are the right tool and worksets buy nothing.
//
// Dataflow per iteration:
//   Cross(points, centroids)     -> (pid, cid, squared distance)
//   Reduce on pid (argmin)       -> (pid, nearest cid)
//   Match with points on pid     -> (cid, x, y)
//   Reduce on cid (mean)         -> next centroids (cid, mx, my)
//   T: Match(old, new centroids) -> record per centroid that moved > eps
#pragma once

#include <vector>

#include "common/result.h"
#include "runtime/executor.h"

namespace sfdf {

struct Point2D {
  double x = 0;
  double y = 0;
};

struct KMeansOptions {
  int k = 8;
  int max_iterations = 50;
  /// Convergence threshold on centroid movement (squared distance).
  double epsilon = 1e-12;
  int parallelism = 0;
};

struct KMeansResult {
  /// Final centroids, indexed by centroid id (size k).
  std::vector<Point2D> centroids;
  ExecutionResult exec;
  int iterations = 0;
  bool converged = false;
};

/// Runs K-Means on the dataflow engine. Initial centroids are the first k
/// points (deterministic).
Result<KMeansResult> RunKMeans(const std::vector<Point2D>& points,
                               const KMeansOptions& options);

/// Sequential reference with identical seeding and update rule.
std::vector<Point2D> ReferenceKMeans(const std::vector<Point2D>& points,
                                     int k, int iterations);

/// Deterministic synthetic clusters: `k` Gaussian-ish blobs with
/// `points_per_cluster` points each.
std::vector<Point2D> MakeClusteredPoints(int k, int points_per_cluster,
                                         uint64_t seed);

/// Mean squared distance of every point to its nearest centroid (the
/// K-Means objective; used to compare clusterings).
double KMeansObjective(const std::vector<Point2D>& points,
                       const std::vector<Point2D>& centroids);

}  // namespace sfdf
