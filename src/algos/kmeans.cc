#include "algos/kmeans.h"

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"

namespace sfdf {

namespace {

Record PointRecord(int64_t id, const Point2D& p) {
  Record rec;
  rec.AppendInt(id);
  rec.AppendDouble(p.x);
  rec.AppendDouble(p.y);
  return rec;
}

double SquaredDistance(double ax, double ay, double bx, double by) {
  double dx = ax - bx;
  double dy = ay - by;
  return dx * dx + dy * dy;
}

}  // namespace

Result<KMeansResult> RunKMeans(const std::vector<Point2D>& points,
                               const KMeansOptions& options) {
  if (static_cast<int>(points.size()) < options.k) {
    return Status::InvalidArgument("fewer points than clusters");
  }
  std::vector<Record> point_records;
  point_records.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    point_records.push_back(PointRecord(static_cast<int64_t>(i), points[i]));
  }
  std::vector<Record> centroid_records;
  for (int c = 0; c < options.k; ++c) {
    centroid_records.push_back(PointRecord(c, points[c]));
  }
  const double epsilon = options.epsilon;

  std::vector<Record> output;
  PlanBuilder pb;
  auto point_source = pb.Source("points", std::move(point_records));
  auto centroid_source = pb.Source("centroids0", std::move(centroid_records));

  auto it = pb.BeginBulkIteration("kmeans", centroid_source,
                                  options.max_iterations, {0});
  // Every (point, centroid) pair with its squared distance.
  auto distances = pb.Cross(
      "distances", point_source, it.PartialSolution(),
      [](const Record& point, const Record& centroid, Collector* out) {
        out->Emit(Record::OfIntIntDouble(
            point.GetInt(0), centroid.GetInt(0),
            SquaredDistance(point.GetDouble(1), point.GetDouble(2),
                            centroid.GetDouble(1), centroid.GetDouble(2))));
      });
  pb.DeclarePreserved(distances, 0, 0, 0);
  // Nearest centroid per point (argmin over the k candidates).
  auto assignment = pb.Reduce(
      "argmin", distances, {0},
      [](const std::vector<Record>& group, Collector* out) {
        int64_t best = group.front().GetInt(1);
        double best_dist = group.front().GetDouble(2);
        for (const Record& rec : group) {
          if (rec.GetDouble(2) < best_dist ||
              (rec.GetDouble(2) == best_dist && rec.GetInt(1) < best)) {
            best = rec.GetInt(1);
            best_dist = rec.GetDouble(2);
          }
        }
        out->Emit(Record::OfInts(group.front().GetInt(0), best));
      });
  pb.DeclarePreserved(assignment, 0, 0, 0);
  // Fetch the coordinates back: (cid, x, y) per point.
  auto assigned_points = pb.Match(
      "attachCoords", assignment, point_source, {0}, {0},
      [](const Record& assign, const Record& point, Collector* out) {
        Record rec;
        rec.AppendInt(assign.GetInt(1));
        rec.AppendDouble(point.GetDouble(1));
        rec.AppendDouble(point.GetDouble(2));
        out->Emit(rec);
      });
  // New centroid = mean of its assigned points.
  auto next = pb.Reduce(
      "mean", assigned_points, {0},
      [](const std::vector<Record>& group, Collector* out) {
        double sx = 0;
        double sy = 0;
        for (const Record& rec : group) {
          sx += rec.GetDouble(1);
          sy += rec.GetDouble(2);
        }
        double n = static_cast<double>(group.size());
        Record rec;
        rec.AppendInt(group.front().GetInt(0));
        rec.AppendDouble(sx / n);
        rec.AppendDouble(sy / n);
        out->Emit(rec);
      });
  pb.DeclarePreserved(next, 0, 0, 0);
  // T: continue while any centroid moved by more than epsilon.
  auto term = pb.Match("moved", it.PartialSolution(), next, {0}, {0},
                       [epsilon](const Record& oldc, const Record& newc,
                                 Collector* out) {
                         if (SquaredDistance(oldc.GetDouble(1),
                                             oldc.GetDouble(2),
                                             newc.GetDouble(1),
                                             newc.GetDouble(2)) > epsilon) {
                           out->Emit(Record::OfInts(1));
                         }
                       });
  auto result = it.Close(next, term);
  pb.Sink("centroids", result, &output);
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ExecutionOptions eopt;
  eopt.parallelism = options.parallelism;
  Executor executor(eopt);
  auto exec = executor.Run(*physical);
  if (!exec.ok()) return exec.status();

  KMeansResult kmeans;
  kmeans.exec = std::move(exec).value();
  kmeans.iterations = kmeans.exec.bulk_reports[0].iterations;
  kmeans.converged = kmeans.exec.bulk_reports[0].converged;
  kmeans.centroids.assign(options.k, Point2D{});
  for (const Record& rec : output) {
    kmeans.centroids[rec.GetInt(0)] = Point2D{rec.GetDouble(1),
                                              rec.GetDouble(2)};
  }
  return kmeans;
}

std::vector<Point2D> ReferenceKMeans(const std::vector<Point2D>& points,
                                     int k, int iterations) {
  std::vector<Point2D> centroids(points.begin(), points.begin() + k);
  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<double> sx(k, 0);
    std::vector<double> sy(k, 0);
    std::vector<int64_t> count(k, 0);
    for (const Point2D& p : points) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        double d = SquaredDistance(p.x, p.y, centroids[c].x, centroids[c].y);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      sx[best] += p.x;
      sy[best] += p.y;
      ++count[best];
    }
    for (int c = 0; c < k; ++c) {
      if (count[c] > 0) {
        centroids[c] = Point2D{sx[c] / count[c], sy[c] / count[c]};
      }
    }
  }
  return centroids;
}

std::vector<Point2D> MakeClusteredPoints(int k, int points_per_cluster,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2D> points;
  points.reserve(static_cast<size_t>(k) * points_per_cluster);
  // Ensure the first k points land in distinct clusters (the deterministic
  // seeding picks them as initial centroids).
  for (int c = 0; c < k; ++c) {
    double cx = static_cast<double>(c % 4) * 10.0;
    double cy = static_cast<double>(c / 4) * 10.0;
    points.push_back(Point2D{cx, cy});
  }
  for (int c = 0; c < k; ++c) {
    double cx = static_cast<double>(c % 4) * 10.0;
    double cy = static_cast<double>(c / 4) * 10.0;
    for (int i = 1; i < points_per_cluster; ++i) {
      points.push_back(Point2D{cx + (rng.NextDouble() - 0.5) * 3.0,
                               cy + (rng.NextDouble() - 0.5) * 3.0});
    }
  }
  return points;
}

double KMeansObjective(const std::vector<Point2D>& points,
                       const std::vector<Point2D>& centroids) {
  double total = 0;
  for (const Point2D& p : points) {
    double best = std::numeric_limits<double>::infinity();
    for (const Point2D& c : centroids) {
      best = std::min(best, SquaredDistance(p.x, p.y, c.x, c.y));
    }
    total += best;
  }
  return total / static_cast<double>(points.size());
}

}  // namespace sfdf
