// Single-Source Shortest Paths as a workset iteration — the second
// "propagate changes to neighbors" algorithm family the paper names
// (Section 1: "such as shortest paths"). Demonstrates that the Figure 5
// template generalizes beyond Connected Components: the solution set maps
// vertices to tentative distances, the workset carries distance candidates,
// and the comparator keeps the smaller distance (the CPO successor).
#pragma once

#include <limits>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "runtime/executor.h"

namespace sfdf {

struct SsspOptions {
  VertexId source = 0;
  /// Deterministic pseudo-weights in [1, max_weight]; 1 = hop counts.
  int max_weight = 1;
  int max_iterations = 1000000;
  int parallelism = 0;
  /// Run the Match plan asynchronously as fused microsteps.
  bool async_microsteps = false;
  bool record_superstep_stats = true;
};

struct SsspResult {
  /// distances[v]; unreachable vertices hold +infinity.
  std::vector<double> distances;
  ExecutionResult exec;
  int iterations = 0;
  bool converged = false;
};

/// Deterministic edge weight for (u, v) under `max_weight`.
double EdgeWeightOf(VertexId u, VertexId v, int max_weight);

/// Runs SSSP on the dataflow engine (workset iteration, Match update).
Result<SsspResult> RunSssp(const Graph& graph, const SsspOptions& options);

/// Sequential Dijkstra reference for validation.
std::vector<double> ReferenceSssp(const Graph& graph, VertexId source,
                                  int max_weight);

}  // namespace sfdf
