#include "algos/gradient_descent.h"

#include <cmath>

#include "common/rng.h"
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"

namespace sfdf {

Result<GradientDescentResult> RunGradientDescent(
    const std::vector<Sample1D>& samples,
    const GradientDescentOptions& options) {
  if (samples.empty()) {
    return Status::InvalidArgument("no training samples");
  }
  std::vector<Record> sample_records;
  sample_records.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    Record rec;
    rec.AppendInt(static_cast<int64_t>(i));
    rec.AppendDouble(samples[i].x);
    rec.AppendDouble(samples[i].y);
    sample_records.push_back(rec);
  }
  // The model: a single record (0, w, b), initialized to zero.
  std::vector<Record> model0;
  {
    Record rec;
    rec.AppendInt(0);
    rec.AppendDouble(0.0);
    rec.AppendDouble(0.0);
    model0.push_back(rec);
  }
  const double rate = options.learning_rate;
  const double inv_n = 1.0 / static_cast<double>(samples.size());
  const double epsilon = options.epsilon;

  std::vector<Record> output;
  PlanBuilder pb;
  auto data = pb.Source("samples", std::move(sample_records));
  auto model_source = pb.Source("model0", std::move(model0));

  auto it = pb.BeginBulkIteration("bgd", model_source, options.max_iterations,
                                  {0});
  // Per-sample gradient of the squared loss under the current model.
  auto gradients = pb.Cross(
      "pointGradients", data, it.PartialSolution(),
      [](const Record& sample, const Record& model, Collector* out) {
        double x = sample.GetDouble(1);
        double y = sample.GetDouble(2);
        double err = model.GetDouble(1) * x + model.GetDouble(2) - y;
        Record rec;
        rec.AppendInt(0);
        rec.AppendDouble(err * x);  // ∂loss/∂w
        rec.AppendDouble(err);      // ∂loss/∂b
        out->Emit(rec);
      });
  auto gradient_sum = pb.Reduce(
      "sumGradients", gradients, {0},
      [](const std::vector<Record>& group, Collector* out) {
        double gw = 0;
        double gb = 0;
        for (const Record& rec : group) {
          gw += rec.GetDouble(1);
          gb += rec.GetDouble(2);
        }
        Record rec;
        rec.AppendInt(0);
        rec.AppendDouble(gw);
        rec.AppendDouble(gb);
        out->Emit(rec);
      },
      /*combiner=*/
      [](const Record& a, const Record& b) {
        Record rec;
        rec.AppendInt(0);
        rec.AppendDouble(a.GetDouble(1) + b.GetDouble(1));
        rec.AppendDouble(a.GetDouble(2) + b.GetDouble(2));
        return rec;
      });
  pb.DeclarePreserved(gradient_sum, 0, 0, 0);
  // Apply the step: w' = w − η·∇w/n, b' = b − η·∇b/n.
  auto next = pb.Match(
      "applyStep", it.PartialSolution(), gradient_sum, {0}, {0},
      [rate, inv_n](const Record& model, const Record& grad, Collector* out) {
        Record rec;
        rec.AppendInt(0);
        rec.AppendDouble(model.GetDouble(1) - rate * grad.GetDouble(1) * inv_n);
        rec.AppendDouble(model.GetDouble(2) - rate * grad.GetDouble(2) * inv_n);
        out->Emit(rec);
      });
  pb.DeclarePreserved(next, 0, 0, 0);
  auto term = pb.Match("stillMoving", it.PartialSolution(), next, {0}, {0},
                       [epsilon](const Record& oldm, const Record& newm,
                                 Collector* out) {
                         double step =
                             std::abs(oldm.GetDouble(1) - newm.GetDouble(1)) +
                             std::abs(oldm.GetDouble(2) - newm.GetDouble(2));
                         if (step > epsilon) out->Emit(Record::OfInts(1));
                       });
  auto result = it.Close(next, term);
  pb.Sink("model", result, &output);
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ExecutionOptions eopt;
  eopt.parallelism = options.parallelism;
  Executor executor(eopt);
  auto exec = executor.Run(*physical);
  if (!exec.ok()) return exec.status();

  GradientDescentResult bgd;
  bgd.exec = std::move(exec).value();
  bgd.iterations = bgd.exec.bulk_reports[0].iterations;
  bgd.converged = bgd.exec.bulk_reports[0].converged;
  if (output.size() != 1) {
    return Status::Internal("gradient descent produced no model record");
  }
  bgd.w = output[0].GetDouble(1);
  bgd.b = output[0].GetDouble(2);
  return bgd;
}

void ReferenceGradientDescent(const std::vector<Sample1D>& samples,
                              double learning_rate, int iterations, double* w,
                              double* b) {
  *w = 0;
  *b = 0;
  const double inv_n = 1.0 / static_cast<double>(samples.size());
  for (int iter = 0; iter < iterations; ++iter) {
    double gw = 0;
    double gb = 0;
    for (const Sample1D& s : samples) {
      double err = *w * s.x + *b - s.y;
      gw += err * s.x;
      gb += err;
    }
    *w -= learning_rate * gw * inv_n;
    *b -= learning_rate * gb * inv_n;
  }
}

std::vector<Sample1D> MakeLinearSamples(int n, double true_w, double true_b,
                                        double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample1D> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    double x = rng.NextDouble() * 10.0 - 5.0;
    double y = true_w * x + true_b + (rng.NextDouble() - 0.5) * noise;
    samples.push_back(Sample1D{x, y});
  }
  return samples;
}

}  // namespace sfdf
