#include "algos/incremental_pagerank.h"

#include <algorithm>
#include <cmath>

#include "algos/pagerank.h"
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"

namespace sfdf {

std::vector<Record> BuildInitialRankRecords(int64_t num_vertices,
                                            double damping) {
  const double base = (1.0 - damping) / static_cast<double>(num_vertices);
  std::vector<Record> initial_ranks;
  initial_ranks.reserve(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    initial_ranks.push_back(Record::OfIntDouble(v, base));
  }
  return initial_ranks;
}

std::vector<Record> BuildInitialPushRecords(const Graph& graph,
                                            double damping) {
  const double base =
      (1.0 - damping) / static_cast<double>(graph.num_vertices());
  std::vector<Record> initial_pushes;
  initial_pushes.reserve(graph.num_directed_edges());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    int64_t degree = graph.OutDegree(u);
    if (degree == 0) continue;
    double push = damping * base / static_cast<double>(degree);
    for (const VertexId* v = graph.NeighborsBegin(u);
         v != graph.NeighborsEnd(u); ++v) {
      initial_pushes.push_back(Record::OfIntDouble(*v, push));
    }
  }
  return initial_pushes;
}

CoGroupUdf PageRankAbsorbUdf() {
  return [](const std::vector<Record>& pushes_in,
            const std::vector<Record>& state, Collector* out) {
    double residual = 0;
    for (const Record& rec : pushes_in) residual += rec.GetDouble(1);
    const Record& current = state.front();
    Record updated;
    updated.AppendInt(current.GetInt(0));
    updated.AppendDouble(current.GetDouble(1) + residual);
    updated.AppendDouble(residual);
    out->Emit(updated);
  };
}

Result<IncrementalPageRankResult> RunIncrementalPageRank(
    const Graph& graph, const IncrementalPageRankOptions& options) {
  const double damping = options.damping;
  const double epsilon = options.epsilon;

  std::vector<Record> output;
  PlanBuilder pb;
  auto ranks = pb.Source(
      "S0", BuildInitialRankRecords(graph.num_vertices(), damping));
  auto pushes = pb.Source("W0", BuildInitialPushRecords(graph, damping));
  auto matrix = pb.Source("A", BuildTransitionMatrix(graph));

  auto it = pb.BeginWorksetIteration("incr-pr", ranks, pushes,
                                     /*solution_key=*/{0},
                                     /*comparator=*/nullptr,
                                     IterationMode::kAuto,
                                     options.max_iterations);
  // ∆ part 1: absorb the pending pushes into the rank. The delta record
  // carries (pid, new_rank, residual) — the residual rides along only to
  // feed part 2 and is replaced on the next update.
  auto delta = pb.InnerCoGroup("absorb", it.Workset(), it.SolutionSet(),
                               {0}, {0}, PageRankAbsorbUdf());
  pb.DeclarePreserved(delta, 1, 0, 0);
  // ∆ part 2: adaptive push — only pages whose residual still exceeds the
  // threshold forward mass to their neighbors (A: (tid, pid, prob)).
  auto next = pb.Match(
      "push", delta, matrix, {0}, {1},
      [damping, epsilon](const Record& d, const Record& a, Collector* out) {
        double residual = d.GetDouble(2);
        if (std::abs(residual) <= epsilon) return;  // page converged: halt
        out->Emit(Record::OfIntDouble(a.GetInt(0),
                                      damping * residual * a.GetDouble(2)));
      });
  pb.DeclarePreserved(next, 1, 0, 0);
  auto result = it.Close(delta, next);
  pb.Sink("ranks", result, &output);
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ExecutionOptions eopt;
  eopt.parallelism = options.parallelism;
  eopt.record_superstep_stats = options.record_superstep_stats;
  eopt.sync_mode = options.sync_mode;
  eopt.staleness_bound = options.staleness_bound;
  Executor executor(eopt);
  auto exec = executor.Run(*physical);
  if (!exec.ok()) return exec.status();

  IncrementalPageRankResult pr;
  pr.exec = std::move(exec).value();
  pr.iterations = pr.exec.workset_reports[0].iterations;
  pr.converged = pr.exec.workset_reports[0].converged;
  pr.ranks.reserve(output.size());
  for (const Record& rec : output) {
    pr.ranks.emplace_back(rec.GetInt(0), rec.GetDouble(1));
  }
  std::sort(pr.ranks.begin(), pr.ranks.end());
  return pr;
}

Status AppendPageRankMutationSeeds(
    const DynamicGraph& graph,
    const std::function<double(VertexId)>& rank_of, double damping,
    const GraphMutation& mutation, std::vector<Record>* seeds) {
  switch (mutation.kind) {
    case MutationKind::kEdgeInsert: {
      if (!graph.HasVertex(mutation.u) || !graph.HasVertex(mutation.v)) {
        return Status::InvalidArgument(
            "edge endpoints must be in the vertex space before seeding: " +
            mutation.ToString());
      }
      if (mutation.u == mutation.v || graph.HasEdge(mutation.u, mutation.v)) {
        return Status::OK();  // no-op mutation, no residual to push
      }
      const double r_u = rank_of(mutation.u);
      const int64_t degree = graph.OutDegree(mutation.u);
      seeds->push_back(Record::OfIntDouble(
          mutation.v, damping * r_u / static_cast<double>(degree + 1)));
      if (degree > 0) {
        const double loss = -damping * r_u /
                            (static_cast<double>(degree) *
                             static_cast<double>(degree + 1));
        for (VertexId w : graph.Neighbors(mutation.u)) {
          seeds->push_back(Record::OfIntDouble(w, loss));
        }
      }
      return Status::OK();
    }
    case MutationKind::kEdgeRemove: {
      if (mutation.u == mutation.v ||
          !graph.HasEdge(mutation.u, mutation.v)) {
        return Status::OK();  // self-loops never pushed; nothing to retract
      }
      const double r_u = rank_of(mutation.u);
      const int64_t degree = graph.OutDegree(mutation.u);
      seeds->push_back(Record::OfIntDouble(
          mutation.v, -damping * r_u / static_cast<double>(degree)));
      if (degree > 1) {
        const double gain = damping * r_u /
                            (static_cast<double>(degree) *
                             static_cast<double>(degree - 1));
        for (VertexId w : graph.Neighbors(mutation.u)) {
          if (w != mutation.v) {
            seeds->push_back(Record::OfIntDouble(w, gain));
          }
        }
      }
      return Status::OK();
    }
    case MutationKind::kVertexUpsert: {
      if (mutation.value != 0) {
        seeds->push_back(Record::OfIntDouble(mutation.u, mutation.value));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown mutation kind");
}

}  // namespace sfdf
