#include "algos/incremental_pagerank.h"

#include <algorithm>
#include <cmath>

#include "algos/pagerank.h"
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"

namespace sfdf {

Result<IncrementalPageRankResult> RunIncrementalPageRank(
    const Graph& graph, const IncrementalPageRankOptions& options) {
  const double n = static_cast<double>(graph.num_vertices());
  const double base = (1.0 - options.damping) / n;
  const double damping = options.damping;
  const double epsilon = options.epsilon;

  // S_0: every page starts at the base rank.
  std::vector<Record> initial_ranks;
  initial_ranks.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    initial_ranks.push_back(Record::OfIntDouble(v, base));
  }
  // W_0: the base rank mass pushed once along every edge.
  std::vector<Record> initial_pushes;
  initial_pushes.reserve(graph.num_directed_edges());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    int64_t degree = graph.OutDegree(u);
    if (degree == 0) continue;
    double push = damping * base / static_cast<double>(degree);
    for (const VertexId* v = graph.NeighborsBegin(u);
         v != graph.NeighborsEnd(u); ++v) {
      initial_pushes.push_back(Record::OfIntDouble(*v, push));
    }
  }

  std::vector<Record> output;
  PlanBuilder pb;
  auto ranks = pb.Source("S0", std::move(initial_ranks));
  auto pushes = pb.Source("W0", std::move(initial_pushes));
  auto matrix = pb.Source("A", BuildTransitionMatrix(graph));

  auto it = pb.BeginWorksetIteration("incr-pr", ranks, pushes,
                                     /*solution_key=*/{0},
                                     /*comparator=*/nullptr,
                                     IterationMode::kAuto,
                                     options.max_iterations);
  // ∆ part 1: absorb the pending pushes into the rank. The delta record
  // carries (pid, new_rank, residual) — the residual rides along only to
  // feed part 2 and is replaced on the next update.
  auto delta = pb.InnerCoGroup(
      "absorb", it.Workset(), it.SolutionSet(), {0}, {0},
      [](const std::vector<Record>& pushes_in,
         const std::vector<Record>& state, Collector* out) {
        double residual = 0;
        for (const Record& rec : pushes_in) residual += rec.GetDouble(1);
        const Record& current = state.front();
        Record updated;
        updated.AppendInt(current.GetInt(0));
        updated.AppendDouble(current.GetDouble(1) + residual);
        updated.AppendDouble(residual);
        out->Emit(updated);
      });
  pb.DeclarePreserved(delta, 1, 0, 0);
  // ∆ part 2: adaptive push — only pages whose residual still exceeds the
  // threshold forward mass to their neighbors (A: (tid, pid, prob)).
  auto next = pb.Match(
      "push", delta, matrix, {0}, {1},
      [damping, epsilon](const Record& d, const Record& a, Collector* out) {
        double residual = d.GetDouble(2);
        if (std::abs(residual) <= epsilon) return;  // page converged: halt
        out->Emit(Record::OfIntDouble(a.GetInt(0),
                                      damping * residual * a.GetDouble(2)));
      });
  pb.DeclarePreserved(next, 1, 0, 0);
  auto result = it.Close(delta, next);
  pb.Sink("ranks", result, &output);
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ExecutionOptions eopt;
  eopt.parallelism = options.parallelism;
  eopt.record_superstep_stats = options.record_superstep_stats;
  Executor executor(eopt);
  auto exec = executor.Run(*physical);
  if (!exec.ok()) return exec.status();

  IncrementalPageRankResult pr;
  pr.exec = std::move(exec).value();
  pr.iterations = pr.exec.workset_reports[0].iterations;
  pr.converged = pr.exec.workset_reports[0].converged;
  pr.ranks.reserve(output.size());
  for (const Record& rec : output) {
    pr.ranks.emplace_back(rec.GetInt(0), rec.GetDouble(1));
  }
  std::sort(pr.ranks.begin(), pr.ranks.end());
  return pr;
}

}  // namespace sfdf
