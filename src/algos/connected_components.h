// Connected Components in all the paper's flavours (Table 1, Figure 5).
//
//  * kBulk            — FIXPOINT-CC as a bulk iteration: every superstep,
//                        every vertex takes the minimum component id of
//                        itself and all neighbors.
//  * kIncrementalCoGroup — INCR-CC as a workset iteration whose update
//                        function is an InnerCoGroup (batch incremental:
//                        all candidates of a vertex are grouped, the
//                        solution is touched once per vertex).
//  * kIncrementalMatch — MICRO-CC semantics via a Match update function:
//                        every workset element probes and possibly updates
//                        the solution individually. Executed with
//                        supersteps, like the paper's experiments.
//  * kAsyncMicrostep  — the same Match plan executed as an asynchronous
//                        fused microstep loop (Section 5.2) with
//                        quiescence-based termination.
#pragma once

#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "runtime/executor.h"

namespace sfdf {

enum class CcVariant {
  kBulk,
  kIncrementalCoGroup,
  kIncrementalMatch,
  kAsyncMicrostep,
};

struct CcOptions {
  CcVariant variant = CcVariant::kIncrementalCoGroup;
  /// Iteration cap (the bulk variant uses its T criterion to stop earlier;
  /// workset variants stop when the workset drains).
  int max_iterations = 1000;
  int parallelism = 0;
  bool record_superstep_stats = true;
  /// Ablation toggles (forwarded to the optimizer).
  int force_solution_index = 0;  ///< 0 auto, 1 hash, 2 B+-tree
  bool enable_caching = true;
  bool disable_immediate_apply = false;  ///< buffer D until superstep end
};

struct CcResult {
  /// labels[v] = component id of vertex v (the minimum vid in v's
  /// component when the algorithm converged).
  std::vector<VertexId> labels;
  ExecutionResult exec;
  int iterations = 0;
  bool converged = false;
};

/// Runs the selected Connected Components variant on the dataflow engine.
Result<CcResult> RunConnectedComponents(const Graph& graph,
                                        const CcOptions& options);

/// Builds the (src, dst) neighborhood records N of `graph`.
std::vector<Record> BuildEdgeRecords(const Graph& graph);

}  // namespace sfdf
