// Connected Components in all the paper's flavours (Table 1, Figure 5).
//
//  * kBulk            — FIXPOINT-CC as a bulk iteration: every superstep,
//                        every vertex takes the minimum component id of
//                        itself and all neighbors.
//  * kIncrementalCoGroup — INCR-CC as a workset iteration whose update
//                        function is an InnerCoGroup (batch incremental:
//                        all candidates of a vertex are grouped, the
//                        solution is touched once per vertex).
//  * kIncrementalMatch — MICRO-CC semantics via a Match update function:
//                        every workset element probes and possibly updates
//                        the solution individually. Executed with
//                        supersteps, like the paper's experiments.
//  * kAsyncMicrostep  — the same Match plan executed as an asynchronous
//                        fused microstep loop (Section 5.2) with
//                        quiescence-based termination.
#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "runtime/executor.h"

namespace sfdf {

enum class CcVariant {
  kBulk,
  kIncrementalCoGroup,
  kIncrementalMatch,
  kAsyncMicrostep,
};

struct CcOptions {
  CcVariant variant = CcVariant::kIncrementalCoGroup;
  /// Iteration cap (the bulk variant uses its T criterion to stop earlier;
  /// workset variants stop when the workset drains).
  int max_iterations = 1000;
  int parallelism = 0;
  bool record_superstep_stats = true;
  /// Ablation toggles (forwarded to the optimizer).
  int force_solution_index = 0;  ///< 0 auto, 1 hash, 2 B+-tree
  bool enable_caching = true;
  bool disable_immediate_apply = false;  ///< buffer D until superstep end
  /// Barrier coupling of the workset loop (see ExecutionOptions::sync_mode).
  /// Min-label propagation is monotone under the ∪̇ comparator ("smaller
  /// cid wins"), so all modes converge to the same labels. Only meaningful
  /// for the incremental (workset) variants; the bulk variant always runs
  /// supersteps, and kAsyncMicrostep has its own microstep execution.
  SyncMode sync_mode = SyncMode::kSuperstep;
  /// Staleness window for SyncMode::kBoundedStale.
  int staleness_bound = 1;
};

struct CcResult {
  /// labels[v] = component id of vertex v (the minimum vid in v's
  /// component when the algorithm converged).
  std::vector<VertexId> labels;
  ExecutionResult exec;
  int iterations = 0;
  bool converged = false;
};

/// Runs the selected Connected Components variant on the dataflow engine.
Result<CcResult> RunConnectedComponents(const Graph& graph,
                                        const CcOptions& options);

/// Builds the (src, dst) neighborhood records N of `graph`.
std::vector<Record> BuildEdgeRecords(const Graph& graph);

/// Mutation-to-workset translator for the continuous serving subsystem
/// (src/service/): turns one streamed mutation into INCR-CC candidate
/// records (vid, cid) against the resident component labels.
///
///   insert (u,v):  candidates (u, comp(v)) and (v, comp(u)) — the ∪̇
///                  comparator keeps the minimum and the warm round
///                  propagates it through the merged component only.
///   vertex upsert: no seeds — a fresh vertex is its own component until an
///                  edge arrives (the serving layer upserts (u, u) into S).
///   remove (u,v):  Unsupported. A deletion can split a component, which is
///                  not monotone under the min-label CPO (§5.1): the served
///                  labels can only ever decrease, so the split half's old
///                  minimum cannot be retracted incrementally. Serve
///                  deletions with a cold recompute.
///
/// `component_of` reads the resident solution set (return the vertex's own
/// id for vertices it does not contain).
Status AppendCcMutationSeeds(
    const std::function<int64_t(VertexId)>& component_of,
    const GraphMutation& mutation, std::vector<Record>* seeds);

}  // namespace sfdf
