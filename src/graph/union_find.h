// Disjoint-set forest. The sequential ground truth that every Connected
// Components implementation in this repository is validated against.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/graph.h"

namespace sfdf {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(int64_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int64_t Find(int64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(int64_t a, int64_t b) {
    int64_t ra = Find(a);
    int64_t rb = Find(b);
    if (ra == rb) return;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
  }

  int64_t NumElements() const { return static_cast<int64_t>(parent_.size()); }

 private:
  std::vector<int64_t> parent_;
  std::vector<int64_t> size_;
};

/// Reference Connected Components: for each vertex, the *minimum vertex id*
/// in its component — the same labeling the iterative algorithms converge
/// to when initialized with s(v) = v.
std::vector<VertexId> ReferenceComponents(const Graph& graph);

/// Number of distinct components in a labeling.
int64_t CountComponents(const std::vector<VertexId>& labels);

}  // namespace sfdf
