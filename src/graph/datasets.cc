#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "graph/generators.h"
#include "graph/union_find.h"

namespace sfdf {

namespace {

int64_t CeilPow2(int64_t v) {
  int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Power-law core plus a path of `tail_length` vertices hanging off vertex
/// 0. The core converges within a handful of CC iterations (where the bulk
/// vs. incremental work gap opens up); the thin tail stretches the
/// component's diameter, driving the long low-workset iteration tails of
/// the paper's graphs (14 iterations for Wikipedia/Twitter, 744 for
/// Webbase).
Graph MakeCoreWithTail(RmatOptions core, int64_t tail_length) {
  int64_t core_n = CeilPow2(std::max<int64_t>(2, core.num_vertices));
  GraphBuilder builder(core_n + tail_length);
  GenerateRmatEdges(core,
                    [&](VertexId u, VertexId v) { builder.AddEdge(u, v); });
  VertexId previous = 0;  // attach the tail to a core hub
  for (int64_t i = 0; i < tail_length; ++i) {
    VertexId tail_vertex = core_n + i;
    builder.AddEdge(previous, tail_vertex);
    previous = tail_vertex;
  }
  return builder.Build(/*symmetrize=*/true);
}

// Wikipedia-EN: power-law web graph, avg degree ~13; CC converges in ~14
// iterations (a fast core plus a shallow tail).
Graph MakeWikipedia(double scale) {
  RmatOptions opt;
  opt.num_vertices = static_cast<int64_t>(65536 * scale);
  opt.num_edges = static_cast<int64_t>(430000 * scale);
  opt.seed = 1001;
  return MakeCoreWithTail(opt, 11);
}

// Webbase: the largest graph; power-law web crawl whose largest component
// has a huge diameter — the paper needs 744 iterations to converge, with
// the vast majority of label changes in the first 20.
Graph MakeWebbase(double scale) {
  RmatOptions opt;
  opt.num_vertices = static_cast<int64_t>(65536 * scale);
  opt.num_edges = static_cast<int64_t>(1150000 * scale);
  opt.seed = 1002;
  int64_t tail = std::max<int64_t>(32, static_cast<int64_t>(720 * std::sqrt(scale)));
  return MakeCoreWithTail(opt, tail);
}

// Hollywood: the smallest graph but very dense, avg degree ~115 (highest).
Graph MakeHollywood(double scale) {
  PreferentialAttachmentOptions opt;
  opt.num_vertices = static_cast<int64_t>(12288 * scale);
  opt.edges_per_vertex = 48;
  opt.seed = 1003;
  return GeneratePreferentialAttachment(opt);
}

// Twitter: large, moderately dense social graph, avg degree ~35; second-
// largest edge count after Webbase; ~14 CC iterations like Wikipedia.
Graph MakeTwitter(double scale) {
  RmatOptions opt;
  opt.num_vertices = static_cast<int64_t>(65536 * scale);
  opt.num_edges = static_cast<int64_t>(950000 * scale);
  // Less skew than the web graphs: social networks have fatter cores.
  opt.a = 0.45;
  opt.b = 0.22;
  opt.c = 0.22;
  opt.seed = 1004;
  return MakeCoreWithTail(opt, 11);
}

}  // namespace

const std::vector<DatasetSpec>& Table2Datasets() {
  static const std::vector<DatasetSpec>* kDatasets = new std::vector<DatasetSpec>{
      {"wikipedia", 16513969, 219505928, 13.29, MakeWikipedia},
      {"webbase", 115657290, 1736677821, 15.02, MakeWebbase},
      {"hollywood", 1985306, 228985632, 115.34, MakeHollywood},
      {"twitter", 41652230, 1468365182, 35.25, MakeTwitter},
  };
  return *kDatasets;
}

const DatasetSpec& DatasetByName(const std::string& name) {
  for (const DatasetSpec& spec : Table2Datasets()) {
    if (spec.name == name) return spec;
  }
  SFDF_CHECK(false) << "unknown dataset: " << name;
  __builtin_unreachable();
}

Graph FoafGraph(double scale) {
  FoafOptions opt;
  opt.num_vertices = std::max<int64_t>(1024, static_cast<int64_t>(1200000 * scale));
  opt.num_edges = std::max<int64_t>(4096, static_cast<int64_t>(3500000 * scale));
  opt.seed = 2001;
  return GenerateFoaf(opt);
}

GraphStats ComputeStats(const Graph& graph, bool with_components) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_directed_edges = graph.num_directed_edges();
  stats.avg_degree = graph.AvgDegree();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    stats.max_degree = std::max(stats.max_degree, graph.OutDegree(v));
  }
  if (with_components) {
    stats.num_components = CountComponents(ReferenceComponents(graph));
  }
  return stats;
}

}  // namespace sfdf
