// Registry of the paper's four evaluation datasets (Table 2) mapped to
// scaled synthetic stand-ins, plus the FOAF subgraph of Figure 2.
//
// Scaling: the paper's graphs (16M–115M vertices) targeted a 4-node cluster
// with 152 GB of heap. At SFDF_SCALE=1.0 the stand-ins are sized so that the
// full benchmark suite completes on a laptop, while preserving the
// properties the evaluation depends on: relative sizes, degree ordering
// (Hollywood ≫ Twitter ≫ Webbase ≈ Wikipedia), power-law skew for the web
// graphs, density for the social graphs, and the huge-diameter component of
// Webbase (744 bulk iterations to converge).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace sfdf {

/// One evaluation dataset: the paper's published properties plus the
/// generator configuration of its synthetic stand-in.
struct DatasetSpec {
  std::string name;
  // Published properties (Table 2).
  int64_t paper_vertices;
  int64_t paper_edges;
  double paper_avg_degree;
  /// Builds the scaled stand-in graph (deterministic).
  Graph (*generate)(double scale);
};

/// The four Table 2 datasets in paper order:
/// Wikipedia-EN, Webbase, Hollywood, Twitter.
const std::vector<DatasetSpec>& Table2Datasets();

/// Look up one dataset by name ("wikipedia", "webbase", "hollywood",
/// "twitter"). Aborts on unknown name.
const DatasetSpec& DatasetByName(const std::string& name);

/// The FOAF-like graph of Figure 2 (1.2M vertices / 7M edges at full
/// paper scale; scaled down by `scale`).
Graph FoafGraph(double scale);

/// Basic statistics (the Table 2 columns) of a generated graph.
struct GraphStats {
  int64_t num_vertices = 0;
  int64_t num_directed_edges = 0;
  double avg_degree = 0.0;
  int64_t max_degree = 0;
  int64_t num_components = 0;
};
GraphStats ComputeStats(const Graph& graph, bool with_components = false);

}  // namespace sfdf
