// Edge-list I/O: persist and load graphs in the ubiquitous
// whitespace-separated "src dst" text format (the format the paper's
// datasets ship in at the Milan WebGraph repository, after decompression).
#pragma once

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace sfdf {

/// Writes one "src dst" line per directed adjacency entry.
Status WriteEdgeList(const std::string& path, const Graph& graph);

/// Reads an edge list. Lines starting with '#' or '%' are comments.
/// `symmetrize` adds the reverse of every edge (undirected interpretation).
/// The vertex count is 1 + the largest id seen, unless `num_vertices`
/// overrides it.
Result<Graph> ReadEdgeList(const std::string& path, bool symmetrize = true,
                           int64_t num_vertices = -1);

}  // namespace sfdf
