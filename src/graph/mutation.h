// Streamed graph mutations — the unit of change the continuous serving
// subsystem (src/service/) folds into a resident, converged iteration. A
// batch of these becomes, through the per-algorithm translators in
// src/algos/, the fresh initial workset of one warm incremental round: the
// paper's core claim (§5–§7) that re-convergence cost is proportional to
// the change, applied to a long-running serving workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace sfdf {

enum class MutationKind : uint8_t {
  kEdgeInsert,   ///< add directed edge u -> v (serving layers for symmetric
                 ///< workloads add both arcs)
  kEdgeRemove,   ///< remove directed edge u -> v
  kVertexUpsert, ///< ensure vertex u exists; `value` is an algorithm-defined
                 ///< payload (e.g. rank mass injected at u)
};

std::string_view MutationKindName(MutationKind kind);

struct GraphMutation {
  MutationKind kind = MutationKind::kEdgeInsert;
  VertexId u = -1;
  VertexId v = -1;   ///< unused for kVertexUpsert
  double value = 0;  ///< kVertexUpsert payload

  static GraphMutation EdgeInsert(VertexId u, VertexId v) {
    return GraphMutation{MutationKind::kEdgeInsert, u, v, 0};
  }
  static GraphMutation EdgeRemove(VertexId u, VertexId v) {
    return GraphMutation{MutationKind::kEdgeRemove, u, v, 0};
  }
  static GraphMutation VertexUpsert(VertexId u, double value = 0) {
    return GraphMutation{MutationKind::kVertexUpsert, u, -1, value};
  }

  std::string ToString() const;
};

}  // namespace sfdf
