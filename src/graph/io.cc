#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

namespace sfdf {

Status WriteEdgeList(const std::string& path, const Graph& graph) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + path);
  }
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const VertexId* v = graph.NeighborsBegin(u);
         v != graph.NeighborsEnd(u); ++v) {
      if (std::fprintf(f, "%lld %lld\n", static_cast<long long>(u),
                       static_cast<long long>(*v)) < 0) {
        std::fclose(f);
        return Status::IoError("write failed: " + path);
      }
    }
  }
  std::fclose(f);
  return Status::OK();
}

Result<Graph> ReadEdgeList(const std::string& path, bool symmetrize,
                           int64_t num_vertices) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open for read: " + path);
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  VertexId max_id = -1;
  char line[256];
  int64_t line_number = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_number;
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
    long long u;
    long long v;
    if (std::sscanf(line, "%lld %lld", &u, &v) != 2 || u < 0 || v < 0) {
      std::fclose(f);
      return Status::IoError("malformed edge at " + path + ":" +
                             std::to_string(line_number));
    }
    edges.emplace_back(u, v);
    max_id = std::max({max_id, static_cast<VertexId>(u),
                       static_cast<VertexId>(v)});
  }
  std::fclose(f);

  int64_t n = num_vertices > 0 ? num_vertices : max_id + 1;
  if (max_id >= n) {
    return Status::InvalidArgument("edge references vertex beyond count");
  }
  GraphBuilder builder(std::max<int64_t>(n, 1));
  for (const auto& [u, v] : edges) {
    builder.AddEdge(u, v);
  }
  return builder.Build(symmetrize);
}

}  // namespace sfdf
