#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace sfdf {

namespace {

int64_t CeilPowerOfTwo(int64_t v) {
  int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void GenerateRmatEdges(const RmatOptions& options,
                       const std::function<void(VertexId, VertexId)>& emit) {
  int64_t n = CeilPowerOfTwo(std::max<int64_t>(2, options.num_vertices));
  int levels = 0;
  for (int64_t t = n; t > 1; t >>= 1) ++levels;

  Rng rng(options.seed);
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (int64_t e = 0; e < options.num_edges; ++e) {
    int64_t row = 0;
    int64_t col = 0;
    for (int l = 0; l < levels; ++l) {
      double r = rng.NextDouble();
      row <<= 1;
      col <<= 1;
      if (r < options.a) {
        // top-left quadrant
      } else if (r < ab) {
        col |= 1;
      } else if (r < abc) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    emit(row, col);
  }
}

Graph GenerateRmat(const RmatOptions& options) {
  int64_t n = CeilPowerOfTwo(std::max<int64_t>(2, options.num_vertices));
  GraphBuilder builder(n);
  GenerateRmatEdges(options,
                    [&](VertexId u, VertexId v) { builder.AddEdge(u, v); });
  return builder.Build(options.symmetrize);
}

Graph GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  SFDF_CHECK(options.num_vertices >= 2);
  Rng rng(options.seed);
  GraphBuilder builder(options.num_vertices);
  for (int64_t e = 0; e < options.num_edges; ++e) {
    VertexId u = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(options.num_vertices)));
    VertexId v = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(options.num_vertices)));
    builder.AddEdge(u, v);
  }
  return builder.Build(options.symmetrize);
}

Graph GeneratePreferentialAttachment(
    const PreferentialAttachmentOptions& options) {
  SFDF_CHECK(options.num_vertices > options.edges_per_vertex);
  Rng rng(options.seed);
  GraphBuilder builder(options.num_vertices);
  // `endpoints` holds one entry per edge endpoint; sampling uniformly from it
  // is sampling proportional to degree.
  std::vector<VertexId> endpoints;
  endpoints.reserve(options.num_vertices * options.edges_per_vertex * 2);
  // Seed clique over the first edges_per_vertex+1 vertices.
  int64_t seed_size = options.edges_per_vertex + 1;
  for (int64_t u = 0; u < seed_size; ++u) {
    for (int64_t v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (int64_t v = seed_size; v < options.num_vertices; ++v) {
    for (int e = 0; e < options.edges_per_vertex; ++e) {
      VertexId target = endpoints[rng.NextBounded(endpoints.size())];
      builder.AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return builder.Build(/*symmetrize=*/true);
}

Graph GenerateChainOfClusters(const ChainOfClustersOptions& options) {
  int64_t n = options.num_clusters * options.cluster_size;
  SFDF_CHECK(n > 0);
  Rng rng(options.seed);
  GraphBuilder builder(n);
  for (int64_t c = 0; c < options.num_clusters; ++c) {
    int64_t base = c * options.cluster_size;
    // Spanning path inside the cluster keeps it connected.
    for (int64_t i = 1; i < options.cluster_size; ++i) {
      builder.AddEdge(base + i - 1, base + i);
    }
    for (int64_t e = 0; e < options.intra_cluster_edges; ++e) {
      VertexId u = base + static_cast<VertexId>(rng.NextBounded(
                              static_cast<uint64_t>(options.cluster_size)));
      VertexId v = base + static_cast<VertexId>(rng.NextBounded(
                              static_cast<uint64_t>(options.cluster_size)));
      builder.AddEdge(u, v);
    }
    // Single bridge to the next cluster: the component's diameter grows
    // linearly in the number of clusters.
    if (c + 1 < options.num_clusters) {
      builder.AddEdge(base + options.cluster_size - 1,
                      base + options.cluster_size);
    }
  }
  return builder.Build(/*symmetrize=*/true);
}

Graph GenerateFoaf(const FoafOptions& options) {
  // 80% of vertices form a power-law core; the rest form small satellite
  // components of 2-8 vertices, giving the many-components structure of the
  // FOAF crawl.
  int64_t n = std::max<int64_t>(16, options.num_vertices);
  int64_t core = n * 8 / 10;
  Rng rng(options.seed);
  GraphBuilder builder(n);

  // Core: RMAT-style skewed edges mapped onto [0, core).
  int64_t core_pow2 = CeilPowerOfTwo(core);
  int levels = 0;
  for (int64_t t = core_pow2; t > 1; t >>= 1) ++levels;
  int64_t added = 0;
  while (added < options.num_edges) {
    int64_t row = 0, col = 0;
    for (int l = 0; l < levels; ++l) {
      double r = rng.NextDouble();
      row <<= 1;
      col <<= 1;
      if (r < 0.57) {
      } else if (r < 0.76) {
        col |= 1;
      } else if (r < 0.95) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row >= core || col >= core) continue;  // rejection-sample into core
    builder.AddEdge(row, col);
    ++added;
  }

  // Satellites: small paths among the remaining vertices.
  VertexId v = core;
  while (v < n) {
    int64_t len = 2 + static_cast<int64_t>(rng.NextBounded(7));
    for (int64_t i = 1; i < len && v + i < n; ++i) {
      builder.AddEdge(v + i - 1, v + i);
    }
    v += len;
  }
  return builder.Build(/*symmetrize=*/true);
}

}  // namespace sfdf
