#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace sfdf {

std::string Graph::ToString() const {
  std::ostringstream out;
  out << "Graph{V=" << num_vertices_ << ", E=" << targets_.size()
      << ", avg_degree=" << AvgDegree() << "}";
  return out.str();
}

Graph GraphBuilder::Build(bool symmetrize) {
  std::vector<std::pair<VertexId, VertexId>> all;
  all.reserve(edges_.size() * (symmetrize ? 2 : 1));
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    all.emplace_back(u, v);
    if (symmetrize) all.emplace_back(v, u);
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  std::vector<int64_t> offsets(num_vertices_ + 1, 0);
  for (const auto& [u, v] : all) {
    (void)v;
    ++offsets[u + 1];
  }
  for (int64_t i = 0; i < num_vertices_; ++i) {
    offsets[i + 1] += offsets[i];
  }
  std::vector<VertexId> targets;
  targets.reserve(all.size());
  for (const auto& [u, v] : all) {
    (void)u;
    targets.push_back(v);
  }
  return Graph(num_vertices_, std::move(offsets), std::move(targets));
}

}  // namespace sfdf
