// Synthetic graph generators standing in for the paper's datasets (see
// DESIGN.md §1). All generators are deterministic in their seed.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/graph.h"

namespace sfdf {

/// R-MAT recursive-matrix generator (Chakrabarti et al.). With the classic
/// (0.57, 0.19, 0.19, 0.05) parameters it produces the skewed, power-law
/// degree distribution of web graphs (Wikipedia / Webbase stand-ins).
struct RmatOptions {
  int64_t num_vertices = 1 << 16;  ///< rounded up to a power of two
  int64_t num_edges = 1 << 20;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  ///< d = 1 - a - b - c
  uint64_t seed = 42;
  bool symmetrize = true;
};
Graph GenerateRmat(const RmatOptions& options);

/// Low-level R-MAT edge stream: calls `emit(src, dst)` for every generated
/// edge without building a graph. Vertex ids lie in [0, 2^ceil(log2 V)).
/// Used to assemble composite graphs (e.g. a power-law core with a long
/// path appended — the Table 2 stand-ins).
void GenerateRmatEdges(const RmatOptions& options,
                       const std::function<void(VertexId, VertexId)>& emit);

/// Erdős–Rényi G(n, m) with m edges drawn uniformly.
struct ErdosRenyiOptions {
  int64_t num_vertices = 1 << 16;
  int64_t num_edges = 1 << 20;
  uint64_t seed = 42;
  bool symmetrize = true;
};
Graph GenerateErdosRenyi(const ErdosRenyiOptions& options);

/// Preferential attachment (Barabási–Albert flavor): each new vertex
/// attaches to `edges_per_vertex` earlier vertices biased toward high
/// degree. Produces the dense, hub-heavy structure of social graphs
/// (Twitter / Hollywood stand-ins).
struct PreferentialAttachmentOptions {
  int64_t num_vertices = 1 << 16;
  int edges_per_vertex = 16;  ///< average degree ≈ 2 × this (undirected)
  uint64_t seed = 42;
};
Graph GeneratePreferentialAttachment(const PreferentialAttachmentOptions& options);

/// Chain of dense clusters: `num_clusters` communities of `cluster_size`
/// vertices, consecutive clusters bridged by a single edge. One connected
/// component with diameter ≈ num_clusters — the Webbase stand-in whose huge
/// diameter makes Connected Components need hundreds of iterations
/// (Figure 10: 744 iterations to converge).
struct ChainOfClustersOptions {
  int64_t num_clusters = 256;
  int64_t cluster_size = 64;
  int64_t intra_cluster_edges = 192;  ///< random edges inside each cluster
  uint64_t seed = 42;
};
Graph GenerateChainOfClusters(const ChainOfClustersOptions& options);

/// FOAF-like social subgraph for Figure 2: power-law graph with many small
/// satellite components around a large core, mimicking the
/// Billion-Triple-Challenge friend-of-a-friend subset (1.2M vertices / 7M
/// edges at full scale).
struct FoafOptions {
  int64_t num_vertices = 1200000;
  int64_t num_edges = 3500000;  ///< undirected edges (7M directed entries)
  uint64_t seed = 42;
};
Graph GenerateFoaf(const FoafOptions& options);

}  // namespace sfdf
