// Compressed-sparse-row graph. The substrate for all workloads in the
// paper's evaluation: Connected Components and PageRank both consume the
// edge set; the neighborhood mapping N of Section 2.1 is the CSR adjacency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace sfdf {

using VertexId = int64_t;

/// Immutable CSR graph. Construct through GraphBuilder or the generators.
class Graph {
 public:
  Graph() = default;
  Graph(int64_t num_vertices, std::vector<int64_t> offsets,
        std::vector<VertexId> targets)
      : num_vertices_(num_vertices),
        offsets_(std::move(offsets)),
        targets_(std::move(targets)) {
    SFDF_CHECK(offsets_.size() == static_cast<size_t>(num_vertices_) + 1);
  }

  int64_t num_vertices() const { return num_vertices_; }
  /// Number of directed adjacency entries (an undirected edge counts twice).
  int64_t num_directed_edges() const {
    return static_cast<int64_t>(targets_.size());
  }

  int64_t OutDegree(VertexId v) const {
    SFDF_DCHECK(v >= 0 && v < num_vertices_);
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbors of v as a contiguous span [begin, end).
  const VertexId* NeighborsBegin(VertexId v) const {
    return targets_.data() + offsets_[v];
  }
  const VertexId* NeighborsEnd(VertexId v) const {
    return targets_.data() + offsets_[v + 1];
  }

  double AvgDegree() const {
    return num_vertices_ == 0
               ? 0.0
               : static_cast<double>(targets_.size()) /
                     static_cast<double>(num_vertices_);
  }

  std::string ToString() const;

 private:
  int64_t num_vertices_ = 0;
  std::vector<int64_t> offsets_;   // size = num_vertices + 1
  std::vector<VertexId> targets_;  // size = num_directed_edges
};

/// Accumulates edges, then freezes into a CSR Graph. Optionally symmetrizes
/// (paper footnote 6: N contains the symmetric pair for every edge) and
/// deduplicates parallel edges.
class GraphBuilder {
 public:
  explicit GraphBuilder(int64_t num_vertices) : num_vertices_(num_vertices) {}

  void AddEdge(VertexId src, VertexId dst) {
    SFDF_DCHECK(src >= 0 && src < num_vertices_);
    SFDF_DCHECK(dst >= 0 && dst < num_vertices_);
    edges_.emplace_back(src, dst);
  }

  int64_t num_edges_added() const { return static_cast<int64_t>(edges_.size()); }

  /// Builds the CSR image. If `symmetrize`, every (u,v) also yields (v,u).
  /// Self-loops are dropped; parallel edges are deduplicated.
  Graph Build(bool symmetrize = true);

 private:
  int64_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace sfdf
