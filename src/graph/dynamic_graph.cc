#include "graph/dynamic_graph.h"

#include <algorithm>
#include <string>

namespace sfdf {

std::string_view MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kEdgeInsert:
      return "EdgeInsert";
    case MutationKind::kEdgeRemove:
      return "EdgeRemove";
    case MutationKind::kVertexUpsert:
      return "VertexUpsert";
  }
  return "?";
}

std::string GraphMutation::ToString() const {
  std::string s(MutationKindName(kind));
  s += "(" + std::to_string(u);
  if (kind != MutationKind::kVertexUpsert) {
    s += ", " + std::to_string(v);
  } else if (value != 0) {
    s += ", " + std::to_string(value);
  }
  return s + ")";
}

DynamicGraph::DynamicGraph(const Graph& graph)
    : adjacency_(graph.num_vertices()) {
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    adjacency_[u].assign(graph.NeighborsBegin(u), graph.NeighborsEnd(u));
  }
  num_directed_edges_ = graph.num_directed_edges();
}

bool DynamicGraph::HasEdge(VertexId u, VertexId v) const {
  if (!HasVertex(u) || !HasVertex(v)) return false;
  const std::vector<VertexId>& nbrs = adjacency_[u];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

bool DynamicGraph::AddEdge(VertexId u, VertexId v) {
  SFDF_CHECK(HasVertex(u) && HasVertex(v))
      << "AddEdge(" << u << ", " << v << ") outside the vertex space";
  if (u == v || HasEdge(u, v)) return false;
  adjacency_[u].push_back(v);
  ++num_directed_edges_;
  return true;
}

bool DynamicGraph::RemoveEdge(VertexId u, VertexId v) {
  if (!HasVertex(u) || !HasVertex(v)) return false;
  std::vector<VertexId>& nbrs = adjacency_[u];
  auto it = std::find(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end()) return false;
  nbrs.erase(it);
  --num_directed_edges_;
  return true;
}

bool DynamicGraph::EnsureVertex(VertexId v) {
  SFDF_CHECK(v >= 0) << "negative vertex id " << v;
  if (v < num_vertices()) return false;
  adjacency_.resize(v + 1);
  return true;
}

bool DynamicGraph::Apply(const GraphMutation& mutation) {
  switch (mutation.kind) {
    case MutationKind::kEdgeInsert:
      EnsureVertex(std::max(mutation.u, mutation.v));
      return AddEdge(mutation.u, mutation.v);
    case MutationKind::kEdgeRemove:
      return RemoveEdge(mutation.u, mutation.v);
    case MutationKind::kVertexUpsert:
      return EnsureVertex(mutation.u);
  }
  return false;
}

Graph DynamicGraph::Freeze() const {
  std::vector<int64_t> offsets(num_vertices() + 1, 0);
  std::vector<VertexId> targets;
  targets.reserve(num_directed_edges_);
  for (VertexId u = 0; u < num_vertices(); ++u) {
    offsets[u] = static_cast<int64_t>(targets.size());
    targets.insert(targets.end(), adjacency_[u].begin(), adjacency_[u].end());
  }
  offsets[num_vertices()] = static_cast<int64_t>(targets.size());
  return Graph(num_vertices(), std::move(offsets), std::move(targets));
}

}  // namespace sfdf
