#include "graph/union_find.h"

#include <algorithm>
#include <unordered_set>

namespace sfdf {

std::vector<VertexId> ReferenceComponents(const Graph& graph) {
  UnionFind uf(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const VertexId* n = graph.NeighborsBegin(v); n != graph.NeighborsEnd(v);
         ++n) {
      uf.Union(v, *n);
    }
  }
  // Root -> minimum member id.
  std::vector<VertexId> min_of_root(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) min_of_root[v] = v;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    VertexId r = uf.Find(v);
    min_of_root[r] = std::min(min_of_root[r], v);
  }
  std::vector<VertexId> labels(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    labels[v] = min_of_root[uf.Find(v)];
  }
  return labels;
}

int64_t CountComponents(const std::vector<VertexId>& labels) {
  std::unordered_set<VertexId> distinct(labels.begin(), labels.end());
  return static_cast<int64_t>(distinct.size());
}

}  // namespace sfdf
