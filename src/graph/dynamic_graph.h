// Mutable adjacency for the continuous serving subsystem.
//
// The frozen CSR Graph is the right substrate for one-shot batch jobs; a
// serving session instead needs adjacency that absorbs streamed edge
// mutations between warm rounds. DynamicGraph keeps one neighbor vector per
// vertex. It is deliberately NOT internally synchronized: the serving layer
// mutates it only between rounds (on the admission thread, while the
// session has no wave task scheduled) and the executor's tasks read it
// only during rounds — the session's round boundary (the wave-complete
// hand-off and the engine submit releasing the next wave; see
// ExecutionSession::RunRound) provides the happens-before edges, so
// readers and writers never overlap.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/mutation.h"

namespace sfdf {

class DynamicGraph {
 public:
  /// Starts empty with `num_vertices` isolated vertices.
  explicit DynamicGraph(int64_t num_vertices) : adjacency_(num_vertices) {}

  /// Thaws a frozen CSR graph (copies the adjacency).
  explicit DynamicGraph(const Graph& graph);

  int64_t num_vertices() const {
    return static_cast<int64_t>(adjacency_.size());
  }
  int64_t num_directed_edges() const { return num_directed_edges_; }

  bool HasVertex(VertexId v) const { return v >= 0 && v < num_vertices(); }

  int64_t OutDegree(VertexId v) const {
    SFDF_DCHECK(HasVertex(v));
    return static_cast<int64_t>(adjacency_[v].size());
  }

  const std::vector<VertexId>& Neighbors(VertexId v) const {
    SFDF_DCHECK(HasVertex(v));
    return adjacency_[v];
  }

  bool HasEdge(VertexId u, VertexId v) const;

  /// Adds the directed edge u -> v. Returns false (no-op) if it already
  /// exists or is a self-loop. Both endpoints must exist (EnsureVertex).
  bool AddEdge(VertexId u, VertexId v);

  /// Removes the directed edge u -> v. Returns false if it was not present.
  bool RemoveEdge(VertexId u, VertexId v);

  /// Grows the vertex space so `v` exists. Returns true if it was new.
  bool EnsureVertex(VertexId v);

  /// Applies one mutation (edge arcs only; kVertexUpsert reduces to
  /// EnsureVertex). Returns true iff the adjacency changed.
  bool Apply(const GraphMutation& mutation);

  /// Freezes the current adjacency into a CSR Graph (cold recompute
  /// baselines, tests).
  Graph Freeze() const;

 private:
  std::vector<std::vector<VertexId>> adjacency_;
  int64_t num_directed_edges_ = 0;
};

}  // namespace sfdf
