// Flight recorder: always-on low-overhead tracing spans and instants.
//
// Every participating thread owns a bounded ring buffer of 32-byte events
// (a span = name + start timestamp + duration + one integer argument; an
// instant = the same minus the duration). Writers are wait-free and never
// synchronize with each other: each ring has exactly one writer (its owner
// thread) and publishes a monotonically increasing event count with release
// ordering. The exporter reads the rings from any thread and uses
// lap-detection (re-load the count after copying a slot; if the writer has
// since wrapped past the slot, discard it) so a hot writer can never hand
// the reader a torn event — at the price of the oldest events being
// overwritten once a ring laps.
//
// Cost model:
//   * tracing disabled (the default): every instrumentation site is one
//     relaxed atomic load and a predictable branch. No ring buffer memory
//     is allocated until a thread records its first event.
//   * tracing enabled: a steady-clock read plus four relaxed stores and one
//     release store per event. No locks, no allocation on the hot path.
//
// Enablement: SFDF_TRACE=1 in the environment, SetEnabled(true), or
// ExecutionOptions::trace (which force-enables process-wide). When
// SFDF_TRACE_OUT=<path> is set, the recorder installs an atexit hook that
// writes the Chrome trace-event JSON there; the file loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sfdf {
namespace trace {

namespace internal {
// Constant-initialized (no static-init-order hazard); flipped by the env
// reader in trace.cc during static init and by SetEnabled at runtime.
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// The hot-path gate: one relaxed load. Instrumentation sites check this
/// before touching the clock or the ring buffer.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime toggle. Enabling is sticky for the process (matches the flight-
/// recorder model: once on, the rings keep recording until toggled off).
void SetEnabled(bool enabled);

/// Interns `name` and returns its id. Call once per site and cache the
/// result in a `static const uint16_t`; ids are never recycled. The name
/// table is capped at 65535 entries; overflow maps to id 0 ("?").
uint16_t RegisterName(const char* name);

/// Nanoseconds since a process-wide steady-clock origin. Monotonic across
/// all threads (single origin, steady clock).
int64_t NowNs();

/// Records an instant event on the calling thread's ring. No-op when
/// tracing is disabled.
void Instant(uint16_t name_id, int64_t arg = 0);

/// Records a complete span [start_ns, NowNs()] on the calling thread's
/// ring. Use when the span's start was stashed manually (e.g. a wave whose
/// opening and closing happen in different callbacks); otherwise prefer the
/// RAII Span. No-op when tracing is disabled.
void EmitSpan(uint16_t name_id, int64_t start_ns, int64_t arg = 0);

/// RAII span: captures the start time at construction (when tracing is
/// enabled) and emits one complete event at destruction. Cheap to place in
/// hot code — one relaxed load when tracing is off.
class Span {
 public:
  explicit Span(uint16_t name_id, int64_t arg = 0)
      : name_id_(name_id), arg_(arg), start_ns_(Enabled() ? NowNs() : -1) {}
  ~Span() {
    if (start_ns_ >= 0) EmitSpan(name_id_, start_ns_, arg_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Updates the argument recorded at destruction (e.g. a result count
  /// that is only known at the end of the span).
  void set_arg(int64_t arg) { arg_ = arg; }

 private:
  const uint16_t name_id_;
  int64_t arg_;
  const int64_t start_ns_;
};

/// One decoded event, as handed to tests and the JSON exporter.
struct TraceEvent {
  std::string name;
  int64_t ts_ns = 0;
  int64_t dur_ns = -1;  // < 0 → instant, >= 0 → complete span
  uint32_t tid = 0;     // recorder-assigned monotonic thread id
  int64_t arg = 0;

  bool is_span() const { return dur_ns >= 0; }
};

/// Copies the current ring contents (all threads), oldest first per thread,
/// sorted by timestamp across threads. `max_events_per_thread` == 0 means
/// "everything still resident in the rings". Safe to call concurrently with
/// active writers: events the writers overwrite mid-copy are discarded, not
/// torn.
std::vector<TraceEvent> Snapshot(size_t max_events_per_thread = 0);

/// Renders the ring contents as Chrome trace-event JSON (the
/// {"traceEvents": [...]} envelope Perfetto and chrome://tracing load).
std::string ExportChromeTraceJson(size_t max_events_per_thread = 0);

/// Writes ExportChromeTraceJson() to `path`. Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path,
                      size_t max_events_per_thread = 0);

/// Zeroes every ring's event count. Only for tests, and only while no
/// thread is concurrently recording (writers assume they own their ring's
/// count).
void ResetForTesting();

}  // namespace trace
}  // namespace sfdf
