// Process-wide metrics registry: one named, labeled, queryable surface over
// the counters that previously lived scattered across `Metrics`,
// `ServiceStats`, engine `ClientStats` and the gateway's positional
// StatField array. Metrics are *callback-backed*: the owning subsystem
// keeps its cheap atomic counters and registers a reader; the registry
// never stores values, so registration costs nothing on any hot path.
//
// Exposition is Prometheus-style text, one sample per line:
//
//   # TYPE sfdf_service_rounds counter
//   sfdf_service_rounds{tenant="social"} 42
//   sfdf_service_round_latency_ms{tenant="social",quantile="0.99"} 1.375
//
// Histograms reuse LatencyHistogram: the callback returns a snapshot copy
// and the registry renders p50/p95/p99 plus a _count line.
//
// Lifetime: RegisterX returns an RAII Registration that unregisters on
// destruction. Value callbacks run under the registry mutex (so a
// Registration destructor blocks until any in-flight render finishes, and
// a rendered callback can never outlive its owner) — callbacks must not
// call back into the registry.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "runtime/metrics.h"

namespace sfdf {

/// Label set rendered inside the exposition braces, in insertion order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// RAII unregistration handle. Movable; the moved-from handle is inert.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept
        : registry_(other.registry_), id_(other.id_) {
      other.registry_ = nullptr;
    }
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        Release();
        registry_ = other.registry_;
        id_ = other.id_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    ~Registration() { Release(); }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    void Release();
    MetricsRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  /// Monotonically increasing value (renders with `# TYPE ... counter`).
  [[nodiscard]] Registration RegisterCounter(std::string name,
                                             MetricLabels labels,
                                             std::function<double()> value);

  /// Point-in-time value that can go up and down.
  [[nodiscard]] Registration RegisterGauge(std::string name,
                                           MetricLabels labels,
                                           std::function<double()> value);

  /// Latency distribution; `snapshot` returns a copy of the owner's
  /// histogram taken under the owner's own lock.
  [[nodiscard]] Registration RegisterHistogram(
      std::string name, MetricLabels labels,
      std::function<LatencyHistogram()> snapshot);

  /// Current value of the metric matching `name` + `labels` exactly
  /// (histograms answer with their p50). nullopt when absent.
  std::optional<double> Value(const std::string& name,
                              const MetricLabels& labels = {}) const;

  /// Full text exposition, sorted by metric name then label set, with one
  /// `# TYPE` comment per name.
  std::string RenderText() const;

  /// Number of live registrations (histograms count once).
  size_t size() const;

  /// The process-wide registry every subsystem registers into and the
  /// gateway's kTelemetry opcode exports.
  static MetricsRegistry& Default();

 private:
  struct Entry {
    uint64_t id = 0;
    Kind kind = Kind::kGauge;
    std::string name;
    MetricLabels labels;
    std::function<double()> value;                 // counter/gauge
    std::function<LatencyHistogram()> histogram;   // histogram
  };

  Registration Add(Entry entry);
  void Remove(uint64_t id);

  mutable std::mutex mutex_;
  uint64_t next_id_ = 1;
  std::vector<Entry> entries_;
};

}  // namespace sfdf
