#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

namespace sfdf {
namespace trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

// One ring per thread. Slots are quadruples of relaxed-atomic words; the
// owner thread is the only writer and publishes via the release store of
// `count`. 8192 events × 32 bytes = 256 KiB per recording thread,
// allocated lazily on the thread's first event.
struct ThreadBuffer {
  static constexpr uint64_t kCapacity = 8192;  // power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  std::atomic<uint64_t> count{0};  // events ever written by this thread
  std::array<std::atomic<uint64_t>, 4 * kCapacity> words{};
  uint32_t tid = 0;
};

// meta word layout: name_id in bits [0,16), kind in bits [16,24).
constexpr uint64_t kKindSpan = 0;
constexpr uint64_t kKindInstant = 1;

struct Recorder {
  std::mutex mutex;  // guards buffers (growth) and the name table
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::vector<std::string> names;
  std::unordered_map<std::string, uint16_t> name_ids;
};

// Intentionally leaked: exporter and atexit hooks may run during process
// teardown while detached threads still hold ring pointers.
Recorder& R() {
  static Recorder* recorder = [] {
    auto* r = new Recorder;
    r->names.push_back("?");  // id 0: name-table overflow sentinel
    return r;
  }();
  return *recorder;
}

thread_local ThreadBuffer* tls_buffer = nullptr;

ThreadBuffer* Buffer() {
  if (tls_buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    Recorder& r = R();
    std::lock_guard<std::mutex> lock(r.mutex);
    owned->tid = static_cast<uint32_t>(r.buffers.size() + 1);
    tls_buffer = owned.get();
    r.buffers.push_back(std::move(owned));
  }
  return tls_buffer;
}

void WriteEvent(int64_t ts_ns, int64_t dur_ns, uint64_t kind,
                uint16_t name_id, int64_t arg) {
  ThreadBuffer* b = Buffer();
  const uint64_t i = b->count.load(std::memory_order_relaxed);
  const uint64_t base = (i & (ThreadBuffer::kCapacity - 1)) * 4;
  b->words[base + 0].store(static_cast<uint64_t>(ts_ns),
                           std::memory_order_relaxed);
  b->words[base + 1].store(static_cast<uint64_t>(dur_ns),
                           std::memory_order_relaxed);
  b->words[base + 2].store(static_cast<uint64_t>(name_id) | (kind << 16),
                           std::memory_order_relaxed);
  b->words[base + 3].store(static_cast<uint64_t>(arg),
                           std::memory_order_relaxed);
  b->count.store(i + 1, std::memory_order_release);
}

std::string& TraceOutPath() {
  static std::string path;
  return path;
}

void AtExitDump() {
  const std::string& path = TraceOutPath();
  if (!path.empty()) WriteChromeTrace(path);
}

// Static-init env reader. Runs before main in any binary that links an
// instrumented translation unit; events emitted by earlier static
// initializers are silently dropped (the gate is still false), which is
// harmless.
const bool g_env_init = [] {
  const char* flag = std::getenv("SFDF_TRACE");
  if (flag != nullptr && flag[0] != '\0' && std::string_view(flag) != "0") {
    internal::g_enabled.store(true, std::memory_order_relaxed);
  }
  const char* out = std::getenv("SFDF_TRACE_OUT");
  if (out != nullptr && out[0] != '\0') {
    TraceOutPath() = out;
    std::atexit(&AtExitDump);
  }
  return true;
}();

void AppendJsonEscaped(const std::string& text, std::string* out) {
  for (char c : text) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // never in our names
    out->push_back(c);
  }
}

}  // namespace

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

uint16_t RegisterName(const char* name) {
  Recorder& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.name_ids.find(name);
  if (it != r.name_ids.end()) return it->second;
  if (r.names.size() > 0xFFFF) return 0;  // overflow → "?"
  const uint16_t id = static_cast<uint16_t>(r.names.size());
  r.names.emplace_back(name);
  r.name_ids.emplace(name, id);
  return id;
}

int64_t NowNs() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

void Instant(uint16_t name_id, int64_t arg) {
  if (!Enabled()) return;
  WriteEvent(NowNs(), -1, kKindInstant, name_id, arg);
}

void EmitSpan(uint16_t name_id, int64_t start_ns, int64_t arg) {
  if (!Enabled()) return;
  const int64_t now = NowNs();
  WriteEvent(start_ns, now >= start_ns ? now - start_ns : 0, kKindSpan,
             name_id, arg);
}

std::vector<TraceEvent> Snapshot(size_t max_events_per_thread) {
  std::vector<TraceEvent> events;
  Recorder& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& b : r.buffers) {
    const uint64_t end = b->count.load(std::memory_order_acquire);
    uint64_t begin = end > ThreadBuffer::kCapacity
                         ? end - ThreadBuffer::kCapacity
                         : 0;
    if (max_events_per_thread != 0 && end - begin > max_events_per_thread) {
      begin = end - max_events_per_thread;
    }
    for (uint64_t i = begin; i < end; ++i) {
      const uint64_t base = (i & (ThreadBuffer::kCapacity - 1)) * 4;
      const uint64_t ts = b->words[base + 0].load(std::memory_order_relaxed);
      const uint64_t dur = b->words[base + 1].load(std::memory_order_relaxed);
      const uint64_t meta = b->words[base + 2].load(std::memory_order_relaxed);
      const uint64_t arg = b->words[base + 3].load(std::memory_order_relaxed);
      // Lap detection: the owner writes event i + kCapacity into this slot
      // while its count is still i + kCapacity, so the copy above is only
      // trustworthy if the count has not reached that index yet.
      if (b->count.load(std::memory_order_acquire) >=
          i + ThreadBuffer::kCapacity) {
        continue;  // overwritten (or mid-overwrite) while copying — discard
      }
      TraceEvent event;
      const uint16_t name_id = static_cast<uint16_t>(meta & 0xFFFF);
      event.name = name_id < r.names.size() ? r.names[name_id] : "?";
      event.ts_ns = static_cast<int64_t>(ts);
      const uint64_t kind = (meta >> 16) & 0xFF;
      event.dur_ns =
          kind == kKindSpan ? static_cast<int64_t>(dur) : int64_t{-1};
      event.tid = b->tid;
      event.arg = static_cast<int64_t>(arg);
      events.push_back(std::move(event));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return events;
}

std::string ExportChromeTraceJson(size_t max_events_per_thread) {
  const std::vector<TraceEvent> events = Snapshot(max_events_per_thread);
  std::string out;
  out.reserve(64 + events.size() * 128);
  out += "{\"traceEvents\":[";
  char buffer[160];
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(event.name, &out);
    out += "\",\"cat\":\"sfdf\"";
    if (event.is_span()) {
      std::snprintf(buffer, sizeof(buffer),
                    ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f",
                    static_cast<double>(event.ts_ns) / 1000.0,
                    static_cast<double>(event.dur_ns) / 1000.0);
    } else {
      std::snprintf(buffer, sizeof(buffer),
                    ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f",
                    static_cast<double>(event.ts_ns) / 1000.0);
    }
    out += buffer;
    std::snprintf(buffer, sizeof(buffer),
                  ",\"pid\":1,\"tid\":%u,\"args\":{\"v\":%lld}}", event.tid,
                  static_cast<long long>(event.arg));
    out += buffer;
  }
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path,
                      size_t max_events_per_thread) {
  const std::string json = ExportChromeTraceJson(max_events_per_thread);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && written == json.size();
  return ok;
}

void ResetForTesting() {
  Recorder& r = R();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& b : r.buffers) {
    b->count.store(0, std::memory_order_release);
  }
}

}  // namespace trace
}  // namespace sfdf
