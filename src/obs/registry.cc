#include "obs/registry.h"

#include <algorithm>
#include <cstdio>

namespace sfdf {

namespace {

void AppendLabelEscaped(const std::string& value, std::string* out) {
  for (char c : value) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (c == '\n') {
      *out += "\\n";
      continue;
    }
    out->push_back(c);
  }
}

// Renders {k="v",...}; an extra label (e.g. quantile) is appended last.
std::string RenderLabels(const MetricLabels& labels,
                         const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& key, const std::string& value) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    AppendLabelEscaped(value, &out);
    out += '"';
  };
  for (const auto& [key, value] : labels) append(key, value);
  if (extra != nullptr) append(extra->first, extra->second);
  out += '}';
  return out;
}

std::string RenderValue(double value) {
  char buffer[64];
  // %.17g round-trips doubles but litters integers with noise; %g at 12
  // significant digits keeps counters exact (they are < 2^40 in practice)
  // and latencies readable.
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

const char* KindName(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter:
      return "counter";
    case MetricsRegistry::Kind::kGauge:
      return "gauge";
    case MetricsRegistry::Kind::kHistogram:
      return "histogram";
  }
  return "gauge";
}

}  // namespace

void MetricsRegistry::Registration::Release() {
  if (registry_ != nullptr) {
    registry_->Remove(id_);
    registry_ = nullptr;
  }
}

MetricsRegistry::Registration MetricsRegistry::RegisterCounter(
    std::string name, MetricLabels labels, std::function<double()> value) {
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.name = std::move(name);
  entry.labels = std::move(labels);
  entry.value = std::move(value);
  return Add(std::move(entry));
}

MetricsRegistry::Registration MetricsRegistry::RegisterGauge(
    std::string name, MetricLabels labels, std::function<double()> value) {
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.name = std::move(name);
  entry.labels = std::move(labels);
  entry.value = std::move(value);
  return Add(std::move(entry));
}

MetricsRegistry::Registration MetricsRegistry::RegisterHistogram(
    std::string name, MetricLabels labels,
    std::function<LatencyHistogram()> snapshot) {
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.name = std::move(name);
  entry.labels = std::move(labels);
  entry.histogram = std::move(snapshot);
  return Add(std::move(entry));
}

MetricsRegistry::Registration MetricsRegistry::Add(Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entry.id = next_id_++;
  const uint64_t id = entry.id;
  entries_.push_back(std::move(entry));
  return Registration(this, id);
}

void MetricsRegistry::Remove(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

std::optional<double> MetricsRegistry::Value(const std::string& name,
                                             const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.name != name || entry.labels != labels) continue;
    if (entry.kind == Kind::kHistogram) {
      return entry.histogram().Quantile(0.5);
    }
    return entry.value();
  }
  return std::nullopt;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Stable exposition: sort an index by (name, rendered labels) so repeated
  // scrapes diff cleanly regardless of registration order.
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& entry : entries_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) {
              if (a->name != b->name) return a->name < b->name;
              return RenderLabels(a->labels, nullptr) <
                     RenderLabels(b->labels, nullptr);
            });
  std::string out;
  const std::string* last_name = nullptr;
  for (const Entry* entry : sorted) {
    if (last_name == nullptr || *last_name != entry->name) {
      out += "# TYPE ";
      out += entry->name;
      out += ' ';
      out += KindName(entry->kind);
      out += '\n';
      last_name = &entry->name;
    }
    if (entry->kind == Kind::kHistogram) {
      const LatencyHistogram histogram = entry->histogram();
      static constexpr struct {
        double q;
        const char* label;
      } kQuantiles[] = {{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}};
      for (const auto& [q, label] : kQuantiles) {
        const std::pair<std::string, std::string> extra{"quantile", label};
        out += entry->name;
        out += RenderLabels(entry->labels, &extra);
        out += ' ';
        out += RenderValue(histogram.Quantile(q));
        out += '\n';
      }
      out += entry->name;
      out += "_count";
      out += RenderLabels(entry->labels, nullptr);
      out += ' ';
      out += RenderValue(static_cast<double>(histogram.count()));
      out += '\n';
    } else {
      out += entry->name;
      out += RenderLabels(entry->labels, nullptr);
      out += ' ';
      out += RenderValue(entry->value());
      out += '\n';
    }
  }
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked: subsystems may unregister from static destructors after main.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace sfdf
