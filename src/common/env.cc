#include "common/env.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace sfdf {

namespace {

double g_scale = -1.0;
int g_dop = -1;
std::once_flag g_scale_once;
std::once_flag g_dop_once;

}  // namespace

double ScaleFactor() {
  std::call_once(g_scale_once, [] {
    if (g_scale > 0) return;  // test override already applied
    const char* env = std::getenv("SFDF_SCALE");
    g_scale = 1.0;
    if (env != nullptr) {
      double v = std::atof(env);
      if (v > 0) g_scale = v;
    }
  });
  return g_scale;
}

int DefaultParallelism() {
  std::call_once(g_dop_once, [] {
    if (g_dop > 0) return;
    const char* env = std::getenv("SFDF_THREADS");
    if (env != nullptr) {
      int v = std::atoi(env);
      if (v > 0) {
        g_dop = v;
        return;
      }
    }
    g_dop = std::max(2u, std::thread::hardware_concurrency());
  });
  return g_dop;
}

int DefaultEngineWorkers() {
  static const int workers = [] {
    const char* env = std::getenv("SFDF_ENGINE_WORKERS");
    if (env != nullptr) {
      int v = std::atoi(env);
      if (v > 0) return v;
    }
    return DefaultParallelism();
  }();
  return workers;
}

void SetScaleFactorForTesting(double scale) { g_scale = scale; }
void SetDefaultParallelismForTesting(int dop) { g_dop = dop; }

int64_t Scaled(int64_t base, int64_t min_value) {
  return std::max<int64_t>(min_value,
                           static_cast<int64_t>(base * ScaleFactor()));
}

}  // namespace sfdf
