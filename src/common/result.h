// Result<T>: value-or-Status, the return type of fallible producers.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace sfdf {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {     // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace sfdf

/// Assign the value of a Result expression or propagate its error.
#define SFDF_ASSIGN_OR_RETURN(lhs, expr)          \
  auto _res_##__LINE__ = (expr);                  \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).value()
