// Process-wide experiment configuration read from environment variables.
//
//   SFDF_SCALE    — scale factor for synthetic datasets (default 1.0; the
//                   Table 2 configs are sized so scale 1.0 runs on a laptop).
//   SFDF_THREADS  — degree of parallelism ("nodes"): solution-set /
//                   exchange partitions per plan.
//   SFDF_ENGINE_WORKERS — OS worker threads in the process-wide default
//                   Engine pool (defaults to SFDF_THREADS' value).
//   SFDF_LOG      — log level (see logging.h).
#pragma once

#include <cstdint>

namespace sfdf {

/// Scale factor applied to all synthetic dataset sizes. Cached after the
/// first call.
double ScaleFactor();

/// Default degree of parallelism: SFDF_THREADS if set, otherwise
/// hardware_concurrency (at least 2).
int DefaultParallelism();

/// Worker-thread count of the process-wide default Engine pool:
/// SFDF_ENGINE_WORKERS if set, otherwise DefaultParallelism(). Read once,
/// when Engine::Default() first constructs the pool.
int DefaultEngineWorkers();

/// Overrides for tests (not thread-safe against concurrent readers; call at
/// startup only).
void SetScaleFactorForTesting(double scale);
void SetDefaultParallelismForTesting(int dop);

/// Scales a count by the global scale factor, keeping at least `min_value`.
int64_t Scaled(int64_t base, int64_t min_value = 1);

}  // namespace sfdf
