// Status: lightweight error propagation for hot paths (RocksDB/Arrow idiom).
// Functions that can fail return Status (or Result<T>, see result.h) instead
// of throwing; exceptions are reserved for programming errors via SFDF_CHECK.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace sfdf {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfMemory = 4,        ///< a memory budget was exceeded (baseline OOM path)
  kNotConverged = 5,       ///< iteration hit its cap before reaching the fixpoint
  kUnsupported = 6,        ///< e.g. a plan that violates microstep conditions
  kInternal = 7,
  kIoError = 8,
  kResourceExhausted = 9,  ///< a capacity bound was hit; retry later (e.g.
                           ///< the serving admission queue is full)
  kPermissionDenied = 10,  ///< the caller failed authentication/authorization
                           ///< (e.g. a gateway tenant-token mismatch)
};

/// Return value for fallible operations. Cheap to copy in the OK case
/// (no allocation); carries a message otherwise.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Name of a StatusCode ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

}  // namespace sfdf

/// Propagate a non-OK Status to the caller.
#define SFDF_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::sfdf::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)
