#include "common/status.h"

namespace sfdf {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfMemory: return "OutOfMemory";
    case StatusCode::kNotConverged: return "NotConverged";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kPermissionDenied: return "PermissionDenied";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sfdf
