// Deterministic pseudo-random generation. Every workload generator in this
// repository takes an explicit seed so experiments are exactly repeatable.
#pragma once

#include <cstdint>

namespace sfdf {

/// SplitMix64: used to derive independent streams from one seed.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

/// Mixes a 64-bit value; used for record-field hashing everywhere so hash
/// partitioning is stable across the codebase.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines two hashes (boost::hash_combine flavor, 64-bit).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (HashMix64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace sfdf
