// Wall-clock timing helpers used by the benchmark harness and the
// per-superstep instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace sfdf {

/// Monotonic stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in microseconds since construction or last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sfdf
