#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <mutex>

namespace sfdf {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_output_mutex;

void InitFromEnv() {
  const char* env = std::getenv("SFDF_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_level = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) g_level = LogLevel::kInfo;
  else if (std::strcmp(env, "warn") == 0) g_level = LogLevel::kWarn;
  else if (std::strcmp(env, "error") == 0) g_level = LogLevel::kError;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return g_level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::ostream& out = level_ >= LogLevel::kWarn ? std::cerr : std::clog;
  out << stream_.str() << "\n";
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[FATAL " << (base ? base + 1 : file) << ":" << line
          << "] Check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_output_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace sfdf
