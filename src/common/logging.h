// Minimal leveled logging + CHECK macros.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace sfdf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kWarn so
/// tests and benches stay quiet; set SFDF_LOG=debug|info|warn|error to change.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Fatal variant: aborts the process in its destructor.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sfdf

#define SFDF_LOG(level)                                                  \
  if (static_cast<int>(::sfdf::LogLevel::k##level) <                    \
      static_cast<int>(::sfdf::GetLogLevel())) {                        \
  } else                                                                 \
    ::sfdf::internal::LogMessage(::sfdf::LogLevel::k##level, __FILE__,  \
                                 __LINE__)                               \
        .stream()

/// Invariant check, active in all build types. Streams extra context:
///   SFDF_CHECK(x > 0) << "x was " << x;
#define SFDF_CHECK(condition)                                            \
  if (condition) {                                                       \
  } else                                                                 \
    ::sfdf::internal::FatalLogMessage(__FILE__, __LINE__, #condition)    \
        .stream()

#define SFDF_DCHECK(condition) SFDF_CHECK(condition)
