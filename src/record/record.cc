#include "record/record.h"

#include <sstream>

namespace sfdf {

std::string Record::ToString() const {
  std::ostringstream out;
  out << "(";
  for (int i = 0; i < arity_; ++i) {
    if (i > 0) out << ", ";
    switch (types_[i]) {
      case FieldType::kInt:
        out << GetInt(i);
        break;
      case FieldType::kDouble:
        out << GetDouble(i);
        break;
      case FieldType::kUnset:
        out << "?";
        break;
    }
  }
  out << ")";
  return out.str();
}

}  // namespace sfdf
