// Binary serialization of records, used by the spillable cache (Section 4.3:
// in-memory caches are "gradually spilled in the presence of memory
// pressure") and available for checkpointing iteration state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "record/batch.h"
#include "record/record.h"

namespace sfdf {

/// Appends the wire image of `rec` to `out`. Layout: arity byte, one type
/// byte per field, then the 64-bit little-endian field images.
void SerializeRecord(const Record& rec, std::vector<uint8_t>* out);

/// Reads one record from `data` starting at `*offset`; advances `*offset`.
Status DeserializeRecord(const std::vector<uint8_t>& data, size_t* offset,
                         Record* out);

/// Serializes a whole batch with a leading record count.
void SerializeBatch(const RecordBatch& batch, std::vector<uint8_t>* out);

/// Deserializes a batch written by SerializeBatch.
Status DeserializeBatch(const std::vector<uint8_t>& data, size_t* offset,
                        RecordBatch* out);

/// Writes `bytes` to `path`, replacing existing content.
Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes);

/// Reads all of `path` into `out`.
Status ReadFile(const std::string& path, std::vector<uint8_t>* out);

}  // namespace sfdf
