#include "record/serde.h"

#include <cstdio>
#include <cstring>

namespace sfdf {

namespace {

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU64(const std::vector<uint8_t>& data, size_t* offset, uint64_t* v) {
  if (*offset + 8 > data.size()) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(data[*offset + i]) << (8 * i);
  }
  *offset += 8;
  *v = r;
  return true;
}

}  // namespace

void SerializeRecord(const Record& rec, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(rec.arity()));
  for (int i = 0; i < rec.arity(); ++i) {
    out->push_back(static_cast<uint8_t>(rec.type(i)));
  }
  for (int i = 0; i < rec.arity(); ++i) {
    PutU64(rec.RawField(i), out);
  }
}

Status DeserializeRecord(const std::vector<uint8_t>& data, size_t* offset,
                         Record* out) {
  if (*offset >= data.size()) {
    return Status::IoError("truncated record: missing arity");
  }
  int arity = data[(*offset)++];
  if (arity > Record::kMaxFields) {
    return Status::IoError("corrupt record: arity too large");
  }
  if (*offset + static_cast<size_t>(arity) > data.size()) {
    return Status::IoError("truncated record: missing types");
  }
  Record rec;
  std::vector<FieldType> types(arity);
  for (int i = 0; i < arity; ++i) {
    types[i] = static_cast<FieldType>(data[(*offset)++]);
  }
  for (int i = 0; i < arity; ++i) {
    uint64_t raw;
    if (!GetU64(data, offset, &raw)) {
      return Status::IoError("truncated record: missing field");
    }
    switch (types[i]) {
      case FieldType::kInt: {
        int64_t v;
        std::memcpy(&v, &raw, sizeof(v));
        rec.AppendInt(v);
        break;
      }
      case FieldType::kDouble: {
        double v;
        std::memcpy(&v, &raw, sizeof(v));
        rec.AppendDouble(v);
        break;
      }
      case FieldType::kUnset:
        return Status::IoError("corrupt record: unset field type");
    }
  }
  *out = rec;
  return Status::OK();
}

void SerializeBatch(const RecordBatch& batch, std::vector<uint8_t>* out) {
  PutU64(batch.size(), out);
  for (const Record& rec : batch) {
    SerializeRecord(rec, out);
  }
}

Status DeserializeBatch(const std::vector<uint8_t>& data, size_t* offset,
                        RecordBatch* out) {
  uint64_t count;
  if (!GetU64(data, offset, &count)) {
    return Status::IoError("truncated batch header");
  }
  out->Clear();
  out->Reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Record rec;
    SFDF_RETURN_NOT_OK(DeserializeRecord(data, offset, &rec));
    out->Add(rec);
  }
  return Status::OK();
}

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  size_t written = bytes.empty()
                       ? 0
                       : std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

Status ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  size_t read = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::IoError("short read: " + path);
  }
  return Status::OK();
}

}  // namespace sfdf
