// Record comparators.
//
// RecordOrder establishes an order over whole records for the delta-union
// conflict resolution of Section 5.1: when two delta records carry the same
// key, the *larger* record under the order (the CPO-successor) survives.
#pragma once

#include <functional>

#include "record/key.h"
#include "record/record.h"

namespace sfdf {

/// Three-way comparison over records: negative if a < b, 0 if equal,
/// positive if a > b. "Larger wins" in delta-union conflict resolution.
using RecordOrder = std::function<int(const Record& a, const Record& b)>;

/// Order by an int64 field ascending: a record with the larger field value
/// is "larger".
inline RecordOrder OrderByIntFieldAsc(int field) {
  return [field](const Record& a, const Record& b) {
    int64_t va = a.GetInt(field);
    int64_t vb = b.GetInt(field);
    return va < vb ? -1 : (va > vb ? 1 : 0);
  };
}

/// Order by an int64 field descending: the record with the *smaller* field
/// value is "larger" (i.e. wins). This is the comparator for Connected
/// Components, where progress in the CPO means a lower component ID.
inline RecordOrder OrderByIntFieldDesc(int field) {
  return [field](const Record& a, const Record& b) {
    int64_t va = a.GetInt(field);
    int64_t vb = b.GetInt(field);
    return va > vb ? -1 : (va < vb ? 1 : 0);
  };
}

/// Order by a double field descending (smaller value wins); for shortest
/// paths where progress means a smaller distance.
inline RecordOrder OrderByDoubleFieldDesc(int field) {
  return [field](const Record& a, const Record& b) {
    double va = a.GetDouble(field);
    double vb = b.GetDouble(field);
    return va > vb ? -1 : (va < vb ? 1 : 0);
  };
}

}  // namespace sfdf
