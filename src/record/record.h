// The record model. A Record is a flat, trivially-copyable tuple of up to
// four 64-bit fields (int64 or double). Operating on such "serialized"
// records — rather than per-field heap objects — is the representation the
// paper credits for Stratosphere's low per-record overhead compared to
// Spark's boxed messages (Section 6.1).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/rng.h"

namespace sfdf {

/// Runtime type tag of a record field.
enum class FieldType : uint8_t {
  kUnset = 0,
  kInt = 1,     ///< int64_t
  kDouble = 2,  ///< double
};

/// A flat tuple of up to kMaxFields 64-bit fields. Trivially copyable, so a
/// RecordBatch is a contiguous, directly-shippable buffer.
class Record {
 public:
  static constexpr int kMaxFields = 4;

  Record() : types_{}, arity_(0) { slots_.fill(0); }

  /// Convenience constructors for the common arities.
  static Record OfInts(int64_t a) {
    Record r;
    r.AppendInt(a);
    return r;
  }
  static Record OfInts(int64_t a, int64_t b) {
    Record r;
    r.AppendInt(a);
    r.AppendInt(b);
    return r;
  }
  static Record OfInts(int64_t a, int64_t b, int64_t c) {
    Record r;
    r.AppendInt(a);
    r.AppendInt(b);
    r.AppendInt(c);
    return r;
  }
  static Record OfIntDouble(int64_t a, double b) {
    Record r;
    r.AppendInt(a);
    r.AppendDouble(b);
    return r;
  }
  static Record OfIntIntDouble(int64_t a, int64_t b, double c) {
    Record r;
    r.AppendInt(a);
    r.AppendInt(b);
    r.AppendDouble(c);
    return r;
  }

  int arity() const { return arity_; }
  FieldType type(int i) const {
    SFDF_DCHECK(i >= 0 && i < arity_);
    return types_[i];
  }

  int64_t GetInt(int i) const {
    SFDF_DCHECK(i >= 0 && i < arity_ && types_[i] == FieldType::kInt);
    int64_t v;
    std::memcpy(&v, &slots_[i], sizeof(v));
    return v;
  }

  double GetDouble(int i) const {
    SFDF_DCHECK(i >= 0 && i < arity_ && types_[i] == FieldType::kDouble);
    double v;
    std::memcpy(&v, &slots_[i], sizeof(v));
    return v;
  }

  /// Raw 64-bit image of a field; basis for hashing and key equality.
  uint64_t RawField(int i) const {
    SFDF_DCHECK(i >= 0 && i < arity_);
    return slots_[i];
  }

  void SetInt(int i, int64_t v) {
    SFDF_DCHECK(i >= 0 && i < arity_);
    std::memcpy(&slots_[i], &v, sizeof(v));
    types_[i] = FieldType::kInt;
  }

  void SetDouble(int i, double v) {
    SFDF_DCHECK(i >= 0 && i < arity_);
    std::memcpy(&slots_[i], &v, sizeof(v));
    types_[i] = FieldType::kDouble;
  }

  void AppendInt(int64_t v) {
    SFDF_CHECK(arity_ < kMaxFields) << "record arity overflow";
    ++arity_;
    SetInt(arity_ - 1, v);
  }

  void AppendDouble(double v) {
    SFDF_CHECK(arity_ < kMaxFields) << "record arity overflow";
    ++arity_;
    SetDouble(arity_ - 1, v);
  }

  /// Exact equality over arity, types and raw field images.
  bool operator==(const Record& other) const {
    if (arity_ != other.arity_) return false;
    for (int i = 0; i < arity_; ++i) {
      if (types_[i] != other.types_[i] || slots_[i] != other.slots_[i]) {
        return false;
      }
    }
    return true;
  }

  /// Debug representation, e.g. "(7, 3.25)".
  std::string ToString() const;

 private:
  std::array<uint64_t, kMaxFields> slots_;
  std::array<FieldType, kMaxFields> types_;
  uint8_t arity_;
};

static_assert(std::is_trivially_copyable_v<Record>,
              "Record must stay trivially copyable (serialized form)");

}  // namespace sfdf
