// Key descriptors: which fields of a record form its key. Used for hash
// partitioning, joins, grouping, and the solution-set index (the key k(s)
// that identifies records of the partial solution, Section 5.1).
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "record/record.h"

namespace sfdf {

/// An ordered list of field indices forming a key. Value type, cheap to copy.
class KeySpec {
 public:
  static constexpr int kMaxKeyFields = Record::kMaxFields;

  KeySpec() : count_(0) { fields_.fill(0); }
  KeySpec(std::initializer_list<int> fields) : count_(0) {
    fields_.fill(0);
    for (int f : fields) {
      SFDF_CHECK(count_ < kMaxKeyFields) << "too many key fields";
      SFDF_CHECK(f >= 0 && f < Record::kMaxFields) << "key field out of range";
      fields_[count_++] = static_cast<uint8_t>(f);
    }
  }

  int num_fields() const { return count_; }
  bool empty() const { return count_ == 0; }
  int field(int i) const {
    SFDF_DCHECK(i >= 0 && i < count_);
    return fields_[i];
  }

  bool operator==(const KeySpec& other) const {
    if (count_ != other.count_) return false;
    for (int i = 0; i < count_; ++i) {
      if (fields_[i] != other.fields_[i]) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  std::array<uint8_t, kMaxKeyFields> fields_;
  uint8_t count_;
};

/// Hash of the key fields of `rec` under `key`. Stable across the process;
/// the same function drives hash partitioning and hash tables, so a
/// hash-partitioned stream probes local-only tables.
inline uint64_t HashKey(const Record& rec, const KeySpec& key) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (int i = 0; i < key.num_fields(); ++i) {
    h = HashCombine(h, rec.RawField(key.field(i)));
  }
  return h;
}

/// True iff `a`'s key fields (under `ka`) equal `b`'s key fields (under
/// `kb`). The two key specs must have the same field count.
inline bool KeyEquals(const Record& a, const KeySpec& ka, const Record& b,
                      const KeySpec& kb) {
  SFDF_DCHECK(ka.num_fields() == kb.num_fields());
  for (int i = 0; i < ka.num_fields(); ++i) {
    if (a.RawField(ka.field(i)) != b.RawField(kb.field(i))) return false;
  }
  return true;
}

/// Three-way comparison of key fields, by raw unsigned 64-bit image. Used by
/// sort-based drivers. Returns <0, 0, >0.
inline int CompareKeys(const Record& a, const KeySpec& ka, const Record& b,
                       const KeySpec& kb) {
  SFDF_DCHECK(ka.num_fields() == kb.num_fields());
  for (int i = 0; i < ka.num_fields(); ++i) {
    uint64_t va = a.RawField(ka.field(i));
    uint64_t vb = b.RawField(kb.field(i));
    if (va < vb) return -1;
    if (va > vb) return 1;
  }
  return 0;
}

/// Partition assignment used by every hash-exchange in the runtime: Lemire
/// fast-range, mapping the full 64-bit hash onto [0, num_partitions) with a
/// multiply + shift instead of the hardware divide that `%` costs on the
/// hot shipping path. The mapping consumes the hash's high bits (scaled
/// uniformly), so records with equal key values still agree on a partition
/// regardless of field position — the property hash-partitioned streams
/// probing partition-local hash tables rely on.
inline int PartitionOf(const Record& rec, const KeySpec& key,
                       int num_partitions) {
  const uint64_t h = HashKey(rec, key);
  const uint64_t n = static_cast<uint64_t>(num_partitions);
#ifdef __SIZEOF_INT128__
  return static_cast<int>(
      static_cast<uint64_t>((static_cast<unsigned __int128>(h) * n) >> 64));
#else
  // No 128-bit multiply: emulate the high 64 bits of h * n via 32-bit limbs
  // so the assignment is identical on every platform.
  const uint64_t h_lo = h & 0xffffffffULL;
  const uint64_t h_hi = h >> 32;
  const uint64_t n_lo = n & 0xffffffffULL;
  const uint64_t n_hi = n >> 32;
  const uint64_t mid = h_hi * n_lo + ((h_lo * n_lo) >> 32);
  const uint64_t mid2 = h_lo * n_hi + (mid & 0xffffffffULL);
  return static_cast<int>(h_hi * n_hi + (mid >> 32) + (mid2 >> 32));
#endif
}

/// One entry of a field-preservation contract: input field `from` is copied
/// unchanged to output field `to` (OutputContracts, paper footnote 3).
struct FieldMapping {
  int from = -1;
  int to = -1;
};

/// Remaps a key over input fields to the corresponding output fields.
/// Returns false if any key field is not preserved by the mapping.
bool RemapKey(const KeySpec& key, const std::vector<FieldMapping>& mapping,
              KeySpec* out);

/// Inverse remap: a key over *output* fields expressed over the input
/// fields, if every key field is produced by the mapping.
bool RemapKeyToInput(const KeySpec& key,
                     const std::vector<FieldMapping>& mapping, KeySpec* out);

}  // namespace sfdf
