#include "record/key.h"

#include <sstream>

namespace sfdf {

std::string KeySpec::ToString() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < count_; ++i) {
    if (i > 0) out << ",";
    out << static_cast<int>(fields_[i]);
  }
  out << "]";
  return out.str();
}

namespace {

KeySpec KeyFromFields(const std::vector<int>& fields) {
  switch (fields.size()) {
    case 0:
      return KeySpec{};
    case 1:
      return KeySpec{fields[0]};
    case 2:
      return KeySpec{fields[0], fields[1]};
    case 3:
      return KeySpec{fields[0], fields[1], fields[2]};
    default:
      return KeySpec{fields[0], fields[1], fields[2], fields[3]};
  }
}

}  // namespace

bool RemapKey(const KeySpec& key, const std::vector<FieldMapping>& mapping,
              KeySpec* out) {
  std::vector<int> fields;
  for (int i = 0; i < key.num_fields(); ++i) {
    int from = key.field(i);
    bool found = false;
    for (const FieldMapping& m : mapping) {
      if (m.from == from) {
        fields.push_back(m.to);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  *out = KeyFromFields(fields);
  return true;
}

bool RemapKeyToInput(const KeySpec& key,
                     const std::vector<FieldMapping>& mapping, KeySpec* out) {
  std::vector<FieldMapping> inverse;
  inverse.reserve(mapping.size());
  for (const FieldMapping& m : mapping) {
    inverse.push_back(FieldMapping{m.to, m.from});
  }
  return RemapKey(key, inverse, out);
}

}  // namespace sfdf
