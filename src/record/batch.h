// RecordBatch: the unit of data moved through channels. Contiguous storage
// of trivially-copyable Records, so shipping a batch is a memcpy-like move
// and the per-record channel overhead is amortized.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "record/record.h"

namespace sfdf {

/// A contiguous run of records. Movable; moving transfers the buffer.
class RecordBatch {
 public:
  /// Default capacity target used by routers when cutting batches.
  static constexpr size_t kDefaultBatchSize = 1024;

  RecordBatch() = default;
  explicit RecordBatch(std::vector<Record> records)
      : records_(std::move(records)) {}

  void Add(const Record& rec) { records_.push_back(rec); }
  void Reserve(size_t n) { records_.reserve(n); }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const Record& operator[](size_t i) const { return records_[i]; }
  Record& operator[](size_t i) { return records_[i]; }

  auto begin() const { return records_.begin(); }
  auto end() const { return records_.end(); }
  auto begin() { return records_.begin(); }
  auto end() { return records_.end(); }

  void Clear() { records_.clear(); }

  /// Bytes occupied by the payload; used for shipped-bytes metrics.
  size_t ByteSize() const { return records_.size() * sizeof(Record); }

  std::vector<Record>& records() { return records_; }
  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

}  // namespace sfdf
