#include "runtime/btree.h"

#include <algorithm>

#include "common/logging.h"

namespace sfdf {

struct BPlusTree::Node {
  bool leaf = true;
  std::vector<CompositeKey> keys;    // sorted
  std::vector<Record> records;       // leaf payload, parallel to keys
  std::vector<Node*> children;       // inner: keys.size() + 1 children
  Node* next = nullptr;              // leaf chain
};

/// Result of inserting into a subtree: if the child split, `right` is the
/// new sibling and `separator` the smallest key of `right`.
struct BPlusTree::SplitResult {
  Node* right = nullptr;
  CompositeKey separator;
};

BPlusTree::BPlusTree(KeySpec key) : key_(key) { root_ = new Node(); }

BPlusTree::~BPlusTree() { FreeTree(root_); }

void BPlusTree::FreeTree(Node* node) {
  if (node == nullptr) return;
  if (!node->leaf) {
    for (Node* child : node->children) FreeTree(child);
  }
  delete node;
}

const Record* BPlusTree::Lookup(const Record& probe,
                                const KeySpec& probe_key) const {
  CompositeKey key = CompositeKey::From(probe, probe_key);
  const Node* node = root_;
  while (!node->leaf) {
    size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                                CompositeKeyLess) -
               node->keys.begin();
    node = node->children[i];
  }
  size_t i = std::lower_bound(node->keys.begin(), node->keys.end(), key,
                              CompositeKeyLess) -
             node->keys.begin();
  if (i < node->keys.size() && node->keys[i] == key) {
    return &node->records[i];
  }
  return nullptr;
}

BPlusTree::SplitResult BPlusTree::InsertInto(
    Node* node, const CompositeKey& key, const Record& rec,
    const std::function<bool(const Record&, const Record&)>& resolve,
    bool* changed) {
  if (node->leaf) {
    size_t i = std::lower_bound(node->keys.begin(), node->keys.end(), key,
                                CompositeKeyLess) -
               node->keys.begin();
    if (i < node->keys.size() && node->keys[i] == key) {
      if (resolve(node->records[i], rec)) {
        node->records[i] = rec;
        *changed = true;
      }
      return SplitResult{};
    }
    node->keys.insert(node->keys.begin() + i, key);
    node->records.insert(node->records.begin() + i, rec);
    ++size_;
    *changed = true;
    if (static_cast<int>(node->keys.size()) <= kMaxKeys) return SplitResult{};
    // Split the leaf in half; the right half starts the new sibling.
    auto* right = new Node();
    right->leaf = true;
    size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->records.assign(node->records.begin() + mid, node->records.end());
    node->keys.resize(mid);
    node->records.resize(mid);
    right->next = node->next;
    node->next = right;
    return SplitResult{right, right->keys.front()};
  }

  size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                              CompositeKeyLess) -
             node->keys.begin();
  SplitResult child_split =
      InsertInto(node->children[i], key, rec, resolve, changed);
  if (child_split.right == nullptr) return SplitResult{};
  node->keys.insert(node->keys.begin() + i, child_split.separator);
  node->children.insert(node->children.begin() + i + 1, child_split.right);
  if (static_cast<int>(node->keys.size()) <= kMaxKeys) return SplitResult{};
  // Split the inner node: middle key moves up.
  auto* right = new Node();
  right->leaf = false;
  size_t mid = node->keys.size() / 2;
  CompositeKey separator = node->keys[mid];
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  right->children.assign(node->children.begin() + mid + 1,
                         node->children.end());
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return SplitResult{right, separator};
}

bool BPlusTree::Upsert(
    const Record& rec,
    const std::function<bool(const Record&, const Record&)>& resolve) {
  CompositeKey key = CompositeKey::From(rec, key_);
  bool changed = false;
  SplitResult split = InsertInto(root_, key, rec, resolve, &changed);
  if (split.right != nullptr) {
    auto* new_root = new Node();
    new_root->leaf = false;
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(root_);
    new_root->children.push_back(split.right);
    root_ = new_root;
    ++height_;
  }
  return changed;
}

void BPlusTree::ForEach(const std::function<void(const Record&)>& fn) const {
  const Node* node = root_;
  while (!node->leaf) node = node->children.front();
  while (node != nullptr) {
    for (const Record& rec : node->records) fn(rec);
    node = node->next;
  }
}

bool BPlusTree::CheckInvariants() const {
  // Walk the leaf chain: keys must be globally sorted and match size_.
  const Node* node = root_;
  while (!node->leaf) {
    if (node->children.size() != node->keys.size() + 1) return false;
    node = node->children.front();
  }
  int64_t count = 0;
  const CompositeKey* prev = nullptr;
  while (node != nullptr) {
    for (const CompositeKey& key : node->keys) {
      if (prev != nullptr && !CompositeKeyLess(*prev, key)) return false;
      prev = &key;
      ++count;
    }
    node = node->next;
  }
  return count == size_;
}

}  // namespace sfdf
