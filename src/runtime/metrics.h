// Execution metrics. Exchange routers count every record that enters an
// exchange; records that cross partition boundaries count additionally as
// "remote" — the stand-in for the paper's network messages (Figures 10/12
// plot "messages sent"). The exchange-health counters (queue-depth
// high-water mark, batch-pool hits/misses) are aggregated from every
// exchange's per-lane stats when a run or session is assembled.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace sfdf {

/// Lock-free max-fold: raises `target` to at least `value`. The CAS loop
/// terminates because a failed exchange reloads `seen`, and the loop exits
/// as soon as `seen >= value` (some other thread folded an equal or larger
/// value). Relaxed ordering — high-water marks are advisory counters, not
/// synchronization points.
inline void FoldMax(std::atomic<int64_t>& target, int64_t value) {
  int64_t seen = target.load(std::memory_order_relaxed);
  while (value > seen &&
         !target.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Compact log-scale latency histogram: four linear sub-buckets per
/// power-of-two octave of microseconds (HDR-histogram style), so quantile
/// estimates carry at most ~12% relative error while the whole state is a
/// few hundred bytes — safe to keep per resident service for its entire
/// lifetime (a sample vector would grow without bound). Not thread-safe;
/// callers serialize (the serving layer records under its state lock).
class LatencyHistogram {
 public:
  void Record(double millis) {
    int64_t us = static_cast<int64_t>(millis * 1000.0);
    if (us < 0) us = 0;
    int idx = BucketOf(us);
    if (idx >= kBuckets) idx = kBuckets - 1;
    buckets_[idx] += 1;
    ++count_;
  }

  int64_t count() const { return count_; }

  /// Quantile estimate in milliseconds, q in [0, 1]; 0 when empty. Returns
  /// the midpoint of the bucket holding the q-th sample.
  double Quantile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    int64_t rank = static_cast<int64_t>(q * static_cast<double>(count_ - 1));
    int64_t seen = 0;
    for (int idx = 0; idx < kBuckets; ++idx) {
      seen += buckets_[idx];
      if (seen > rank) return BucketMidUs(idx) / 1000.0;
    }
    return BucketMidUs(kBuckets - 1) / 1000.0;
  }

 private:
  static constexpr int kSub = 4;       // linear sub-buckets per octave
  static constexpr int kOctaves = 40;  // covers > 12 days in microseconds
  static constexpr int kBuckets = kSub * kOctaves;

  static int BucketOf(int64_t us) {
    if (us < kSub) return static_cast<int>(us);  // exact for tiny values
    int octave = std::bit_width(static_cast<uint64_t>(us)) - 1;
    int sub = static_cast<int>((us >> (octave - 2)) & (kSub - 1));
    return octave * kSub + sub;
  }

  static double BucketMidUs(int idx) {
    if (idx < kSub) return static_cast<double>(idx);
    const int octave = idx / kSub;
    const int sub = idx % kSub;
    const double lo = static_cast<double>(int64_t{1} << octave) +
                      static_cast<double>(sub) *
                          static_cast<double>(int64_t{1} << (octave - 2));
    const double width = static_cast<double>(int64_t{1} << (octave - 2));
    return lo + width / 2.0;
  }

  int64_t buckets_[kBuckets] = {};
  int64_t count_ = 0;
};

class Metrics {
 public:
  void CountShipped(int64_t records, int64_t bytes, int64_t remote_records) {
    records_shipped_.fetch_add(records, std::memory_order_relaxed);
    bytes_shipped_.fetch_add(bytes, std::memory_order_relaxed);
    records_remote_.fetch_add(remote_records, std::memory_order_relaxed);
  }

  void CountCombined(int64_t records_absorbed) {
    records_combined_.fetch_add(records_absorbed, std::memory_order_relaxed);
  }

  /// Folds one exchange's queue-depth high-water mark (envelopes) into the
  /// run-wide maximum.
  void RecordQueueDepth(int64_t high_water) {
    FoldMax(queue_depth_high_water_, high_water);
  }

  /// Accumulates batch-pool acquisition outcomes (recycled vs fresh).
  void CountBatchPool(int64_t hits, int64_t misses) {
    batch_pool_hits_.fetch_add(hits, std::memory_order_relaxed);
    batch_pool_misses_.fetch_add(misses, std::memory_order_relaxed);
  }

  /// Pipelined-region flow control: an output-port flush transitioning
  /// from flowing to stalled (bounded lane at capacity) counts one stall;
  /// a producer task re-enqueueing itself because its outputs stayed
  /// stalled counts one yield. Retry attempts within one stall don't
  /// re-count — the pair measures how often backpressure engaged and how
  /// much producer time it displaced.
  void CountBackpressureStall(int64_t stalls) {
    backpressure_stalls_.fetch_add(stalls, std::memory_order_relaxed);
  }
  void CountProducerYield(int64_t yields) {
    producer_yields_.fetch_add(yields, std::memory_order_relaxed);
  }

  /// Accumulates one exchange's peak resident ring segments (an upper
  /// bound — per-lane high-water marks need not have coincided).
  void AddPeakResidentSegments(int64_t segments) {
    peak_resident_segments_.fetch_add(segments, std::memory_order_relaxed);
  }

  int64_t records_shipped() const {
    return records_shipped_.load(std::memory_order_relaxed);
  }
  int64_t records_remote() const {
    return records_remote_.load(std::memory_order_relaxed);
  }
  int64_t bytes_shipped() const {
    return bytes_shipped_.load(std::memory_order_relaxed);
  }
  int64_t records_combined() const {
    return records_combined_.load(std::memory_order_relaxed);
  }
  int64_t queue_depth_high_water() const {
    return queue_depth_high_water_.load(std::memory_order_relaxed);
  }
  int64_t batch_pool_hits() const {
    return batch_pool_hits_.load(std::memory_order_relaxed);
  }
  int64_t batch_pool_misses() const {
    return batch_pool_misses_.load(std::memory_order_relaxed);
  }
  int64_t backpressure_stalls() const {
    return backpressure_stalls_.load(std::memory_order_relaxed);
  }
  int64_t producer_yields() const {
    return producer_yields_.load(std::memory_order_relaxed);
  }
  int64_t peak_resident_segments() const {
    return peak_resident_segments_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> records_shipped_{0};
  std::atomic<int64_t> records_remote_{0};
  std::atomic<int64_t> bytes_shipped_{0};
  std::atomic<int64_t> records_combined_{0};
  std::atomic<int64_t> queue_depth_high_water_{0};
  std::atomic<int64_t> batch_pool_hits_{0};
  std::atomic<int64_t> batch_pool_misses_{0};
  std::atomic<int64_t> backpressure_stalls_{0};
  std::atomic<int64_t> producer_yields_{0};
  std::atomic<int64_t> peak_resident_segments_{0};
};

/// Per-superstep measurements of one iteration (Figures 2, 8, 10, 11, 12).
struct SuperstepStats {
  int superstep = 0;
  double millis = 0;
  int64_t workset_size = 0;      ///< records entering the superstep
  int64_t next_workset_size = 0; ///< records produced for the next superstep
  int64_t delta_applied = 0;     ///< solution records inserted/replaced
  int64_t delta_discarded = 0;   ///< delta records dropped by the comparator
  int64_t solution_lookups = 0;  ///< S index probes ("vertices inspected")
  int64_t records_shipped = 0;   ///< channel records during the superstep
  int64_t term_records = 0;      ///< records reaching the T criterion sink
};

}  // namespace sfdf
