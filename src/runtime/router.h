// OutputPort: routes a task instance's emissions to the consumer's
// partitioned channels according to the edge's ship strategy, with optional
// chained pre-aggregation (combiner) before shipping — the Combiner
// optimization the paper notes for PageRank (Section 6.1).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "dataflow/udf.h"
#include "optimizer/strategies.h"
#include "record/key.h"
#include "runtime/channel.h"
#include "runtime/hash_table.h"
#include "runtime/metrics.h"

namespace sfdf {

class OutputPort {
 public:
  /// `targets[p]` is the channel into the consumer's partition p.
  /// `my_partition` is the producing instance's partition (for kForward and
  /// for remote-record accounting).
  OutputPort(std::vector<Channel*> targets, ShipStrategy ship,
             KeySpec ship_key, int my_partition, Metrics* metrics,
             bool in_loop, CombineFn combiner = nullptr,
             KeySpec combine_key = KeySpec());

  /// Routes one record (buffered; flushed in batches).
  void Send(const Record& rec);

  /// Flushes buffers and sends the marker to every target partition.
  void SendMarker(MarkerKind kind);

  /// Flushes data buffers without a marker.
  void Flush();

  /// True if this edge stays within the iteration body (receives
  /// end-of-superstep markers).
  bool in_loop() const { return in_loop_; }

  int64_t records_sent() const { return records_sent_; }

 private:
  void SendTo(int partition, const Record& rec);
  void FlushPartition(int partition);
  void FlushCombiner();

  std::vector<Channel*> targets_;
  ShipStrategy ship_;
  KeySpec ship_key_;
  int my_partition_;
  Metrics* metrics_;
  bool in_loop_;

  std::vector<RecordBatch> buffers_;  // one per target partition

  // Combiner state: per target partition, merged records by key.
  CombineFn combiner_;
  KeySpec combine_key_;
  std::vector<std::unordered_map<CompositeKey, Record, CompositeKeyHash>>
      combine_buffers_;

  int64_t records_sent_ = 0;
};

/// Collector adapter fanning one emission out to several output ports.
class PortsCollector : public Collector {
 public:
  explicit PortsCollector(std::vector<OutputPort*> ports)
      : ports_(std::move(ports)) {}

  void Emit(const Record& rec) override {
    for (OutputPort* port : ports_) port->Send(rec);
  }

 private:
  std::vector<OutputPort*> ports_;
};

}  // namespace sfdf
