// OutputPort: routes a task instance's emissions to the consumer's
// partitioned exchanges according to the edge's ship strategy, with optional
// chained pre-aggregation (combiner) before shipping — the Combiner
// optimization the paper notes for PageRank (Section 6.1). The port writes
// exclusively to lane `my_partition` of every target exchange (the SPSC
// contract of the v2 data plane) and cuts its batch buffers from the
// target lane's recycle pool.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dataflow/udf.h"
#include "optimizer/strategies.h"
#include "record/key.h"
#include "runtime/exchange.h"
#include "runtime/hash_table.h"
#include "runtime/metrics.h"

namespace sfdf {

class OutputPort {
 public:
  /// `targets[p]` is the exchange into the consumer's partition p.
  /// `my_partition` is the producing instance's partition: the kForward
  /// target, the remote-record accounting base, and the lane this port owns
  /// in every target exchange.
  OutputPort(std::vector<Exchange*> targets, ShipStrategy ship,
             KeySpec ship_key, int my_partition, Metrics* metrics,
             bool in_loop, CombineFn combiner = nullptr,
             KeySpec combine_key = KeySpec());

  /// Routes one record (buffered; flushed in batches).
  void Send(const Record& rec);

  /// Flushes buffers and sends the marker to every target partition.
  /// On a bounded (pipelined) edge a target whose stalled data could not
  /// be delivered gets its marker *deferred* — data must precede the
  /// marker in the lane — and it is delivered by a later TryDrainStalled.
  void SendMarker(MarkerKind kind);

  /// Flushes data buffers without a marker. On bounded edges a flush that
  /// hits backpressure keeps the batch buffered (the partition is
  /// "stalled") for TryDrainStalled to retry; unbounded targets never
  /// stall, so non-pipelined callers see unchanged behavior.
  void Flush();

  /// True while any target partition holds stalled data or a deferred
  /// marker — the producing task should yield and retry via
  /// TryDrainStalled instead of emitting more.
  bool has_stalled() const { return stalled_count_ > 0; }

  /// Retries every stalled partition (data first, then any deferred
  /// marker). Returns true when nothing is left stalled.
  bool TryDrainStalled();

  /// True if this edge stays within the iteration body (receives
  /// end-of-superstep markers).
  bool in_loop() const { return in_loop_; }

  /// Barrier-free execution hooks, bracketing every DATA publish of this
  /// port: `before(target, records)` runs before the envelope becomes
  /// visible in the target exchange (quiescence credits must be taken and
  /// the target's vote revoked first), `after(target)` runs once it is
  /// (a parked target may need a wake). Marker publishes are not
  /// bracketed — markers carry no records and take no credits.
  void set_async_hooks(std::function<void(int, int64_t)> before,
                       std::function<void(int)> after) {
    before_publish_ = std::move(before);
    after_publish_ = std::move(after);
  }

  int64_t records_sent() const { return records_sent_; }

 private:
  void SendTo(int partition, const Record& rec);
  bool FlushPartition(int partition);
  void FlushCombiner();
  void DeliverDeferredMarker(int partition);

  std::vector<Exchange*> targets_;
  ShipStrategy ship_;
  KeySpec ship_key_;
  int my_partition_;
  Metrics* metrics_;
  bool in_loop_;

  /// One pending batch per target partition, cut from the target lane's
  /// buffer pool on first use after each flush.
  std::vector<RecordBatch> buffers_;

  /// Backpressure state per target partition (bounded edges only).
  /// stalled_[p]: the last flush was refused, the batch is still in
  /// buffers_[p]. pending_marker_[p]: a marker waiting behind that data.
  /// stalled_count_ tracks partitions with either condition, so
  /// has_stalled() is O(1) on the hot path.
  std::vector<uint8_t> stalled_;
  std::vector<uint8_t> has_pending_marker_;
  std::vector<MarkerKind> pending_marker_;
  int stalled_count_ = 0;

  // Combiner state: per target partition, merged records by key.
  CombineFn combiner_;
  KeySpec combine_key_;
  std::vector<std::unordered_map<CompositeKey, Record, CompositeKeyHash>>
      combine_buffers_;

  // Barrier-free publish hooks (null in superstep mode).
  std::function<void(int, int64_t)> before_publish_;
  std::function<void(int)> after_publish_;

  int64_t records_sent_ = 0;
};

/// Collector adapter fanning one emission out to several output ports.
class PortsCollector : public Collector {
 public:
  explicit PortsCollector(std::vector<OutputPort*> ports)
      : ports_(std::move(ports)) {}

  void Emit(const Record& rec) override {
    for (OutputPort* port : ports_) port->Send(rec);
  }

 private:
  std::vector<OutputPort*> ports_;
};

}  // namespace sfdf
