// Sort-based grouping helpers used by the Reduce / CoGroup / sort-merge
// drivers.
#pragma once

#include <algorithm>
#include <vector>

#include "record/key.h"
#include "record/record.h"

namespace sfdf {

/// Sorts records in place by the raw images of their key fields.
inline void SortByKey(std::vector<Record>* records, const KeySpec& key) {
  std::sort(records->begin(), records->end(),
            [&key](const Record& a, const Record& b) {
              return CompareKeys(a, key, b, key) < 0;
            });
}

/// Calls `fn(group)` for every run of equal-key records in the *sorted*
/// input. `group` is a vector reused across calls.
template <typename Fn>
void ForEachGroup(const std::vector<Record>& sorted, const KeySpec& key,
                  Fn&& fn) {
  std::vector<Record> group;
  size_t i = 0;
  while (i < sorted.size()) {
    group.clear();
    size_t j = i;
    while (j < sorted.size() &&
           CompareKeys(sorted[i], key, sorted[j], key) == 0) {
      group.push_back(sorted[j]);
      ++j;
    }
    fn(group);
    i = j;
  }
}

/// Merge-joins two *sorted* inputs group-by-group. Calls
/// `fn(left_group, right_group)`; either group may be empty when the key is
/// one-sided (the caller decides whether to skip those — inner semantics).
template <typename Fn>
void MergeJoinGroups(const std::vector<Record>& left, const KeySpec& left_key,
                     const std::vector<Record>& right,
                     const KeySpec& right_key, Fn&& fn) {
  std::vector<Record> lgroup;
  std::vector<Record> rgroup;
  size_t i = 0;
  size_t j = 0;
  while (i < left.size() || j < right.size()) {
    lgroup.clear();
    rgroup.clear();
    int cmp;
    if (i >= left.size()) {
      cmp = 1;  // only right remains
    } else if (j >= right.size()) {
      cmp = -1;  // only left remains
    } else {
      cmp = CompareKeys(left[i], left_key, right[j], right_key);
    }
    if (cmp <= 0) {
      size_t i2 = i;
      while (i2 < left.size() &&
             CompareKeys(left[i], left_key, left[i2], left_key) == 0) {
        lgroup.push_back(left[i2]);
        ++i2;
      }
      i = i2;
    }
    if (cmp >= 0) {
      size_t j2 = j;
      while (j2 < right.size() &&
             CompareKeys(right[j], right_key, right[j2], right_key) == 0) {
        rgroup.push_back(right[j2]);
        ++j2;
      }
      j = j2;
    }
    fn(lgroup, rgroup);
  }
}

}  // namespace sfdf
