#include "runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "core/solution_set.h"
#include "core/termination.h"
#include "dataflow/udf.h"
#include "obs/trace.h"
#include "runtime/engine.h"
#include "runtime/exchange.h"
#include "runtime/hash_table.h"
#include "runtime/router.h"
#include "runtime/sorter.h"
#include "runtime/spill_buffer.h"
#include "runtime/superstep.h"

namespace sfdf {

int64_t IterationReport::TotalWorkset() const {
  int64_t total = 0;
  for (const SuperstepStats& s : supersteps) total += s.workset_size;
  return total;
}

int64_t IterationReport::TotalApplied() const {
  int64_t total = 0;
  for (const SuperstepStats& s : supersteps) total += s.delta_applied;
  return total;
}

// Named (not anonymous) so SessionState — an externally visible type
// declared in executor.h — can hold these internals without tripping GCC's
// -Wsubobject-linkage. Only this translation unit defines the namespace.
namespace executor_detail {

/// True if the task participates in an iteration's superstep loop.
bool IsLoopTask(const PhysicalTask& task) {
  return (task.bulk_iteration >= 0 || task.workset_iteration >= 0) &&
         task.on_dynamic_path;
}

bool SameLoop(const PhysicalTask& a, const PhysicalTask& b) {
  return (a.bulk_iteration >= 0 && a.bulk_iteration == b.bulk_iteration) ||
         (a.workset_iteration >= 0 &&
          a.workset_iteration == b.workset_iteration);
}

/// Record-at-a-time operators that can run as streaming pipelined units:
/// they emit as they read and never need a complete input before producing.
/// Everything else (Reduce/Match/Cross/CoGroup) is a *pipeline breaker* —
/// it materializes an input (sort, hash build) or must read one port to
/// end-of-stream before another, which under bounded lanes would deadlock
/// diamond topologies (see the exchange.h contract comment).
bool IsStreamingKind(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kSource:
    case OperatorKind::kSink:
    case OperatorKind::kMap:
    case OperatorKind::kFilter:
    case OperatorKind::kUnion:
      return true;
    default:
      return false;
  }
}

/// True if `task` runs as a cooperative pipelined unit under region_mode
/// kPipelined. Loop tasks always keep their superstep/async scheduling.
bool IsPipelinedTask(const PhysicalTask& task) {
  return !IsLoopTask(task) && IsStreamingKind(task.kind);
}

// ---------------------------------------------------------------------------
// Per-iteration runtime state
// ---------------------------------------------------------------------------

struct BulkRuntime {
  std::unique_ptr<SuperstepCoordinator> coordinator;
  /// Feedback buffers: tail instance p writes the next partial solution,
  /// head instance p picks it up after the arrival gate flips the phase.
  std::vector<std::vector<Record>> feedback;
  bool has_term = false;
  int max_iterations = 0;
  IterationReport report;
  // Stats capture (only touched in the gate's completion step).
  Stopwatch watch;
  Metrics* metrics = nullptr;
  int64_t shipped_mark = 0;
  bool record_stats = true;
};

struct MicroQueue {
  std::mutex mutex;
  std::deque<Record> queue;
};

struct WorksetRuntime {
  std::unique_ptr<SuperstepCoordinator> coordinator;
  int parallelism = 0;
  KeySpec route_key;
  KeySpec solution_key;
  bool immediate_apply = false;
  bool microstep = false;
  int max_iterations = 0;

  /// Superstep at which the current round started. The head consumes its
  /// external W_0 port exactly at a round's first superstep (re-seeded by
  /// the session controller for warm rounds), and the iteration cap counts
  /// supersteps relative to this mark. Written only by the controller while
  /// no wave task is scheduled (the engine submit path publishes it).
  /// 64-bit: the absolute counter never resets across a session's rounds.
  int64_t round_start_superstep = 0;

  /// Superstep mode: double-buffered workset queues (Section 5.3). `front`
  /// is drained by head p during the superstep; tails append to `back`
  /// under the per-partition mutex; the gate's completion step swaps them.
  std::vector<std::vector<Record>> front;
  std::vector<std::vector<Record>> back;
  std::vector<std::unique_ptr<std::mutex>> back_mutex;

  /// One solution-set index partition per worker.
  std::vector<std::unique_ptr<SolutionSetIndex>> index;

  /// Microstep mode: FIFO queues + quiescence detection.
  std::vector<std::unique_ptr<MicroQueue>> queues;
  std::unique_ptr<QuiescenceDetector> detector;
  std::atomic<int64_t> micro_processed{0};

  /// Barrier-free mode (sync_mode != kSuperstep): the double-buffered
  /// front/back queues are replaced by per-partition feedback exchanges —
  /// async_feedback[p] is drained by head instance p, with one lane per
  /// producing tail instance — so a tail's routed records become visible
  /// (and creditable) the moment they are pushed, not at a phase flip.
  bool barrier_free = false;
  std::vector<std::unique_ptr<Exchange>> async_feedback;
  struct AsyncPart {
    /// Records this partition popped from in-loop lanes during the local
    /// round that is currently executing; their quiescence credits are
    /// returned in one batch at the end of the round, after the round's
    /// own children were published (exact-credit rule). Only touched by
    /// the partition's own round task.
    int64_t popped_this_round = 0;
    /// The head still owes a read of its external W_0 port (set by the
    /// controller at round seed time, cleared by the head's first local
    /// round of the service round).
    bool w0_pending = true;
  };
  std::vector<std::unique_ptr<AsyncPart>> async_parts;
  /// Executed-local-rounds snapshot per partition at the current service
  /// round's start; the per-round iteration cap counts against it.
  /// Controller-written under round quiescence.
  std::vector<int64_t> async_round_base;
  /// Wakes partition p's round task (installed by the scheduler once the
  /// async node's park slots exist; only called from inside round tasks).
  std::function<void(int)> async_wake;

  IterationReport report;
  Stopwatch watch;
  Metrics* metrics = nullptr;
  int64_t shipped_mark = 0;
  int64_t lookups_mark = 0;
  int64_t applied_mark = 0;
  int64_t discarded_mark = 0;
  bool record_stats = true;

  void SumIndexStats(int64_t* lookups, int64_t* applied,
                     int64_t* discarded) const {
    *lookups = *applied = *discarded = 0;
    for (const auto& idx : index) {
      *lookups += idx->stats().lookups;
      *applied += idx->stats().applied;
      *discarded += idx->stats().discarded;
    }
  }
};

// ---------------------------------------------------------------------------
// Execution context shared by all task instances
// ---------------------------------------------------------------------------

struct ExecContext {
  const PhysicalPlan* plan = nullptr;
  int parallelism = 0;
  bool record_stats = true;
  int64_t cache_spill_budget = INT64_MAX;
  int checkpoint_superstep = -1;
  std::string checkpoint_path;
  /// Barrier discipline of this run's workset iterations (validated before
  /// setup: != kSuperstep implies every workset iteration qualifies).
  SyncMode sync_mode = SyncMode::kSuperstep;
  int staleness_bound = 0;  ///< local rounds ahead allowed; 0 = unbounded
  /// Scheduling of non-loop regions (validated by ValidateRegionMode):
  /// kPipelined runs streaming tasks as cooperative polling units over
  /// bounded exchange lanes; kMaterialize keeps one-shot region barriers.
  RegionMode region_mode = RegionMode::kMaterialize;
  Metrics metrics;

  /// channels[task][port][partition]: the consumer-side exchanges. Each
  /// holds one SPSC lane per producer partition.
  std::vector<std::vector<std::vector<std::unique_ptr<Exchange>>>> channels;
  /// consumer edges per producer task: (consumer task, consumer port).
  std::vector<std::vector<std::pair<int, int>>> consumer_edges;

  std::vector<std::unique_ptr<BulkRuntime>> bulk;
  std::vector<std::unique_ptr<WorksetRuntime>> workset;

  /// sink_slots[task][partition]: per-partition sink collections, merged
  /// deterministically after the plan drained.
  std::vector<std::vector<std::vector<Record>>> sink_slots;

  /// Per-skeleton source replacement (session Reconfigure): a Source task
  /// listed here emits this data instead of its plan-owned `source_data` —
  /// how a rebuilt skeleton re-enters the warm solution set and leftover
  /// workset through the plan's own entry tasks without mutating the
  /// (shared, immutable) plan.
  std::map<int, std::vector<Record>> source_override;

  const PhysicalTask& task(int id) const { return plan->tasks[id]; }
};

// ---------------------------------------------------------------------------
// TaskInstance: one partition of one physical task
// ---------------------------------------------------------------------------

/// A loop task's resumable program (runtime v3). The executor schedules
/// `body` once per superstep wave — it processes exactly one superstep,
/// sends this instance's end-of-superstep markers and returns to the pool
/// (run-to-superstep-boundary). All cross-superstep state — §4.3
/// constant-path caches, hash tables, spill buffers — lives in the
/// program's closure, which is what makes warm session rounds warm.
/// `final_flush` runs once after the iteration terminated, emitting the
/// task's final result downstream and closing its output lanes.
struct LoopProgram {
  std::function<void(int64_t)> body;
  std::function<void()> final_flush;
};

/// The non-blocking contract (engine.h): every `body` and every RunOnce is
/// only enqueued after the producers of the phase it reads have finished —
/// one-shot producers after their stream completed, in-loop producers after
/// their superstep body ran earlier in the same wave (stage order). Every
/// ReadPhase therefore finds a fully delimited phase and never parks.
class TaskInstance {
 public:
  TaskInstance(ExecContext* ctx, const PhysicalTask* task, int partition)
      : ctx_(ctx), task_(task), partition_(partition) {
    BuildOutputs();
  }

  /// Non-loop tasks: the whole life of the instance, one engine task.
  void RunOnce();

  /// Loop tasks: the resumable per-superstep program.
  LoopProgram MakeLoopProgram();

  int partition() const { return partition_; }

  /// Barrier-free scheduling probe: does any in-loop input currently hold
  /// an envelope? (Instantaneous; the quiescence credits, not this probe,
  /// prove global emptiness.)
  bool AnyLoopInputReadable() {
    for (size_t port = 0; port < task_->inputs.size(); ++port) {
      const int p = static_cast<int>(port);
      if (PortInLoop(p) && Input(p)->HasQueued()) return true;
    }
    return false;
  }

  /// Brackets every in-loop data publish of this instance with the
  /// barrier-free credit/vote/wake protocol (see OutputPort::
  /// set_async_hooks). Called once by the scheduler after the async node's
  /// park slots exist.
  void InstallAsyncHooks() {
    WorksetRuntime* rt = &WsRt();
    const int self = partition_;
    for (OutputPort* port : out_ptrs_) {
      if (!port->in_loop()) continue;
      port->set_async_hooks(
          [rt](int target, int64_t records) {
            rt->coordinator->CreditEnqueued(records);
            rt->coordinator->RevokeQuiescentVote(target);
          },
          [rt, self](int target) {
            if (target != self) rt->async_wake(target);
          });
    }
  }

 private:
  // --- wiring helpers -----------------------------------------------------
  void BuildOutputs() {
    for (const auto& [consumer_id, port] : ctx_->consumer_edges[task_->id]) {
      const PhysicalTask& consumer = ctx_->task(consumer_id);
      const PhysicalInput& edge = consumer.inputs[port];
      std::vector<Exchange*> targets;
      targets.reserve(ctx_->parallelism);
      for (int p = 0; p < ctx_->parallelism; ++p) {
        targets.push_back(ctx_->channels[consumer_id][port][p].get());
      }
      bool in_loop = IsLoopTask(consumer) && SameLoop(*task_, consumer);
      outputs_.push_back(std::make_unique<OutputPort>(
          std::move(targets), edge.ship, edge.ship_key, partition_,
          &ctx_->metrics, in_loop, edge.combiner, edge.combine_key));
      out_ptrs_.push_back(outputs_.back().get());
    }
  }

  Exchange* Input(int port) {
    return ctx_->channels[task_->id][port][partition_].get();
  }

  /// True if input `port` carries loop data (re-read every superstep).
  bool PortInLoop(int port) const {
    const PhysicalInput& edge = task_->inputs[port];
    if (edge.producer < 0) return false;
    const PhysicalTask& producer = ctx_->task(edge.producer);
    return IsLoopTask(producer) && SameLoop(producer, *task_);
  }

  /// True if this instance's loop executes barrier-free: its in-loop ports
  /// are drained non-blockingly (partial phases) and no phase markers are
  /// sent. External ports keep the marker protocol either way.
  bool AsyncMode() const {
    return task_->workset_iteration >= 0 &&
           ctx_->sync_mode != SyncMode::kSuperstep;
  }

  void SendSuperstepMarkers() {
    const bool async = AsyncMode();
    for (OutputPort* port : out_ptrs_) {
      if (!port->in_loop()) continue;
      // Barrier-free: there is no phase to delimit — just make the
      // buffered records visible (the port's async hooks credit them).
      if (async) {
        port->Flush();
      } else {
        port->SendMarker(MarkerKind::kEndSuperstep);
      }
    }
  }

  void SendEndStream() {
    for (OutputPort* port : out_ptrs_) {
      port->SendMarker(MarkerKind::kEndStream);
    }
  }

  /// Reads `port` for the current phase: loop ports until END_SUPERSTEP,
  /// external ports until END_STREAM. Barrier-free loops instead drain
  /// whatever the in-loop lanes currently hold (no blocking, no marker
  /// accounting) and count the popped records against the partition's
  /// quiescence credits at the end of its local round.
  template <typename Fn>
  void ReadPort(int port, Fn&& fn) {
    if (PortInLoop(port) && AsyncMode()) {
      WsRt().async_parts[partition_]->popped_this_round +=
          Input(port)->DrainOpen([&](const RecordBatch& batch) {
            for (const Record& rec : batch) fn(rec);
          });
      return;
    }
    MarkerKind until = PortInLoop(port) ? MarkerKind::kEndSuperstep
                                        : MarkerKind::kEndStream;
    Input(port)->ReadPhase(until, [&](const RecordBatch& batch) {
      for (const Record& rec : batch) fn(rec);
    });
  }

  /// Reads a port into a vector.
  void CollectPort(int port, std::vector<Record>* out) {
    ReadPort(port, [out](const Record& rec) { out->push_back(rec); });
  }

  // --- one-shot drivers (non-loop tasks) ----------------------------------
  void RunSource();
  void RunSink();
  void RunSimple();  // Map / Filter / Union
  void RunReduce();
  void RunMatchHash();
  void RunMatchSortMerge();
  void RunCross();
  void RunCoGroup();

  // --- loop program makers -------------------------------------------------
  LoopProgram MakeSimpleLoop();  // Map / Filter / Union inside a loop
  LoopProgram MakeReduceLoop();
  LoopProgram MakeMatchHashLoop();
  LoopProgram MakeMatchSortMergeLoop();
  LoopProgram MakeCrossLoop();
  LoopProgram MakeCoGroupLoop();
  LoopProgram MakeBulkHead();
  LoopProgram MakeBulkTail();
  LoopProgram MakeTermSink();
  LoopProgram MakeWorksetHead();
  LoopProgram MakeWorksetTail();
  LoopProgram MakeDeltaApply();
  LoopProgram MakeSolutionJoin();

  WorksetRuntime& WsRt() { return *ctx_->workset[task_->workset_iteration]; }
  BulkRuntime& BulkRt() { return *ctx_->bulk[task_->bulk_iteration]; }

  ExecContext* ctx_;
  const PhysicalTask* task_;
  int partition_;
  std::vector<std::unique_ptr<OutputPort>> outputs_;
  std::vector<OutputPort*> out_ptrs_;
};

void TaskInstance::RunSource() {
  PortsCollector collector(out_ptrs_);
  const auto override_it = ctx_->source_override.find(task_->id);
  const std::vector<Record>& data = override_it != ctx_->source_override.end()
                                        ? override_it->second
                                        : *task_->source_data;
  for (size_t i = partition_; i < data.size();
       i += static_cast<size_t>(ctx_->parallelism)) {
    collector.Emit(data[i]);
  }
  SendEndStream();
}

void TaskInstance::RunSink() {
  std::vector<Record>& slot = ctx_->sink_slots[task_->id][partition_];
  CollectPort(0, &slot);
}

void TaskInstance::RunSimple() {
  PortsCollector collector(out_ptrs_);
  switch (task_->kind) {
    case OperatorKind::kMap:
      ReadPort(0, [&](const Record& rec) { task_->map_udf(rec, &collector); });
      break;
    case OperatorKind::kFilter:
      ReadPort(0, [&](const Record& rec) {
        if (task_->filter_udf(rec)) collector.Emit(rec);
      });
      break;
    case OperatorKind::kUnion:
      ReadPort(0, [&](const Record& rec) { collector.Emit(rec); });
      ReadPort(1, [&](const Record& rec) { collector.Emit(rec); });
      break;
    default:
      SFDF_CHECK(false) << "RunSimple on " << OperatorKindName(task_->kind);
  }
  SendEndStream();
}

LoopProgram TaskInstance::MakeSimpleLoop() {
  struct State {
    PortsCollector collector;
    // Constant ports are read once and replayed every superstep (§4.3).
    std::vector<std::vector<Record>> cache;
    explicit State(std::vector<OutputPort*> ports)
        : collector(std::move(ports)) {}
  };
  auto st = std::make_shared<State>(out_ptrs_);
  st->cache.resize(task_->inputs.size());
  LoopProgram prog;
  prog.body = [this, st](int64_t superstep) {
    auto process_record = [&](const Record& rec) {
      switch (task_->kind) {
        case OperatorKind::kMap:
          task_->map_udf(rec, &st->collector);
          break;
        case OperatorKind::kFilter:
          if (task_->filter_udf(rec)) st->collector.Emit(rec);
          break;
        case OperatorKind::kUnion:
          st->collector.Emit(rec);
          break;
        default:
          SFDF_CHECK(false);
      }
    };
    for (size_t port = 0; port < task_->inputs.size(); ++port) {
      if (PortInLoop(static_cast<int>(port))) {
        ReadPort(static_cast<int>(port), process_record);
      } else if (superstep == 0) {
        CollectPort(static_cast<int>(port), &st->cache[port]);
        for (const Record& rec : st->cache[port]) process_record(rec);
      } else {
        for (const Record& rec : st->cache[port]) process_record(rec);
      }
    }
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

void TaskInstance::RunReduce() {
  PortsCollector collector(out_ptrs_);
  std::vector<Record> records;
  CollectPort(0, &records);
  // `input_presorted`: the optimizer proved the input arrives sorted on
  // the grouping key (single forward producer emitting in key order).
  if (!task_->input_presorted) SortByKey(&records, task_->key_left);
  ForEachGroup(records, task_->key_left,
               [&](const std::vector<Record>& group) {
                 task_->reduce_udf(group, &collector);
               });
  SendEndStream();
}

LoopProgram TaskInstance::MakeReduceLoop() {
  struct State {
    PortsCollector collector;
    std::vector<Record> cache;  // constant input (rare; recomputed per step)
    explicit State(std::vector<OutputPort*> ports)
        : collector(std::move(ports)) {}
  };
  auto st = std::make_shared<State>(out_ptrs_);
  LoopProgram prog;
  prog.body = [this, st](int64_t superstep) {
    auto reduce_pass = [&](std::vector<Record>* records) {
      if (!task_->input_presorted) SortByKey(records, task_->key_left);
      ForEachGroup(*records, task_->key_left,
                   [&](const std::vector<Record>& group) {
                     task_->reduce_udf(group, &st->collector);
                   });
    };
    if (PortInLoop(0)) {
      std::vector<Record> records;
      CollectPort(0, &records);
      reduce_pass(&records);
    } else {
      if (superstep == 0) CollectPort(0, &st->cache);
      std::vector<Record> copy = st->cache;
      reduce_pass(&copy);
    }
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

void TaskInstance::RunMatchHash() {
  PortsCollector collector(out_ptrs_);
  const bool build_left = task_->local == LocalStrategy::kHashBuildLeft;
  const int build_port = build_left ? 0 : 1;
  const int probe_port = 1 - build_port;
  const KeySpec& build_key = build_left ? task_->key_left : task_->key_right;
  const KeySpec& probe_key = build_left ? task_->key_right : task_->key_left;
  JoinHashTable table(build_key);
  ReadPort(build_port, [&](const Record& rec) { table.Insert(rec); });
  ReadPort(probe_port, [&](const Record& probe) {
    table.Probe(probe, probe_key, [&](const Record& build) {
      if (build_left) {
        task_->match_udf(build, probe, &collector);
      } else {
        task_->match_udf(probe, build, &collector);
      }
    });
  });
  SendEndStream();
}

LoopProgram TaskInstance::MakeMatchHashLoop() {
  const bool build_left = task_->local == LocalStrategy::kHashBuildLeft;
  const int build_port = build_left ? 0 : 1;
  const int probe_port = 1 - build_port;
  const KeySpec& build_key = build_left ? task_->key_left : task_->key_right;
  const KeySpec probe_key = build_left ? task_->key_right : task_->key_left;
  const bool build_in_loop = PortInLoop(build_port);
  const bool probe_in_loop = PortInLoop(probe_port);
  const bool build_cached = task_->inputs[build_port].cached;

  struct State {
    PortsCollector collector;
    JoinHashTable table;
    std::vector<Record> build_cache;  // raw records, no-cache ablation
    std::vector<Record> probe_cache;
    // Budgeted probe caches gradually spill to disk (§4.3). Spilled caches
    // cannot be re-sorted in memory, so the sorted-cache optimization only
    // combines with the unbounded cache.
    std::unique_ptr<SpillBuffer> spill_cache;
    State(std::vector<OutputPort*> ports, const KeySpec& key)
        : collector(std::move(ports)), table(key) {}
  };
  auto st = std::make_shared<State>(out_ptrs_, build_key);
  if (!probe_in_loop && ctx_->cache_spill_budget != INT64_MAX &&
      task_->inputs[probe_port].cache_sort_key.empty()) {
    SpillBufferOptions spill_options;
    spill_options.memory_budget_bytes = ctx_->cache_spill_budget;
    st->spill_cache = std::make_unique<SpillBuffer>(spill_options);
  }

  LoopProgram prog;
  prog.body = [this, st, build_left, build_port, probe_port, probe_key,
               build_in_loop, probe_in_loop, build_cached](int64_t superstep) {
    auto probe_one = [&](const Record& probe) {
      st->table.Probe(probe, probe_key, [&](const Record& build) {
        if (build_left) {
          task_->match_udf(build, probe, &st->collector);
        } else {
          task_->match_udf(probe, build, &st->collector);
        }
      });
    };
    if (build_in_loop) {
      st->table.Clear();
      ReadPort(build_port, [&](const Record& rec) { st->table.Insert(rec); });
    } else if (superstep == 0) {
      // Constant build side: the hash table *is* the loop-invariant
      // cache (§4.3), built once and reused every superstep. With
      // caching disabled (ablation) only the raw records are kept and
      // the table is rebuilt each superstep.
      ReadPort(build_port, [&](const Record& rec) {
        if (build_cached) {
          st->table.Insert(rec);
        } else {
          st->build_cache.push_back(rec);
        }
      });
      if (!build_cached) {
        for (const Record& rec : st->build_cache) st->table.Insert(rec);
      }
    } else if (!build_cached) {
      st->table.Clear();
      for (const Record& rec : st->build_cache) st->table.Insert(rec);
    }
    if (probe_in_loop) {
      ReadPort(probe_port, probe_one);
    } else {
      if (superstep == 0) {
        if (st->spill_cache != nullptr) {
          ReadPort(probe_port, [&](const Record& rec) {
            SFDF_CHECK(st->spill_cache->Add(rec).ok());
          });
          SFDF_CHECK(st->spill_cache->Seal().ok());
        } else {
          CollectPort(probe_port, &st->probe_cache);
          // Establish the requested cache order (Figure 4: A cached
          // partitioned and sorted by tid) so downstream consumers see
          // pre-sorted data every superstep.
          const KeySpec& sort_key = task_->inputs[probe_port].cache_sort_key;
          if (!sort_key.empty()) SortByKey(&st->probe_cache, sort_key);
        }
      }
      if (st->spill_cache != nullptr) {
        SFDF_CHECK(st->spill_cache->Replay(probe_one).ok());
      } else {
        for (const Record& rec : st->probe_cache) probe_one(rec);
      }
    }
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

void TaskInstance::RunMatchSortMerge() {
  PortsCollector collector(out_ptrs_);
  std::vector<Record> left;
  std::vector<Record> right;
  CollectPort(0, &left);
  CollectPort(1, &right);
  SortByKey(&left, task_->key_left);
  SortByKey(&right, task_->key_right);
  MergeJoinGroups(left, task_->key_left, right, task_->key_right,
                  [&](const std::vector<Record>& lgroup,
                      const std::vector<Record>& rgroup) {
                    for (const Record& l : lgroup) {
                      for (const Record& r : rgroup) {
                        task_->match_udf(l, r, &collector);
                      }
                    }
                  });
  SendEndStream();
}

LoopProgram TaskInstance::MakeMatchSortMergeLoop() {
  struct State {
    PortsCollector collector;
    std::vector<Record> cache[2];
    explicit State(std::vector<OutputPort*> ports)
        : collector(std::move(ports)) {}
  };
  auto st = std::make_shared<State>(out_ptrs_);
  LoopProgram prog;
  prog.body = [this, st](int64_t superstep) {
    std::vector<Record> sides[2];
    for (int port = 0; port < 2; ++port) {
      if (PortInLoop(port)) {
        CollectPort(port, &sides[port]);
      } else {
        if (superstep == 0) CollectPort(port, &st->cache[port]);
        sides[port] = st->cache[port];
      }
    }
    SortByKey(&sides[0], task_->key_left);
    SortByKey(&sides[1], task_->key_right);
    MergeJoinGroups(sides[0], task_->key_left, sides[1], task_->key_right,
                    [&](const std::vector<Record>& lgroup,
                        const std::vector<Record>& rgroup) {
                      for (const Record& l : lgroup) {
                        for (const Record& r : rgroup) {
                          task_->match_udf(l, r, &st->collector);
                        }
                      }
                    });
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

void TaskInstance::RunCross() {
  PortsCollector collector(out_ptrs_);
  const bool build_left = task_->local != LocalStrategy::kCrossBuildRight;
  const int build_port = build_left ? 0 : 1;
  const int probe_port = 1 - build_port;
  std::vector<Record> build;
  CollectPort(build_port, &build);
  ReadPort(probe_port, [&](const Record& rec) {
    for (const Record& b : build) {
      if (build_left) {
        task_->match_udf(b, rec, &collector);
      } else {
        task_->match_udf(rec, b, &collector);
      }
    }
  });
  SendEndStream();
}

LoopProgram TaskInstance::MakeCrossLoop() {
  const bool build_left = task_->local != LocalStrategy::kCrossBuildRight;
  const int build_port = build_left ? 0 : 1;
  const int probe_port = 1 - build_port;
  struct State {
    PortsCollector collector;
    std::vector<Record> build;
    std::vector<Record> probe_cache;
    explicit State(std::vector<OutputPort*> ports)
        : collector(std::move(ports)) {}
  };
  auto st = std::make_shared<State>(out_ptrs_);
  LoopProgram prog;
  prog.body = [this, st, build_left, build_port,
               probe_port](int64_t superstep) {
    auto stream_one = [&](const Record& rec) {
      for (const Record& b : st->build) {
        if (build_left) {
          task_->match_udf(b, rec, &st->collector);
        } else {
          task_->match_udf(rec, b, &st->collector);
        }
      }
    };
    if (PortInLoop(build_port)) {
      st->build.clear();
      CollectPort(build_port, &st->build);
    } else if (superstep == 0) {
      CollectPort(build_port, &st->build);
    }
    if (PortInLoop(probe_port)) {
      ReadPort(probe_port, stream_one);
    } else {
      if (superstep == 0) CollectPort(probe_port, &st->probe_cache);
      for (const Record& rec : st->probe_cache) stream_one(rec);
    }
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

void TaskInstance::RunCoGroup() {
  PortsCollector collector(out_ptrs_);
  const bool inner = task_->kind == OperatorKind::kInnerCoGroup;
  std::vector<Record> left;
  std::vector<Record> right;
  CollectPort(0, &left);
  CollectPort(1, &right);
  SortByKey(&left, task_->key_left);
  SortByKey(&right, task_->key_right);
  MergeJoinGroups(left, task_->key_left, right, task_->key_right,
                  [&](const std::vector<Record>& lgroup,
                      const std::vector<Record>& rgroup) {
                    if (inner && (lgroup.empty() || rgroup.empty())) return;
                    task_->cogroup_udf(lgroup, rgroup, &collector);
                  });
  SendEndStream();
}

LoopProgram TaskInstance::MakeCoGroupLoop() {
  const bool inner = task_->kind == OperatorKind::kInnerCoGroup;
  struct State {
    PortsCollector collector;
    std::vector<Record> cache[2];
    explicit State(std::vector<OutputPort*> ports)
        : collector(std::move(ports)) {}
  };
  auto st = std::make_shared<State>(out_ptrs_);
  LoopProgram prog;
  prog.body = [this, st, inner](int64_t superstep) {
    std::vector<Record> sides[2];
    for (int port = 0; port < 2; ++port) {
      if (PortInLoop(port)) {
        CollectPort(port, &sides[port]);
      } else {
        if (superstep == 0) CollectPort(port, &st->cache[port]);
        sides[port] = st->cache[port];
      }
    }
    SortByKey(&sides[0], task_->key_left);
    SortByKey(&sides[1], task_->key_right);
    MergeJoinGroups(sides[0], task_->key_left, sides[1], task_->key_right,
                    [&](const std::vector<Record>& lgroup,
                        const std::vector<Record>& rgroup) {
                      if (inner && (lgroup.empty() || rgroup.empty())) return;
                      task_->cogroup_udf(lgroup, rgroup, &st->collector);
                    });
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

// --- bulk iteration roles ---------------------------------------------------

LoopProgram TaskInstance::MakeBulkHead() {
  struct State {
    PortsCollector collector;
    std::vector<Record> current;
    explicit State(std::vector<OutputPort*> ports)
        : collector(std::move(ports)) {}
  };
  auto st = std::make_shared<State>(out_ptrs_);
  LoopProgram prog;
  prog.body = [this, st](int64_t superstep) {
    BulkRuntime& rt = BulkRt();
    if (superstep == 0) {
      // First iteration: consume the initial partial solution.
      CollectPort(0, &st->current);
    } else {
      st->current = std::move(rt.feedback[partition_]);
      rt.feedback[partition_].clear();
    }
    rt.coordinator->workset_consumed.fetch_add(
        static_cast<int64_t>(st->current.size()), std::memory_order_relaxed);
    for (const Record& rec : st->current) st->collector.Emit(rec);
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

LoopProgram TaskInstance::MakeBulkTail() {
  LoopProgram prog;
  prog.body = [this](int64_t) {
    BulkRuntime& rt = BulkRt();
    std::vector<Record>& buffer = rt.feedback[partition_];
    ReadPort(0, [&](const Record& rec) { buffer.push_back(rec); });
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] {
    // The buffer collected in the final superstep is the result.
    BulkRuntime& rt = BulkRt();
    PortsCollector collector(out_ptrs_);
    for (const Record& rec : rt.feedback[partition_]) collector.Emit(rec);
    SendEndStream();
  };
  return prog;
}

LoopProgram TaskInstance::MakeTermSink() {
  LoopProgram prog;
  prog.body = [this](int64_t) {
    BulkRuntime& rt = BulkRt();
    int64_t count = 0;
    ReadPort(0, [&](const Record&) { ++count; });
    rt.coordinator->term_records.fetch_add(count, std::memory_order_relaxed);
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

// --- workset iteration roles ------------------------------------------------

LoopProgram TaskInstance::MakeWorksetHead() {
  struct State {
    PortsCollector collector;
    explicit State(std::vector<OutputPort*> ports)
        : collector(std::move(ports)) {}
  };
  auto st = std::make_shared<State>(out_ptrs_);
  LoopProgram prog;
  prog.body = [this, st](int64_t superstep) {
    WorksetRuntime& rt = WsRt();
    int64_t count = 0;
    if (rt.barrier_free) {
      // Local round of a barrier-free iteration: consume the external W_0
      // phase once per service round (blocking is safe — the seed stream
      // is complete before any round task is scheduled), then whatever
      // the tails' feedback lanes currently hold.
      WorksetRuntime::AsyncPart& ap = *rt.async_parts[partition_];
      if (ap.w0_pending) {
        ReadPort(0, [&](const Record& rec) {
          st->collector.Emit(rec);
          ++count;
        });
        // The startup credit is NOT released here: the scheduler returns
        // it at the end of this local round, after the round's children
        // were published — otherwise `pending` could dip to zero while
        // W_0-derived records are still buffered in output ports.
        ap.w0_pending = false;
      }
      const int64_t fed =
          rt.async_feedback[partition_]->DrainOpen([&](const RecordBatch& b) {
            for (const Record& rec : b) st->collector.Emit(rec);
          });
      ap.popped_this_round += fed;
      count += fed;
      rt.coordinator->workset_consumed.fetch_add(count,
                                                 std::memory_order_relaxed);
      SendSuperstepMarkers();  // barrier-free: flush, no markers
      return;
    }
    auto drain_front = [&] {
      std::vector<Record> records = std::move(rt.front[partition_]);
      rt.front[partition_].clear();
      for (const Record& rec : records) st->collector.Emit(rec);
      count += static_cast<int64_t>(records.size());
    };
    if (superstep == rt.round_start_superstep) {
      // A round's first superstep consumes the external W_0 port: the
      // original source in the cold round, a controller-seeded stream
      // (Exchange::Seed) in warm rounds.
      ReadPort(0, [&](const Record& rec) {
        st->collector.Emit(rec);
        ++count;
      });
      // Plus any workset a previous round left behind when it stopped
      // at the iteration cap — that work continues in this round.
      drain_front();
    } else {
      drain_front();
    }
    rt.coordinator->workset_consumed.fetch_add(count,
                                               std::memory_order_relaxed);
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

LoopProgram TaskInstance::MakeWorksetTail() {
  LoopProgram prog;
  prog.body = [this](int64_t) {
    WorksetRuntime& rt = WsRt();
    const int P = rt.parallelism;
    if (rt.barrier_free) {
      // Route W_{i+1} into the per-partition feedback exchanges. Credits
      // are taken and the target's quiescence vote revoked BEFORE the
      // push makes the batch visible; the wake follows the push (a lost
      // wake is impossible — the engine's wake-pending handshake catches
      // a wake racing the target's park).
      std::vector<RecordBatch> out(static_cast<size_t>(P));
      std::vector<bool> cut(static_cast<size_t>(P), false);
      int64_t count = 0;
      int64_t remote = 0;
      ReadPort(0, [&](const Record& rec) {
        const int target = PartitionOf(rec, rt.route_key, P);
        if (!cut[target]) {
          out[target] = rt.async_feedback[target]->AcquireBatch(partition_);
          cut[target] = true;
        }
        out[target].Add(rec);
        ++count;
        if (target != partition_) ++remote;
      });
      for (int p = 0; p < P; ++p) {
        if (!cut[p] || out[p].empty()) continue;
        const int64_t records = static_cast<int64_t>(out[p].size());
        rt.coordinator->CreditEnqueued(records);
        rt.coordinator->RevokeQuiescentVote(p);
        Envelope envelope;
        envelope.kind = MarkerKind::kData;
        envelope.batch = std::move(out[p]);
        rt.async_feedback[p]->Push(partition_, std::move(envelope));
        if (p != partition_) rt.async_wake(p);
      }
      ctx_->metrics.CountShipped(count, count * sizeof(Record), remote);
      rt.coordinator->workset_produced.fetch_add(count,
                                                 std::memory_order_relaxed);
      return;
    }
    // Route W_{i+1} records into the back buffers by the workset key.
    std::vector<std::vector<Record>> local(P);
    int64_t count = 0;
    int64_t remote = 0;
    ReadPort(0, [&](const Record& rec) {
      int target = PartitionOf(rec, rt.route_key, P);
      local[target].push_back(rec);
      ++count;
      if (target != partition_) ++remote;
    });
    for (int p = 0; p < P; ++p) {
      if (local[p].empty()) continue;
      std::lock_guard<std::mutex> lock(*rt.back_mutex[p]);
      auto& buffer = rt.back[p];
      buffer.insert(buffer.end(), local[p].begin(), local[p].end());
    }
    // Feedback records are the "messages" of the incremental iteration.
    ctx_->metrics.CountShipped(count, count * sizeof(Record), remote);
    rt.coordinator->workset_produced.fetch_add(count,
                                               std::memory_order_relaxed);
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

LoopProgram TaskInstance::MakeDeltaApply() {
  LoopProgram prog;
  prog.body = [this](int64_t) {
    WorksetRuntime& rt = WsRt();
    SolutionSetIndex* index = rt.index[partition_].get();
    if (rt.immediate_apply) {
      // The solution join already merged its emissions; drain markers.
      ReadPort(0, [](const Record&) {});
      SendSuperstepMarkers();
      return;
    }
    // Buffer D until the superstep's reads finished (they have: our
    // producer sent its end-of-superstep marker), then merge via ∪̇.
    std::vector<Record> delta;
    CollectPort(0, &delta);
    for (const Record& rec : delta) index->Apply(rec);
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] {
    // The converged solution set is the iteration's result (§5.1).
    WorksetRuntime& rt = WsRt();
    PortsCollector collector(out_ptrs_);
    rt.index[partition_]->ForEach([&](const Record& rec) {
      collector.Emit(rec);
    });
    SendEndStream();
  };
  return prog;
}

/// Emissions of a solution join are delta records: in immediate mode they
/// merge into S right here, and records the comparator discards never
/// propagate (§5.1: "D reflects only the records that contributed to the
/// new partial solution").
class ApplyCollector : public Collector {
 public:
  ApplyCollector(SolutionSetIndex* index, Collector* next, bool immediate)
      : index_(index), next_(next), immediate_(immediate) {}
  void Emit(const Record& rec) override {
    if (immediate_ && !index_->Apply(rec)) return;
    next_->Emit(rec);
  }

 private:
  SolutionSetIndex* index_;
  Collector* next_;
  bool immediate_;
};

LoopProgram TaskInstance::MakeSolutionJoin() {
  WorksetRuntime& rt = WsRt();
  SolutionSetIndex* index = rt.index[partition_].get();
  const int s_port = task_->solution_side;
  const int probe_port = 1 - s_port;
  const KeySpec probe_key = s_port == 0 ? task_->key_right : task_->key_left;
  const bool group_mode = task_->kind == OperatorKind::kCoGroup ||
                          task_->kind == OperatorKind::kInnerCoGroup;
  const bool inner = task_->kind != OperatorKind::kCoGroup;

  struct State {
    PortsCollector downstream;
    ApplyCollector apply;
    State(std::vector<OutputPort*> ports, SolutionSetIndex* idx,
          bool immediate)
        : downstream(std::move(ports)),
          apply(idx, &downstream, immediate) {}
  };
  auto st = std::make_shared<State>(out_ptrs_, index, rt.immediate_apply);

  LoopProgram prog;
  prog.body = [this, st, index, s_port, probe_port, probe_key, group_mode,
               inner](int64_t superstep) {
    if (superstep == 0) {
      // Build the S index from the initial solution (hash-partitioned
      // by the solution key). Building is not update work: reset the
      // stats so Figure 2's counters only see iteration activity.
      ReadPort(s_port, [&](const Record& rec) { index->Apply(rec); });
      index->ResetStats();
    }
    if (!group_mode) {
      // Match: record-at-a-time probes against the index.
      ReadPort(probe_port, [&](const Record& probe) {
        const Record* s_rec = index->Lookup(probe, probe_key);
        if (s_rec == nullptr) return;  // inner-join semantics
        if (s_port == 0) {
          task_->match_udf(*s_rec, probe, &st->apply);
        } else {
          task_->match_udf(probe, *s_rec, &st->apply);
        }
      });
    } else {
      // (Inner)CoGroup: group the superstep's workset records per key,
      // pair each group with the solution record of that key.
      std::vector<Record> probes;
      CollectPort(probe_port, &probes);
      SortByKey(&probes, probe_key);
      std::vector<Record> s_group;
      ForEachGroup(probes, probe_key,
                   [&](const std::vector<Record>& group) {
                     const Record* s_rec =
                         index->Lookup(group.front(), probe_key);
                     s_group.clear();
                     if (s_rec != nullptr) s_group.push_back(*s_rec);
                     if (inner && s_group.empty()) return;
                     if (s_port == 0) {
                       task_->cogroup_udf(s_group, group, &st->apply);
                     } else {
                       task_->cogroup_udf(group, s_group, &st->apply);
                     }
                   });
    }
    SendSuperstepMarkers();
  };
  prog.final_flush = [this] { SendEndStream(); };
  return prog;
}

void TaskInstance::RunOnce() {
  SFDF_DCHECK(!IsLoopTask(*task_));
  switch (task_->kind) {
    case OperatorKind::kSource:
      RunSource();
      return;
    case OperatorKind::kSink:
      RunSink();
      return;
    case OperatorKind::kMap:
    case OperatorKind::kFilter:
    case OperatorKind::kUnion:
      RunSimple();
      return;
    case OperatorKind::kReduce:
      RunReduce();
      return;
    case OperatorKind::kMatch:
      if (task_->local == LocalStrategy::kSortMerge) {
        RunMatchSortMerge();
      } else {
        RunMatchHash();
      }
      return;
    case OperatorKind::kCross:
      RunCross();
      return;
    case OperatorKind::kCoGroup:
    case OperatorKind::kInnerCoGroup:
      RunCoGroup();
      return;
    default:
      SFDF_CHECK(false) << "unexpected task kind "
                        << OperatorKindName(task_->kind);
  }
}

LoopProgram TaskInstance::MakeLoopProgram() {
  switch (task_->role) {
    case TaskRole::kBulkHead:
      return MakeBulkHead();
    case TaskRole::kBulkTail:
      return MakeBulkTail();
    case TaskRole::kTermSink:
      return MakeTermSink();
    case TaskRole::kWorksetHead:
      return MakeWorksetHead();
    case TaskRole::kWorksetTail:
      return MakeWorksetTail();
    case TaskRole::kDeltaApply:
      return MakeDeltaApply();
    case TaskRole::kSolutionJoin:
      return MakeSolutionJoin();
    case TaskRole::kRegular:
      break;
  }
  switch (task_->kind) {
    case OperatorKind::kMap:
    case OperatorKind::kFilter:
    case OperatorKind::kUnion:
      return MakeSimpleLoop();
    case OperatorKind::kReduce:
      return MakeReduceLoop();
    case OperatorKind::kMatch:
      if (task_->local == LocalStrategy::kSortMerge) {
        return MakeMatchSortMergeLoop();
      }
      return MakeMatchHashLoop();
    case OperatorKind::kCross:
      return MakeCrossLoop();
    case OperatorKind::kCoGroup:
    case OperatorKind::kInnerCoGroup:
      return MakeCoGroupLoop();
    default:
      SFDF_CHECK(false) << "unexpected loop task kind "
                        << OperatorKindName(task_->kind);
      return {};
  }
}

// ---------------------------------------------------------------------------
// Fused asynchronous microstep engine (Section 5.2 / 5.3)
// ---------------------------------------------------------------------------

/// One fused pipeline step. The whole dynamic path of a microstep-capable
/// iteration runs inside a partition's chain, so solution updates are
/// applied by the same logical task that owns the partition's index — no
/// locking on the index.
struct ChainStep {
  enum class Kind { kMap, kFilter, kSolutionJoin, kMatchConst };
  Kind kind;
  const PhysicalTask* task = nullptr;
  // kMatchConst: constant build side.
  std::unique_ptr<JoinHashTable> table;
  int const_port = -1;
  KeySpec probe_key;
  bool const_is_left = false;
};

/// Cooperative microstep unit (runtime v3): instead of a dedicated thread
/// parked on a condition variable, each partition is a schedulable task.
/// Step() drains whatever is queued for its partition, runs the fused
/// chain, and returns kWorked — the scheduler re-enqueues it. When its
/// queue is empty but records are still in flight elsewhere it returns
/// kIdle and the scheduler PARKS it on an engine park slot: the unit costs
/// no worker time until a peer stages records for its partition
/// (FlushStaged wakes the target's slot) or proves global quiescence (the
/// kDone path broadcasts a wake so every parked peer re-checks the
/// detector and finishes). Once the detector is quiescent the unit emits
/// its partition's converged solution and returns kDone. Liveness needs
/// only one pool worker: a unit either has queued work (it is scheduled)
/// or an obligated waker (whoever holds its future input, or whoever
/// reaches quiescence) — the lost-wakeup race is closed inside
/// Engine::Park/Wake via the wake-pending handshake.
enum class MicroStatus { kWorked, kIdle, kDone };

class MicrostepInstance {
 public:
  MicrostepInstance(ExecContext* ctx, int iteration, int partition,
                    std::vector<const PhysicalTask*> chain_tasks,
                    const PhysicalTask* delta_apply_task)
      : ctx_(ctx),
        rt_(*ctx->workset[iteration]),
        partition_(partition),
        chain_tasks_(std::move(chain_tasks)),
        delta_apply_task_(delta_apply_task) {}

  MicroStatus Step() {
    if (!setup_done_) {
      staged_.resize(rt_.parallelism);
      BuildChain();
      LoadInitialState();
      rt_.detector->FinishStartup();
      setup_done_ = true;
    }
    std::vector<Record> batch;
    if (TryPopBatch(&batch)) {
      for (const Record& rec : batch) {
        RunChain(0, rec);
      }
      FlushStaged();
      // Release the batch's credits only after its children are visible.
      for (size_t i = 0; i < batch.size(); ++i) {
        rt_.detector->RecordProcessed();
      }
      processed_ += static_cast<int64_t>(batch.size());
      return MicroStatus::kWorked;
    }
    if (rt_.detector->Quiescent()) {
      rt_.micro_processed.fetch_add(processed_, std::memory_order_relaxed);
      EmitResult();
      return MicroStatus::kDone;
    }
    // Empty queue but records are still in flight on other partitions: ask
    // the scheduler to park this unit until a peer wakes it.
    return MicroStatus::kIdle;
  }

  int partition() const { return partition_; }

  /// Installed by the scheduler: wakes the park slot of `target`'s unit.
  void set_waker(std::function<void(int)> waker) { waker_ = std::move(waker); }

 private:
  Exchange* InputOf(const PhysicalTask* task, int port) {
    return ctx_->channels[task->id][port][partition_].get();
  }

  void BuildChain() {
    for (const PhysicalTask* task : chain_tasks_) {
      ChainStep step;
      step.task = task;
      switch (task->kind) {
        case OperatorKind::kMap:
          step.kind = ChainStep::Kind::kMap;
          break;
        case OperatorKind::kFilter:
          step.kind = ChainStep::Kind::kFilter;
          break;
        case OperatorKind::kMatch:
          if (task->role == TaskRole::kSolutionJoin) {
            step.kind = ChainStep::Kind::kSolutionJoin;
            step.probe_key = task->solution_side == 0 ? task->key_right
                                                      : task->key_left;
          } else {
            step.kind = ChainStep::Kind::kMatchConst;
            // The dynamic input is the one fed by the previous chain task.
            int const_port =
                IsLoopTask(ctx_->task(task->inputs[0].producer)) ? 1 : 0;
            step.const_port = const_port;
            step.const_is_left = const_port == 0;
            const KeySpec& build_key =
                const_port == 0 ? task->key_left : task->key_right;
            step.probe_key =
                const_port == 0 ? task->key_right : task->key_left;
            step.table = std::make_unique<JoinHashTable>(build_key);
            InputOf(task, const_port)
                ->ReadPhase(MarkerKind::kEndStream,
                            [&](const RecordBatch& batch) {
                              for (const Record& rec : batch) {
                                step.table->Insert(rec);
                              }
                            });
          }
          break;
        default:
          SFDF_CHECK(false) << "operator not fusable into a microstep chain: "
                            << OperatorKindName(task->kind);
      }
      chain_.push_back(std::move(step));
    }
  }

  void LoadInitialState() {
    // Build the solution index from the initial-solution port of the join.
    const PhysicalTask* join = nullptr;
    for (const ChainStep& step : chain_) {
      if (step.kind == ChainStep::Kind::kSolutionJoin) join = step.task;
    }
    SFDF_CHECK(join != nullptr);
    SolutionSetIndex* index = rt_.index[partition_].get();
    InputOf(join, join->solution_side)
        ->ReadPhase(MarkerKind::kEndStream, [&](const RecordBatch& batch) {
          for (const Record& rec : batch) index->Apply(rec);
        });
    index->ResetStats();  // building S_0 is not iteration work
    // Load the initial workset into this partition's queue. The head task's
    // port 0 carries W_0, already routed by the workset key.
    const PhysicalTask* head = nullptr;
    for (const PhysicalTask& task : ctx_->plan->tasks) {
      if (task.role == TaskRole::kWorksetHead &&
          task.workset_iteration == chain_tasks_.front()->workset_iteration) {
        head = &task;
      }
    }
    SFDF_CHECK(head != nullptr);
    MicroQueue& queue = *rt_.queues[partition_];
    InputOf(head, 0)->ReadPhase(
        MarkerKind::kEndStream, [&](const RecordBatch& batch) {
          for (size_t i = 0; i < batch.size(); ++i) {
            rt_.detector->RecordEnqueued();
          }
          std::lock_guard<std::mutex> lock(queue.mutex);
          queue.queue.insert(queue.queue.end(), batch.begin(), batch.end());
        });
  }

  /// Drains every currently-queued record for this partition, without
  /// blocking. False = nothing queued right now (which does NOT mean the
  /// computation is quiescent — Step checks the detector separately).
  bool TryPopBatch(std::vector<Record>* out) {
    MicroQueue& queue = *rt_.queues[partition_];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.queue.empty()) return false;
    out->assign(queue.queue.begin(), queue.queue.end());
    queue.queue.clear();
    return true;
  }

  /// Stages an end-of-chain record (a W_{i+1} element) for its partition.
  /// The pending-record credit is taken immediately so quiescence cannot
  /// trigger while records sit in the staging buffers; the buffers are
  /// flushed once per processed batch (FlushStaged).
  void Route(const Record& rec) {
    int target = PartitionOf(rec, rt_.route_key, rt_.parallelism);
    ctx_->metrics.CountShipped(1, sizeof(Record),
                               target == partition_ ? 0 : 1);
    rt_.detector->RecordEnqueued();
    staged_[target].push_back(rec);
  }

  void FlushStaged() {
    for (int target = 0; target < rt_.parallelism; ++target) {
      if (staged_[target].empty()) continue;
      MicroQueue& queue = *rt_.queues[target];
      {
        std::lock_guard<std::mutex> lock(queue.mutex);
        queue.queue.insert(queue.queue.end(), staged_[target].begin(),
                           staged_[target].end());
      }
      staged_[target].clear();
      // The target may be parked on an empty queue; hand it its wake-up.
      // (Never needed for self: a unit only parks when its own queue is
      // empty, which it just made false for `target`.)
      if (target != partition_ && waker_) waker_(target);
    }
  }

  void RunChain(size_t step_index, const Record& rec) {
    if (step_index == chain_.size()) {
      Route(rec);
      return;
    }
    ChainStep& step = chain_[step_index];
    class NextCollector : public Collector {
     public:
      NextCollector(MicrostepInstance* self, size_t next)
          : self_(self), next_(next) {}
      void Emit(const Record& rec) override { self_->RunChain(next_, rec); }

     private:
      MicrostepInstance* self_;
      size_t next_;
    } next(this, step_index + 1);

    switch (step.kind) {
      case ChainStep::Kind::kMap:
        step.task->map_udf(rec, &next);
        break;
      case ChainStep::Kind::kFilter:
        if (step.task->filter_udf(rec)) next.Emit(rec);
        break;
      case ChainStep::Kind::kSolutionJoin: {
        SolutionSetIndex* index = rt_.index[partition_].get();
        const Record* s_rec = index->Lookup(rec, step.probe_key);
        if (s_rec == nullptr) return;
        // Immediate ∪̇: the update takes effect before the next microstep
        // (MICRO of Table 1); discarded records do not propagate.
        class MicroApply : public Collector {
         public:
          MicroApply(SolutionSetIndex* index, Collector* next)
              : index_(index), next_(next) {}
          void Emit(const Record& rec) override {
            if (index_->Apply(rec)) next_->Emit(rec);
          }

         private:
          SolutionSetIndex* index_;
          Collector* next_;
        } apply(index, &next);
        if (step.task->solution_side == 0) {
          step.task->match_udf(*s_rec, rec, &apply);
        } else {
          step.task->match_udf(rec, *s_rec, &apply);
        }
        break;
      }
      case ChainStep::Kind::kMatchConst: {
        step.table->Probe(rec, step.probe_key, [&](const Record& build) {
          if (step.const_is_left) {
            step.task->match_udf(build, rec, &next);
          } else {
            step.task->match_udf(rec, build, &next);
          }
        });
        break;
      }
    }
  }

  void EmitResult() {
    // Emit this partition's converged solution set through the delta-apply
    // task's output ports (its downstream consumers expect P producers).
    std::vector<std::unique_ptr<OutputPort>> outputs;
    std::vector<OutputPort*> ptrs;
    for (const auto& [consumer_id, port] :
         ctx_->consumer_edges[delta_apply_task_->id]) {
      const PhysicalTask& consumer = ctx_->task(consumer_id);
      const PhysicalInput& edge = consumer.inputs[port];
      std::vector<Exchange*> targets;
      for (int p = 0; p < ctx_->parallelism; ++p) {
        targets.push_back(ctx_->channels[consumer_id][port][p].get());
      }
      outputs.push_back(std::make_unique<OutputPort>(
          std::move(targets), edge.ship, edge.ship_key, partition_,
          &ctx_->metrics, /*in_loop=*/false));
      ptrs.push_back(outputs.back().get());
    }
    PortsCollector collector(ptrs);
    rt_.index[partition_]->ForEach(
        [&](const Record& rec) { collector.Emit(rec); });
    for (OutputPort* port : ptrs) port->SendMarker(MarkerKind::kEndStream);
  }

  ExecContext* ctx_;
  WorksetRuntime& rt_;
  int partition_;
  std::vector<const PhysicalTask*> chain_tasks_;
  const PhysicalTask* delta_apply_task_;
  std::vector<ChainStep> chain_;
  /// Per-target staging buffers for outgoing workset records.
  std::vector<std::vector<Record>> staged_;
  std::function<void(int)> waker_;
  bool setup_done_ = false;
  int64_t processed_ = 0;
};

// ---------------------------------------------------------------------------
// PipelinedInstance: one partition of a streaming non-loop task (kPipelined)
// ---------------------------------------------------------------------------

/// Outcome of one cooperative poll of a pipelined unit.
enum class PipeStatus : uint8_t {
  kWorked,  ///< consumed input / emitted output — resubmit immediately
  kYield,   ///< no progress, an output lane is at capacity — resubmit
  kIdle,    ///< no progress, every open input lane is empty — park
  kDone,    ///< inputs exhausted, end-of-stream delivered downstream
};

/// One cooperative polling unit of a pipelined region (ExecutionOptions::
/// region_mode == kPipelined). Where materialize mode runs a non-loop task
/// as a single blocking RunOnce after its producer regions completed, a
/// pipelined unit is scheduled the moment the plan starts and advances in
/// short Step() calls. Pool workers never block: a unit that cannot
/// progress returns kYield (outputs backpressured — the engine's
/// per-client FIFO places the resubmitted retry behind the consumer's
/// already-queued poll, so the consumer drains first even on one worker)
/// or kIdle (inputs empty — park; any producer Push into an input lane
/// fires the exchange's consumer waker). The wake-pending handshake in
/// Engine::Park/Wake closes the race between the emptiness check inside
/// Step() and the park that follows it.
class PipelinedInstance {
 public:
  PipelinedInstance(ExecContext* ctx, const PhysicalTask* task, int partition)
      : ctx_(ctx), task_(task), partition_(partition) {
    for (const auto& [consumer_id, port] : ctx_->consumer_edges[task_->id]) {
      const PhysicalTask& consumer = ctx_->task(consumer_id);
      const PhysicalInput& edge = consumer.inputs[port];
      std::vector<Exchange*> targets;
      targets.reserve(ctx_->parallelism);
      for (int p = 0; p < ctx_->parallelism; ++p) {
        targets.push_back(ctx_->channels[consumer_id][port][p].get());
      }
      // A pipelined task is never a loop member, so none of its output
      // ports carry loop data.
      outputs_.push_back(std::make_unique<OutputPort>(
          std::move(targets), edge.ship, edge.ship_key, partition_,
          &ctx_->metrics, /*in_loop=*/false, edge.combiner, edge.combine_key));
      out_ptrs_.push_back(outputs_.back().get());
    }
    if (task_->kind == OperatorKind::kSource) {
      const auto it = ctx_->source_override.find(task_->id);
      source_data_ = it != ctx_->source_override.end()
                         ? &it->second
                         : task_->source_data.get();
      cursor_ = static_cast<size_t>(partition_);
    }
  }

  int partition() const { return partition_; }

  PipeStatus Step() {
    // Retry stalled output batches/markers first: while a target lane sits
    // at capacity, consuming more input would only grow the stalled
    // buffers and defeat the flow-control window.
    bool outputs_clear = TryDrainOutputs();
    int64_t worked = 0;
    if (outputs_clear) {
      worked += task_->kind == OperatorKind::kSource ? EmitSource()
                                                     : DrainInputs();
      outputs_clear = !AnyOutputStalled();
    }
    if (outputs_clear && InputExhausted()) {
      if (!end_sent_) {
        // Flush-and-close every output. SendMarker defers the marker on
        // any target whose tail data stalls; TryDrainOutputs (below, and
        // on later polls) delivers it once the consumer drained.
        for (OutputPort* port : out_ptrs_) {
          port->SendMarker(MarkerKind::kEndStream);
        }
        end_sent_ = true;
        ++worked;
      }
      if (TryDrainOutputs()) return PipeStatus::kDone;
    }
    if (worked > 0) return PipeStatus::kWorked;
    if (AnyOutputStalled()) return PipeStatus::kYield;
    return PipeStatus::kIdle;
  }

 private:
  Exchange* Input(int port) {
    return ctx_->channels[task_->id][port][partition_].get();
  }

  bool AnyOutputStalled() const {
    for (const OutputPort* port : out_ptrs_) {
      if (port->has_stalled()) return true;
    }
    return false;
  }

  bool TryDrainOutputs() {
    bool clear = true;
    for (OutputPort* port : out_ptrs_) {
      if (!port->TryDrainStalled()) clear = false;
    }
    return clear;
  }

  /// Source exhausted / every input lane of every port closed. Closed lanes
  /// are fully drained (the end-stream marker is a lane's last envelope),
  /// so exhausted means there is nothing left to pop anywhere.
  bool InputExhausted() {
    if (task_->kind == OperatorKind::kSource) {
      return cursor_ >= source_data_->size();
    }
    for (size_t port = 0; port < task_->inputs.size(); ++port) {
      if (!Input(static_cast<int>(port))->AllClosed()) return false;
    }
    return true;
  }

  /// Resumable source scan: same `partition + i*P` stride as RunSource, but
  /// the cursor persists across polls so a backpressured source picks up
  /// exactly where it stopped.
  int64_t EmitSource() {
    const std::vector<Record>& data = *source_data_;
    const size_t stride = static_cast<size_t>(ctx_->parallelism);
    PortsCollector collector(out_ptrs_);
    int64_t emitted = 0;
    while (cursor_ < data.size()) {
      collector.Emit(data[cursor_]);
      cursor_ += stride;
      ++emitted;
      // Per-record check: one Emit can flush a full batch and stall, and
      // emitting past that would overrun the window into port buffers.
      if (AnyOutputStalled()) break;
    }
    return emitted;
  }

  /// Drains whatever the input lanes currently hold, stopping early when an
  /// output stalls. Returns the number of records popped.
  int64_t DrainInputs() {
    const auto stalled = [this] { return AnyOutputStalled(); };
    PortsCollector collector(out_ptrs_);
    switch (task_->kind) {
      case OperatorKind::kMap:
        return Input(0)->DrainOpenUntil(
            [&](const RecordBatch& batch) {
              for (const Record& rec : batch) task_->map_udf(rec, &collector);
            },
            stalled);
      case OperatorKind::kFilter:
        return Input(0)->DrainOpenUntil(
            [&](const RecordBatch& batch) {
              for (const Record& rec : batch) {
                if (task_->filter_udf(rec)) collector.Emit(rec);
              }
            },
            stalled);
      case OperatorKind::kUnion: {
        int64_t popped = 0;
        for (size_t port = 0; port < task_->inputs.size(); ++port) {
          popped += Input(static_cast<int>(port))
                        ->DrainOpenUntil(
                            [&](const RecordBatch& batch) {
                              for (const Record& rec : batch) {
                                collector.Emit(rec);
                              }
                            },
                            stalled);
        }
        return popped;
      }
      case OperatorKind::kSink: {
        // Sinks have no outputs, so they never stall — the chain always
        // drains from the bottom, which is what makes backpressure
        // deadlock-free on an acyclic region graph.
        std::vector<Record>& slot = ctx_->sink_slots[task_->id][partition_];
        return Input(0)->DrainOpen([&](const RecordBatch& batch) {
          for (const Record& rec : batch) slot.push_back(rec);
        });
      }
      default:
        SFDF_CHECK(false) << "pipelined step on "
                          << OperatorKindName(task_->kind);
        return 0;
    }
  }

  ExecContext* ctx_;
  const PhysicalTask* task_;
  int partition_;
  std::vector<std::unique_ptr<OutputPort>> outputs_;
  std::vector<OutputPort*> out_ptrs_;
  const std::vector<Record>* source_data_ = nullptr;
  size_t cursor_ = 0;  ///< next source index for this partition (stride P)
  bool end_sent_ = false;
};

// ---------------------------------------------------------------------------
// Setup helpers
// ---------------------------------------------------------------------------

Status ValidatePhysicalPlan(const PhysicalPlan& plan) {
  for (const PhysicalTask& task : plan.tasks) {
    if (task.id != static_cast<int>(&task - plan.tasks.data())) {
      return Status::Internal("physical task ids must be dense and ordered");
    }
    for (const PhysicalInput& input : task.inputs) {
      if (input.producer < 0 ||
          input.producer >= static_cast<int>(plan.tasks.size())) {
        return Status::Internal("physical input references unknown producer");
      }
      if (input.ship == ShipStrategy::kHashPartition &&
          input.ship_key.empty()) {
        return Status::Internal("hash partitioning requires a ship key");
      }
    }
  }
  return Status::OK();
}

/// Derives the decide-function for a bulk iteration's coordinator.
std::function<bool(int64_t)> MakeBulkDecide(ExecContext* ctx,
                                            BulkRuntime* rt) {
  return [ctx, rt](int64_t finished) {
    SuperstepCoordinator* coordinator = rt->coordinator.get();
    int64_t term = coordinator->term_records.exchange(0);
    int64_t consumed = coordinator->workset_consumed.exchange(0);
    if (rt->record_stats) {
      SuperstepStats stats;
      stats.superstep = static_cast<int>(finished);
      stats.millis = rt->watch.ElapsedMillis();
      stats.workset_size = consumed;
      stats.term_records = term;
      int64_t shipped = ctx->metrics.records_shipped();
      stats.records_shipped = shipped - rt->shipped_mark;
      rt->shipped_mark = shipped;
      rt->report.supersteps.push_back(stats);
    }
    rt->watch.Restart();
    rt->report.iterations = static_cast<int>(finished + 1);
    bool terminate = false;
    if (rt->has_term && term == 0) {
      terminate = true;
      rt->report.converged = true;
    }
    if (finished + 1 >= rt->max_iterations) {
      terminate = true;
      if (!rt->has_term) rt->report.converged = true;
    }
    return terminate;
  };
}

/// Derives the decide-function for a workset iteration's coordinator.
std::function<bool(int64_t)> MakeWorksetDecide(ExecContext* ctx,
                                               WorksetRuntime* rt) {
  return [ctx, rt](int64_t finished) {
    SuperstepCoordinator* coordinator = rt->coordinator.get();
    // Swap the double-buffered queues: records added during this superstep
    // become the next superstep's workset (§5.3).
    int64_t produced = 0;
    for (int p = 0; p < rt->parallelism; ++p) {
      std::lock_guard<std::mutex> lock(*rt->back_mutex[p]);
      produced += static_cast<int64_t>(rt->back[p].size());
      rt->front[p] = std::move(rt->back[p]);
      rt->back[p].clear();
    }
    coordinator->workset_produced.exchange(0);
    int64_t consumed = coordinator->workset_consumed.exchange(0);
    // Session rounds restart the superstep numbering of reports and the
    // iteration cap at the round's first superstep (one-shot runs have
    // round_start_superstep == 0, reducing to the plain numbering). The
    // round-relative index is bounded by max_iterations, so int is safe.
    const int round_superstep =
        static_cast<int>(finished - rt->round_start_superstep);
    if (rt->record_stats) {
      SuperstepStats stats;
      stats.superstep = round_superstep;
      stats.millis = rt->watch.ElapsedMillis();
      stats.workset_size = consumed;
      stats.next_workset_size = produced;
      int64_t lookups;
      int64_t applied;
      int64_t discarded;
      rt->SumIndexStats(&lookups, &applied, &discarded);
      stats.solution_lookups = lookups - rt->lookups_mark;
      stats.delta_applied = applied - rt->applied_mark;
      stats.delta_discarded = discarded - rt->discarded_mark;
      rt->lookups_mark = lookups;
      rt->applied_mark = applied;
      rt->discarded_mark = discarded;
      int64_t shipped = ctx->metrics.records_shipped();
      stats.records_shipped = shipped - rt->shipped_mark;
      rt->shipped_mark = shipped;
      rt->report.supersteps.push_back(stats);
    }
    rt->watch.Restart();
    rt->report.iterations = round_superstep + 1;
    // §4.2 recovery log: snapshot the materialization points (solution set
    // + pending workset) at the configured superstep boundary. Safe here:
    // the completion step runs inside the wave's last arrival, while no
    // participant task is live. Round-relative, like the report numbering,
    // so session rounds each hit the same mark.
    if (round_superstep == ctx->checkpoint_superstep &&
        !ctx->checkpoint_path.empty()) {
      IterationCheckpoint checkpoint;
      checkpoint.superstep = round_superstep;
      for (const auto& index : rt->index) {
        index->ForEach([&](const Record& rec) {
          checkpoint.solution.push_back(rec);
        });
      }
      for (const auto& front : rt->front) {
        checkpoint.workset.insert(checkpoint.workset.end(), front.begin(),
                                  front.end());
      }
      Status st = SaveCheckpoint(ctx->checkpoint_path, checkpoint);
      if (!st.ok()) {
        SFDF_LOG(Warn) << "checkpoint failed: " << st.ToString();
      }
    }
    if (produced == 0) {
      rt->report.converged = true;  // the workset drained: fixpoint reached
      return true;
    }
    if (round_superstep + 1 >= rt->max_iterations) return true;
    return false;
  };
}

/// Early ExecutionOptions validation: malformed knobs are rejected here
/// with InvalidArgument instead of flowing silently into the runtime.
Status ValidateExecutionOptions(const ExecutionOptions& options) {
  if (options.parallelism < 0) {
    return Status::InvalidArgument(
        "ExecutionOptions.parallelism must be >= 0 (0 = default), got " +
        std::to_string(options.parallelism));
  }
  if (options.worker_threads < 0) {
    return Status::InvalidArgument(
        "ExecutionOptions.worker_threads must be >= 0 (0 = shared default "
        "engine), got " +
        std::to_string(options.worker_threads));
  }
  if (options.checkpoint_superstep < -1) {
    return Status::InvalidArgument(
        "ExecutionOptions.checkpoint_superstep must be >= -1 (-1 = off), "
        "got " +
        std::to_string(options.checkpoint_superstep));
  }
  if (options.sync_mode == SyncMode::kBoundedStale &&
      options.staleness_bound < 1) {
    return Status::InvalidArgument(
        "ExecutionOptions.staleness_bound must be >= 1 for bounded_stale "
        "(a bound of k lets a partition run k local rounds ahead), got " +
        std::to_string(options.staleness_bound));
  }
  if (options.sync_mode != SyncMode::kSuperstep &&
      options.checkpoint_superstep >= 0) {
    return Status::InvalidArgument(
        "checkpointing is superstep-aligned and unavailable under "
        "sync_mode async/bounded_stale — there is no global superstep to "
        "checkpoint at");
  }
  return Status::OK();
}

/// Plan-level gate for barrier-free execution. Async / bounded-stale runs
/// re-order and re-group the delta merges (partial phases split workset
/// groups across local rounds), so the plan's ∪̇ must be idempotent-safe:
/// either a CPO comparator decides every conflict (order-free by
/// construction, §5.1) or the delta is applied immediately and locally, so
/// every partial merge folds into S before the next one reads it. A plan
/// with neither resolves conflicts by arrival order at a barrier — exactly
/// the order a barrier-free run no longer fixes.
Status ValidateSyncMode(const PhysicalPlan& plan,
                        const ExecutionOptions& options) {
  if (options.sync_mode == SyncMode::kSuperstep) return Status::OK();
  if (plan.workset_iterations.empty()) {
    return Status::Unsupported(
        "sync_mode async/bounded_stale applies to workset iterations; this "
        "plan has none");
  }
  if (!plan.bulk_iterations.empty()) {
    return Status::Unsupported(
        "sync_mode async/bounded_stale cannot run bulk iterations — a bulk "
        "body consumes the WHOLE previous partial solution, which only "
        "exists at a superstep boundary");
  }
  for (const PhysicalWorksetIteration& spec : plan.workset_iterations) {
    if (spec.microstep) {
      return Status::Unsupported(
          "sync_mode async/bounded_stale does not apply to microstep plans "
          "— the fused microstep loop is already barrier-free "
          "(record-level, not round-level); run it with sync_mode "
          "superstep");
    }
    if (!spec.immediate_apply && !spec.comparator) {
      return Status::Unsupported(
          "sync_mode async/bounded_stale requires an idempotent-safe ∪̇: "
          "give the iteration a CPO comparator or let the optimizer apply "
          "deltas immediately (this plan resolves solution-set conflicts "
          "by arrival order, which barrier-free execution does not "
          "preserve)");
    }
  }
  return Status::OK();
}

/// Plan-level gate for pipelined region execution. The mode itself accepts
/// any plan — loop regions and pipeline breakers simply keep materialized
/// edges — but the per-consumer capacity overrides must name tasks whose
/// input edges can actually be bounded: a loop task's exchanges carry the
/// multi-marker superstep protocol (a bounded lane could deadlock a wave
/// mid-superstep), and a breaker materializes an input before producing,
/// so a bounded edge into it could never drain.
Status ValidateRegionMode(const PhysicalPlan& plan,
                          const ExecutionOptions& options) {
  if (options.region_mode == RegionMode::kMaterialize) return Status::OK();
  if (options.pipeline_lane_capacity < 1) {
    return Status::InvalidArgument(
        "ExecutionOptions.pipeline_lane_capacity must be >= 1 under "
        "region_mode pipelined (it is the per-lane flow-control window in "
        "envelopes), got " +
        std::to_string(options.pipeline_lane_capacity));
  }
  for (const auto& [name, capacity] : options.pipeline_capacity_overrides) {
    if (capacity < 1) {
      return Status::InvalidArgument(
          "pipeline_capacity_overrides[\"" + name + "\"] must be >= 1, got " +
          std::to_string(capacity));
    }
    bool found = false;
    for (const PhysicalTask& task : plan.tasks) {
      if (task.name != name) continue;
      found = true;
      if (IsLoopTask(task)) {
        return Status::InvalidArgument(
            "pipeline_capacity_overrides[\"" + name +
            "\"] names a loop task — loop exchanges keep superstep phase "
            "semantics and are never bounded; pipelining applies to "
            "non-loop edges only");
      }
      if (!IsStreamingKind(task.kind)) {
        return Status::InvalidArgument(
            "pipeline_capacity_overrides[\"" + name +
            "\"] names a pipeline breaker (" +
            std::string(OperatorKindName(task.kind)) +
            ") — it materializes its input before producing, so its input "
            "edges stay unbounded");
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "pipeline_capacity_overrides names unknown task \"" + name + "\"");
    }
  }
  return Status::OK();
}

/// One-shot setup: validates the plan and builds the channels, consumer
/// index, iteration runtimes and sink slots for degree-of-parallelism P.
/// Shared between Run (setup → schedule → tear down) and StartSession
/// (setup once, re-enter rounds warm).
Status SetupContext(const PhysicalPlan& plan, const ExecutionOptions& options,
                    int P, ExecContext* ctx_out) {
  SFDF_RETURN_NOT_OK(ValidatePhysicalPlan(plan));

  ExecContext& ctx = *ctx_out;
  ctx.plan = &plan;
  ctx.parallelism = P;
  ctx.record_stats = options.record_superstep_stats;
  ctx.cache_spill_budget = options.cache_spill_budget_bytes;
  ctx.checkpoint_superstep = options.checkpoint_superstep;
  ctx.checkpoint_path = options.checkpoint_path;
  ctx.sync_mode = options.sync_mode;
  ctx.staleness_bound =
      options.sync_mode == SyncMode::kBoundedStale ? options.staleness_bound
                                                   : 0;
  ctx.region_mode = options.region_mode;

  // --- channels & consumer index ---
  ctx.channels.resize(plan.tasks.size());
  ctx.consumer_edges.resize(plan.tasks.size());
  ctx.sink_slots.resize(plan.tasks.size());
  for (const PhysicalTask& task : plan.tasks) {
    ctx.channels[task.id].resize(task.inputs.size());
    for (size_t port = 0; port < task.inputs.size(); ++port) {
      for (int p = 0; p < P; ++p) {
        ctx.channels[task.id][port].push_back(std::make_unique<Exchange>(P));
      }
      ctx.consumer_edges[task.inputs[port].producer].emplace_back(
          task.id, static_cast<int>(port));
    }
    if (task.kind == OperatorKind::kSink) {
      ctx.sink_slots[task.id].resize(P);
      SFDF_CHECK(task.sink_out != nullptr) << "sink without output vector";
      task.sink_out->clear();
    }
  }

  // --- pipelined-region lane capacities ---
  // An edge is bounded exactly when BOTH endpoints run as streaming
  // pipelined units: the producer can be backpressured (it yields and
  // resumes) and the consumer drains incrementally (so credit flows back).
  // Loop edges, edges touching a loop region and breaker edges stay
  // unbounded — zero behavior change for everything already working.
  if (ctx.region_mode == RegionMode::kPipelined) {
    for (const PhysicalTask& task : plan.tasks) {
      if (!IsPipelinedTask(task)) continue;
      int64_t capacity = options.pipeline_lane_capacity;
      const auto it = options.pipeline_capacity_overrides.find(task.name);
      if (it != options.pipeline_capacity_overrides.end()) {
        capacity = it->second;
      }
      for (size_t port = 0; port < task.inputs.size(); ++port) {
        if (!IsPipelinedTask(plan.tasks[task.inputs[port].producer])) continue;
        for (int p = 0; p < P; ++p) {
          ctx.channels[task.id][port][p]->set_lane_capacity(capacity);
        }
      }
    }
  }

  // --- iteration runtimes ---
  std::vector<int> loop_tasks_bulk(plan.bulk_iterations.size(), 0);
  std::vector<int> loop_tasks_ws(plan.workset_iterations.size(), 0);
  for (const PhysicalTask& task : plan.tasks) {
    if (IsLoopTask(task)) {
      if (task.bulk_iteration >= 0) ++loop_tasks_bulk[task.bulk_iteration];
      if (task.workset_iteration >= 0) ++loop_tasks_ws[task.workset_iteration];
    }
  }
  for (size_t i = 0; i < plan.bulk_iterations.size(); ++i) {
    const PhysicalBulkIteration& spec = plan.bulk_iterations[i];
    auto rt = std::make_unique<BulkRuntime>();
    rt->feedback.resize(P);
    rt->has_term = spec.term_sink_task >= 0;
    rt->max_iterations = spec.max_iterations;
    rt->metrics = &ctx.metrics;
    rt->record_stats = ctx.record_stats;
    BulkRuntime* raw = rt.get();
    rt->coordinator = std::make_unique<SuperstepCoordinator>(
        loop_tasks_bulk[i] * P, MakeBulkDecide(&ctx, raw));
    ctx.bulk.push_back(std::move(rt));
  }

  for (size_t i = 0; i < plan.workset_iterations.size(); ++i) {
    const PhysicalWorksetIteration& spec = plan.workset_iterations[i];
    auto rt = std::make_unique<WorksetRuntime>();
    rt->parallelism = P;
    rt->route_key = spec.workset_route_key;
    rt->solution_key = spec.solution_key;
    rt->immediate_apply = spec.immediate_apply;
    rt->microstep = spec.microstep;
    rt->max_iterations = spec.max_iterations;
    rt->metrics = &ctx.metrics;
    rt->record_stats = ctx.record_stats;
    rt->front.resize(P);
    rt->back.resize(P);
    for (int p = 0; p < P; ++p) {
      rt->back_mutex.push_back(std::make_unique<std::mutex>());
      rt->index.push_back(
          spec.use_btree_index
              ? MakeBTreeSolutionIndex(spec.solution_key, spec.comparator)
              : MakeHashSolutionIndex(spec.solution_key, spec.comparator));
    }
    if (spec.microstep) {
      rt->detector = std::make_unique<QuiescenceDetector>(P);
      for (int p = 0; p < P; ++p) {
        rt->queues.push_back(std::make_unique<MicroQueue>());
      }
      rt->report.ran_microsteps = true;
    } else {
      WorksetRuntime* raw = rt.get();
      rt->coordinator = std::make_unique<SuperstepCoordinator>(
          loop_tasks_ws[i] * P, MakeWorksetDecide(&ctx, raw));
      if (ctx.sync_mode != SyncMode::kSuperstep) {
        // Barrier-free: feedback flows through per-partition exchanges
        // (one lane per tail instance), bookkept by the coordinator's
        // quiescence/staleness side. ValidateSyncMode vouched for the
        // plan (idempotent-safe ∪̇, no bulk, no microstep).
        rt->barrier_free = true;
        rt->report.ran_async = true;
        rt->coordinator->EnableBarrierFree(P, ctx.staleness_bound);
        rt->async_round_base.assign(static_cast<size_t>(P), 0);
        for (int p = 0; p < P; ++p) {
          rt->async_feedback.push_back(std::make_unique<Exchange>(P));
          rt->async_parts.push_back(
              std::make_unique<WorksetRuntime::AsyncPart>());
        }
      }
    }
    ctx.workset.push_back(std::move(rt));
  }
  return Status::OK();
}

/// Post-drain epilogue: merges the sink slots deterministically and
/// assembles the aggregate statistics.
ExecutionResult AssembleResult(const PhysicalPlan& plan, ExecContext* ctx_ptr,
                               double total_millis) {
  ExecContext& ctx = *ctx_ptr;
  const int P = ctx.parallelism;

  // --- merge sink slots deterministically by partition ---
  for (const PhysicalTask& task : plan.tasks) {
    if (task.kind != OperatorKind::kSink) continue;
    for (int p = 0; p < P; ++p) {
      auto& slot = ctx.sink_slots[task.id][p];
      task.sink_out->insert(task.sink_out->end(), slot.begin(), slot.end());
    }
  }

  // --- fold exchange-health counters into the metrics ---
  // Safe here: every producer/consumer task has completed, so the per-lane
  // relaxed counters are exact.
  for (const auto& task_channels : ctx.channels) {
    for (const auto& port_channels : task_channels) {
      for (const auto& exchange : port_channels) {
        const Exchange::Stats s = exchange->stats();
        ctx.metrics.RecordQueueDepth(s.depth_high_water);
        ctx.metrics.CountBatchPool(s.pool_hits, s.pool_misses);
        ctx.metrics.AddPeakResidentSegments(s.peak_resident_segments);
      }
    }
  }

  // --- assemble result ---
  ExecutionResult result;
  result.total_millis = total_millis;
  result.records_shipped = ctx.metrics.records_shipped();
  result.records_remote = ctx.metrics.records_remote();
  result.bytes_shipped = ctx.metrics.bytes_shipped();
  result.records_combined = ctx.metrics.records_combined();
  result.queue_depth_high_water = ctx.metrics.queue_depth_high_water();
  result.batch_pool_hits = ctx.metrics.batch_pool_hits();
  result.batch_pool_misses = ctx.metrics.batch_pool_misses();
  result.backpressure_stalls = ctx.metrics.backpressure_stalls();
  result.producer_yields = ctx.metrics.producer_yields();
  result.peak_resident_segments = ctx.metrics.peak_resident_segments();
  for (auto& rt : ctx.bulk) {
    result.bulk_reports.push_back(std::move(rt->report));
  }
  for (auto& rt : ctx.workset) {
    if (rt->microstep) {
      rt->report.iterations = 1;
      rt->report.converged = true;
      SuperstepStats stats;
      stats.superstep = 0;
      stats.millis = result.total_millis;
      stats.workset_size = rt->micro_processed.load();
      int64_t lookups;
      int64_t applied;
      int64_t discarded;
      rt->SumIndexStats(&lookups, &applied, &discarded);
      stats.solution_lookups = lookups;
      stats.delta_applied = applied;
      stats.delta_discarded = discarded;
      rt->report.supersteps.push_back(stats);
    }
    if (rt->barrier_free) {
      // Local rounds have no global superstep rows; synthesize one like
      // the microstep path (the report's iteration/convergence fields were
      // filled by the round's last-finishing unit). Plus the barrier-free
      // observability counters.
      const SuperstepCoordinator& co = *rt->coordinator;
      if (rt->record_stats) {
        SuperstepStats stats;
        stats.superstep = 0;
        stats.millis = result.total_millis;
        stats.workset_size = co.records_processed();
        int64_t lookups;
        int64_t applied;
        int64_t discarded;
        rt->SumIndexStats(&lookups, &applied, &discarded);
        stats.solution_lookups = lookups;
        stats.delta_applied = applied;
        stats.delta_discarded = discarded;
        rt->report.supersteps.push_back(stats);
      }
      for (int p = 0; p < P; ++p) {
        result.async_local_rounds.push_back(co.rounds_executed(p));
      }
      result.async_vote_revocations += co.vote_revocations();
      result.async_max_staleness =
          std::max(result.async_max_staleness, co.max_staleness());
    }
    result.workset_reports.push_back(std::move(rt->report));
  }
  return result;
}

// ---------------------------------------------------------------------------
// PlanSchedule: dataflow-topological scheduling on the engine
// ---------------------------------------------------------------------------

/// One loop task instance of a superstep wave.
struct LoopUnit {
  TaskInstance* instance = nullptr;
  LoopProgram program;
};

/// A schedulable region of the plan. The plan's exchange graph is a DAG —
/// every feedback edge of an iteration goes through in-memory buffers
/// swapped at the superstep gate, not through an exchange — so regions can
/// run strictly producers-before-consumers:
///   kTask  — one non-loop physical task: P one-shot units, runnable once
///            every producer region completed (its input phases are then
///            fully delivered, so the existing streaming drivers run
///            without ever blocking).
///   kWave  — one superstep iteration: self-scheduling superstep waves
///            (see ScheduleWave); completes after its final flush.
///   kMicro — one fused microstep iteration: P cooperative polling units.
///   kAsync — one barrier-free workset iteration (sync_mode != superstep):
///            P cooperative per-partition round tasks, each running its
///            partition's whole loop pipeline over whatever the lanes
///            currently hold (see RunAsyncRound).
struct SchedNode {
  enum class Kind { kTask, kWave, kMicro, kAsync };
  Kind kind = Kind::kTask;
  int task_id = -1;    ///< kTask
  /// kTask under region_mode kPipelined, streaming operator: the node runs
  /// as P cooperative polling units (PipelinedInstance) scheduled at
  /// Start() — it has no region predecessors, only successors.
  bool pipelined = false;
  bool is_bulk = false;
  int iteration = -1;  ///< index into ctx.bulk / ctx.workset
  std::vector<int> dependents;
  std::atomic<int> pending_deps{0};
  // kTask:
  std::atomic<int> units_remaining{0};
  // kWave:
  SuperstepCoordinator* coordinator = nullptr;
  /// Wave stages: the loop units grouped by in-loop dataflow depth. Stage
  /// k+1 is enqueued once stage k fully finished, so every in-loop
  /// ReadPhase finds its producers' superstep phase already delivered.
  std::vector<std::vector<LoopUnit>> stages;
  std::vector<std::unique_ptr<std::atomic<int>>> stage_remaining;
  /// Resident session iteration: a terminated wave hands the round
  /// boundary to the session controller instead of final-flushing; the
  /// node only completes when Finish schedules the flush.
  bool session_resident = false;
  /// Flight-recorder stash: the wave's start time, written by ScheduleWave
  /// and read by the wave-closing arrival in OnLoopUnitDone (ordered by the
  /// arrival gate).
  int64_t wave_start_ns = 0;
  std::atomic<int> flush_remaining{0};
  // kMicro:
  std::vector<std::unique_ptr<MicrostepInstance>> micro_units;
  std::atomic<int> micro_remaining{0};
  /// One engine park slot per micro unit (indexed by partition): idle units
  /// park there instead of busy re-polling; destroyed in NodeComplete.
  /// kAsync reuses both — micro_remaining counts its per-round unit
  /// countdown, micro_park_slots holds its per-partition idle/staleness
  /// park slots.
  std::vector<uint64_t> micro_park_slots;
  // kAsync: partition p's loop units in stage order (views into `stages`,
  // which BuildWave still populates — ScheduleFinalFlush and the shutdown
  // path run unchanged off the stages).
  std::vector<std::vector<LoopUnit*>> async_pipeline;
  // pipelined kTask: the P polling units and their park slots. The slots
  // outlive NodeComplete (unlike micro_park_slots) because a producer can
  // still be inside Push→waker while this consumer node completes; they
  // are destroyed in ~PlanSchedule, after WaitPlanDone proved no task is
  // running. micro_remaining doubles as the unit countdown.
  std::vector<std::unique_ptr<PipelinedInstance>> pipe_units;
  std::vector<uint64_t> pipe_park_slots;
};

class PlanSchedule {
 public:
  PlanSchedule(const PhysicalPlan* plan, ExecContext* ctx, Engine* engine,
               std::string client_name, bool session_mode)
      : plan_(plan),
        ctx_(ctx),
        engine_(engine),
        session_mode_(session_mode) {
    client_ = engine_->RegisterClient(std::move(client_name));
    BuildInstances();
    BuildNodes();
    BuildPipelined();
  }

  /// The owner destroys the schedule only after WaitPlanDone (or, for an
  /// abandoned session, after Finish ran) — the client queue is drained,
  /// so the pipelined park slots (kept alive past NodeComplete, see
  /// SchedNode) can be freed here.
  ~PlanSchedule() {
    for (auto& node : nodes_) {
      for (uint64_t slot : node->pipe_park_slots) {
        engine_->DestroyParkSlot(slot);
      }
    }
    engine_->UnregisterClient(client_);
  }

  PlanSchedule(const PlanSchedule&) = delete;
  PlanSchedule& operator=(const PlanSchedule&) = delete;

  int client() const { return client_; }

  /// Enqueues every dependency-free region; the rest self-schedule as
  /// their producers complete.
  void Start() {
    if (session_mode_) {
      std::lock_guard<std::mutex> lock(mutex_);
      round_running_ = true;  // the cold round is in flight from the start
    }
    // Snapshot the dependency-free set BEFORE submitting anything: once the
    // first region is enqueued, workers may complete it and schedule its
    // dependents concurrently, and reading pending_deps mid-loop would then
    // double-schedule a region that just hit zero.
    std::vector<int> ready;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i]->pending_deps.load(std::memory_order_acquire) == 0) {
        ready.push_back(static_cast<int>(i));
      }
    }
    for (int id : ready) ScheduleNodeById(id);
  }

  /// Blocks until every region completed (one-shot runs; session Finish).
  void WaitPlanDone() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return nodes_remaining_ == 0; });
  }

  // --- session controller API (resident workset iteration) ----------------

  /// Blocks until the in-flight round's wave terminated. On return no task
  /// of the resident iteration is scheduled, so the controller may read and
  /// reseed the resident state (the wait's mutex publishes the wave's
  /// writes; the next round's engine submits publish the controller's).
  void WaitRoundDone() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !round_running_; });
  }

  /// Like WaitRoundDone, but additionally waits until every region that can
  /// run before Finish has fully completed — its last unit has left
  /// NodeComplete. Required before destroying the schedule (Reconfigure's
  /// teardown): the resident wave can close the cold round while an
  /// upstream source's final unit is still between its dependent hand-off
  /// and the nodes_remaining_ decrement, and WaitRoundDone alone would let
  /// the destructor free the mutex under that thread.
  void WaitQuiesced() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] {
      return !round_running_ && nodes_remaining_ <= resident_pending_;
    });
  }

  /// Releases a warm round: the controller has reseeded W_0 and re-armed
  /// the coordinator; schedule the next superstep wave.
  void BeginRound() {
    SchedNode* node = nodes_[resident_node_].get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SFDF_CHECK(!round_running_) << "BeginRound while a round is in flight";
      round_running_ = true;
    }
    if (node->kind == SchedNode::Kind::kAsync) {
      // Barrier-free warm round: every partition restarts its local-round
      // loop from the reseeded W_0.
      const int P = ctx_->parallelism;
      node->micro_remaining.store(P, std::memory_order_relaxed);
      for (int p = 0; p < P; ++p) SubmitAsyncRound(node, p);
      return;
    }
    ScheduleWave(node);
  }

  /// Session shutdown: final-flush the resident iteration; its downstream
  /// regions then drain normally (WaitPlanDone observes the end).
  void BeginShutdown() { ScheduleFinalFlush(nodes_[resident_node_].get()); }

 private:
  TaskInstance* instance(int task_id, int p) {
    return instances_[static_cast<size_t>(task_id) * ctx_->parallelism + p]
        .get();
  }

  void BuildInstances() {
    const int P = ctx_->parallelism;
    instances_.resize(plan_->tasks.size() * static_cast<size_t>(P));
    for (const PhysicalTask& task : plan_->tasks) {
      if (task.workset_iteration >= 0 &&
          plan_->workset_iterations[task.workset_iteration].microstep &&
          IsLoopTask(task)) {
        continue;  // fused into MicrostepInstance units
      }
      if (ctx_->region_mode == RegionMode::kPipelined &&
          IsPipelinedTask(task)) {
        continue;  // runs as PipelinedInstance units (BuildPipelined)
      }
      for (int p = 0; p < P; ++p) {
        instances_[static_cast<size_t>(task.id) * P + p] =
            std::make_unique<TaskInstance>(ctx_, &task, p);
      }
    }
  }

  void BuildNodes() {
    auto add_node = [&](SchedNode::Kind kind) {
      nodes_.push_back(std::make_unique<SchedNode>());
      nodes_.back()->kind = kind;
      return static_cast<int>(nodes_.size()) - 1;
    };
    std::vector<int> bulk_node(plan_->bulk_iterations.size(), -1);
    std::vector<int> ws_node(plan_->workset_iterations.size(), -1);
    for (size_t i = 0; i < plan_->bulk_iterations.size(); ++i) {
      int id = add_node(SchedNode::Kind::kWave);
      nodes_[id]->is_bulk = true;
      nodes_[id]->iteration = static_cast<int>(i);
      nodes_[id]->coordinator = ctx_->bulk[i]->coordinator.get();
      bulk_node[i] = id;
    }
    for (size_t i = 0; i < plan_->workset_iterations.size(); ++i) {
      const bool micro = plan_->workset_iterations[i].microstep;
      const bool async = !micro && ctx_->workset[i]->barrier_free;
      int id = add_node(micro   ? SchedNode::Kind::kMicro
                        : async ? SchedNode::Kind::kAsync
                                : SchedNode::Kind::kWave);
      nodes_[id]->iteration = static_cast<int>(i);
      if (!micro) nodes_[id]->coordinator = ctx_->workset[i]->coordinator.get();
      ws_node[i] = id;
    }
    node_of_task_.assign(plan_->tasks.size(), -1);
    for (const PhysicalTask& task : plan_->tasks) {
      if (IsLoopTask(task)) {
        node_of_task_[task.id] = task.bulk_iteration >= 0
                                     ? bulk_node[task.bulk_iteration]
                                     : ws_node[task.workset_iteration];
      } else {
        int id = add_node(SchedNode::Kind::kTask);
        nodes_[id]->task_id = task.id;
        nodes_[id]->pipelined = ctx_->region_mode == RegionMode::kPipelined &&
                                IsPipelinedTask(task);
        node_of_task_[task.id] = id;
      }
    }
    // Region dependencies: every exchange edge whose endpoints live in
    // different regions, deduplicated. A pipelined consumer registers NO
    // predecessors — its polling units start at Start() and park until
    // data arrives — but it still counts as a producer, so a breaker
    // downstream of it waits for its completion as before.
    std::vector<std::set<int>> preds(nodes_.size());
    for (const PhysicalTask& task : plan_->tasks) {
      for (const PhysicalInput& input : task.inputs) {
        int a = node_of_task_[input.producer];
        int b = node_of_task_[task.id];
        if (a != b && !nodes_[b]->pipelined) preds[b].insert(a);
      }
    }
    for (size_t b = 0; b < nodes_.size(); ++b) {
      nodes_[b]->pending_deps.store(static_cast<int>(preds[b].size()),
                                    std::memory_order_relaxed);
      for (int a : preds[b]) {
        nodes_[a]->dependents.push_back(static_cast<int>(b));
      }
    }
    nodes_remaining_ = static_cast<int>(nodes_.size());
    if (session_mode_) {
      resident_node_ = ws_node[0];
      nodes_[resident_node_]->session_resident = true;
      // Regions that cannot complete before Finish: the resident loop and
      // everything downstream of it (never released while the session
      // serves). Everything else must have fully completed — its last unit
      // out of NodeComplete — before the schedule may be torn down
      // (WaitQuiesced).
      std::vector<char> held(nodes_.size(), 0);
      std::vector<int> stack = {resident_node_};
      held[resident_node_] = 1;
      while (!stack.empty()) {
        const int id = stack.back();
        stack.pop_back();
        for (int dep : nodes_[id]->dependents) {
          if (!held[dep]) {
            held[dep] = 1;
            stack.push_back(dep);
          }
        }
      }
      for (char h : held) resident_pending_ += h;
    }
  }

  /// Builds the polling units, park slots and wake wiring of every
  /// pipelined node. Runs in the constructor, strictly before Start()
  /// submits anything: the consumer wakers installed here are read by
  /// producer Pushes, and the engine submit is the publish between the two.
  void BuildPipelined() {
    const int P = ctx_->parallelism;
    for (auto& node_ptr : nodes_) {
      SchedNode* node = node_ptr.get();
      if (node->kind != SchedNode::Kind::kTask || !node->pipelined) continue;
      const PhysicalTask& task = plan_->tasks[node->task_id];
      for (int p = 0; p < P; ++p) {
        node->pipe_units.push_back(
            std::make_unique<PipelinedInstance>(ctx_, &task, p));
        node->pipe_park_slots.push_back(engine_->CreateParkSlot(client_));
      }
      // Wake-on-publish: every Push into any input lane of partition p's
      // exchanges wakes its unit if parked (Exchange::Push invokes the
      // waker after the envelope is visible, and the park/wake handshake
      // absorbs wakes that land while the unit is running).
      for (size_t port = 0; port < task.inputs.size(); ++port) {
        for (int p = 0; p < P; ++p) {
          const uint64_t slot = node->pipe_park_slots[p];
          ctx_->channels[task.id][port][p]->set_consumer_waker(
              [this, slot] { engine_->Wake(slot); });
        }
      }
    }
  }

  void ScheduleNodeById(int id) {
    SchedNode* node = nodes_[id].get();
    const int P = ctx_->parallelism;
    switch (node->kind) {
      case SchedNode::Kind::kTask: {
        if (node->pipelined) {
          node->micro_remaining.store(P, std::memory_order_relaxed);
          for (auto& unit : node->pipe_units) {
            SubmitPipeStep(node, unit.get());
          }
          break;
        }
        node->units_remaining.store(P, std::memory_order_relaxed);
        for (int p = 0; p < P; ++p) {
          TaskInstance* inst = instance(node->task_id, p);
          engine_->Submit(client_, [this, node, inst] {
            inst->RunOnce();
            if (node->units_remaining.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
              NodeComplete(node);
            }
          });
        }
        break;
      }
      case SchedNode::Kind::kWave:
        BuildWave(node);
        ScheduleWave(node);
        break;
      case SchedNode::Kind::kMicro: {
        BuildMicro(node);
        node->micro_remaining.store(P, std::memory_order_relaxed);
        for (auto& unit : node->micro_units) {
          SubmitMicroStep(node, unit.get());
        }
        break;
      }
      case SchedNode::Kind::kAsync: {
        BuildWave(node);  // stages (final flush / shutdown reuse them)
        BuildAsyncPipelines(node);
        node->micro_remaining.store(P, std::memory_order_relaxed);
        for (int p = 0; p < P; ++p) SubmitAsyncRound(node, p);
        break;
      }
    }
  }

  /// Groups the iteration's loop units into stages by in-loop dataflow
  /// depth and creates their resumable programs (whose closures then hold
  /// all cross-superstep state).
  void BuildWave(SchedNode* node) {
    const int P = ctx_->parallelism;
    std::vector<const PhysicalTask*> members;
    for (const PhysicalTask& task : plan_->tasks) {
      if (!IsLoopTask(task)) continue;
      if (node->is_bulk ? task.bulk_iteration == node->iteration
                        : task.workset_iteration == node->iteration) {
        members.push_back(&task);
      }
    }
    // In-loop depth: 1 + max over in-loop producers; heads (no in-loop
    // input) sit at 0. Relax to fixpoint — loop bodies are tiny DAGs.
    std::vector<int> depth(plan_->tasks.size(), 0);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const PhysicalTask* task : members) {
        int want = 0;
        for (const PhysicalInput& input : task->inputs) {
          const PhysicalTask& producer = plan_->tasks[input.producer];
          if (IsLoopTask(producer) && SameLoop(producer, *task)) {
            want = std::max(want, depth[producer.id] + 1);
          }
        }
        if (want != depth[task->id]) {
          depth[task->id] = want;
          changed = true;
        }
      }
    }
    int max_depth = 0;
    for (const PhysicalTask* task : members) {
      max_depth = std::max(max_depth, depth[task->id]);
    }
    node->stages.assign(static_cast<size_t>(max_depth) + 1, {});
    for (const PhysicalTask* task : members) {
      for (int p = 0; p < P; ++p) {
        TaskInstance* inst = instance(task->id, p);
        node->stages[depth[task->id]].push_back(
            LoopUnit{inst, inst->MakeLoopProgram()});
      }
    }
    node->stage_remaining.clear();
    int total = 0;
    for (const auto& stage : node->stages) {
      node->stage_remaining.push_back(std::make_unique<std::atomic<int>>(0));
      total += static_cast<int>(stage.size());
    }
    SFDF_CHECK(total == node->coordinator->num_participants())
        << "wave units out of sync with the coordinator's participants";
  }

  /// Enqueues one superstep: stage 0 now, later stages as their
  /// predecessors drain, everyone through the arrival gate at the end.
  void ScheduleWave(SchedNode* node) {
    node->wave_start_ns = trace::NowNs();
    const int64_t superstep = node->coordinator->superstep();
    for (size_t k = 0; k < node->stages.size(); ++k) {
      node->stage_remaining[k]->store(static_cast<int>(node->stages[k].size()),
                                      std::memory_order_relaxed);
    }
    SubmitStage(node, 0, superstep);
  }

  void SubmitStage(SchedNode* node, size_t stage, int64_t superstep) {
    for (LoopUnit& ref : node->stages[stage]) {
      LoopUnit* unit = &ref;
      engine_->Submit(client_, [this, node, unit, stage, superstep] {
        unit->program.body(superstep);
        OnLoopUnitDone(node, stage, superstep);
      });
    }
  }

  void OnLoopUnitDone(SchedNode* node, size_t stage, int64_t superstep) {
    // Arrival gate (superstep.h): every participant arrives exactly once
    // per wave; the completion step (termination decide + phase flip) runs
    // inside the last arrival, which can only happen in the final stage.
    const bool wave_closed = node->coordinator->Arrive();
    if (stage + 1 < node->stages.size()) {
      SFDF_DCHECK(!wave_closed);
      if (node->stage_remaining[stage]->fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        SubmitStage(node, stage + 1, superstep);
      }
      return;
    }
    if (!wave_closed) return;
    static const uint16_t kWave = trace::RegisterName("superstep.wave");
    trace::EmitSpan(kWave, node->wave_start_ns, superstep);
    if (!node->coordinator->terminated()) {
      ScheduleWave(node);  // next superstep's task wave
      return;
    }
    if (node->session_resident) {
      // Round boundary: hand control to the session controller. Nothing of
      // this iteration stays scheduled — the session now costs no worker
      // time until RunRound releases the next wave or Finish flushes.
      std::lock_guard<std::mutex> lock(mutex_);
      round_running_ = false;
      cv_.notify_all();
      return;
    }
    ScheduleFinalFlush(node);
  }

  void ScheduleFinalFlush(SchedNode* node) {
    int total = 0;
    for (const auto& stage : node->stages) {
      total += static_cast<int>(stage.size());
    }
    node->flush_remaining.store(total, std::memory_order_relaxed);
    for (auto& stage : node->stages) {
      for (LoopUnit& ref : stage) {
        LoopUnit* unit = &ref;
        engine_->Submit(client_, [this, node, unit] {
          unit->program.final_flush();
          if (node->flush_remaining.fetch_sub(
                  1, std::memory_order_acq_rel) == 1) {
            NodeComplete(node);
          }
        });
      }
    }
  }

  void BuildMicro(SchedNode* node) {
    const PhysicalWorksetIteration& spec =
        plan_->workset_iterations[node->iteration];
    // Chain = the dynamic body tasks in dataflow order, starting from the
    // head's unique consumer.
    std::vector<const PhysicalTask*> chain;
    int cursor = -1;
    for (const auto& [consumer, port] : ctx_->consumer_edges[spec.head_task]) {
      (void)port;
      if (ctx_->task(consumer).role != TaskRole::kWorksetTail) {
        cursor = consumer;
      }
    }
    while (cursor >= 0) {
      const PhysicalTask& task = ctx_->task(cursor);
      chain.push_back(&task);
      int next = -1;
      for (const auto& [consumer, port] : ctx_->consumer_edges[cursor]) {
        (void)port;
        const PhysicalTask& c = ctx_->task(consumer);
        if (c.role == TaskRole::kRegular && IsLoopTask(c)) next = consumer;
        if (c.role == TaskRole::kSolutionJoin) next = consumer;
      }
      cursor = next;
    }
    const PhysicalTask* delta_apply = &ctx_->task(spec.delta_apply_task);
    for (int p = 0; p < ctx_->parallelism; ++p) {
      node->micro_units.push_back(std::make_unique<MicrostepInstance>(
          ctx_, node->iteration, p, chain, delta_apply));
      node->micro_park_slots.push_back(engine_->CreateParkSlot(client_));
    }
    for (auto& unit : node->micro_units) {
      unit->set_waker(
          [this, node](int target) {
            engine_->Wake(node->micro_park_slots[target]);
          });
    }
  }

  void SubmitMicroStep(SchedNode* node, MicrostepInstance* unit) {
    engine_->Submit(client_, [this, node, unit] { RunMicroStep(node, unit); });
  }

  void RunMicroStep(SchedNode* node, MicrostepInstance* unit) {
    switch (unit->Step()) {
      case MicroStatus::kWorked:
        SubmitMicroStep(node, unit);  // cooperative re-enqueue
        return;
      case MicroStatus::kIdle:
        // Nothing queued for this partition: park until a peer stages
        // records for it or broadcasts quiescence. A wake that raced this
        // decision is pending inside the slot and re-enqueues immediately.
        engine_->Park(node->micro_park_slots[unit->partition()],
                      [this, node, unit] { RunMicroStep(node, unit); });
        return;
      case MicroStatus::kDone:
        // This unit observed global quiescence; peers may be parked on
        // empty queues and can only learn it from us. Broadcast before the
        // arrival decrement so every slot is still alive (NodeComplete —
        // which frees them — needs all units, including this one, done).
        for (size_t p = 0; p < node->micro_park_slots.size(); ++p) {
          if (static_cast<int>(p) != unit->partition()) {
            engine_->Wake(node->micro_park_slots[p]);
          }
        }
        if (node->micro_remaining.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          NodeComplete(node);
        }
        return;
    }
  }

  // --- pipelined region (kTask, pipelined) scheduling ----------------------

  void SubmitPipeStep(SchedNode* node, PipelinedInstance* unit) {
    engine_->Submit(client_, [this, node, unit] { RunPipeStep(node, unit); });
  }

  void RunPipeStep(SchedNode* node, PipelinedInstance* unit) {
    switch (unit->Step()) {
      case PipeStatus::kWorked:
        SubmitPipeStep(node, unit);  // cooperative re-enqueue
        return;
      case PipeStatus::kYield:
        // Backpressured: the outputs are stalled and there is nothing else
        // to do. Re-enqueue rather than park — the per-client FIFO places
        // this retry behind the consumer's already-queued poll, so the
        // consumer gets a worker first and opens the window again.
        ctx_->metrics.CountProducerYield(1);
        {
          static const uint16_t kYield = trace::RegisterName("pipe.yield");
          trace::Instant(kYield, unit->partition());
        }
        SubmitPipeStep(node, unit);
        return;
      case PipeStatus::kIdle:
        // Every open input lane is empty: park until a producer publishes
        // (Exchange::Push fires this node's consumer waker). A wake that
        // raced this decision is pending inside the slot and re-enqueues
        // immediately.
        {
          static const uint16_t kPipePark = trace::RegisterName("pipe.park");
          trace::Instant(kPipePark, unit->partition());
        }
        engine_->Park(node->pipe_park_slots[unit->partition()],
                      [this, node, unit] { RunPipeStep(node, unit); });
        return;
      case PipeStatus::kDone:
        if (node->micro_remaining.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          NodeComplete(node);
        }
        return;
    }
  }

  // --- barrier-free (kAsync) scheduling ------------------------------------
  //
  // One cooperative task per partition runs that partition's whole loop
  // pipeline (head → body → tail, stage order) as one "local round" over
  // whatever the lanes currently hold, then re-enqueues itself; with
  // nothing queued it votes quiescent and parks on its slot. Exactly one
  // continuation per partition is ever pending (self-resubmit, park, or
  // nothing after FinishAsyncUnit), so each unit finishes at most once per
  // round. Termination reuses the microstep kDone broadcast: whoever
  // observes quiescence (or trips the per-round iteration cap) sets the
  // coordinator's terminated flag, wakes every peer, and each unit counts
  // itself out through micro_remaining.

  void BuildAsyncPipelines(SchedNode* node) {
    const int P = ctx_->parallelism;
    WorksetRuntime& rt = *ctx_->workset[node->iteration];
    node->async_pipeline.assign(static_cast<size_t>(P), {});
    // stages outer, partitions inner: each partition's list stays in stage
    // order (same-depth tasks are mutually independent).
    for (auto& stage : node->stages) {
      for (LoopUnit& unit : stage) {
        node->async_pipeline[unit.instance->partition()].push_back(&unit);
      }
    }
    for (int p = 0; p < P; ++p) {
      node->micro_park_slots.push_back(engine_->CreateParkSlot(client_));
    }
    rt.async_wake = [this, node](int target) {
      engine_->Wake(node->micro_park_slots[static_cast<size_t>(target)]);
    };
    for (auto& stage : node->stages) {
      for (LoopUnit& unit : stage) unit.instance->InstallAsyncHooks();
    }
  }

  void SubmitAsyncRound(SchedNode* node, int p) {
    engine_->Submit(client_, [this, node, p] { RunAsyncRound(node, p); });
  }

  void BroadcastAsyncWake(SchedNode* node, int self) {
    // Same liveness rule as the microstep kDone broadcast: peers may be
    // parked on empty lanes and can only learn about termination — or an
    // advanced staleness minimum — from us. Runs before this unit's own
    // countdown decrement, so every slot is still alive.
    for (size_t p = 0; p < node->micro_park_slots.size(); ++p) {
      if (static_cast<int>(p) != self) {
        engine_->Wake(node->micro_park_slots[p]);
      }
    }
  }

  void RunAsyncRound(SchedNode* node, int p) {
    WorksetRuntime& rt = *ctx_->workset[node->iteration];
    SuperstepCoordinator* co = rt.coordinator.get();
    WorksetRuntime::AsyncPart& ap = *rt.async_parts[p];

    // A peer ended the round. One exception: a partition that never read
    // its W_0 share (the cap fired before its first local round) must
    // still consume it — the records would otherwise be dropped by the
    // next round's seed Reset instead of continuing as leftover.
    if (co->terminated() && !ap.w0_pending) {
      FinishAsyncUnit(node, p);
      return;
    }

    bool has_work = ap.w0_pending || rt.async_feedback[p]->HasQueued();
    if (!has_work) {
      for (LoopUnit* unit : node->async_pipeline[p]) {
        if (unit->instance->AnyLoopInputReadable()) {
          has_work = true;
          break;
        }
      }
    }
    if (!has_work) {
      if (co->Quiescent()) {
        // Nothing queued anywhere, nobody mid-round: this partition ends
        // the iteration for everyone (the decide step of the barrier-free
        // protocol).
        co->FinishBarrierFree(/*capped=*/false);
        BroadcastAsyncWake(node, p);
        FinishAsyncUnit(node, p);
        return;
      }
      co->CastQuiescentVote(p);
      // Idle ≠ behind: bump to the fastest peer so this partition never
      // holds the staleness minimum down while contributing nothing. If
      // the bump advanced the minimum, staleness-parked peers must hear
      // about it — they gate on the minimum we just moved.
      const bool advanced = co->SyncIdleRound(p);
      if (advanced && co->staleness_bound() > 0) BroadcastAsyncWake(node, p);
      static const uint16_t kIdlePark = trace::RegisterName("async.idle.park");
      trace::Instant(kIdlePark, p);
      engine_->Park(node->micro_park_slots[static_cast<size_t>(p)],
                    [this, node, p] { RunAsyncRound(node, p); });
      return;
    }

    if (co->staleness_bound() > 0 &&
        co->local_round(p) - co->MinLocalRound() >=
            static_cast<int64_t>(co->staleness_bound())) {
      // Bounded staleness: too far ahead of the slowest peer — park until
      // the minimum advances. Liveness: the minimum partition itself can
      // never take this branch, and every working round in bounded mode
      // ends in a broadcast wake, so the bound is re-evaluated each time
      // any peer advances.
      static const uint16_t kStalePark =
          trace::RegisterName("async.stale.park");
      trace::Instant(kStalePark, p);
      engine_->Park(node->micro_park_slots[static_cast<size_t>(p)],
                    [this, node, p] { RunAsyncRound(node, p); });
      return;
    }

    co->BeginWorkRound(p);
    const bool had_w0 = ap.w0_pending;  // the head consumes W_0 below
    const int64_t round = co->local_round(p);
    {
      static const uint16_t kRound = trace::RegisterName("async.round");
      trace::Span span(kRound, p);
      for (LoopUnit* unit : node->async_pipeline[p]) {
        unit->program.body(round);
      }
    }
    // Credits of everything this round consumed return only now — after
    // the round's own children were published (and credited), so
    // `pending` can never dip to zero while derived work is in flight.
    // The same rule covers the startup credit: it pins `pending` above
    // zero for the whole first round, not just until the W_0 read.
    co->CreditProcessed(ap.popped_this_round);
    ap.popped_this_round = 0;
    if (had_w0) co->ReleaseStartupCredit();
    co->AdvanceLocalRound(p);

    if (co->rounds_executed(p) - rt.async_round_base[p] >=
        static_cast<int64_t>(rt.max_iterations)) {
      // Per-round iteration cap: stop everyone; queued leftovers keep
      // their credits and continue in the next service round.
      co->FinishBarrierFree(/*capped=*/true);
      BroadcastAsyncWake(node, p);
      FinishAsyncUnit(node, p);
      return;
    }
    if (co->staleness_bound() > 0) BroadcastAsyncWake(node, p);
    SubmitAsyncRound(node, p);
  }

  void FinishAsyncUnit(SchedNode* node, int p) {
    (void)p;
    if (node->micro_remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return;
    }
    // Last unit out fills the round report (every peer's writes are
    // ordered before this point by the acq_rel countdown).
    WorksetRuntime& rt = *ctx_->workset[node->iteration];
    SuperstepCoordinator* co = rt.coordinator.get();
    rt.report.ran_async = true;
    rt.report.iterations = static_cast<int>(co->RoundLocalRounds());
    rt.report.converged = !co->capped();
    rt.report.vote_revocations = co->RoundRevocations();
    rt.report.max_staleness = co->max_staleness();
    if (node->session_resident) {
      std::lock_guard<std::mutex> lock(mutex_);
      round_running_ = false;
      cv_.notify_all();
      return;
    }
    ScheduleFinalFlush(node);
  }

  void NodeComplete(SchedNode* node) {
    for (uint64_t slot : node->micro_park_slots) {
      engine_->DestroyParkSlot(slot);
    }
    node->micro_park_slots.clear();
    for (int dep : node->dependents) {
      SchedNode* d = nodes_[dep].get();
      if (d->pending_deps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        ScheduleNodeById(dep);
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    --nodes_remaining_;
    if (nodes_remaining_ == 0) cv_.notify_all();
  }

  const PhysicalPlan* plan_;
  ExecContext* ctx_;
  Engine* engine_;
  int client_ = -1;
  const bool session_mode_;
  int resident_node_ = -1;

  /// instances_[task * P + p]; null for microstep-fused loop tasks.
  std::vector<std::unique_ptr<TaskInstance>> instances_;
  std::vector<std::unique_ptr<SchedNode>> nodes_;
  std::vector<int> node_of_task_;

  std::mutex mutex_;
  std::condition_variable cv_;
  int nodes_remaining_ = 0;
  /// Nodes held incomplete while the session is resident (the loop and its
  /// downstream regions); WaitQuiesced waits for everything else.
  int resident_pending_ = 0;
  bool round_running_ = false;
};

/// Engine selection: an externally owned engine (multi-tenant host) wins,
/// then a private per-run pool (worker_threads > 0, the "dedicated team"
/// baseline), then the process-wide shared default.
struct EngineRef {
  Engine* engine = nullptr;
  std::unique_ptr<Engine> owned;
};

EngineRef ResolveEngine(const ExecutionOptions& options) {
  EngineRef ref;
  if (options.engine != nullptr) {
    ref.engine = options.engine;
    return ref;
  }
  if (options.worker_threads > 0) {
    ref.owned = std::make_unique<Engine>(
        Engine::Options{.workers = options.worker_threads});
    ref.engine = ref.owned.get();
    return ref;
  }
  ref.engine = &Engine::Default();
  return ref;
}

}  // namespace executor_detail

using namespace executor_detail;  // NOLINT — single-TU detail namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

Executor::Executor(ExecutionOptions options) : options_(std::move(options)) {}

Result<ExecutionResult> Executor::Run(const PhysicalPlan& plan) {
  SFDF_RETURN_NOT_OK(ValidateExecutionOptions(options_));
  SFDF_RETURN_NOT_OK(ValidateSyncMode(plan, options_));
  SFDF_RETURN_NOT_OK(ValidateRegionMode(plan, options_));
  if (options_.trace) trace::SetEnabled(true);
  const int P =
      options_.parallelism > 0 ? options_.parallelism : DefaultParallelism();

  ExecContext ctx;
  SFDF_RETURN_NOT_OK(SetupContext(plan, options_, P, &ctx));
  EngineRef engine = ResolveEngine(options_);

  Stopwatch total_watch;
  ExecutionResult result;
  {
    PlanSchedule schedule(&plan, &ctx, engine.engine, "run",
                          /*session_mode=*/false);
    schedule.Start();
    schedule.WaitPlanDone();
    const Engine::ClientStats stats =
        engine.engine->client_stats(schedule.client());
    result = AssembleResult(plan, &ctx, total_watch.ElapsedMillis());
    result.engine_tasks = stats.tasks_run;
    result.engine_queue_wait_ns_total = stats.queue_wait_ns_total;
    result.engine_queue_wait_ns_max = stats.queue_wait_ns_max;
    result.engine_parks = stats.tasks_parked;
    result.engine_wakes = stats.tasks_woken;
    result.engine_workers = engine.engine->workers();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Session mode (resident iterations; see src/service/)
// ---------------------------------------------------------------------------

/// The resident half of a session: the full execution context plus the
/// schedule whose resident iteration waits between rounds with nothing
/// enqueued. Lives until Finish. Destruction order matters: the schedule
/// (task instances, output ports) dies before the context it references,
/// and the owned engine — whose workers may still be parked — outlives
/// both (members are destroyed in reverse declaration order). The context
/// and schedule are the session's swappable "runtime skeleton": Reconfigure
/// replaces both while the session object — and everything cumulative in
/// it — stays alive, which is what decouples plan wiring from session
/// lifetime.
struct SessionState {
  const PhysicalPlan* plan = nullptr;
  /// The options the session started with; Reconfigure re-derives each new
  /// skeleton from them with only the parallelism swapped.
  ExecutionOptions options;
  std::unique_ptr<Engine> owned_engine;
  Engine* engine = nullptr;
  std::unique_ptr<ExecContext> ctx;
  std::unique_ptr<PlanSchedule> schedule;
  Stopwatch total_watch;
  IterationReport initial_report;
  bool finished = false;

  /// Totals banked from skeletons torn down by Reconfigure. The live
  /// ctx/engine-client only covers the newest skeleton; Finish() and
  /// engine_stats() fold these in so session-lifetime counters survive a
  /// remap. Deliberately NOT seeded into the new ctx's Metrics: the new
  /// WorksetRuntime's per-round marks start at zero against it.
  int64_t carried_shipped = 0;
  int64_t carried_remote = 0;
  int64_t carried_bytes = 0;
  int64_t carried_combined = 0;
  int64_t carried_queue_depth_high_water = 0;
  int64_t carried_pool_hits = 0;
  int64_t carried_pool_misses = 0;
  Engine::ClientStats carried_engine;

  WorksetRuntime& runtime() { return *ctx->workset[0]; }
  const WorksetRuntime& runtime() const { return *ctx->workset[0]; }
};

Result<std::unique_ptr<ExecutionSession>> Executor::StartSession(
    const PhysicalPlan& plan) {
  SFDF_RETURN_NOT_OK(ValidateExecutionOptions(options_));
  SFDF_RETURN_NOT_OK(ValidateSyncMode(plan, options_));
  if (options_.region_mode == RegionMode::kPipelined) {
    return Status::Unsupported(
        "session mode requires region_mode materialize — the resident "
        "round/shutdown protocol assumes downstream regions stay "
        "unscheduled between rounds, which always-live pipelined polling "
        "units would violate");
  }
  if (plan.workset_iterations.size() != 1 || !plan.bulk_iterations.empty()) {
    return Status::InvalidArgument(
        "session mode requires exactly one workset iteration and no bulk "
        "iterations");
  }
  if (plan.workset_iterations[0].microstep) {
    return Status::Unsupported(
        "session mode requires superstep execution — a microstep plan has "
        "no superstep boundary to park rounds at");
  }
  if (options_.trace) trace::SetEnabled(true);
  const int P =
      options_.parallelism > 0 ? options_.parallelism : DefaultParallelism();

  auto state = std::make_unique<SessionState>();
  state->plan = &plan;
  state->options = options_;
  state->ctx = std::make_unique<ExecContext>();
  SFDF_RETURN_NOT_OK(SetupContext(plan, options_, P, state->ctx.get()));
  EngineRef engine = ResolveEngine(options_);
  state->owned_engine = std::move(engine.owned);
  state->engine = engine.engine;

  state->schedule = std::make_unique<PlanSchedule>(
      &plan, state->ctx.get(), state->engine, "session",
      /*session_mode=*/true);

  // The cold round (full initial convergence) starts immediately; hand the
  // session back once its wave terminated — from then on the session has
  // nothing enqueued until the next RunRound.
  state->schedule->Start();
  state->schedule->WaitRoundDone();
  state->initial_report = state->runtime().report;
  return std::unique_ptr<ExecutionSession>(
      new ExecutionSession(std::move(state)));
}

ExecutionSession::ExecutionSession(std::unique_ptr<SessionState> state)
    : state_(std::move(state)) {}

ExecutionSession::~ExecutionSession() {
  if (state_ != nullptr && !state_->finished) {
    auto ignored = Finish();
    (void)ignored;
  }
}

const IterationReport& ExecutionSession::initial_report() const {
  return state_->initial_report;
}

int ExecutionSession::parallelism() const { return state_->ctx->parallelism; }

SolutionSetIndex* ExecutionSession::solution_partition(int p) {
  return state_->runtime().index[p].get();
}

int ExecutionSession::PartitionOfSolution(const Record& probe) const {
  return PartitionOf(probe, state_->runtime().solution_key,
                     state_->ctx->parallelism);
}

const KeySpec& ExecutionSession::solution_key() const {
  return state_->runtime().solution_key;
}

void ExecutionSession::ForEachSolution(
    const std::function<void(const Record&)>& fn) const {
  for (const auto& index : state_->runtime().index) index->ForEach(fn);
}

Engine::ClientStats ExecutionSession::engine_stats() const {
  Engine::ClientStats stats = state_->carried_engine;
  if (state_->schedule != nullptr) {
    const Engine::ClientStats live =
        state_->engine->client_stats(state_->schedule->client());
    stats.tasks_run += live.tasks_run;
    stats.queue_wait_ns_total += live.queue_wait_ns_total;
    stats.queue_wait_ns_max =
        std::max(stats.queue_wait_ns_max, live.queue_wait_ns_max);
    stats.tasks_parked += live.tasks_parked;
    stats.tasks_woken += live.tasks_woken;
  }
  return stats;
}

int ExecutionSession::engine_workers() const {
  return state_->engine->workers();
}

Result<IterationReport> ExecutionSession::RunRound(
    std::vector<Record> workset) {
  SessionState& s = *state_;
  if (s.finished) {
    return Status::InvalidArgument("RunRound on a finished session");
  }
  WorksetRuntime& rt = s.runtime();
  const PhysicalWorksetIteration& spec = s.plan->workset_iterations[0];
  const int head_task = spec.head_task;
  const int P = s.ctx->parallelism;

  // The previous round's wave terminated before its RunRound returned (and
  // StartSession waited out the cold round), so no task of the resident
  // iteration is scheduled: the controller owns the resident state.
  s.schedule->WaitRoundDone();

  // Fresh per-round report; the *_mark counters deliberately survive — they
  // are absolute marks against the cumulative session metrics.
  rt.report = IterationReport{};
  if (rt.barrier_free) {
    // Barrier-free re-arm: fresh termination/vote state and one startup
    // credit per partition (returned when it finishes its first local
    // round of this service round). Leftover queued work from a capped
    // previous round kept its credits and simply continues. Local-round
    // bases snapshot here so the per-round iteration cap and the round's
    // local-round report count only this round's work.
    rt.report.ran_async = true;
    rt.coordinator->RearmBarrierFree();
    for (int p = 0; p < P; ++p) {
      rt.async_parts[p]->w0_pending = true;
      rt.async_round_base[p] = rt.coordinator->rounds_executed(p);
    }
  } else {
    rt.round_start_superstep = rt.coordinator->superstep();
    rt.coordinator->Rearm();
  }
  rt.watch.Restart();

  // Route the seed workset into the head's external W_0 port, partitioned
  // exactly like the runtime's own hash exchanges. If the previous round
  // stopped at the iteration cap with work left in the queues, that work
  // simply continues in this round alongside the new seeds. Seed batches
  // are cut from each port's lane-0 pool (the controller acts as that
  // lane's producer between rounds; Reset below provides the acquire edge
  // first), so the buffers the head recycled after draining the previous
  // round's seed come back here instead of piling up unread — a resident
  // session's seeding allocates nothing in steady state.
  std::vector<RecordBatch> seeds;
  seeds.reserve(P);
  for (int p = 0; p < P; ++p) {
    Exchange* port = s.ctx->channels[head_task][0][p].get();
    // The head drained the previous seed (data + markers) at the last
    // round's first superstep; anything still queued in ANY lane would
    // break the per-lane marker accounting of the phase about to start.
    // Reset scans every lane, so this asserts all of them drained.
    SFDF_CHECK(port->Reset() == 0)
        << "W_0 port of partition " << p << " not drained between rounds";
    seeds.push_back(port->AcquireBatch(0));
  }
  const int64_t seed_count = static_cast<int64_t>(workset.size());
  for (const Record& rec : workset) {
    seeds[PartitionOf(rec, rt.route_key, P)].Add(rec);
  }
  for (int p = 0; p < P; ++p) {
    s.ctx->channels[head_task][0][p]->Seed(std::move(seeds[p]));
  }
  s.ctx->metrics.CountShipped(seed_count, seed_count * sizeof(Record),
                              /*remote_records=*/0);

  // Release the round's first wave, then wait for its fixpoint. The engine
  // submit path publishes every controller write above to the wave tasks.
  s.schedule->BeginRound();
  s.schedule->WaitRoundDone();
  return rt.report;
}

Result<ExecutionResult> ExecutionSession::Finish() {
  SessionState& s = *state_;
  if (s.finished) {
    return Status::InvalidArgument("session already finished");
  }
  // The final-flush tasks ship the converged solution set downstream, the
  // sinks fill, and every remaining plan region drains.
  s.schedule->WaitRoundDone();
  s.schedule->BeginShutdown();
  s.schedule->WaitPlanDone();
  const Engine::ClientStats stats =
      s.engine->client_stats(s.schedule->client());
  s.schedule.reset();  // unregisters the engine client
  s.finished = true;
  ExecutionResult result =
      AssembleResult(*s.plan, s.ctx.get(), s.total_watch.ElapsedMillis());
  // Fold in the totals of skeletons Reconfigure tore down earlier, so the
  // session-lifetime statistics cover every width the session ran at.
  result.records_shipped += s.carried_shipped;
  result.records_remote += s.carried_remote;
  result.bytes_shipped += s.carried_bytes;
  result.records_combined += s.carried_combined;
  result.queue_depth_high_water = std::max(result.queue_depth_high_water,
                                           s.carried_queue_depth_high_water);
  result.batch_pool_hits += s.carried_pool_hits;
  result.batch_pool_misses += s.carried_pool_misses;
  result.engine_tasks = stats.tasks_run + s.carried_engine.tasks_run;
  result.engine_queue_wait_ns_total =
      stats.queue_wait_ns_total + s.carried_engine.queue_wait_ns_total;
  result.engine_queue_wait_ns_max =
      std::max(stats.queue_wait_ns_max, s.carried_engine.queue_wait_ns_max);
  result.engine_parks = stats.tasks_parked + s.carried_engine.tasks_parked;
  result.engine_wakes = stats.tasks_woken + s.carried_engine.tasks_woken;
  result.engine_workers = s.engine->workers();
  return result;
}

Result<IterationReport> ExecutionSession::Reconfigure(int new_partitions,
                                                      Engine* new_engine) {
  SessionState& s = *state_;
  if (s.finished) {
    return Status::InvalidArgument("Reconfigure on a finished session");
  }
  if (new_partitions < 0) {
    return Status::InvalidArgument(
        "Reconfigure new_partitions must be >= 0 (0 = keep current), got " +
        std::to_string(new_partitions));
  }
  const PhysicalWorksetIteration& spec = s.plan->workset_iterations[0];
  const PhysicalTask& head = s.plan->tasks[spec.head_task];
  const int w0_src = head.inputs[0].producer;
  const PhysicalTask& join = s.plan->tasks[spec.solution_join_task];
  const int s0_src = join.inputs[join.solution_side].producer;
  if (s.plan->tasks[w0_src].kind != OperatorKind::kSource ||
      s.plan->tasks[s0_src].kind != OperatorKind::kSource) {
    return Status::Unsupported(
        "Reconfigure requires the initial workset and initial solution to "
        "enter the iteration through Source tasks — the warm state re-enters "
        "the rebuilt skeleton through them");
  }
  const int new_p = new_partitions > 0 ? new_partitions : s.ctx->parallelism;

  // Quiesce at the committed round boundary: after WaitQuiesced no task of
  // the resident iteration is scheduled, every one-shot upstream region has
  // fully completed, and every lane is drained up to its end-of-round
  // markers — the controller owns the resident state and the skeleton may
  // be torn down.
  static const uint16_t kQuiesce =
      trace::RegisterName("reconfigure.quiesce");
  const int64_t quiesce_start = trace::NowNs();
  s.schedule->WaitQuiesced();
  trace::EmitSpan(kQuiesce, quiesce_start, new_p);
  WorksetRuntime& rt = s.runtime();

  if (rt.barrier_free && !rt.coordinator->Quiescent()) {
    // A capped barrier-free round parks with records mid-pipeline: queued
    // batches in in-loop lanes carry intermediate schemas, not reseedable
    // workset records (unlike the superstep path, where the barrier
    // guarantees leftovers live only in the front workset buffers). The
    // remap would need a drain-to-fixpoint protocol first; require the
    // caller to run the round to convergence instead.
    return Status::Unsupported(
        "Reconfigure after a capped barrier-free round: in-flight records "
        "are mid-pipeline and cannot be reseeded — run a round to "
        "convergence first (async leftovers salvage only at quiescence)");
  }

  // Extract the warm state. The back buffers are empty after any round's
  // final swap; the front buffers are non-empty only when the round stopped
  // at the iteration cap — that leftover workset continues after the remap.
  static const uint16_t kRemap = trace::RegisterName("reconfigure.remap");
  const int64_t remap_start = trace::NowNs();
  std::vector<Record> solution;
  int64_t total = 0;
  for (const auto& index : rt.index) total += index->size();
  solution.reserve(static_cast<size_t>(total));
  for (const auto& index : rt.index) {
    index->ForEach([&](const Record& rec) { solution.push_back(rec); });
  }
  std::vector<Record> leftover;
  for (auto& front : rt.front) {
    leftover.insert(leftover.end(), front.begin(), front.end());
  }

  // Bank the dying skeleton's cumulative statistics: fold its exchange
  // stats into its metrics (the pass AssembleResult runs after a drain is
  // equally exact here — nothing of this skeleton runs anymore), then
  // carry the totals for Finish()/engine_stats().
  for (const auto& task_channels : s.ctx->channels) {
    for (const auto& port_channels : task_channels) {
      for (const auto& exchange : port_channels) {
        const Exchange::Stats st = exchange->stats();
        s.ctx->metrics.RecordQueueDepth(st.depth_high_water);
        s.ctx->metrics.CountBatchPool(st.pool_hits, st.pool_misses);
      }
    }
  }
  s.carried_shipped += s.ctx->metrics.records_shipped();
  s.carried_remote += s.ctx->metrics.records_remote();
  s.carried_bytes += s.ctx->metrics.bytes_shipped();
  s.carried_combined += s.ctx->metrics.records_combined();
  s.carried_queue_depth_high_water =
      std::max(s.carried_queue_depth_high_water,
               s.ctx->metrics.queue_depth_high_water());
  s.carried_pool_hits += s.ctx->metrics.batch_pool_hits();
  s.carried_pool_misses += s.ctx->metrics.batch_pool_misses();
  const Engine::ClientStats old_client =
      s.engine->client_stats(s.schedule->client());
  s.carried_engine.tasks_run += old_client.tasks_run;
  s.carried_engine.queue_wait_ns_total += old_client.queue_wait_ns_total;
  s.carried_engine.queue_wait_ns_max = std::max(
      s.carried_engine.queue_wait_ns_max, old_client.queue_wait_ns_max);
  s.carried_engine.tasks_parked += old_client.tasks_parked;
  s.carried_engine.tasks_woken += old_client.tasks_woken;

  // Tear the old skeleton down without a shutdown flush: the round is done
  // (no wave task scheduled), the upstream one-shot regions completed at
  // Start, and the downstream regions were never released — the engine
  // client's queue is empty, which is all ~PlanSchedule requires.
  s.schedule.reset();
  s.ctx.reset();
  if (new_engine != nullptr && new_engine != s.engine) {
    // Engine move: an engine the session owned dies with its old skeleton
    // (its workers are idle — nothing is queued on them anymore).
    s.engine = new_engine;
    s.owned_engine.reset();
  }

  // Rebuild at the new width. From here on a failure leaves the session
  // without a usable skeleton — fail it rather than limp half-built.
  ExecutionOptions options = s.options;
  options.parallelism = new_p;
  s.ctx = std::make_unique<ExecContext>();
  Status setup = SetupContext(*s.plan, options, new_p, s.ctx.get());
  if (!setup.ok()) {
    s.finished = true;
    return setup;
  }
  // The warm state re-enters through the plan's own entry sources: the
  // rebuilt hash exchanges re-route every record with PartitionOf under
  // the new width, so shard placement is re-derived by exactly the law
  // point reads use — no explicit shard-moving pass.
  s.ctx->source_override[s0_src] = std::move(solution);
  s.ctx->source_override[w0_src] = std::move(leftover);
  s.schedule = std::make_unique<PlanSchedule>(
      s.plan, s.ctx.get(), s.engine, "session", /*session_mode=*/true);
  trace::EmitSpan(kRemap, remap_start, new_p);

  // The resume round: the rebuilt coordinator restarts at superstep 0, so
  // every §4.3 constant-path cache and the solution index rebuild exactly
  // where a cold skeleton builds them. With no leftover workset the round
  // converges after the single barrier superstep (produced == 0).
  static const uint16_t kResume = trace::RegisterName("reconfigure.resume");
  const int64_t resume_start = trace::NowNs();
  s.schedule->Start();
  s.schedule->WaitRoundDone();
  trace::EmitSpan(kResume, resume_start, new_p);
  return s.runtime().report;
}

}  // namespace sfdf
