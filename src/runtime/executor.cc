#include "runtime/executor.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "core/solution_set.h"
#include "core/termination.h"
#include "dataflow/udf.h"
#include "runtime/exchange.h"
#include "runtime/hash_table.h"
#include "runtime/router.h"
#include "runtime/sorter.h"
#include "runtime/spill_buffer.h"
#include "runtime/superstep.h"

namespace sfdf {

int64_t IterationReport::TotalWorkset() const {
  int64_t total = 0;
  for (const SuperstepStats& s : supersteps) total += s.workset_size;
  return total;
}

int64_t IterationReport::TotalApplied() const {
  int64_t total = 0;
  for (const SuperstepStats& s : supersteps) total += s.delta_applied;
  return total;
}

// Named (not anonymous) so SessionState — an externally visible type
// declared in executor.h — can hold these internals without tripping GCC's
// -Wsubobject-linkage. Only this translation unit defines the namespace.
namespace executor_detail {

/// True if the task participates in an iteration's superstep loop.
bool IsLoopTask(const PhysicalTask& task) {
  return (task.bulk_iteration >= 0 || task.workset_iteration >= 0) &&
         task.on_dynamic_path;
}

bool SameLoop(const PhysicalTask& a, const PhysicalTask& b) {
  return (a.bulk_iteration >= 0 && a.bulk_iteration == b.bulk_iteration) ||
         (a.workset_iteration >= 0 &&
          a.workset_iteration == b.workset_iteration);
}

// ---------------------------------------------------------------------------
// Per-iteration runtime state
// ---------------------------------------------------------------------------

struct BulkRuntime {
  std::unique_ptr<SuperstepCoordinator> coordinator;
  /// Feedback buffers: tail instance p writes the next partial solution,
  /// head instance p picks it up after the barrier.
  std::vector<std::vector<Record>> feedback;
  bool has_term = false;
  int max_iterations = 0;
  IterationReport report;
  // Stats capture (only touched in the barrier completion step).
  Stopwatch watch;
  Metrics* metrics = nullptr;
  int64_t shipped_mark = 0;
  bool record_stats = true;
};

struct MicroQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Record> queue;
};

/// Rendezvous between a session controller and the loop-task instances of a
/// resident workset iteration (service sessions). After a round terminates,
/// every participant parks here instead of flushing its result; the
/// controller reseeds the workset, re-arms the coordinator and releases the
/// next round — or shuts the session down, upon which the participants run
/// their final flush and exit. The gate mutex doubles as the happens-before
/// edge for everything the controller mutates between rounds (workset
/// seeds, report resets, coordinator re-arm).
struct RoundGate {
  std::mutex mutex;
  std::condition_variable cv;
  int participants = 0;  ///< loop-task instances that park between rounds
  int parked = 0;        ///< currently parked participants
  uint64_t round = 0;    ///< rounds released so far
  bool shutdown = false;
};

/// Participant side: park until the controller either releases another
/// round (returns true) or shuts the session down (returns false).
bool AwaitNextRound(RoundGate* gate) {
  std::unique_lock<std::mutex> lock(gate->mutex);
  const uint64_t arrived_round = gate->round;
  ++gate->parked;
  gate->cv.notify_all();
  gate->cv.wait(lock, [gate, arrived_round] {
    return gate->round != arrived_round || gate->shutdown;
  });
  return gate->round != arrived_round;
}

struct WorksetRuntime {
  std::unique_ptr<SuperstepCoordinator> coordinator;
  int parallelism = 0;
  KeySpec route_key;
  KeySpec solution_key;
  bool immediate_apply = false;
  bool microstep = false;
  int max_iterations = 0;

  /// Session mode (resident iterations): participants park here between
  /// rounds; null for one-shot runs.
  RoundGate* gate = nullptr;
  /// Superstep at which the current round started. The head consumes its
  /// external W_0 port exactly at a round's first superstep (re-seeded by
  /// the session controller for warm rounds), and the iteration cap counts
  /// supersteps relative to this mark. Written only by the controller while
  /// every participant is parked. 64-bit: the absolute counter never resets
  /// across a resident session's rounds.
  int64_t round_start_superstep = 0;

  /// Superstep mode: double-buffered workset queues (Section 5.3). `front`
  /// is drained by head p during the superstep; tails append to `back`
  /// under the per-partition mutex; the barrier completion swaps them.
  std::vector<std::vector<Record>> front;
  std::vector<std::vector<Record>> back;
  std::vector<std::unique_ptr<std::mutex>> back_mutex;

  /// One solution-set index partition per worker.
  std::vector<std::unique_ptr<SolutionSetIndex>> index;

  /// Microstep mode: FIFO queues + quiescence detection.
  std::vector<std::unique_ptr<MicroQueue>> queues;
  std::unique_ptr<QuiescenceDetector> detector;
  std::atomic<int64_t> micro_processed{0};

  IterationReport report;
  Stopwatch watch;
  Metrics* metrics = nullptr;
  int64_t shipped_mark = 0;
  int64_t lookups_mark = 0;
  int64_t applied_mark = 0;
  int64_t discarded_mark = 0;
  bool record_stats = true;

  void SumIndexStats(int64_t* lookups, int64_t* applied,
                     int64_t* discarded) const {
    *lookups = *applied = *discarded = 0;
    for (const auto& idx : index) {
      *lookups += idx->stats().lookups;
      *applied += idx->stats().applied;
      *discarded += idx->stats().discarded;
    }
  }
};

// ---------------------------------------------------------------------------
// Execution context shared by all task instances
// ---------------------------------------------------------------------------

struct ExecContext {
  const PhysicalPlan* plan = nullptr;
  int parallelism = 0;
  bool record_stats = true;
  int64_t cache_spill_budget = INT64_MAX;
  int checkpoint_superstep = -1;
  std::string checkpoint_path;
  Metrics metrics;

  /// channels[task][port][partition]: the consumer-side exchanges. Each
  /// holds one SPSC lane per producer partition.
  std::vector<std::vector<std::vector<std::unique_ptr<Exchange>>>> channels;
  /// consumer edges per producer task: (consumer task, consumer port).
  std::vector<std::vector<std::pair<int, int>>> consumer_edges;

  std::vector<std::unique_ptr<BulkRuntime>> bulk;
  std::vector<std::unique_ptr<WorksetRuntime>> workset;

  /// sink_slots[task][partition]: per-partition sink collections, merged
  /// deterministically after all threads joined.
  std::vector<std::vector<std::vector<Record>>> sink_slots;

  const PhysicalTask& task(int id) const { return plan->tasks[id]; }
};

// ---------------------------------------------------------------------------
// TaskInstance: one thread's work
// ---------------------------------------------------------------------------

class TaskInstance {
 public:
  TaskInstance(ExecContext* ctx, const PhysicalTask* task, int partition)
      : ctx_(ctx), task_(task), partition_(partition) {
    BuildOutputs();
  }

  void Run();

 private:
  // --- wiring helpers -----------------------------------------------------
  void BuildOutputs() {
    for (const auto& [consumer_id, port] : ctx_->consumer_edges[task_->id]) {
      const PhysicalTask& consumer = ctx_->task(consumer_id);
      const PhysicalInput& edge = consumer.inputs[port];
      std::vector<Exchange*> targets;
      targets.reserve(ctx_->parallelism);
      for (int p = 0; p < ctx_->parallelism; ++p) {
        targets.push_back(ctx_->channels[consumer_id][port][p].get());
      }
      bool in_loop = IsLoopTask(consumer) && SameLoop(*task_, consumer);
      outputs_.push_back(std::make_unique<OutputPort>(
          std::move(targets), edge.ship, edge.ship_key, partition_,
          &ctx_->metrics, in_loop, edge.combiner, edge.combine_key));
      out_ptrs_.push_back(outputs_.back().get());
    }
  }

  Exchange* Input(int port) {
    return ctx_->channels[task_->id][port][partition_].get();
  }

  /// True if input `port` carries loop data (re-read every superstep).
  bool PortInLoop(int port) const {
    const PhysicalInput& edge = task_->inputs[port];
    if (edge.producer < 0) return false;
    const PhysicalTask& producer = ctx_->task(edge.producer);
    return IsLoopTask(producer) && SameLoop(producer, *task_);
  }

  void SendSuperstepMarkers() {
    for (OutputPort* port : out_ptrs_) {
      if (port->in_loop()) port->SendMarker(MarkerKind::kEndSuperstep);
    }
  }

  void SendEndStream() {
    for (OutputPort* port : out_ptrs_) {
      port->SendMarker(MarkerKind::kEndStream);
    }
  }

  /// Reads `port` for the current phase: loop ports until END_SUPERSTEP,
  /// external ports until END_STREAM.
  template <typename Fn>
  void ReadPort(int port, Fn&& fn) {
    MarkerKind until = PortInLoop(port) ? MarkerKind::kEndSuperstep
                                        : MarkerKind::kEndStream;
    Input(port)->ReadPhase(until, [&](const RecordBatch& batch) {
      for (const Record& rec : batch) fn(rec);
    });
  }

  /// Reads a port into a vector.
  void CollectPort(int port, std::vector<Record>* out) {
    ReadPort(port, [out](const Record& rec) { out->push_back(rec); });
  }

  // --- drivers --------------------------------------------------------------
  void RunSource();
  void RunSink();
  void RunSimple();        // Map / Filter / Union, non-loop
  void RunReduce(bool in_loop);
  void RunMatchHash(bool in_loop);
  void RunMatchSortMerge(bool in_loop);
  void RunCross(bool in_loop);
  void RunCoGroup(bool in_loop);
  void RunSimpleLoop();    // Map / Filter / Union inside a loop
  void RunBulkHead();
  void RunBulkTail();
  void RunTermSink();
  void RunWorksetHead();
  void RunWorksetTail();
  void RunDeltaApply();
  void RunSolutionJoin();

  /// Superstep loop skeleton for dynamic body tasks. `body(superstep)`
  /// processes one superstep; `final_flush` runs after termination before
  /// END_STREAM is sent downstream. In session mode (resident workset
  /// iterations) a terminated round parks at the round gate instead; the
  /// task's local state — constant-path caches, hash tables, spill buffers —
  /// survives in place, which is what makes warm rounds warm.
  template <typename BodyFn, typename FinalFn>
  void LoopSupersteps(SuperstepCoordinator* coordinator, BodyFn&& body,
                      FinalFn&& final_flush) {
    RoundGate* gate =
        task_->workset_iteration >= 0 ? WsRt().gate : nullptr;
    for (;;) {
      body(coordinator->superstep());
      SendSuperstepMarkers();
      coordinator->ArriveAndWait();
      if (coordinator->terminated()) {
        if (gate != nullptr && AwaitNextRound(gate)) continue;
        final_flush();
        SendEndStream();
        return;
      }
    }
  }

  WorksetRuntime& WsRt() { return *ctx_->workset[task_->workset_iteration]; }
  BulkRuntime& BulkRt() { return *ctx_->bulk[task_->bulk_iteration]; }

  ExecContext* ctx_;
  const PhysicalTask* task_;
  int partition_;
  std::vector<std::unique_ptr<OutputPort>> outputs_;
  std::vector<OutputPort*> out_ptrs_;
};

void TaskInstance::RunSource() {
  PortsCollector collector(out_ptrs_);
  const std::vector<Record>& data = *task_->source_data;
  for (size_t i = partition_; i < data.size();
       i += static_cast<size_t>(ctx_->parallelism)) {
    collector.Emit(data[i]);
  }
  SendEndStream();
}

void TaskInstance::RunSink() {
  std::vector<Record>& slot = ctx_->sink_slots[task_->id][partition_];
  CollectPort(0, &slot);
}

void TaskInstance::RunSimple() {
  PortsCollector collector(out_ptrs_);
  switch (task_->kind) {
    case OperatorKind::kMap:
      ReadPort(0, [&](const Record& rec) { task_->map_udf(rec, &collector); });
      break;
    case OperatorKind::kFilter:
      ReadPort(0, [&](const Record& rec) {
        if (task_->filter_udf(rec)) collector.Emit(rec);
      });
      break;
    case OperatorKind::kUnion:
      ReadPort(0, [&](const Record& rec) { collector.Emit(rec); });
      ReadPort(1, [&](const Record& rec) { collector.Emit(rec); });
      break;
    default:
      SFDF_CHECK(false) << "RunSimple on " << OperatorKindName(task_->kind);
  }
  SendEndStream();
}

void TaskInstance::RunSimpleLoop() {
  PortsCollector collector(out_ptrs_);
  // Constant ports are read once and replayed every superstep (§4.3 cache).
  std::vector<std::vector<Record>> cache(task_->inputs.size());
  SuperstepCoordinator* coordinator =
      task_->bulk_iteration >= 0 ? BulkRt().coordinator.get()
                                 : WsRt().coordinator.get();
  auto process_record = [&](const Record& rec) {
    switch (task_->kind) {
      case OperatorKind::kMap:
        task_->map_udf(rec, &collector);
        break;
      case OperatorKind::kFilter:
        if (task_->filter_udf(rec)) collector.Emit(rec);
        break;
      case OperatorKind::kUnion:
        collector.Emit(rec);
        break;
      default:
        SFDF_CHECK(false);
    }
  };
  LoopSupersteps(
      coordinator,
      [&](int64_t superstep) {
        for (size_t port = 0; port < task_->inputs.size(); ++port) {
          if (PortInLoop(static_cast<int>(port))) {
            ReadPort(static_cast<int>(port), process_record);
          } else if (superstep == 0) {
            CollectPort(static_cast<int>(port), &cache[port]);
            for (const Record& rec : cache[port]) process_record(rec);
          } else {
            for (const Record& rec : cache[port]) process_record(rec);
          }
        }
      },
      [] {});
}

void TaskInstance::RunReduce(bool in_loop) {
  PortsCollector collector(out_ptrs_);
  auto reduce_pass = [&](std::vector<Record>* records) {
    // `input_presorted`: the optimizer proved the input arrives sorted on
    // the grouping key (single forward producer emitting in key order).
    if (!task_->input_presorted) SortByKey(records, task_->key_left);
    ForEachGroup(*records, task_->key_left,
                 [&](const std::vector<Record>& group) {
                   task_->reduce_udf(group, &collector);
                 });
  };
  if (!in_loop) {
    std::vector<Record> records;
    CollectPort(0, &records);
    reduce_pass(&records);
    SendEndStream();
    return;
  }
  SuperstepCoordinator* coordinator =
      task_->bulk_iteration >= 0 ? BulkRt().coordinator.get()
                                 : WsRt().coordinator.get();
  std::vector<Record> cache;  // constant input (rare; recomputed per step)
  LoopSupersteps(
      coordinator,
      [&](int64_t superstep) {
        if (PortInLoop(0)) {
          std::vector<Record> records;
          CollectPort(0, &records);
          reduce_pass(&records);
        } else {
          if (superstep == 0) CollectPort(0, &cache);
          std::vector<Record> copy = cache;
          reduce_pass(&copy);
        }
      },
      [] {});
}

void TaskInstance::RunMatchHash(bool in_loop) {
  PortsCollector collector(out_ptrs_);
  const bool build_left = task_->local == LocalStrategy::kHashBuildLeft;
  const int build_port = build_left ? 0 : 1;
  const int probe_port = 1 - build_port;
  const KeySpec& build_key = build_left ? task_->key_left : task_->key_right;
  const KeySpec& probe_key = build_left ? task_->key_right : task_->key_left;
  JoinHashTable table(build_key);
  auto probe_one = [&](const Record& probe) {
    table.Probe(probe, probe_key, [&](const Record& build) {
      if (build_left) {
        task_->match_udf(build, probe, &collector);
      } else {
        task_->match_udf(probe, build, &collector);
      }
    });
  };
  if (!in_loop) {
    ReadPort(build_port, [&](const Record& rec) { table.Insert(rec); });
    ReadPort(probe_port, probe_one);
    SendEndStream();
    return;
  }
  SuperstepCoordinator* coordinator =
      task_->bulk_iteration >= 0 ? BulkRt().coordinator.get()
                                 : WsRt().coordinator.get();
  const bool build_in_loop = PortInLoop(build_port);
  const bool probe_in_loop = PortInLoop(probe_port);
  const bool build_cached = task_->inputs[build_port].cached;
  std::vector<Record> build_cache;  // raw records for the no-cache ablation
  std::vector<Record> probe_cache;
  // Budgeted probe caches gradually spill to disk (§4.3). Spilled caches
  // cannot be re-sorted in memory, so the sorted-cache optimization only
  // combines with the unbounded cache.
  std::unique_ptr<SpillBuffer> spill_cache;
  if (!probe_in_loop && ctx_->cache_spill_budget != INT64_MAX &&
      task_->inputs[probe_port].cache_sort_key.empty()) {
    SpillBufferOptions spill_options;
    spill_options.memory_budget_bytes = ctx_->cache_spill_budget;
    spill_cache = std::make_unique<SpillBuffer>(spill_options);
  }
  LoopSupersteps(
      coordinator,
      [&](int64_t superstep) {
        if (build_in_loop) {
          table.Clear();
          ReadPort(build_port, [&](const Record& rec) { table.Insert(rec); });
        } else if (superstep == 0) {
          // Constant build side: the hash table *is* the loop-invariant
          // cache (§4.3), built once and reused every superstep. With
          // caching disabled (ablation) only the raw records are kept and
          // the table is rebuilt each superstep.
          ReadPort(build_port, [&](const Record& rec) {
            if (build_cached) {
              table.Insert(rec);
            } else {
              build_cache.push_back(rec);
            }
          });
          if (!build_cached) {
            for (const Record& rec : build_cache) table.Insert(rec);
          }
        } else if (!build_cached) {
          table.Clear();
          for (const Record& rec : build_cache) table.Insert(rec);
        }
        if (probe_in_loop) {
          ReadPort(probe_port, probe_one);
        } else {
          if (superstep == 0) {
            if (spill_cache != nullptr) {
              ReadPort(probe_port, [&](const Record& rec) {
                SFDF_CHECK(spill_cache->Add(rec).ok());
              });
              SFDF_CHECK(spill_cache->Seal().ok());
            } else {
              CollectPort(probe_port, &probe_cache);
              // Establish the requested cache order (Figure 4: A cached
              // partitioned and sorted by tid) so downstream consumers see
              // pre-sorted data every superstep.
              const KeySpec& sort_key =
                  task_->inputs[probe_port].cache_sort_key;
              if (!sort_key.empty()) SortByKey(&probe_cache, sort_key);
            }
          }
          if (spill_cache != nullptr) {
            SFDF_CHECK(spill_cache->Replay(probe_one).ok());
          } else {
            for (const Record& rec : probe_cache) probe_one(rec);
          }
        }
      },
      [] {});
}

void TaskInstance::RunMatchSortMerge(bool in_loop) {
  PortsCollector collector(out_ptrs_);
  auto merge_pass = [&](std::vector<Record>* left, std::vector<Record>* right) {
    SortByKey(left, task_->key_left);
    SortByKey(right, task_->key_right);
    MergeJoinGroups(*left, task_->key_left, *right, task_->key_right,
                    [&](const std::vector<Record>& lgroup,
                        const std::vector<Record>& rgroup) {
                      for (const Record& l : lgroup) {
                        for (const Record& r : rgroup) {
                          task_->match_udf(l, r, &collector);
                        }
                      }
                    });
  };
  if (!in_loop) {
    std::vector<Record> left;
    std::vector<Record> right;
    CollectPort(0, &left);
    CollectPort(1, &right);
    merge_pass(&left, &right);
    SendEndStream();
    return;
  }
  SuperstepCoordinator* coordinator =
      task_->bulk_iteration >= 0 ? BulkRt().coordinator.get()
                                 : WsRt().coordinator.get();
  std::vector<Record> cache[2];
  LoopSupersteps(
      coordinator,
      [&](int64_t superstep) {
        std::vector<Record> sides[2];
        for (int port = 0; port < 2; ++port) {
          if (PortInLoop(port)) {
            CollectPort(port, &sides[port]);
          } else {
            if (superstep == 0) CollectPort(port, &cache[port]);
            sides[port] = cache[port];
          }
        }
        merge_pass(&sides[0], &sides[1]);
      },
      [] {});
}

void TaskInstance::RunCross(bool in_loop) {
  PortsCollector collector(out_ptrs_);
  const bool build_left = task_->local != LocalStrategy::kCrossBuildRight;
  const int build_port = build_left ? 0 : 1;
  const int probe_port = 1 - build_port;
  std::vector<Record> build;
  auto stream_one = [&](const Record& rec) {
    for (const Record& b : build) {
      if (build_left) {
        task_->match_udf(b, rec, &collector);
      } else {
        task_->match_udf(rec, b, &collector);
      }
    }
  };
  if (!in_loop) {
    CollectPort(build_port, &build);
    ReadPort(probe_port, stream_one);
    SendEndStream();
    return;
  }
  SuperstepCoordinator* coordinator =
      task_->bulk_iteration >= 0 ? BulkRt().coordinator.get()
                                 : WsRt().coordinator.get();
  std::vector<Record> probe_cache;
  LoopSupersteps(
      coordinator,
      [&](int64_t superstep) {
        if (PortInLoop(build_port)) {
          build.clear();
          CollectPort(build_port, &build);
        } else if (superstep == 0) {
          CollectPort(build_port, &build);
        }
        if (PortInLoop(probe_port)) {
          ReadPort(probe_port, stream_one);
        } else {
          if (superstep == 0) CollectPort(probe_port, &probe_cache);
          for (const Record& rec : probe_cache) stream_one(rec);
        }
      },
      [] {});
}

void TaskInstance::RunCoGroup(bool in_loop) {
  PortsCollector collector(out_ptrs_);
  const bool inner = task_->kind == OperatorKind::kInnerCoGroup;
  auto cogroup_pass = [&](std::vector<Record>* left,
                          std::vector<Record>* right) {
    SortByKey(left, task_->key_left);
    SortByKey(right, task_->key_right);
    MergeJoinGroups(*left, task_->key_left, *right, task_->key_right,
                    [&](const std::vector<Record>& lgroup,
                        const std::vector<Record>& rgroup) {
                      if (inner && (lgroup.empty() || rgroup.empty())) return;
                      task_->cogroup_udf(lgroup, rgroup, &collector);
                    });
  };
  if (!in_loop) {
    std::vector<Record> left;
    std::vector<Record> right;
    CollectPort(0, &left);
    CollectPort(1, &right);
    cogroup_pass(&left, &right);
    SendEndStream();
    return;
  }
  SuperstepCoordinator* coordinator =
      task_->bulk_iteration >= 0 ? BulkRt().coordinator.get()
                                 : WsRt().coordinator.get();
  std::vector<Record> cache[2];
  LoopSupersteps(
      coordinator,
      [&](int64_t superstep) {
        std::vector<Record> sides[2];
        for (int port = 0; port < 2; ++port) {
          if (PortInLoop(port)) {
            CollectPort(port, &sides[port]);
          } else {
            if (superstep == 0) CollectPort(port, &cache[port]);
            sides[port] = cache[port];
          }
        }
        cogroup_pass(&sides[0], &sides[1]);
      },
      [] {});
}

// --- bulk iteration roles ---------------------------------------------------

void TaskInstance::RunBulkHead() {
  BulkRuntime& rt = BulkRt();
  PortsCollector collector(out_ptrs_);
  std::vector<Record> current;
  LoopSupersteps(
      rt.coordinator.get(),
      [&](int64_t superstep) {
        if (superstep == 0) {
          // First iteration: consume the initial partial solution.
          CollectPort(0, &current);
        } else {
          current = std::move(rt.feedback[partition_]);
          rt.feedback[partition_].clear();
        }
        rt.coordinator->workset_consumed.fetch_add(
            static_cast<int64_t>(current.size()), std::memory_order_relaxed);
        for (const Record& rec : current) collector.Emit(rec);
      },
      [] {});
}

void TaskInstance::RunBulkTail() {
  BulkRuntime& rt = BulkRt();
  LoopSupersteps(
      rt.coordinator.get(),
      [&](int64_t) {
        std::vector<Record>& buffer = rt.feedback[partition_];
        ReadPort(0, [&](const Record& rec) { buffer.push_back(rec); });
      },
      [&] {
        // The buffer collected in the final superstep is the result.
        PortsCollector collector(out_ptrs_);
        for (const Record& rec : rt.feedback[partition_]) collector.Emit(rec);
      });
}

void TaskInstance::RunTermSink() {
  BulkRuntime& rt = BulkRt();
  LoopSupersteps(
      rt.coordinator.get(),
      [&](int64_t) {
        int64_t count = 0;
        ReadPort(0, [&](const Record&) { ++count; });
        rt.coordinator->term_records.fetch_add(count,
                                               std::memory_order_relaxed);
      },
      [] {});
}

// --- workset iteration roles ------------------------------------------------

void TaskInstance::RunWorksetHead() {
  WorksetRuntime& rt = WsRt();
  PortsCollector collector(out_ptrs_);
  LoopSupersteps(
      rt.coordinator.get(),
      [&](int64_t superstep) {
        int64_t count = 0;
        auto drain_front = [&] {
          std::vector<Record> records = std::move(rt.front[partition_]);
          rt.front[partition_].clear();
          for (const Record& rec : records) collector.Emit(rec);
          count += static_cast<int64_t>(records.size());
        };
        if (superstep == rt.round_start_superstep) {
          // A round's first superstep consumes the external W_0 port: the
          // original source in the cold round, a controller-seeded stream
          // (Exchange::Seed) in warm rounds.
          ReadPort(0, [&](const Record& rec) {
            collector.Emit(rec);
            ++count;
          });
          // Plus any workset a previous round left behind when it stopped
          // at the iteration cap — that work continues in this round.
          drain_front();
        } else {
          drain_front();
        }
        rt.coordinator->workset_consumed.fetch_add(count,
                                                   std::memory_order_relaxed);
      },
      [] {});
}

void TaskInstance::RunWorksetTail() {
  WorksetRuntime& rt = WsRt();
  const int P = rt.parallelism;
  LoopSupersteps(
      rt.coordinator.get(),
      [&](int64_t) {
        // Route W_{i+1} records into the back buffers by the workset key.
        std::vector<std::vector<Record>> local(P);
        int64_t count = 0;
        int64_t remote = 0;
        ReadPort(0, [&](const Record& rec) {
          int target = PartitionOf(rec, rt.route_key, P);
          local[target].push_back(rec);
          ++count;
          if (target != partition_) ++remote;
        });
        for (int p = 0; p < P; ++p) {
          if (local[p].empty()) continue;
          std::lock_guard<std::mutex> lock(*rt.back_mutex[p]);
          auto& buffer = rt.back[p];
          buffer.insert(buffer.end(), local[p].begin(), local[p].end());
        }
        // Feedback records are the "messages" of the incremental iteration.
        ctx_->metrics.CountShipped(count, count * sizeof(Record), remote);
        rt.coordinator->workset_produced.fetch_add(count,
                                                   std::memory_order_relaxed);
      },
      [] {});
}

void TaskInstance::RunDeltaApply() {
  WorksetRuntime& rt = WsRt();
  SolutionSetIndex* index = rt.index[partition_].get();
  LoopSupersteps(
      rt.coordinator.get(),
      [&](int64_t) {
        if (rt.immediate_apply) {
          // The solution join already merged its emissions; drain markers.
          ReadPort(0, [](const Record&) {});
          return;
        }
        // Buffer D until the superstep's reads finished (they have: our
        // producer sent its end-of-superstep marker), then merge via ∪̇.
        std::vector<Record> delta;
        CollectPort(0, &delta);
        for (const Record& rec : delta) index->Apply(rec);
      },
      [&] {
        // The converged solution set is the iteration's result (§5.1).
        PortsCollector collector(out_ptrs_);
        index->ForEach([&](const Record& rec) { collector.Emit(rec); });
      });
}

void TaskInstance::RunSolutionJoin() {
  WorksetRuntime& rt = WsRt();
  SolutionSetIndex* index = rt.index[partition_].get();
  const int s_port = task_->solution_side;
  const int probe_port = 1 - s_port;
  const KeySpec& probe_key =
      s_port == 0 ? task_->key_right : task_->key_left;

  // Emissions are delta records: in immediate mode they merge into S right
  // here, and records the comparator discards never propagate (§5.1: "D
  // reflects only the records that contributed to the new partial
  // solution").
  PortsCollector downstream(out_ptrs_);
  class ApplyCollector : public Collector {
   public:
    ApplyCollector(SolutionSetIndex* index, Collector* next, bool immediate)
        : index_(index), next_(next), immediate_(immediate) {}
    void Emit(const Record& rec) override {
      if (immediate_ && !index_->Apply(rec)) return;
      next_->Emit(rec);
    }

   private:
    SolutionSetIndex* index_;
    Collector* next_;
    bool immediate_;
  } collector(index, &downstream, rt.immediate_apply);

  const bool group_mode = task_->kind == OperatorKind::kCoGroup ||
                          task_->kind == OperatorKind::kInnerCoGroup;
  const bool inner = task_->kind != OperatorKind::kCoGroup;

  LoopSupersteps(
      rt.coordinator.get(),
      [&](int64_t superstep) {
        if (superstep == 0) {
          // Build the S index from the initial solution (hash-partitioned
          // by the solution key). Building is not update work: reset the
          // stats so Figure 2's counters only see iteration activity.
          ReadPort(s_port, [&](const Record& rec) { index->Apply(rec); });
          index->ResetStats();
        }
        if (!group_mode) {
          // Match: record-at-a-time probes against the index.
          ReadPort(probe_port, [&](const Record& probe) {
            const Record* s_rec = index->Lookup(probe, probe_key);
            if (s_rec == nullptr) return;  // inner-join semantics
            if (s_port == 0) {
              task_->match_udf(*s_rec, probe, &collector);
            } else {
              task_->match_udf(probe, *s_rec, &collector);
            }
          });
        } else {
          // (Inner)CoGroup: group the superstep's workset records per key,
          // pair each group with the solution record of that key.
          std::vector<Record> probes;
          CollectPort(probe_port, &probes);
          SortByKey(&probes, probe_key);
          std::vector<Record> s_group;
          ForEachGroup(probes, probe_key,
                       [&](const std::vector<Record>& group) {
                         const Record* s_rec =
                             index->Lookup(group.front(), probe_key);
                         s_group.clear();
                         if (s_rec != nullptr) s_group.push_back(*s_rec);
                         if (inner && s_group.empty()) return;
                         if (s_port == 0) {
                           task_->cogroup_udf(s_group, group, &collector);
                         } else {
                           task_->cogroup_udf(group, s_group, &collector);
                         }
                       });
        }
      },
      [] {});
}

void TaskInstance::Run() {
  switch (task_->role) {
    case TaskRole::kBulkHead:
      RunBulkHead();
      return;
    case TaskRole::kBulkTail:
      RunBulkTail();
      return;
    case TaskRole::kTermSink:
      RunTermSink();
      return;
    case TaskRole::kWorksetHead:
      RunWorksetHead();
      return;
    case TaskRole::kWorksetTail:
      RunWorksetTail();
      return;
    case TaskRole::kDeltaApply:
      RunDeltaApply();
      return;
    case TaskRole::kSolutionJoin:
      RunSolutionJoin();
      return;
    case TaskRole::kRegular:
      break;
  }
  const bool in_loop = IsLoopTask(*task_);
  switch (task_->kind) {
    case OperatorKind::kSource:
      RunSource();
      return;
    case OperatorKind::kSink:
      RunSink();
      return;
    case OperatorKind::kMap:
    case OperatorKind::kFilter:
    case OperatorKind::kUnion:
      if (in_loop) {
        RunSimpleLoop();
      } else {
        RunSimple();
      }
      return;
    case OperatorKind::kReduce:
      RunReduce(in_loop);
      return;
    case OperatorKind::kMatch:
      if (task_->local == LocalStrategy::kSortMerge) {
        RunMatchSortMerge(in_loop);
      } else {
        RunMatchHash(in_loop);
      }
      return;
    case OperatorKind::kCross:
      RunCross(in_loop);
      return;
    case OperatorKind::kCoGroup:
    case OperatorKind::kInnerCoGroup:
      RunCoGroup(in_loop);
      return;
    default:
      SFDF_CHECK(false) << "unexpected task kind "
                        << OperatorKindName(task_->kind);
  }
}

// ---------------------------------------------------------------------------
// Fused asynchronous microstep engine (Section 5.2 / 5.3)
// ---------------------------------------------------------------------------

/// One fused pipeline step. The whole dynamic path of a microstep-capable
/// iteration runs inside the head thread, so solution updates are applied
/// by the same thread that owns the partition's index — no locking.
struct ChainStep {
  enum class Kind { kMap, kFilter, kSolutionJoin, kMatchConst };
  Kind kind;
  const PhysicalTask* task = nullptr;
  // kMatchConst: constant build side.
  std::unique_ptr<JoinHashTable> table;
  int const_port = -1;
  KeySpec probe_key;
  bool const_is_left = false;
};

class MicrostepInstance {
 public:
  MicrostepInstance(ExecContext* ctx, int iteration, int partition,
                    std::vector<const PhysicalTask*> chain_tasks,
                    const PhysicalTask* delta_apply_task)
      : ctx_(ctx),
        rt_(*ctx->workset[iteration]),
        partition_(partition),
        chain_tasks_(std::move(chain_tasks)),
        delta_apply_task_(delta_apply_task) {}

  void Run() {
    BuildChain();
    LoadInitialState();
    rt_.detector->FinishStartup();
    ProcessLoop();
    EmitResult();
  }

 private:
  Exchange* InputOf(const PhysicalTask* task, int port) {
    return ctx_->channels[task->id][port][partition_].get();
  }

  void BuildChain() {
    for (const PhysicalTask* task : chain_tasks_) {
      ChainStep step;
      step.task = task;
      switch (task->kind) {
        case OperatorKind::kMap:
          step.kind = ChainStep::Kind::kMap;
          break;
        case OperatorKind::kFilter:
          step.kind = ChainStep::Kind::kFilter;
          break;
        case OperatorKind::kMatch:
          if (task->role == TaskRole::kSolutionJoin) {
            step.kind = ChainStep::Kind::kSolutionJoin;
            step.probe_key = task->solution_side == 0 ? task->key_right
                                                      : task->key_left;
          } else {
            step.kind = ChainStep::Kind::kMatchConst;
            // The dynamic input is the one fed by the previous chain task.
            int const_port =
                IsLoopTask(ctx_->task(task->inputs[0].producer)) ? 1 : 0;
            step.const_port = const_port;
            step.const_is_left = const_port == 0;
            const KeySpec& build_key =
                const_port == 0 ? task->key_left : task->key_right;
            step.probe_key =
                const_port == 0 ? task->key_right : task->key_left;
            step.table = std::make_unique<JoinHashTable>(build_key);
            InputOf(task, const_port)
                ->ReadPhase(MarkerKind::kEndStream,
                            [&](const RecordBatch& batch) {
                              for (const Record& rec : batch) {
                                step.table->Insert(rec);
                              }
                            });
          }
          break;
        default:
          SFDF_CHECK(false) << "operator not fusable into a microstep chain: "
                            << OperatorKindName(task->kind);
      }
      chain_.push_back(std::move(step));
    }
  }

  void LoadInitialState() {
    // Build the solution index from the initial-solution port of the join.
    const PhysicalTask* join = nullptr;
    for (const ChainStep& step : chain_) {
      if (step.kind == ChainStep::Kind::kSolutionJoin) join = step.task;
    }
    SFDF_CHECK(join != nullptr);
    SolutionSetIndex* index = rt_.index[partition_].get();
    InputOf(join, join->solution_side)
        ->ReadPhase(MarkerKind::kEndStream, [&](const RecordBatch& batch) {
          for (const Record& rec : batch) index->Apply(rec);
        });
    index->ResetStats();  // building S_0 is not iteration work
    // Load the initial workset into this partition's queue. The head task's
    // port 0 carries W_0, already routed by the workset key.
    const PhysicalTask* head = nullptr;
    for (const PhysicalTask& task : ctx_->plan->tasks) {
      if (task.role == TaskRole::kWorksetHead &&
          task.workset_iteration == chain_tasks_.front()->workset_iteration) {
        head = &task;
      }
    }
    SFDF_CHECK(head != nullptr);
    MicroQueue& queue = *rt_.queues[partition_];
    InputOf(head, 0)->ReadPhase(
        MarkerKind::kEndStream, [&](const RecordBatch& batch) {
          for (size_t i = 0; i < batch.size(); ++i) {
            rt_.detector->RecordEnqueued();
          }
          {
            std::lock_guard<std::mutex> lock(queue.mutex);
            queue.queue.insert(queue.queue.end(), batch.begin(), batch.end());
          }
          queue.cv.notify_all();
        });
  }

  /// Drains every currently-queued record for this partition. Returns
  /// false only when the whole computation is quiescent.
  bool PopBatch(std::vector<Record>* out) {
    out->clear();
    MicroQueue& queue = *rt_.queues[partition_];
    std::unique_lock<std::mutex> lock(queue.mutex);
    for (;;) {
      if (!queue.queue.empty()) {
        out->assign(queue.queue.begin(), queue.queue.end());
        queue.queue.clear();
        return true;
      }
      if (rt_.detector->Quiescent()) return false;
      queue.cv.wait_for(lock, std::chrono::microseconds(200));
    }
  }

  /// Stages an end-of-chain record (a W_{i+1} element) for its partition.
  /// The pending-record credit is taken immediately so quiescence cannot
  /// trigger while records sit in the staging buffers; the buffers are
  /// flushed once per processed batch (FlushStaged).
  void Route(const Record& rec) {
    int target = PartitionOf(rec, rt_.route_key, rt_.parallelism);
    ctx_->metrics.CountShipped(1, sizeof(Record),
                               target == partition_ ? 0 : 1);
    rt_.detector->RecordEnqueued();
    staged_[target].push_back(rec);
  }

  void FlushStaged() {
    for (int target = 0; target < rt_.parallelism; ++target) {
      if (staged_[target].empty()) continue;
      MicroQueue& queue = *rt_.queues[target];
      {
        std::lock_guard<std::mutex> lock(queue.mutex);
        queue.queue.insert(queue.queue.end(), staged_[target].begin(),
                           staged_[target].end());
      }
      queue.cv.notify_one();
      staged_[target].clear();
    }
  }

  void RunChain(size_t step_index, const Record& rec) {
    if (step_index == chain_.size()) {
      Route(rec);
      return;
    }
    ChainStep& step = chain_[step_index];
    class NextCollector : public Collector {
     public:
      NextCollector(MicrostepInstance* self, size_t next)
          : self_(self), next_(next) {}
      void Emit(const Record& rec) override { self_->RunChain(next_, rec); }

     private:
      MicrostepInstance* self_;
      size_t next_;
    } next(this, step_index + 1);

    switch (step.kind) {
      case ChainStep::Kind::kMap:
        step.task->map_udf(rec, &next);
        break;
      case ChainStep::Kind::kFilter:
        if (step.task->filter_udf(rec)) next.Emit(rec);
        break;
      case ChainStep::Kind::kSolutionJoin: {
        SolutionSetIndex* index = rt_.index[partition_].get();
        const Record* s_rec = index->Lookup(rec, step.probe_key);
        if (s_rec == nullptr) return;
        // Immediate ∪̇: the update takes effect before the next microstep
        // (MICRO of Table 1); discarded records do not propagate.
        class MicroApply : public Collector {
         public:
          MicroApply(SolutionSetIndex* index, Collector* next)
              : index_(index), next_(next) {}
          void Emit(const Record& rec) override {
            if (index_->Apply(rec)) next_->Emit(rec);
          }

         private:
          SolutionSetIndex* index_;
          Collector* next_;
        } apply(index, &next);
        if (step.task->solution_side == 0) {
          step.task->match_udf(*s_rec, rec, &apply);
        } else {
          step.task->match_udf(rec, *s_rec, &apply);
        }
        break;
      }
      case ChainStep::Kind::kMatchConst: {
        step.table->Probe(rec, step.probe_key, [&](const Record& build) {
          if (step.const_is_left) {
            step.task->match_udf(build, rec, &next);
          } else {
            step.task->match_udf(rec, build, &next);
          }
        });
        break;
      }
    }
  }

  void ProcessLoop() {
    staged_.resize(rt_.parallelism);
    std::vector<Record> batch;
    int64_t processed = 0;
    while (PopBatch(&batch)) {
      for (const Record& rec : batch) {
        RunChain(0, rec);
      }
      FlushStaged();
      // Release the batch's credits only after its children are visible.
      for (size_t i = 0; i < batch.size(); ++i) {
        rt_.detector->RecordProcessed();
      }
      processed += static_cast<int64_t>(batch.size());
      // Wake peers that may be waiting on quiescence.
      if (rt_.detector->Quiescent()) {
        for (auto& queue : rt_.queues) queue->cv.notify_all();
      }
    }
    rt_.micro_processed.fetch_add(processed, std::memory_order_relaxed);
  }

  void EmitResult() {
    // Emit this partition's converged solution set through the delta-apply
    // task's output ports (its downstream consumers expect P producers).
    std::vector<std::unique_ptr<OutputPort>> outputs;
    std::vector<OutputPort*> ptrs;
    for (const auto& [consumer_id, port] :
         ctx_->consumer_edges[delta_apply_task_->id]) {
      const PhysicalTask& consumer = ctx_->task(consumer_id);
      const PhysicalInput& edge = consumer.inputs[port];
      std::vector<Exchange*> targets;
      for (int p = 0; p < ctx_->parallelism; ++p) {
        targets.push_back(ctx_->channels[consumer_id][port][p].get());
      }
      outputs.push_back(std::make_unique<OutputPort>(
          std::move(targets), edge.ship, edge.ship_key, partition_,
          &ctx_->metrics, /*in_loop=*/false));
      ptrs.push_back(outputs.back().get());
    }
    PortsCollector collector(ptrs);
    rt_.index[partition_]->ForEach(
        [&](const Record& rec) { collector.Emit(rec); });
    for (OutputPort* port : ptrs) port->SendMarker(MarkerKind::kEndStream);
  }

  ExecContext* ctx_;
  WorksetRuntime& rt_;
  int partition_;
  std::vector<const PhysicalTask*> chain_tasks_;
  const PhysicalTask* delta_apply_task_;
  std::vector<ChainStep> chain_;
  /// Per-target staging buffers for outgoing workset records.
  std::vector<std::vector<Record>> staged_;
};

// ---------------------------------------------------------------------------
// Setup helpers
// ---------------------------------------------------------------------------

Status ValidatePhysicalPlan(const PhysicalPlan& plan) {
  for (const PhysicalTask& task : plan.tasks) {
    if (task.id != static_cast<int>(&task - plan.tasks.data())) {
      return Status::Internal("physical task ids must be dense and ordered");
    }
    for (const PhysicalInput& input : task.inputs) {
      if (input.producer < 0 ||
          input.producer >= static_cast<int>(plan.tasks.size())) {
        return Status::Internal("physical input references unknown producer");
      }
      if (input.ship == ShipStrategy::kHashPartition &&
          input.ship_key.empty()) {
        return Status::Internal("hash partitioning requires a ship key");
      }
    }
  }
  return Status::OK();
}

/// Derives the decide-function for a bulk iteration's coordinator.
std::function<bool(int64_t)> MakeBulkDecide(ExecContext* ctx,
                                            BulkRuntime* rt) {
  return [ctx, rt](int64_t finished) {
    SuperstepCoordinator* coordinator = rt->coordinator.get();
    int64_t term = coordinator->term_records.exchange(0);
    int64_t consumed = coordinator->workset_consumed.exchange(0);
    if (rt->record_stats) {
      SuperstepStats stats;
      stats.superstep = static_cast<int>(finished);
      stats.millis = rt->watch.ElapsedMillis();
      stats.workset_size = consumed;
      stats.term_records = term;
      int64_t shipped = ctx->metrics.records_shipped();
      stats.records_shipped = shipped - rt->shipped_mark;
      rt->shipped_mark = shipped;
      rt->report.supersteps.push_back(stats);
    }
    rt->watch.Restart();
    rt->report.iterations = static_cast<int>(finished + 1);
    bool terminate = false;
    if (rt->has_term && term == 0) {
      terminate = true;
      rt->report.converged = true;
    }
    if (finished + 1 >= rt->max_iterations) {
      terminate = true;
      if (!rt->has_term) rt->report.converged = true;
    }
    return terminate;
  };
}

/// Derives the decide-function for a workset iteration's coordinator.
std::function<bool(int64_t)> MakeWorksetDecide(ExecContext* ctx,
                                               WorksetRuntime* rt) {
  return [ctx, rt](int64_t finished) {
    SuperstepCoordinator* coordinator = rt->coordinator.get();
    // Swap the double-buffered queues: records added during this superstep
    // become the next superstep's workset (§5.3).
    int64_t produced = 0;
    for (int p = 0; p < rt->parallelism; ++p) {
      std::lock_guard<std::mutex> lock(*rt->back_mutex[p]);
      produced += static_cast<int64_t>(rt->back[p].size());
      rt->front[p] = std::move(rt->back[p]);
      rt->back[p].clear();
    }
    coordinator->workset_produced.exchange(0);
    int64_t consumed = coordinator->workset_consumed.exchange(0);
    // Session rounds restart the superstep numbering of reports and the
    // iteration cap at the round's first superstep (one-shot runs have
    // round_start_superstep == 0, reducing to the plain numbering). The
    // round-relative index is bounded by max_iterations, so int is safe.
    const int round_superstep =
        static_cast<int>(finished - rt->round_start_superstep);
    if (rt->record_stats) {
      SuperstepStats stats;
      stats.superstep = round_superstep;
      stats.millis = rt->watch.ElapsedMillis();
      stats.workset_size = consumed;
      stats.next_workset_size = produced;
      int64_t lookups;
      int64_t applied;
      int64_t discarded;
      rt->SumIndexStats(&lookups, &applied, &discarded);
      stats.solution_lookups = lookups - rt->lookups_mark;
      stats.delta_applied = applied - rt->applied_mark;
      stats.delta_discarded = discarded - rt->discarded_mark;
      rt->lookups_mark = lookups;
      rt->applied_mark = applied;
      rt->discarded_mark = discarded;
      int64_t shipped = ctx->metrics.records_shipped();
      stats.records_shipped = shipped - rt->shipped_mark;
      rt->shipped_mark = shipped;
      rt->report.supersteps.push_back(stats);
    }
    rt->watch.Restart();
    rt->report.iterations = round_superstep + 1;
    // §4.2 recovery log: snapshot the materialization points (solution set
    // + pending workset) at the configured superstep boundary. Safe here:
    // every task instance is parked at the barrier. Round-relative, like
    // the report numbering, so session rounds each hit the same mark.
    if (round_superstep == ctx->checkpoint_superstep &&
        !ctx->checkpoint_path.empty()) {
      IterationCheckpoint checkpoint;
      checkpoint.superstep = round_superstep;
      for (const auto& index : rt->index) {
        index->ForEach([&](const Record& rec) {
          checkpoint.solution.push_back(rec);
        });
      }
      for (const auto& front : rt->front) {
        checkpoint.workset.insert(checkpoint.workset.end(), front.begin(),
                                  front.end());
      }
      Status st = SaveCheckpoint(ctx->checkpoint_path, checkpoint);
      if (!st.ok()) {
        SFDF_LOG(Warn) << "checkpoint failed: " << st.ToString();
      }
    }
    if (produced == 0) {
      rt->report.converged = true;  // the workset drained: fixpoint reached
      return true;
    }
    if (round_superstep + 1 >= rt->max_iterations) return true;
    return false;
  };
}

/// Early ExecutionOptions validation: malformed knobs are rejected here
/// with InvalidArgument instead of flowing silently into the runtime.
Status ValidateExecutionOptions(const ExecutionOptions& options) {
  if (options.parallelism < 0) {
    return Status::InvalidArgument(
        "ExecutionOptions.parallelism must be >= 0 (0 = default), got " +
        std::to_string(options.parallelism));
  }
  if (options.checkpoint_superstep < -1) {
    return Status::InvalidArgument(
        "ExecutionOptions.checkpoint_superstep must be >= -1 (-1 = off), "
        "got " +
        std::to_string(options.checkpoint_superstep));
  }
  return Status::OK();
}

/// One-shot setup: validates the plan and builds the channels, consumer
/// index, iteration runtimes and sink slots for degree-of-parallelism P.
/// Shared between Run (setup → execute → tear down) and StartSession
/// (setup once, re-enter rounds warm).
Status SetupContext(const PhysicalPlan& plan, const ExecutionOptions& options,
                    int P, ExecContext* ctx_out) {
  SFDF_RETURN_NOT_OK(ValidatePhysicalPlan(plan));

  ExecContext& ctx = *ctx_out;
  ctx.plan = &plan;
  ctx.parallelism = P;
  ctx.record_stats = options.record_superstep_stats;
  ctx.cache_spill_budget = options.cache_spill_budget_bytes;
  ctx.checkpoint_superstep = options.checkpoint_superstep;
  ctx.checkpoint_path = options.checkpoint_path;

  // --- channels & consumer index ---
  ctx.channels.resize(plan.tasks.size());
  ctx.consumer_edges.resize(plan.tasks.size());
  ctx.sink_slots.resize(plan.tasks.size());
  for (const PhysicalTask& task : plan.tasks) {
    ctx.channels[task.id].resize(task.inputs.size());
    for (size_t port = 0; port < task.inputs.size(); ++port) {
      for (int p = 0; p < P; ++p) {
        ctx.channels[task.id][port].push_back(std::make_unique<Exchange>(P));
      }
      ctx.consumer_edges[task.inputs[port].producer].emplace_back(
          task.id, static_cast<int>(port));
    }
    if (task.kind == OperatorKind::kSink) {
      ctx.sink_slots[task.id].resize(P);
      SFDF_CHECK(task.sink_out != nullptr) << "sink without output vector";
      task.sink_out->clear();
    }
  }

  // --- iteration runtimes ---
  std::vector<int> loop_tasks_bulk(plan.bulk_iterations.size(), 0);
  std::vector<int> loop_tasks_ws(plan.workset_iterations.size(), 0);
  for (const PhysicalTask& task : plan.tasks) {
    if (IsLoopTask(task)) {
      if (task.bulk_iteration >= 0) ++loop_tasks_bulk[task.bulk_iteration];
      if (task.workset_iteration >= 0) ++loop_tasks_ws[task.workset_iteration];
    }
  }

  for (size_t i = 0; i < plan.bulk_iterations.size(); ++i) {
    const PhysicalBulkIteration& spec = plan.bulk_iterations[i];
    auto rt = std::make_unique<BulkRuntime>();
    rt->feedback.resize(P);
    rt->has_term = spec.term_sink_task >= 0;
    rt->max_iterations = spec.max_iterations;
    rt->metrics = &ctx.metrics;
    rt->record_stats = ctx.record_stats;
    BulkRuntime* raw = rt.get();
    rt->coordinator = std::make_unique<SuperstepCoordinator>(
        loop_tasks_bulk[i] * P, MakeBulkDecide(&ctx, raw));
    ctx.bulk.push_back(std::move(rt));
  }

  for (size_t i = 0; i < plan.workset_iterations.size(); ++i) {
    const PhysicalWorksetIteration& spec = plan.workset_iterations[i];
    auto rt = std::make_unique<WorksetRuntime>();
    rt->parallelism = P;
    rt->route_key = spec.workset_route_key;
    rt->solution_key = spec.solution_key;
    rt->immediate_apply = spec.immediate_apply;
    rt->microstep = spec.microstep;
    rt->max_iterations = spec.max_iterations;
    rt->metrics = &ctx.metrics;
    rt->record_stats = ctx.record_stats;
    rt->front.resize(P);
    rt->back.resize(P);
    for (int p = 0; p < P; ++p) {
      rt->back_mutex.push_back(std::make_unique<std::mutex>());
      rt->index.push_back(
          spec.use_btree_index
              ? MakeBTreeSolutionIndex(spec.solution_key, spec.comparator)
              : MakeHashSolutionIndex(spec.solution_key, spec.comparator));
    }
    if (spec.microstep) {
      rt->detector = std::make_unique<QuiescenceDetector>(P);
      for (int p = 0; p < P; ++p) {
        rt->queues.push_back(std::make_unique<MicroQueue>());
      }
      rt->report.ran_microsteps = true;
    } else {
      WorksetRuntime* raw = rt.get();
      rt->coordinator = std::make_unique<SuperstepCoordinator>(
          loop_tasks_ws[i] * P, MakeWorksetDecide(&ctx, raw));
    }
    ctx.workset.push_back(std::move(rt));
  }
  return Status::OK();
}

/// Spawns one thread per task instance (plus the fused microstep instances).
/// Threads reference `ctx` and `plan`, both of which must outlive the join.
void SpawnThreads(const PhysicalPlan& plan, ExecContext* ctx_ptr,
                  std::vector<std::thread>* threads_out) {
  ExecContext& ctx = *ctx_ptr;
  std::vector<std::thread>& threads = *threads_out;
  const int P = ctx.parallelism;

  for (const PhysicalTask& task : plan.tasks) {
    if (task.workset_iteration >= 0 &&
        plan.workset_iterations[task.workset_iteration].microstep &&
        IsLoopTask(task)) {
      continue;  // fused into MicrostepInstance below
    }
    for (int p = 0; p < P; ++p) {
      threads.emplace_back([&ctx, &task, p] {
        TaskInstance instance(&ctx, &task, p);
        instance.Run();
      });
    }
  }

  for (size_t i = 0; i < plan.workset_iterations.size(); ++i) {
    const PhysicalWorksetIteration& spec = plan.workset_iterations[i];
    if (!spec.microstep) continue;
    // Chain = the dynamic body tasks in dataflow order, starting from the
    // head's unique consumer.
    std::vector<const PhysicalTask*> chain;
    int cursor = -1;
    for (const auto& [consumer, port] :
         ctx.consumer_edges[spec.head_task]) {
      (void)port;
      if (ctx.task(consumer).role != TaskRole::kWorksetTail) cursor = consumer;
    }
    while (cursor >= 0) {
      const PhysicalTask& task = ctx.task(cursor);
      chain.push_back(&task);
      int next = -1;
      for (const auto& [consumer, port] : ctx.consumer_edges[cursor]) {
        (void)port;
        const PhysicalTask& c = ctx.task(consumer);
        if (c.role == TaskRole::kRegular && IsLoopTask(c)) next = consumer;
        if (c.role == TaskRole::kSolutionJoin) next = consumer;
      }
      cursor = next;
    }
    const PhysicalTask* delta_apply = &ctx.task(spec.delta_apply_task);
    for (int p = 0; p < P; ++p) {
      threads.emplace_back([&ctx, i, p, chain, delta_apply] {
        MicrostepInstance instance(&ctx, static_cast<int>(i), p, chain,
                                   delta_apply);
        instance.Run();
      });
    }
  }
}

/// Post-join epilogue: merges the sink slots deterministically and
/// assembles the aggregate statistics.
ExecutionResult AssembleResult(const PhysicalPlan& plan, ExecContext* ctx_ptr,
                               double total_millis) {
  ExecContext& ctx = *ctx_ptr;
  const int P = ctx.parallelism;

  // --- merge sink slots deterministically by partition ---
  for (const PhysicalTask& task : plan.tasks) {
    if (task.kind != OperatorKind::kSink) continue;
    for (int p = 0; p < P; ++p) {
      auto& slot = ctx.sink_slots[task.id][p];
      task.sink_out->insert(task.sink_out->end(), slot.begin(), slot.end());
    }
  }

  // --- fold exchange-health counters into the metrics ---
  // Safe here: every producer/consumer thread has joined, so the per-lane
  // relaxed counters are exact.
  for (const auto& task_channels : ctx.channels) {
    for (const auto& port_channels : task_channels) {
      for (const auto& exchange : port_channels) {
        const Exchange::Stats s = exchange->stats();
        ctx.metrics.RecordQueueDepth(s.depth_high_water);
        ctx.metrics.CountBatchPool(s.pool_hits, s.pool_misses);
      }
    }
  }

  // --- assemble result ---
  ExecutionResult result;
  result.total_millis = total_millis;
  result.records_shipped = ctx.metrics.records_shipped();
  result.records_remote = ctx.metrics.records_remote();
  result.bytes_shipped = ctx.metrics.bytes_shipped();
  result.records_combined = ctx.metrics.records_combined();
  result.queue_depth_high_water = ctx.metrics.queue_depth_high_water();
  result.batch_pool_hits = ctx.metrics.batch_pool_hits();
  result.batch_pool_misses = ctx.metrics.batch_pool_misses();
  for (auto& rt : ctx.bulk) {
    result.bulk_reports.push_back(std::move(rt->report));
  }
  for (auto& rt : ctx.workset) {
    if (rt->microstep) {
      rt->report.iterations = 1;
      rt->report.converged = true;
      SuperstepStats stats;
      stats.superstep = 0;
      stats.millis = result.total_millis;
      stats.workset_size = rt->micro_processed.load();
      int64_t lookups;
      int64_t applied;
      int64_t discarded;
      rt->SumIndexStats(&lookups, &applied, &discarded);
      stats.solution_lookups = lookups;
      stats.delta_applied = applied;
      stats.delta_discarded = discarded;
      rt->report.supersteps.push_back(stats);
    }
    result.workset_reports.push_back(std::move(rt->report));
  }
  return result;
}

}  // namespace executor_detail

using namespace executor_detail;  // NOLINT — single-TU detail namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

Executor::Executor(ExecutionOptions options) : options_(options) {}

Result<ExecutionResult> Executor::Run(const PhysicalPlan& plan) {
  SFDF_RETURN_NOT_OK(ValidateExecutionOptions(options_));
  const int P =
      options_.parallelism > 0 ? options_.parallelism : DefaultParallelism();

  ExecContext ctx;
  SFDF_RETURN_NOT_OK(SetupContext(plan, options_, P, &ctx));

  Stopwatch total_watch;
  std::vector<std::thread> threads;
  SpawnThreads(plan, &ctx, &threads);
  for (std::thread& thread : threads) thread.join();

  return AssembleResult(plan, &ctx, total_watch.ElapsedMillis());
}

// ---------------------------------------------------------------------------
// Session mode (resident iterations; see src/service/)
// ---------------------------------------------------------------------------

/// The resident half of a session: the full execution context plus the
/// round gate and the still-running task threads. Lives until Finish.
struct SessionState {
  const PhysicalPlan* plan = nullptr;
  ExecContext ctx;
  RoundGate gate;
  std::vector<std::thread> threads;
  Stopwatch total_watch;
  IterationReport initial_report;
  bool finished = false;

  WorksetRuntime& runtime() { return *ctx.workset[0]; }
  const WorksetRuntime& runtime() const { return *ctx.workset[0]; }

  /// Blocks until every participant is parked at the gate (round over).
  /// Caller must hold gate.mutex via `lock`.
  void AwaitQuiescent(std::unique_lock<std::mutex>& lock) {
    gate.cv.wait(lock, [this] { return gate.parked == gate.participants; });
  }
};

Result<std::unique_ptr<ExecutionSession>> Executor::StartSession(
    const PhysicalPlan& plan) {
  SFDF_RETURN_NOT_OK(ValidateExecutionOptions(options_));
  if (plan.workset_iterations.size() != 1 || !plan.bulk_iterations.empty()) {
    return Status::InvalidArgument(
        "session mode requires exactly one workset iteration and no bulk "
        "iterations");
  }
  if (plan.workset_iterations[0].microstep) {
    return Status::Unsupported(
        "session mode requires superstep execution — a microstep plan has "
        "no superstep barrier to park rounds at");
  }
  const int P =
      options_.parallelism > 0 ? options_.parallelism : DefaultParallelism();

  auto state = std::make_unique<SessionState>();
  state->plan = &plan;
  SFDF_RETURN_NOT_OK(SetupContext(plan, options_, P, &state->ctx));

  WorksetRuntime& rt = state->runtime();
  rt.gate = &state->gate;
  int loop_tasks = 0;
  for (const PhysicalTask& task : plan.tasks) {
    if (IsLoopTask(task) && task.workset_iteration == 0) ++loop_tasks;
  }
  state->gate.participants = loop_tasks * P;

  SpawnThreads(plan, &state->ctx, &state->threads);

  // The cold round (full initial convergence) starts immediately; hand the
  // session back once every participant parked at its fixpoint.
  {
    std::unique_lock<std::mutex> lock(state->gate.mutex);
    state->AwaitQuiescent(lock);
    state->initial_report = rt.report;
  }
  return std::unique_ptr<ExecutionSession>(
      new ExecutionSession(std::move(state)));
}

ExecutionSession::ExecutionSession(std::unique_ptr<SessionState> state)
    : state_(std::move(state)) {}

ExecutionSession::~ExecutionSession() {
  if (state_ != nullptr && !state_->finished) {
    auto ignored = Finish();
    (void)ignored;
  }
}

const IterationReport& ExecutionSession::initial_report() const {
  return state_->initial_report;
}

int ExecutionSession::parallelism() const { return state_->ctx.parallelism; }

SolutionSetIndex* ExecutionSession::solution_partition(int p) {
  return state_->runtime().index[p].get();
}

int ExecutionSession::PartitionOfSolution(const Record& probe) const {
  return PartitionOf(probe, state_->runtime().solution_key,
                     state_->ctx.parallelism);
}

const KeySpec& ExecutionSession::solution_key() const {
  return state_->runtime().solution_key;
}

void ExecutionSession::ForEachSolution(
    const std::function<void(const Record&)>& fn) const {
  for (const auto& index : state_->runtime().index) index->ForEach(fn);
}

Result<IterationReport> ExecutionSession::RunRound(
    std::vector<Record> workset) {
  SessionState& s = *state_;
  if (s.finished) {
    return Status::InvalidArgument("RunRound on a finished session");
  }
  WorksetRuntime& rt = s.runtime();
  const PhysicalWorksetIteration& spec = s.plan->workset_iterations[0];
  const int head_task = spec.head_task;
  const int P = s.ctx.parallelism;

  std::unique_lock<std::mutex> lock(s.gate.mutex);
  s.AwaitQuiescent(lock);

  // Fresh per-round report; the *_mark counters deliberately survive — they
  // are absolute marks against the cumulative session metrics.
  rt.report = IterationReport{};
  rt.round_start_superstep = rt.coordinator->superstep();
  rt.coordinator->Rearm();
  rt.watch.Restart();

  // Route the seed workset into the head's external W_0 port, partitioned
  // exactly like the runtime's own hash exchanges. If the previous round
  // stopped at the iteration cap with work left in the queues, that work
  // simply continues in this round alongside the new seeds. Seed batches
  // are cut from each port's lane-0 pool (the controller acts as that
  // lane's producer between rounds; Reset below provides the acquire edge
  // first), so the buffers the head recycled after draining the previous
  // round's seed come back here instead of piling up unread — a resident
  // session's seeding allocates nothing in steady state.
  std::vector<RecordBatch> seeds;
  seeds.reserve(P);
  for (int p = 0; p < P; ++p) {
    Exchange* port = s.ctx.channels[head_task][0][p].get();
    // The head drained the previous seed (data + markers) at the last
    // round's first superstep; anything still queued in ANY lane would
    // break the per-lane marker accounting of the phase about to start.
    // Reset scans every lane, so this asserts all of them drained.
    SFDF_CHECK(port->Reset() == 0)
        << "W_0 port of partition " << p << " not drained between rounds";
    seeds.push_back(port->AcquireBatch(0));
  }
  const int64_t seed_count = static_cast<int64_t>(workset.size());
  for (const Record& rec : workset) {
    seeds[PartitionOf(rec, rt.route_key, P)].Add(rec);
  }
  for (int p = 0; p < P; ++p) {
    s.ctx.channels[head_task][0][p]->Seed(std::move(seeds[p]));
  }
  s.ctx.metrics.CountShipped(seed_count, seed_count * sizeof(Record),
                             /*remote_records=*/0);

  // Release the round, then wait for its fixpoint (everyone parked again).
  s.gate.parked = 0;
  ++s.gate.round;
  s.gate.cv.notify_all();
  s.AwaitQuiescent(lock);
  return rt.report;
}

Result<ExecutionResult> ExecutionSession::Finish() {
  SessionState& s = *state_;
  if (s.finished) {
    return Status::InvalidArgument("session already finished");
  }
  {
    std::unique_lock<std::mutex> lock(s.gate.mutex);
    s.AwaitQuiescent(lock);
    s.gate.shutdown = true;
    s.gate.cv.notify_all();
  }
  // Participants flush the converged solution set downstream, the sinks
  // fill, and every thread (loop and non-loop alike) runs to completion.
  for (std::thread& thread : s.threads) thread.join();
  s.finished = true;
  return AssembleResult(*s.plan, &s.ctx, s.total_watch.ElapsedMillis());
}

}  // namespace sfdf
