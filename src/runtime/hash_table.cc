#include "runtime/hash_table.h"

namespace sfdf {

namespace {
constexpr size_t kInitialBuckets = 64;
}  // namespace

JoinHashTable::JoinHashTable(KeySpec build_key)
    : build_key_(build_key),
      heads_(kInitialBuckets, -1),
      mask_(kInitialBuckets - 1) {}

void JoinHashTable::Insert(const Record& rec) {
  if (entries_.size() + 1 > heads_.size() * 2) {
    Rehash(heads_.size() * 4);
  }
  uint64_t h = HashKey(rec, build_key_);
  size_t bucket = h & mask_;
  entries_.push_back(Entry{rec, h, heads_[bucket]});
  heads_[bucket] = static_cast<int32_t>(entries_.size() - 1);
}

void JoinHashTable::Clear() {
  entries_.clear();
  heads_.assign(kInitialBuckets, -1);
  mask_ = kInitialBuckets - 1;
}

void JoinHashTable::Rehash(size_t new_bucket_count) {
  heads_.assign(new_bucket_count, -1);
  mask_ = new_bucket_count - 1;
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t bucket = entries_[i].hash & mask_;
    entries_[i].next = heads_[bucket];
    heads_[bucket] = static_cast<int32_t>(i);
  }
}

UniqueHashTable::UniqueHashTable(KeySpec key)
    : key_(key), heads_(kInitialBuckets, -1), mask_(kInitialBuckets - 1) {}

int32_t UniqueHashTable::FindSlot(const Record& probe,
                                  const KeySpec& probe_key, uint64_t h) const {
  int32_t slot = heads_[h & mask_];
  while (slot >= 0) {
    const Entry& e = entries_[slot];
    if (e.hash == h && KeyEquals(e.record, key_, probe, probe_key)) {
      return slot;
    }
    slot = e.next;
  }
  return -1;
}

const Record* UniqueHashTable::Lookup(const Record& probe,
                                      const KeySpec& probe_key) const {
  if (entries_.empty()) return nullptr;
  uint64_t h = HashKey(probe, probe_key);
  int32_t slot = FindSlot(probe, probe_key, h);
  return slot >= 0 ? &entries_[slot].record : nullptr;
}

bool UniqueHashTable::Upsert(
    const Record& rec,
    const std::function<bool(const Record&, const Record&)>& resolve) {
  uint64_t h = HashKey(rec, key_);
  if (!entries_.empty()) {
    int32_t slot = FindSlot(rec, key_, h);
    if (slot >= 0) {
      if (resolve(entries_[slot].record, rec)) {
        entries_[slot].record = rec;
        return true;
      }
      return false;
    }
  }
  if (entries_.size() + 1 > heads_.size() * 2) {
    Rehash(heads_.size() * 4);
  }
  size_t bucket = h & mask_;
  entries_.push_back(Entry{rec, h, heads_[bucket]});
  heads_[bucket] = static_cast<int32_t>(entries_.size() - 1);
  return true;
}

void UniqueHashTable::Rehash(size_t new_bucket_count) {
  heads_.assign(new_bucket_count, -1);
  mask_ = new_bucket_count - 1;
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t bucket = entries_[i].hash & mask_;
    entries_[i].next = heads_[bucket];
    heads_[bucket] = static_cast<int32_t>(i);
  }
}

}  // namespace sfdf
