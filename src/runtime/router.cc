#include "runtime/router.h"

namespace sfdf {

OutputPort::OutputPort(std::vector<Exchange*> targets, ShipStrategy ship,
                       KeySpec ship_key, int my_partition, Metrics* metrics,
                       bool in_loop, CombineFn combiner, KeySpec combine_key)
    : targets_(std::move(targets)),
      ship_(ship),
      ship_key_(ship_key),
      my_partition_(my_partition),
      metrics_(metrics),
      in_loop_(in_loop),
      buffers_(targets_.size()),
      combiner_(std::move(combiner)),
      combine_key_(combine_key) {
  if (combiner_) {
    combine_buffers_.resize(targets_.size());
  }
}

void OutputPort::SendTo(int partition, const Record& rec) {
  RecordBatch& buffer = buffers_[partition];
  if (buffer.empty() && buffer.records().capacity() == 0) {
    // First record since the last flush: cut a buffer from our lane's
    // recycle pool so steady-state supersteps allocate nothing.
    buffer = targets_[partition]->AcquireBatch(my_partition_);
  }
  buffer.Add(rec);
  ++records_sent_;
  if (buffer.size() >= RecordBatch::kDefaultBatchSize) {
    FlushPartition(partition);
  }
}

void OutputPort::Send(const Record& rec) {
  switch (ship_) {
    case ShipStrategy::kForward:
      SendTo(my_partition_, rec);
      break;
    case ShipStrategy::kHashPartition: {
      int target = PartitionOf(rec, ship_key_, static_cast<int>(targets_.size()));
      if (combiner_) {
        // Pre-aggregate per target partition; ship merged records at flush.
        auto& map = combine_buffers_[target];
        CompositeKey key = CompositeKey::From(rec, combine_key_);
        auto it = map.find(key);
        if (it == map.end()) {
          map.emplace(key, rec);
        } else {
          it->second = combiner_(it->second, rec);
          metrics_->CountCombined(1);
        }
      } else {
        SendTo(target, rec);
      }
      break;
    }
    case ShipStrategy::kBroadcast:
      for (size_t p = 0; p < targets_.size(); ++p) {
        SendTo(static_cast<int>(p), rec);
      }
      break;
  }
}

void OutputPort::FlushPartition(int partition) {
  RecordBatch& buffer = buffers_[partition];
  if (buffer.empty()) return;
  int64_t records = static_cast<int64_t>(buffer.size());
  int64_t remote = partition == my_partition_ ? 0 : records;
  metrics_->CountShipped(records, static_cast<int64_t>(buffer.ByteSize()),
                         remote);
  Envelope envelope;
  envelope.kind = MarkerKind::kData;
  envelope.batch = std::move(buffer);
  buffer = RecordBatch();
  if (before_publish_) before_publish_(partition, records);
  targets_[partition]->Push(my_partition_, std::move(envelope));
  if (after_publish_) after_publish_(partition);
}

void OutputPort::FlushCombiner() {
  if (!combiner_) return;
  for (size_t p = 0; p < combine_buffers_.size(); ++p) {
    for (const auto& [key, rec] : combine_buffers_[p]) {
      SendTo(static_cast<int>(p), rec);
    }
    combine_buffers_[p].clear();
  }
}

void OutputPort::Flush() {
  FlushCombiner();
  for (size_t p = 0; p < targets_.size(); ++p) {
    FlushPartition(static_cast<int>(p));
  }
}

void OutputPort::SendMarker(MarkerKind kind) {
  // Combined and buffered data must reach the lane before the marker does:
  // a lane's marker ends its phase, and anything pushed after it would leak
  // into the consumer's next phase.
  Flush();
  for (Exchange* target : targets_) {
    Envelope envelope;
    envelope.kind = kind;
    target->Push(my_partition_, std::move(envelope));
  }
}

}  // namespace sfdf
