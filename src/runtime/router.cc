#include "runtime/router.h"

#include "obs/trace.h"

namespace sfdf {

OutputPort::OutputPort(std::vector<Exchange*> targets, ShipStrategy ship,
                       KeySpec ship_key, int my_partition, Metrics* metrics,
                       bool in_loop, CombineFn combiner, KeySpec combine_key)
    : targets_(std::move(targets)),
      ship_(ship),
      ship_key_(ship_key),
      my_partition_(my_partition),
      metrics_(metrics),
      in_loop_(in_loop),
      buffers_(targets_.size()),
      stalled_(targets_.size(), 0),
      has_pending_marker_(targets_.size(), 0),
      pending_marker_(targets_.size(), MarkerKind::kData),
      combiner_(std::move(combiner)),
      combine_key_(combine_key) {
  if (combiner_) {
    combine_buffers_.resize(targets_.size());
  }
}

void OutputPort::SendTo(int partition, const Record& rec) {
  RecordBatch& buffer = buffers_[partition];
  if (buffer.empty() && buffer.records().capacity() == 0) {
    // First record since the last flush: cut a buffer from our lane's
    // recycle pool so steady-state supersteps allocate nothing.
    buffer = targets_[partition]->AcquireBatch(my_partition_);
  }
  buffer.Add(rec);
  ++records_sent_;
  if (buffer.size() >= RecordBatch::kDefaultBatchSize) {
    FlushPartition(partition);
  }
}

void OutputPort::Send(const Record& rec) {
  switch (ship_) {
    case ShipStrategy::kForward:
      SendTo(my_partition_, rec);
      break;
    case ShipStrategy::kHashPartition: {
      int target =
          PartitionOf(rec, ship_key_, static_cast<int>(targets_.size()));
      if (combiner_) {
        // Pre-aggregate per target partition; ship merged records at flush.
        auto& map = combine_buffers_[target];
        CompositeKey key = CompositeKey::From(rec, combine_key_);
        auto it = map.find(key);
        if (it == map.end()) {
          map.emplace(key, rec);
        } else {
          it->second = combiner_(it->second, rec);
          metrics_->CountCombined(1);
        }
      } else {
        SendTo(target, rec);
      }
      break;
    }
    case ShipStrategy::kBroadcast:
      for (size_t p = 0; p < targets_.size(); ++p) {
        SendTo(static_cast<int>(p), rec);
      }
      break;
  }
}

bool OutputPort::FlushPartition(int partition) {
  RecordBatch& buffer = buffers_[partition];
  if (buffer.empty()) return true;
  const int64_t records = static_cast<int64_t>(buffer.size());
  const int64_t bytes = static_cast<int64_t>(buffer.ByteSize());
  const int64_t remote = partition == my_partition_ ? 0 : records;
  Envelope envelope;
  envelope.kind = MarkerKind::kData;
  envelope.batch = std::move(buffer);
  buffer = RecordBatch();
  // Async hooks and bounded (backpressuring) targets never coexist: hooks
  // are installed only on loop-internal ports, capacity only on non-loop
  // pipelined edges — so a pre-push credit can never be taken for an
  // envelope that then fails to publish.
  if (before_publish_) before_publish_(partition, records);
  if (targets_[partition]->TryPush(my_partition_, &envelope) ==
      Exchange::PushResult::kBackpressured) {
    // Keep the batch for TryDrainStalled to retry; count the stall only on
    // the unstalled->stalled transition, not per retry attempt.
    buffer = std::move(envelope.batch);
    if (!stalled_[partition]) {
      stalled_[partition] = 1;
      if (!has_pending_marker_[partition]) ++stalled_count_;
      metrics_->CountBackpressureStall(1);
      static const uint16_t kStall =
          trace::RegisterName("backpressure.stall");
      trace::Instant(kStall, partition);
    }
    return false;
  }
  if (stalled_[partition]) {
    stalled_[partition] = 0;
    if (!has_pending_marker_[partition]) --stalled_count_;
  }
  // Shipped counters move only on a successful publish, so a stalled batch
  // retried N times still counts once.
  metrics_->CountShipped(records, bytes, remote);
  if (after_publish_) after_publish_(partition);
  return true;
}

void OutputPort::DeliverDeferredMarker(int partition) {
  SFDF_DCHECK(!stalled_[partition] && buffers_[partition].empty())
      << "deferred marker delivered ahead of stalled data";
  Envelope envelope;
  envelope.kind = pending_marker_[partition];
  targets_[partition]->Push(my_partition_, std::move(envelope));
  has_pending_marker_[partition] = 0;
  --stalled_count_;
}

bool OutputPort::TryDrainStalled() {
  if (stalled_count_ == 0) return true;
  for (size_t p = 0; p < targets_.size(); ++p) {
    const int partition = static_cast<int>(p);
    if (stalled_[p] && !FlushPartition(partition)) continue;
    if (has_pending_marker_[p]) DeliverDeferredMarker(partition);
  }
  return stalled_count_ == 0;
}

void OutputPort::FlushCombiner() {
  if (!combiner_) return;
  for (size_t p = 0; p < combine_buffers_.size(); ++p) {
    for (const auto& [key, rec] : combine_buffers_[p]) {
      SendTo(static_cast<int>(p), rec);
    }
    combine_buffers_[p].clear();
  }
}

void OutputPort::Flush() {
  FlushCombiner();
  for (size_t p = 0; p < targets_.size(); ++p) {
    FlushPartition(static_cast<int>(p));
  }
}

void OutputPort::SendMarker(MarkerKind kind) {
  // Combined and buffered data must reach the lane before the marker does:
  // a lane's marker ends its phase, and anything pushed after it would leak
  // into the consumer's next phase. On a bounded edge that ordering demands
  // deferral: a target whose data is stalled gets its marker parked behind
  // it (TryDrainStalled delivers both in order). Loop edges are never
  // bounded, so the multi-marker superstep protocol can't hit this path.
  Flush();
  for (size_t p = 0; p < targets_.size(); ++p) {
    if (stalled_[p]) {
      SFDF_DCHECK(!has_pending_marker_[p])
          << "two markers deferred on one bounded edge";
      has_pending_marker_[p] = 1;
      pending_marker_[p] = kind;
      continue;
    }
    Envelope envelope;
    envelope.kind = kind;
    targets_[p]->Push(my_partition_, std::move(envelope));
  }
}

}  // namespace sfdf
