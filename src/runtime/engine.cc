#include "runtime/engine.h"

#include <algorithm>
#include <utility>

#include "common/env.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace sfdf {

Engine::Engine(Options options) {
  int workers = options.workers > 0 ? options.workers : DefaultEngineWorkers();
  workers = std::max(1, workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (const auto& [id, client] : clients_) {
      SFDF_DCHECK(client.queue.empty())
          << "engine destroyed with tasks queued on client '" << client.name
          << "'";
    }
    for (const auto& [slot, parked] : park_slots_) {
      SFDF_DCHECK(!parked.fn)
          << "engine destroyed with a parked continuation on slot " << slot;
    }
    cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

int Engine::RegisterClient(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = next_client_++;
  clients_[id].name = std::move(name);
  return id;
}

void Engine::UnregisterClient(int client) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clients_.find(client);
  SFDF_CHECK(it != clients_.end()) << "unregister of unknown engine client";
  SFDF_CHECK(it->second.queue.empty())
      << "unregister of engine client '" << it->second.name
      << "' with tasks still queued";
  for (const auto& [slot, parked] : park_slots_) {
    SFDF_CHECK(parked.client != client)
        << "unregister of engine client '" << it->second.name
        << "' with a live park slot";
  }
  clients_.erase(it);
}

uint64_t Engine::CreateParkSlot(int client) {
  std::lock_guard<std::mutex> lock(mutex_);
  SFDF_CHECK(clients_.find(client) != clients_.end())
      << "park slot for unknown engine client";
  const uint64_t slot = next_park_slot_++;
  park_slots_[slot].client = client;
  return slot;
}

void Engine::Park(uint64_t slot, TaskFn fn) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = park_slots_.find(slot);
    SFDF_CHECK(it != park_slots_.end()) << "park on unknown slot";
    ParkSlot& parked = it->second;
    SFDF_CHECK(!parked.fn) << "park slot already holds a continuation";
    auto client = clients_.find(parked.client);
    SFDF_CHECK(client != clients_.end()) << "park on dead engine client";
    client->second.stats.tasks_parked += 1;
    static const uint16_t kPark = trace::RegisterName("engine.park");
    trace::Instant(kPark, static_cast<int64_t>(slot));
    if (parked.wake_pending) {
      // The wake raced ahead of the park: consume it and run immediately
      // (this is what makes the peer's wake-then-park interleaving safe).
      parked.wake_pending = false;
      client->second.stats.tasks_woken += 1;
      client->second.queue.push_back(
          Queued{std::move(fn), std::chrono::steady_clock::now()});
      notify = true;
    } else {
      parked.fn = std::move(fn);
    }
  }
  if (notify) cv_.notify_one();
}

void Engine::Wake(uint64_t slot) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = park_slots_.find(slot);
    SFDF_CHECK(it != park_slots_.end()) << "wake on unknown slot";
    static const uint16_t kWake = trace::RegisterName("engine.wake");
    trace::Instant(kWake, static_cast<int64_t>(slot));
    ParkSlot& parked = it->second;
    if (parked.fn) {
      auto client = clients_.find(parked.client);
      SFDF_CHECK(client != clients_.end()) << "wake on dead engine client";
      client->second.stats.tasks_woken += 1;
      client->second.queue.push_back(
          Queued{std::move(parked.fn), std::chrono::steady_clock::now()});
      parked.fn = nullptr;
      notify = true;
    } else {
      parked.wake_pending = true;
    }
  }
  if (notify) cv_.notify_one();
}

void Engine::DestroyParkSlot(uint64_t slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = park_slots_.find(slot);
  SFDF_CHECK(it != park_slots_.end()) << "destroy of unknown park slot";
  SFDF_CHECK(!it->second.fn)
      << "destroy of a park slot with a parked continuation";
  park_slots_.erase(it);
}

void Engine::Submit(int client, TaskFn fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(client);
    SFDF_CHECK(it != clients_.end()) << "submit to unknown engine client";
    SFDF_CHECK(!stopping_) << "submit to a stopping engine";
    it->second.queue.push_back(
        Queued{std::move(fn), std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
}

bool Engine::PopNext(Queued* out, ClientStats** stats_out) {
  if (clients_.empty()) return false;
  // Round-robin: resume the scan strictly after the client served last,
  // wrapping once. A client with many queued tasks yields to every other
  // non-empty client before its next task is taken.
  auto it = clients_.upper_bound(rr_cursor_);
  for (size_t scanned = 0; scanned < clients_.size() + 1; ++scanned) {
    if (it == clients_.end()) {
      it = clients_.begin();
      if (it == clients_.end()) return false;
    }
    if (!it->second.queue.empty()) {
      *out = std::move(it->second.queue.front());
      it->second.queue.pop_front();
      *stats_out = &it->second.stats;
      rr_cursor_ = it->first;
      return true;
    }
    ++it;
  }
  return false;
}

void Engine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Queued task;
    ClientStats* stats = nullptr;
    if (PopNext(&task, &stats)) {
      const int64_t wait_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - task.enqueued)
              .count();
      stats->tasks_run += 1;
      stats->queue_wait_ns_total += wait_ns;
      stats->queue_wait_ns_max = std::max(stats->queue_wait_ns_max, wait_ns);
      lock.unlock();
      {
        // The span's argument is the queue wait in nanoseconds, so a trace
        // shows both where worker time went and how long tasks sat queued.
        static const uint16_t kTask = trace::RegisterName("engine.task");
        trace::Span span(kTask, wait_ns);
        task.fn();
      }
      // Drop the closure (and everything it captures) outside the lock.
      task.fn = nullptr;
      lock.lock();
      continue;
    }
    if (stopping_) return;
    cv_.wait(lock);
  }
}

Engine::ClientStats Engine::client_stats(int client) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clients_.find(client);
  SFDF_CHECK(it != clients_.end()) << "stats of unknown engine client";
  return it->second.stats;
}

Engine& Engine::Default() {
  static Engine engine{Options{}};
  return engine;
}

}  // namespace sfdf
