// In-memory B+-tree keyed by CompositeKey. The sorted primary-index variant
// of the solution set (Section 5.3: "if the optimizer picks a sort-based
// join strategy, S is stored in a sorted index (B+-Tree)") and of the
// constant-path cache.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "record/key.h"
#include "record/record.h"
#include "runtime/hash_table.h"  // CompositeKey

namespace sfdf {

/// Total order over composite keys (lexicographic over raw field images).
inline bool CompositeKeyLess(const CompositeKey& a, const CompositeKey& b) {
  int n = a.count < b.count ? a.count : b.count;
  for (int i = 0; i < n; ++i) {
    if (a.values[i] != b.values[i]) return a.values[i] < b.values[i];
  }
  return a.count < b.count;
}

/// B+-tree mapping unique CompositeKeys to Records. Leaves are linked for
/// in-order scans. Not thread-safe (single-writer phases, see executor).
class BPlusTree {
 public:
  /// `key` describes which fields of inserted records form their key.
  explicit BPlusTree(KeySpec key);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Returns the record stored under the key fields of `probe` (interpreted
  /// through `probe_key`), or nullptr.
  const Record* Lookup(const Record& probe, const KeySpec& probe_key) const;

  /// Inserts `rec`, or calls `resolve(existing, incoming)` if the key
  /// exists; resolve returns true to overwrite. Returns true iff the tree
  /// changed.
  bool Upsert(const Record& rec,
              const std::function<bool(const Record& existing,
                                       const Record& incoming)>& resolve);

  int64_t size() const { return size_; }

  /// In-order traversal (ascending key order).
  void ForEach(const std::function<void(const Record&)>& fn) const;

  /// Tree height (1 = just a leaf); exposed for tests.
  int height() const { return height_; }

  /// Validates structural invariants (sortedness, fill, links); for tests.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct SplitResult;

  static constexpr int kMaxKeys = 32;

  SplitResult InsertInto(Node* node, const CompositeKey& key,
                         const Record& rec,
                         const std::function<bool(const Record&,
                                                  const Record&)>& resolve,
                         bool* changed);
  void FreeTree(Node* node);

  KeySpec key_;
  Node* root_ = nullptr;
  int64_t size_ = 0;
  int height_ = 1;
};

}  // namespace sfdf
