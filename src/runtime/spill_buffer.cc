#include "runtime/spill_buffer.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "record/serde.h"

namespace sfdf {

namespace {

/// Spill segments buffer this many records before hitting disk.
constexpr int64_t kSegmentRecords = 4096;

std::string UniqueSpillPath(const std::string& directory) {
  static std::atomic<uint64_t> counter{0};
  std::string dir = directory;
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    dir = tmp != nullptr ? tmp : "/tmp";
  }
  return dir + "/sfdf_spill_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".bin";
}

}  // namespace

SpillBuffer::SpillBuffer(SpillBufferOptions options)
    : options_(std::move(options)) {}

SpillBuffer::~SpillBuffer() {
  if (!spill_path_.empty()) {
    std::remove(spill_path_.c_str());
  }
}

Status SpillBuffer::Add(const Record& rec) {
  SFDF_CHECK(!sealed_) << "Add after Seal";
  ++total_records_;
  if (!memory_full_) {
    memory_.push_back(rec);
    int64_t bytes = static_cast<int64_t>(memory_.size() * sizeof(Record));
    if (bytes >= options_.memory_budget_bytes) {
      memory_full_ = true;  // gradual spill: keep the prefix, spill the rest
    }
    return Status::OK();
  }
  pending_.push_back(rec);
  if (static_cast<int64_t>(pending_.size()) >= kSegmentRecords) {
    return SpillSegment();
  }
  return Status::OK();
}

Status SpillBuffer::SpillSegment() {
  if (pending_.empty()) return Status::OK();
  if (spill_path_.empty()) {
    spill_path_ = UniqueSpillPath(options_.spill_directory);
    // Truncate any stale file.
    std::FILE* f = std::fopen(spill_path_.c_str(), "wb");
    if (f == nullptr) {
      return Status::IoError("cannot create spill file: " + spill_path_);
    }
    std::fclose(f);
  }
  std::vector<uint8_t> bytes;
  RecordBatch batch(std::move(pending_));
  SerializeBatch(batch, &bytes);
  pending_.clear();

  std::FILE* f = std::fopen(spill_path_.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("cannot open spill file: " + spill_path_);
  }
  std::fseek(f, 0, SEEK_END);
  int64_t offset = std::ftell(f);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return Status::IoError("short write to spill file");
  }
  segments_.emplace_back(offset, static_cast<int64_t>(bytes.size()));
  spilled_records_ += static_cast<int64_t>(batch.size());
  return Status::OK();
}

Status SpillBuffer::Seal() {
  if (sealed_) return Status::OK();
  SFDF_RETURN_NOT_OK(SpillSegment());
  sealed_ = true;
  return Status::OK();
}

Status SpillBuffer::Replay(
    const std::function<void(const Record&)>& fn) const {
  SFDF_CHECK(sealed_) << "Replay before Seal";
  for (const Record& rec : memory_) fn(rec);
  if (segments_.empty()) return Status::OK();

  std::FILE* f = std::fopen(spill_path_.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot reopen spill file: " + spill_path_);
  }
  for (const auto& [offset, length] : segments_) {
    std::vector<uint8_t> bytes(static_cast<size_t>(length));
    std::fseek(f, static_cast<long>(offset), SEEK_SET);
    size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
    if (read != bytes.size()) {
      std::fclose(f);
      return Status::IoError("short read from spill file");
    }
    size_t cursor = 0;
    RecordBatch batch;
    Status st = DeserializeBatch(bytes, &cursor, &batch);
    if (!st.ok()) {
      std::fclose(f);
      return st;
    }
    for (const Record& rec : batch) fn(rec);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace sfdf
