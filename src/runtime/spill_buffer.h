// SpillBuffer: a record buffer with a memory budget that gradually spills
// overflow segments to disk (Section 4.3: "The caches are in-memory and
// gradually spilled in the presence of memory pressure").
//
// Used by the constant-path cache when the loop-invariant input exceeds its
// budget: the hot prefix stays in memory, the tail goes to a temporary
// spill file in serialized form, and every replay streams memory first,
// then the spilled segments.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "record/record.h"

namespace sfdf {

struct SpillBufferOptions {
  /// Records kept in memory before spilling begins. INT64_MAX = never spill.
  int64_t memory_budget_bytes = INT64_MAX;
  /// Directory for spill files; empty = the system temp directory.
  std::string spill_directory;
};

class SpillBuffer {
 public:
  explicit SpillBuffer(SpillBufferOptions options = {});
  ~SpillBuffer();

  SpillBuffer(const SpillBuffer&) = delete;
  SpillBuffer& operator=(const SpillBuffer&) = delete;

  /// Appends a record; spills a segment when the in-memory part exceeds
  /// the budget.
  Status Add(const Record& rec);

  /// Finishes the write phase (flushes a partial segment). Idempotent.
  Status Seal();

  /// Streams every record in insertion order: in-memory prefix first, then
  /// the spilled segments. Callable repeatedly after Seal().
  Status Replay(const std::function<void(const Record&)>& fn) const;

  int64_t size() const { return total_records_; }
  int64_t in_memory_records() const {
    return static_cast<int64_t>(memory_.size());
  }
  int64_t spilled_records() const { return spilled_records_; }
  bool spilled() const { return spilled_records_ > 0; }

 private:
  Status SpillSegment();

  SpillBufferOptions options_;
  std::vector<Record> memory_;
  std::vector<Record> pending_;  ///< records awaiting the next spill segment
  std::string spill_path_;
  /// Byte offsets of each spilled segment within the spill file.
  std::vector<std::pair<int64_t, int64_t>> segments_;  // (offset, length)
  int64_t spilled_records_ = 0;
  int64_t total_records_ = 0;
  bool sealed_ = false;
  bool memory_full_ = false;
};

}  // namespace sfdf
