// Superstep coordination (Sections 4.2 / 5.3), engine edition.
//
// All dynamic-path task instances of an iteration meet at an arrival-count
// gate after emitting their end-of-superstep channel events — one
// kEndSuperstep marker into their own lane of every in-loop target
// exchange. The gate and the per-lane marker accounting divide the work: a
// consumer's ReadPhase ends its *input* phase once every lane delivered its
// marker, while the gate ends the *superstep* once every participant
// arrived; because each participant sends its markers before arriving, a
// new superstep can only begin after every lane's previous phase is fully
// delimited. This is the shared-memory analogue of Nephele's "according
// number of channel events" protocol.
//
// v3 (shared worker-pool engine): participants are schedulable tasks, not
// parked threads, so nobody waits here. Arrive() decrements an atomic
// countdown; the LAST-arriving task runs the completion step inline —
// evaluate the termination criterion (empty workset, T-criterion silence,
// or the iteration cap), swap the double-buffered workset queues, capture
// per-superstep statistics — flips the phase, and its caller (the
// executor's wave scheduler) re-enqueues the next superstep's task wave.
// The completion runs while no participant task is live, exactly like the
// old std::barrier completion step ran while every thread was parked; the
// acq_rel countdown publishes every participant's superstep writes to it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/logging.h"

namespace sfdf {

class SuperstepCoordinator {
 public:
  /// `decide` runs once per superstep after all participants arrived;
  /// returning true terminates the iteration. It receives the finished
  /// superstep's index (0-based). 64-bit because the counter never resets
  /// across the rounds of a resident service session (see Rearm) — a
  /// long-lived server must not overflow it. It DOES reset across a live
  /// reconfiguration: the rebuilt skeleton's coordinator starts at 0 again,
  /// deliberately — operator closures key their §4.3 cache builds and
  /// solution-index construction off `superstep == 0`, so restarting the
  /// count is what makes a warm resume rebuild them at the new width
  /// (cross-skeleton superstep totals live in the session's carried stats).
  SuperstepCoordinator(int num_participants,
                       std::function<bool(int64_t)> decide)
      : decide_(std::move(decide)),
        num_participants_(num_participants),
        pending_(num_participants) {}

  /// Called by each participant task at the end of its superstep, after its
  /// markers are sent. Never blocks. Returns true for exactly one arrival
  /// per superstep — the last one — by which time the completion step
  /// (decide + phase flip) has already run in this call; the caller then
  /// schedules the next wave, or the final flush / round hand-off if
  /// terminated() reads true. The countdown is re-armed for the next
  /// superstep before returning, which is safe because the next wave is
  /// only enqueued by this arrival's caller, afterwards.
  bool Arrive() {
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) != 1) return false;
    const int64_t finished = superstep_.load(std::memory_order_relaxed);
    if (decide_(finished)) {
      terminated_.store(true, std::memory_order_release);
    }
    superstep_.store(finished + 1, std::memory_order_release);
    pending_.store(num_participants_, std::memory_order_release);
    return true;
  }

  bool terminated() const {
    return terminated_.load(std::memory_order_acquire);
  }
  int64_t superstep() const {
    return superstep_.load(std::memory_order_acquire);
  }
  int num_participants() const { return num_participants_; }

  /// Re-arms the coordinator for another round of supersteps (service
  /// sessions): clears the terminated flag so the wave scheduler re-enters
  /// the superstep loop. Only legal while no participant task is scheduled
  /// (the session controller provides that quiescence and the
  /// happens-before edge to the next wave via the engine's submit path).
  /// The superstep counter intentionally keeps counting across rounds:
  /// superstep 0 happens exactly once, so cold-start work (constant-path
  /// cache loads, solution-set builds) is never repeated warm.
  void Rearm() {
    SFDF_DCHECK(pending_.load(std::memory_order_acquire) ==
                num_participants_)
        << "Rearm while a wave is in flight";
    terminated_.store(false, std::memory_order_release);
  }

  // --- shared per-superstep accumulators (reset by the decide function) ---
  std::atomic<int64_t> term_records{0};     ///< records at the T sink
  std::atomic<int64_t> workset_consumed{0}; ///< records emitted by heads
  std::atomic<int64_t> workset_produced{0}; ///< records routed by tails

 private:
  std::function<bool(int64_t)> decide_;
  const int num_participants_;
  std::atomic<int> pending_;
  std::atomic<int64_t> superstep_{0};
  std::atomic<bool> terminated_{false};
};

}  // namespace sfdf
