// Superstep coordination (Sections 4.2 / 5.3), engine edition.
//
// All dynamic-path task instances of an iteration meet at an arrival-count
// gate after emitting their end-of-superstep channel events — one
// kEndSuperstep marker into their own lane of every in-loop target
// exchange. The gate and the per-lane marker accounting divide the work: a
// consumer's ReadPhase ends its *input* phase once every lane delivered its
// marker, while the gate ends the *superstep* once every participant
// arrived; because each participant sends its markers before arriving, a
// new superstep can only begin after every lane's previous phase is fully
// delimited. This is the shared-memory analogue of Nephele's "according
// number of channel events" protocol.
//
// v3 (shared worker-pool engine): participants are schedulable tasks, not
// parked threads, so nobody waits here. Arrive() decrements an atomic
// countdown; the LAST-arriving task runs the completion step inline —
// evaluate the termination criterion (empty workset, T-criterion silence,
// or the iteration cap), swap the double-buffered workset queues, capture
// per-superstep statistics — flips the phase, and its caller (the
// executor's wave scheduler) re-enqueues the next superstep's task wave.
// The completion runs while no participant task is live, exactly like the
// old std::barrier completion step ran while every thread was parked; the
// acq_rel countdown publishes every participant's superstep writes to it.
// Barrier-free mode (ExecutionOptions::sync_mode != kSuperstep): the gate
// stays idle and the coordinator instead tracks a distributed quiescence
// protocol. Every record published into an in-loop exchange takes a credit
// BEFORE it becomes visible; a partition returns the credits of everything
// it consumed only at the END of its local round, after its own children
// were published (and credited). pending == 0 therefore means "no record is
// queued anywhere and no partition is mid-round" — exact quiescence, the
// workset-is-empty criterion without a barrier. Layered on top, for
// observability and the protocol's narrative: a partition with nothing to
// do CASTS a quiescent vote before parking; any producer publishing toward
// it REVOKES the vote first. Votes are advisory (credits are the proof);
// revocation counts surface how often "done" partitions were reactivated.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "obs/trace.h"
#include "runtime/metrics.h"

namespace sfdf {

class SuperstepCoordinator {
 public:
  /// `decide` runs once per superstep after all participants arrived;
  /// returning true terminates the iteration. It receives the finished
  /// superstep's index (0-based). 64-bit because the counter never resets
  /// across the rounds of a resident service session (see Rearm) — a
  /// long-lived server must not overflow it. It DOES reset across a live
  /// reconfiguration: the rebuilt skeleton's coordinator starts at 0 again,
  /// deliberately — operator closures key their §4.3 cache builds and
  /// solution-index construction off `superstep == 0`, so restarting the
  /// count is what makes a warm resume rebuild them at the new width
  /// (cross-skeleton superstep totals live in the session's carried stats).
  SuperstepCoordinator(int num_participants,
                       std::function<bool(int64_t)> decide)
      : decide_(std::move(decide)),
        num_participants_(num_participants),
        pending_(num_participants) {}

  /// Called by each participant task at the end of its superstep, after its
  /// markers are sent. Never blocks. Returns true for exactly one arrival
  /// per superstep — the last one — by which time the completion step
  /// (decide + phase flip) has already run in this call; the caller then
  /// schedules the next wave, or the final flush / round hand-off if
  /// terminated() reads true. The countdown is re-armed for the next
  /// superstep before returning, which is safe because the next wave is
  /// only enqueued by this arrival's caller, afterwards.
  bool Arrive() {
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) != 1) return false;
    const int64_t finished = superstep_.load(std::memory_order_relaxed);
    {
      static const uint16_t kDecide =
          trace::RegisterName("superstep.decide");
      trace::Span span(kDecide, finished);
      if (decide_(finished)) {
        terminated_.store(true, std::memory_order_release);
      }
    }
    superstep_.store(finished + 1, std::memory_order_release);
    pending_.store(num_participants_, std::memory_order_release);
    static const uint16_t kFlip = trace::RegisterName("superstep.flip");
    trace::Instant(kFlip, finished + 1);
    return true;
  }

  bool terminated() const {
    return terminated_.load(std::memory_order_acquire);
  }
  int64_t superstep() const {
    return superstep_.load(std::memory_order_acquire);
  }
  int num_participants() const { return num_participants_; }

  /// Re-arms the coordinator for another round of supersteps (service
  /// sessions): clears the terminated flag so the wave scheduler re-enters
  /// the superstep loop. Only legal while no participant task is scheduled
  /// (the session controller provides that quiescence and the
  /// happens-before edge to the next wave via the engine's submit path).
  /// The superstep counter intentionally keeps counting across rounds:
  /// superstep 0 happens exactly once, so cold-start work (constant-path
  /// cache loads, solution-set builds) is never repeated warm.
  void Rearm() {
    SFDF_DCHECK(pending_.load(std::memory_order_acquire) ==
                num_participants_)
        << "Rearm while a wave is in flight";
    terminated_.store(false, std::memory_order_release);
  }

  // --- shared per-superstep accumulators (reset by the decide function) ---
  std::atomic<int64_t> term_records{0};     ///< records at the T sink
  std::atomic<int64_t> workset_consumed{0}; ///< records emitted by heads
  std::atomic<int64_t> workset_produced{0}; ///< records routed by tails

  // --- barrier-free mode (see file header) --------------------------------

  /// Switches this coordinator to barrier-free bookkeeping for `partitions`
  /// loop pipelines. `staleness_bound` > 0 caps how many local rounds a
  /// partition may run ahead of the slowest peer (kBoundedStale); 0 means
  /// unbounded (kAsync). Seeds one startup credit per partition, released
  /// when that partition consumed its initial-workset phase.
  void EnableBarrierFree(int partitions, int staleness_bound) {
    SFDF_CHECK(bf_ == nullptr) << "barrier-free mode enabled twice";
    bf_ = std::make_unique<BarrierFree>(partitions, staleness_bound);
  }
  bool barrier_free() const { return bf_ != nullptr; }
  int staleness_bound() const { return bf_->staleness_bound; }

  // Credits: + before a record is visible, - after its children are.
  void CreditEnqueued(int64_t n) {
    bf_->pending.fetch_add(n, std::memory_order_acq_rel);
  }
  void CreditProcessed(int64_t n) {
    bf_->processed.fetch_add(n, std::memory_order_relaxed);
    SFDF_DCHECK(bf_->pending.fetch_sub(n, std::memory_order_acq_rel) >= n)
        << "barrier-free credit counter went negative";
  }
  /// Releases the one startup credit EnableBarrierFree / RearmBarrierFree
  /// seeded for a partition, once its W_0 phase is consumed. The startup
  /// credits keep `pending` from hitting zero before every partition has
  /// even looked at its share of the initial workset.
  void ReleaseStartupCredit() {
    SFDF_DCHECK(bf_->pending.load(std::memory_order_acquire) >= 1);
    bf_->pending.fetch_sub(1, std::memory_order_acq_rel);
  }
  bool Quiescent() const {
    return bf_->pending.load(std::memory_order_acquire) == 0;
  }
  /// Total records processed by local rounds since EnableBarrierFree.
  int64_t records_processed() const {
    return bf_->processed.load(std::memory_order_relaxed);
  }

  // Votes (advisory; see file header).
  void CastQuiescentVote(int p) {
    bf_->voted[static_cast<size_t>(p)].store(true, std::memory_order_release);
  }
  /// Called by a producer BEFORE publishing records toward partition `p`:
  /// a standing vote is withdrawn (and counted as a revocation).
  void RevokeQuiescentVote(int p) {
    if (bf_->voted[static_cast<size_t>(p)].exchange(
            false, std::memory_order_acq_rel)) {
      bf_->revocations.fetch_add(1, std::memory_order_relaxed);
    }
  }
  int64_t vote_revocations() const {
    return bf_->revocations.load(std::memory_order_relaxed);
  }

  // Local rounds and staleness. local_round[p] is written only by
  // partition p's task; cross-partition reads are monotonic approximations
  // (the staleness bound tolerates lag by construction — a stale MinLocal
  // Round only parks a partition that a peer's next broadcast re-wakes).
  int64_t local_round(int p) const {
    return bf_->local_round[static_cast<size_t>(p)].load(
        std::memory_order_relaxed);
  }
  int64_t MinLocalRound() const {
    int64_t min = bf_->local_round[0].load(std::memory_order_relaxed);
    for (size_t p = 1; p < bf_->local_round.size(); ++p) {
      const int64_t r = bf_->local_round[p].load(std::memory_order_relaxed);
      if (r < min) min = r;
    }
    return min;
  }
  /// Entry of a working local round: withdraws any stale self-vote and
  /// records the observed staleness (rounds ahead of the slowest peer).
  void BeginWorkRound(int p) {
    bf_->voted[static_cast<size_t>(p)].store(false, std::memory_order_relaxed);
    FoldMax(bf_->max_staleness, local_round(p) - MinLocalRound());
  }
  void AdvanceLocalRound(int p) {
    bf_->local_round[static_cast<size_t>(p)].fetch_add(
        1, std::memory_order_relaxed);
    bf_->rounds_executed[static_cast<size_t>(p)].fetch_add(
        1, std::memory_order_relaxed);
  }
  /// An idle partition is caught up, not behind: before parking it bumps
  /// its round to the fastest peer's, so it never holds the staleness
  /// minimum down while contributing nothing (which would deadlock a
  /// bounded-stale run whose only active partition is k rounds ahead).
  /// Returns true if the bump raised this partition's round — i.e. the
  /// staleness minimum may have advanced and parked peers need a wake.
  bool SyncIdleRound(int p) {
    int64_t max = 0;
    for (const auto& r : bf_->local_round) {
      const int64_t v = r.load(std::memory_order_relaxed);
      if (v > max) max = v;
    }
    auto& mine = bf_->local_round[static_cast<size_t>(p)];
    if (mine.load(std::memory_order_relaxed) < max) {
      mine.store(max, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  int64_t rounds_executed(int p) const {
    return bf_->rounds_executed[static_cast<size_t>(p)].load(
        std::memory_order_relaxed);
  }
  int64_t max_staleness() const {
    return bf_->max_staleness.load(std::memory_order_relaxed);
  }

  // Round lifecycle. Termination reuses `terminated_`: any partition that
  // observes Quiescent() (or trips the iteration cap) finishes the round
  // for everyone; idempotent because every partition's unit finishes at
  // most once per round.
  void FinishBarrierFree(bool capped) {
    if (capped) bf_->capped.store(true, std::memory_order_relaxed);
    terminated_.store(true, std::memory_order_release);
  }
  bool capped() const {
    return bf_->capped.load(std::memory_order_relaxed);
  }
  /// Service-session re-arm (controller side, under round quiescence):
  /// clears termination/cap/votes, seeds fresh startup credits and
  /// snapshots the per-round report bases. Leftover credits of an
  /// iteration-capped round intentionally survive — their records are
  /// still queued and the next round must not be quiescent before draining
  /// them.
  void RearmBarrierFree() {
    terminated_.store(false, std::memory_order_release);
    bf_->capped.store(false, std::memory_order_relaxed);
    for (auto& v : bf_->voted) v.store(false, std::memory_order_relaxed);
    bf_->pending.fetch_add(bf_->partitions, std::memory_order_acq_rel);
    for (size_t p = 0; p < bf_->round_base.size(); ++p) {
      bf_->round_base[p] =
          bf_->rounds_executed[p].load(std::memory_order_relaxed);
    }
    bf_->revocations_base =
        bf_->revocations.load(std::memory_order_relaxed);
  }
  /// Per-round report deltas (read by the round's last-finishing unit; the
  /// bases are controller-written under quiescence, ordered by the engine
  /// submit path).
  int64_t RoundLocalRounds() const {
    int64_t max = 0;
    for (size_t p = 0; p < bf_->round_base.size(); ++p) {
      const int64_t d =
          bf_->rounds_executed[p].load(std::memory_order_relaxed) -
          bf_->round_base[p];
      if (d > max) max = d;
    }
    return max;
  }
  int64_t RoundRevocations() const {
    return bf_->revocations.load(std::memory_order_relaxed) -
           bf_->revocations_base;
  }

 private:
  struct BarrierFree {
    BarrierFree(int partitions, int staleness_bound)
        : partitions(partitions),
          staleness_bound(staleness_bound),
          pending(partitions),  // one startup credit per partition
          local_round(static_cast<size_t>(partitions)),
          rounds_executed(static_cast<size_t>(partitions)),
          voted(static_cast<size_t>(partitions)),
          round_base(static_cast<size_t>(partitions), 0) {
      for (auto& r : local_round) r.store(0, std::memory_order_relaxed);
      for (auto& r : rounds_executed) r.store(0, std::memory_order_relaxed);
      for (auto& v : voted) v.store(false, std::memory_order_relaxed);
    }
    const int partitions;
    const int staleness_bound;
    std::atomic<int64_t> pending;
    std::atomic<int64_t> processed{0};
    std::vector<std::atomic<int64_t>> local_round;
    std::vector<std::atomic<int64_t>> rounds_executed;
    std::vector<std::atomic<bool>> voted;
    std::atomic<int64_t> revocations{0};
    std::atomic<int64_t> max_staleness{0};
    std::atomic<bool> capped{false};
    // Controller-written under round quiescence.
    std::vector<int64_t> round_base;
    int64_t revocations_base = 0;
  };

  std::function<bool(int64_t)> decide_;
  const int num_participants_;
  std::atomic<int> pending_;
  std::atomic<int64_t> superstep_{0};
  std::atomic<bool> terminated_{false};
  std::unique_ptr<BarrierFree> bf_;
};

}  // namespace sfdf
