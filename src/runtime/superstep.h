// Superstep coordination (Sections 4.2 / 5.3).
//
// All dynamic-path task instances of an iteration meet at a barrier after
// emitting their end-of-superstep channel events — one kEndSuperstep marker
// into their own lane of every in-loop target exchange. The barrier and the
// per-lane marker accounting divide the work: a consumer's ReadPhase ends
// its *input* phase once every lane delivered its marker, while the barrier
// ends the *superstep* once every participant arrived; because each
// participant sends its markers before arriving, a new superstep can only
// begin after every lane's previous phase is fully delimited. The
// completion step — running while every participant is parked — evaluates
// the termination criterion (empty workset, T-criterion silence, or the
// iteration cap), swaps the double-buffered workset queues, and captures
// per-superstep statistics. This is the shared-memory analogue of Nephele's
// "according number of channel events" protocol.
#pragma once

#include <version>

#if __cplusplus < 202002L || !defined(__cpp_lib_barrier)
#error "sfdf requires C++20 with <barrier> (std::barrier). Build with -std=c++20 or newer — the root CMakeLists.txt sets CMAKE_CXX_STANDARD 20; do not override it downward."
#endif

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>

namespace sfdf {

class SuperstepCoordinator {
 public:
  /// `decide` runs once per superstep after all participants arrived;
  /// returning true terminates the iteration. It receives the finished
  /// superstep's index (0-based). 64-bit because the counter never resets
  /// across the rounds of a resident service session (see Rearm) — a
  /// long-lived server must not overflow it.
  SuperstepCoordinator(int num_participants,
                       std::function<bool(int64_t)> decide)
      : decide_(std::move(decide)),
        barrier_(num_participants, Completion{this}) {}

  /// Called by each participant at the end of its superstep.
  void ArriveAndWait() { barrier_.arrive_and_wait(); }

  bool terminated() const { return terminated_.load(std::memory_order_acquire); }
  int64_t superstep() const {
    return superstep_.load(std::memory_order_acquire);
  }

  /// Re-arms the coordinator for another round of supersteps (service
  /// sessions): clears the terminated flag so participants re-enter the
  /// superstep loop. Only legal while every participant is parked outside
  /// the barrier (at the session's round gate) — the caller provides that
  /// quiescence and the happens-before edge to the participants' wake-up.
  /// The superstep counter intentionally keeps counting across rounds:
  /// superstep 0 happens exactly once, so cold-start work (constant-path
  /// cache loads, solution-set builds) is never repeated warm.
  void Rearm() { terminated_.store(false, std::memory_order_release); }

  // --- shared per-superstep accumulators (reset by the decide function) ---
  std::atomic<int64_t> term_records{0};     ///< records at the T sink
  std::atomic<int64_t> workset_consumed{0}; ///< records emitted by heads
  std::atomic<int64_t> workset_produced{0}; ///< records routed by tails

 private:
  struct Completion {
    SuperstepCoordinator* coordinator;
    void operator()() noexcept {
      SuperstepCoordinator* c = coordinator;
      int64_t finished = c->superstep_.load(std::memory_order_relaxed);
      if (c->decide_(finished)) {
        c->terminated_.store(true, std::memory_order_release);
      }
      c->superstep_.store(finished + 1, std::memory_order_release);
    }
  };

  std::function<bool(int64_t)> decide_;
  std::atomic<int64_t> superstep_{0};
  std::atomic<bool> terminated_{false};
  std::barrier<Completion> barrier_;
};

}  // namespace sfdf
