// Exchange: the v2 data plane — the in-memory stand-in for Nephele's data
// channels, rewritten as lock-light per-producer lanes.
//
// An Exchange carries envelopes from `num_producers` producer task instances
// to ONE consumer instance. Where the v1 Channel funneled every producer
// through a single mutex + condvar MPSC deque, an Exchange gives each
// producer its own single-producer/single-consumer lane: an unbounded
// segmented ring written with plain release stores and read with acquire
// loads. Steady-state traffic takes no lock anywhere; the only mutex is the
// consumer's park lock, touched when the consumer runs out of work.
//
// ## The exchange contract
//
// * Lane ownership. Lane `l` may be pushed to by exactly one thread at a
//   time — producer instance `l` while the dataflow runs, or the session
//   controller between rounds (see Seed/Reset below). The consumer side
//   (ReadPhase) is single-threaded by construction: every Exchange belongs
//   to exactly one consumer task instance.
//
// * Markers. Besides data batches, producers send marker envelopes — the
//   "channel events" of Section 5.3. kEndSuperstep ends a producer's
//   superstep; kEndStream ends its life. ReadPhase(until, fn) drains data
//   batches until EVERY lane has delivered one `until` marker ("upon
//   reception of an according number of events, each node switches to the
//   next superstep") — the accounting is per lane, so no producer can
//   satisfy the phase on another producer's behalf. kEndStream always
//   substitutes for kEndSuperstep and closes the lane: a producer that left
//   the loop implicitly ends every later phase. Envelopes a producer pushes
//   for the *next* phase stay queued — a lane whose marker arrived is not
//   popped again until the next ReadPhase.
//
// * Fixed width per skeleton. An Exchange's lane count is baked in at
//   construction: it is wiring of ONE plan skeleton at ONE parallelism, not
//   of the session. Live reconfiguration (ExecutionSession::Reconfigure)
//   never mutates exchanges in place — it drains the round, folds each
//   exchange's shipped/byte counters into the session's carried totals,
//   tears the whole skeleton down, and builds fresh exchanges at the new
//   width; the hash partitioners then re-route by PartitionOf under the new
//   count on the first warm round.
//
// * Unboundedness (default). Lanes grow without limit (linked fixed-size
//   segments), so a push never blocks. This keeps the task DAG
//   deadlock-free: diamond topologies where a consumer drains one port to
//   end-of-stream before touching the next would deadlock under
//   bounded-queue backpressure. Memory stays modest at the scales this
//   runtime targets.
//
// * Bounded capacity (opt-in, pipelined regions). set_lane_capacity(k)
//   arms a per-lane budget of k queued envelopes; producers then publish
//   through TryPush, which rejects a DATA envelope with kBackpressured
//   while `pushed - popped >= k` on that lane. The rules:
//     - Only data is ever rejected. Markers (kEndSuperstep/kEndStream) are
//       always accepted — their count is bounded by the number of phases,
//       and refusing them would wedge stream termination behind the very
//       consumer that is waiting for it.
//     - TryPush never blocks and mutates nothing on rejection (the caller
//       keeps the envelope); a rejected attempt only bumps the lane's
//       backpressure-reject counter. The producing *task* is expected to
//       yield and retry — pool workers must never spin-wait in here.
//     - Capacity is skeleton wiring: set it before any producer or
//       consumer task is scheduled (the engine submit path publishes it),
//       never while the dataflow runs.
//     - Credit returns implicitly: the consumer popping an envelope moves
//       `popped` forward, and the retired buffer comes back through the
//       returns queue — the batch pool doubly serves as the flow-control
//       window. A stale `popped` read can only under-estimate the drain,
//       so the bound is conservative, never violated.
//     - Deadlock safety is the *caller's* obligation: bounded lanes are
//       only safe on edges whose consumer drains incrementally
//       (DrainOpen-style), never on edges a consumer reads to
//       end-of-stream port by port. The executor's ValidateRegionMode
//       enforces exactly that (pipeline breakers and loop edges stay
//       unbounded).
//
// * Batch pool. Each lane owns a return queue of retired record buffers
//   (the same unbounded SPSC structure, pointed the other way): ReadPhase
//   recycles every drained data batch back to the lane it arrived on, and
//   producers cut fresh batches from their lane's returns via AcquireBatch.
//   In steady state a superstep's shipping allocates nothing — buffers just
//   circulate producer → consumer → producer, keeping the capacity they
//   grew.
//
// * Seed/Reset are controller-side operations and are only legal while no
//   producer or consumer is active (service sessions call them between
//   rounds, while no wave task is scheduled; the round boundary's mutex +
//   the engine submit path provide the happens-before edge in both
//   directions). Reset drops
//   every queued envelope; Seed reopens the closed lanes and feeds one
//   complete, already-terminated production phase.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "record/batch.h"

namespace sfdf {

enum class MarkerKind : uint8_t {
  kData,
  kEndSuperstep,
  kEndStream,
};

struct Envelope {
  MarkerKind kind = MarkerKind::kData;
  RecordBatch batch;
};

/// Unbounded single-producer/single-consumer FIFO: a linked list of
/// fixed-size ring segments. The producer publishes with one release store
/// per push (plus one segment allocation per kSlots pushes); the consumer
/// reads with acquire loads and frees exhausted segments. Used for both
/// directions of an exchange lane — envelopes forward, retired batch
/// buffers back.
template <typename T>
class SpscSegmentQueue {
 public:
  SpscSegmentQueue() : head_seg_(new Segment()), tail_seg_(head_seg_) {}

  ~SpscSegmentQueue() {
    Segment* seg = head_seg_;
    while (seg != nullptr) {
      Segment* next = seg->next.load(std::memory_order_relaxed);
      delete seg;
      seg = next;
    }
  }

  SpscSegmentQueue(const SpscSegmentQueue&) = delete;
  SpscSegmentQueue& operator=(const SpscSegmentQueue&) = delete;

  /// Producer side. Never blocks.
  void Push(T value) {
    Segment* seg = tail_seg_;
    const size_t t = seg->tail.load(std::memory_order_relaxed);
    if (t == kSlots) {
      // Current segment full: publish in a fresh segment. Slot and tail are
      // written before the old segment's `next` release-store makes the new
      // segment reachable.
      Segment* grown = new Segment();
      grown->slots[0] = std::move(value);
      grown->tail.store(1, std::memory_order_relaxed);
      seg->next.store(grown, std::memory_order_release);
      tail_seg_ = grown;
    } else {
      seg->slots[t] = std::move(value);
      seg->tail.store(t + 1, std::memory_order_release);
    }
  }

  /// Consumer side. Returns false when no element is currently published.
  bool TryPop(T* out) {
    Segment* seg = head_seg_;
    for (;;) {
      if (head_ == kSlots) {
        Segment* next = seg->next.load(std::memory_order_acquire);
        if (next == nullptr) return false;  // producer not past this segment
        delete seg;
        head_seg_ = seg = next;
        head_ = 0;
      }
      if (head_ < seg->tail.load(std::memory_order_acquire)) {
        *out = std::move(seg->slots[head_]);
        ++head_;
        return true;
      }
      if (head_ < kSlots) return false;
    }
  }

  /// Consumer-side readability probe (no side effects).
  bool Readable() const {
    const Segment* seg = head_seg_;
    if (head_ == kSlots) {
      // A successor segment only exists because an element was pushed into
      // it, so reachability implies readability.
      return seg->next.load(std::memory_order_acquire) != nullptr;
    }
    return head_ < seg->tail.load(std::memory_order_acquire);
  }

  /// Slots per ring segment — public so capacity accounting (peak resident
  /// segments) can convert envelope counts without duplicating the number.
  static constexpr size_t kSlots = 64;

 private:
  struct Segment {
    std::atomic<size_t> tail{0};  ///< producer publish index
    std::atomic<Segment*> next{nullptr};
    std::array<T, kSlots> slots;
  };

  Segment* head_seg_;  ///< consumer-owned
  size_t head_ = 0;    ///< consumer read index into head_seg_
  Segment* tail_seg_;  ///< producer-owned
};

class Exchange {
 public:
  explicit Exchange(int num_producers) : num_producers_(num_producers) {
    SFDF_CHECK(num_producers >= 1) << "an exchange needs at least one lane";
    lanes_.reserve(static_cast<size_t>(num_producers));
    for (int l = 0; l < num_producers; ++l) {
      lanes_.push_back(std::make_unique<Lane>());
    }
  }

  Exchange(const Exchange&) = delete;
  Exchange& operator=(const Exchange&) = delete;

  int num_producers() const { return num_producers_; }

  // --- wiring (before any producer/consumer task is scheduled) ------------

  /// Arms bounded-capacity mode: each lane admits at most `envelopes`
  /// queued data envelopes before TryPush starts rejecting (0 = unbounded,
  /// the default). Skeleton wiring only — call before the dataflow runs;
  /// the engine submit path publishes the value to producers.
  void set_lane_capacity(int64_t envelopes) { lane_capacity_ = envelopes; }

  int64_t lane_capacity() const { return lane_capacity_; }

  /// Installs an extra consumer wake callback, invoked at the end of every
  /// Push. Pipelined regions hang their engine park-slot wake here: Push is
  /// the single funnel for ALL publishes (data flushes, markers, Seed,
  /// microstep emissions), so a parked polling consumer can never miss an
  /// end-of-stream. Same wiring-time-only contract as set_lane_capacity.
  void set_consumer_waker(std::function<void()> waker) {
    consumer_waker_ = std::move(waker);
  }

  // --- producer side (one thread per lane) --------------------------------

  /// Appends `envelope` to lane `lane` (the calling producer's own lane).
  /// Never blocks; wakes the consumer if it parked.
  void Push(int lane, Envelope envelope) {
    Lane& ln = LaneAt(lane);
    ln.queue.Push(std::move(envelope));
    const uint64_t pushed = ln.pushed.load(std::memory_order_relaxed) + 1;
    // Queue-depth high-water mark (observability; the counters are
    // per-envelope, so this costs a few relaxed atomics per shipped batch).
    const uint64_t depth = pushed - ln.popped.load(std::memory_order_relaxed);
    if (depth > ln.depth_high_water.load(std::memory_order_relaxed)) {
      ln.depth_high_water.store(depth, std::memory_order_relaxed);
    }
    // Deliberately the LAST producer-side write of every push, with release
    // semantics: a session controller taking the lane over under quiescence
    // (Seed/Reset/AcquireBatch between rounds) first acquires `pushed`
    // (SyncWithProducers), which orders every plain producer-owned write —
    // the queue's tail-segment pointer, the returns queue's read cursor —
    // before the controller's own accesses. The lane's own producer never
    // needs the edge (program order), and on mainstream ISAs the release
    // store costs the same as a relaxed one.
    ln.pushed.store(pushed, std::memory_order_release);
    WakeConsumer();
    if (consumer_waker_) consumer_waker_();
  }

  enum class PushResult : uint8_t {
    kOk,
    kBackpressured,  ///< lane at capacity; caller keeps the envelope
  };

  /// Capacity-respecting publish. With bounded capacity armed
  /// (set_lane_capacity), a DATA envelope is rejected while the lane holds
  /// `capacity` or more envelopes; on rejection `*envelope` is left
  /// untouched — the caller keeps it and is expected to yield its task and
  /// retry after the consumer drained. Markers always pass (see the
  /// contract comment). Never blocks. The `popped` read is relaxed and may
  /// lag the consumer — the bound errs conservative, never over-admits.
  PushResult TryPush(int lane, Envelope* envelope) {
    if (lane_capacity_ > 0 && envelope->kind == MarkerKind::kData) {
      Lane& ln = LaneAt(lane);
      const uint64_t depth = ln.pushed.load(std::memory_order_relaxed) -
                             ln.popped.load(std::memory_order_relaxed);
      if (depth >= static_cast<uint64_t>(lane_capacity_)) {
        ln.backpressure_rejects.fetch_add(1, std::memory_order_relaxed);
        return PushResult::kBackpressured;
      }
    }
    Push(lane, std::move(*envelope));
    return PushResult::kOk;
  }

  /// Cuts a batch buffer for lane `lane`: a recycled buffer from the lane's
  /// return queue when one is available (pool hit — the buffer keeps its
  /// grown capacity), a fresh buffer otherwise (pool miss). Deliberately no
  /// eager reserve on a miss: partial batches (end-of-superstep flushes of
  /// thin worksets) are common, and a full-batch reservation per miss would
  /// dwarf the payload.
  RecordBatch AcquireBatch(int lane) {
    Lane& ln = LaneAt(lane);
    std::vector<Record> buffer;
    if (ln.returns.TryPop(&buffer)) {
      ln.pool_hits.fetch_add(1, std::memory_order_relaxed);
      return RecordBatch(std::move(buffer));
    }
    ln.pool_misses.fetch_add(1, std::memory_order_relaxed);
    return RecordBatch();
  }

  // --- consumer side (single thread) --------------------------------------

  /// Drains data batches until one `until` marker per lane arrived, calling
  /// `fn(batch)` for each data batch. Markers of the *other* kind are a
  /// protocol violation, except that kEndStream substitutes for
  /// kEndSuperstep (a producer leaving the loop ends every phase) and
  /// closes its lane for all later phases. Drained batches are recycled
  /// into the lane's buffer pool after `fn` returns, so `fn` must not
  /// retain references into the batch.
  template <typename Fn>
  void ReadPhase(MarkerKind until, Fn&& fn) {
    int remaining = 0;
    for (auto& lane : lanes_) {
      lane->phase_done = lane->closed;
      if (!lane->phase_done) ++remaining;
    }
    while (remaining > 0) {
      bool progressed = false;
      for (auto& lane_ptr : lanes_) {
        Lane& lane = *lane_ptr;
        if (lane.phase_done) continue;
        Envelope envelope;
        while (!lane.phase_done && PopLane(lane, &envelope)) {
          progressed = true;
          switch (envelope.kind) {
            case MarkerKind::kData:
              fn(envelope.batch);
              Recycle(lane, std::move(envelope.batch));
              break;
            case MarkerKind::kEndSuperstep:
              SFDF_CHECK(until == MarkerKind::kEndSuperstep)
                  << "unexpected end-of-superstep marker";
              lane.phase_done = true;
              --remaining;
              break;
            case MarkerKind::kEndStream:
              lane.phase_done = true;
              lane.closed = true;
              --remaining;
              break;
          }
        }
      }
      if (!progressed && remaining > 0) WaitForWork();
    }
  }

  /// Consumer-visible state of one lane, for barrier-free partial-phase
  /// reads: a lane with nothing queued is only *done* when its producer
  /// closed it (kEndStream) — "open but currently empty" means more data
  /// may still arrive and a quiescence vote must account for the producer,
  /// not just the queue.
  enum class LaneState {
    kReadable,   ///< at least one envelope is currently published
    kOpenEmpty,  ///< nothing queued, producer may still push
    kClosed,     ///< kEndStream observed; the lane ended for good
  };

  /// Single consumer thread only (it reads consumer-owned phase state).
  LaneState lane_state(int lane) const {
    const Lane& ln = *lanes_[static_cast<size_t>(lane)];
    if (ln.queue.Readable()) return LaneState::kReadable;
    return ln.closed ? LaneState::kClosed : LaneState::kOpenEmpty;
  }

  /// True if any lane currently has an envelope published. Consumer-side
  /// probe; a false result is instantaneous, not a phase statement — an
  /// open lane may receive data right after.
  bool HasQueued() const {
    for (const auto& lane : lanes_) {
      if (lane->queue.Readable()) return true;
    }
    return false;
  }

  /// Barrier-free read: drains every envelope the lanes currently hold and
  /// returns immediately — no marker accounting, no blocking. Calls
  /// `fn(batch)` per data batch (recycled afterwards, same retention rule
  /// as ReadPhase) and returns the number of records delivered. kEndStream
  /// closes its lane (final-flush markers of a terminated loop);
  /// kEndSuperstep is a protocol violation — barrier-free producers flush
  /// without phase markers.
  template <typename Fn>
  int64_t DrainOpen(Fn&& fn) {
    return DrainOpenUntil(std::forward<Fn>(fn), [] { return false; });
  }

  /// DrainOpen with an early-exit predicate: `stop()` is evaluated before
  /// each envelope pop, and a true result returns immediately, leaving the
  /// remaining envelopes queued for the next call. Pipelined consumers use
  /// it to stop consuming while their own downstream lane is backpressured
  /// — continuing would just migrate the queue into the stalled output
  /// buffer and defeat the flow-control window. Same marker contract as
  /// DrainOpen (kEndSuperstep is a violation, kEndStream closes the lane).
  template <typename Fn, typename Stop>
  int64_t DrainOpenUntil(Fn&& fn, Stop&& stop) {
    int64_t records = 0;
    for (auto& lane_ptr : lanes_) {
      Lane& lane = *lane_ptr;
      Envelope envelope;
      while (!stop() && PopLane(lane, &envelope)) {
        switch (envelope.kind) {
          case MarkerKind::kData:
            records += static_cast<int64_t>(envelope.batch.size());
            fn(envelope.batch);
            Recycle(lane, std::move(envelope.batch));
            break;
          case MarkerKind::kEndSuperstep:
            SFDF_CHECK(false)
                << "end-of-superstep marker on a barrier-free lane";
            break;
          case MarkerKind::kEndStream:
            lane.closed = true;
            break;
        }
      }
      if (stop()) break;
    }
    return records;
  }

  /// True once every lane delivered its kEndStream (via DrainOpen-family
  /// reads). Consumer thread only — reads consumer-owned phase state.
  bool AllClosed() const {
    for (const auto& lane : lanes_) {
      if (!lane->closed) return false;
    }
    return true;
  }

  // --- controller side (requires external quiescence) ---------------------

  /// Drops every queued envelope so the exchange can be reused for another
  /// production phase; returns the number dropped. Only legal while no
  /// producer or consumer is active — service sessions call it between
  /// rounds (while no wave task of the resident iteration is scheduled) to
  /// assert the previous round's seed was fully drained, lane by lane,
  /// before reseeding.
  size_t Reset() {
    SyncWithProducers();
    size_t dropped = 0;
    for (auto& lane : lanes_) {
      Envelope envelope;
      while (PopLane(*lane, &envelope)) ++dropped;
    }
    return dropped;
  }

  /// Salvages every queued data record into `out` (markers are dropped) and
  /// returns how many records were appended. Same legality contract as
  /// Reset — controller only, under quiescence: a destructive drain for
  /// controllers that must preserve queued records instead of asserting
  /// there are none (Reset's job).
  size_t DrainTo(std::vector<Record>* out) {
    SyncWithProducers();
    size_t drained = 0;
    for (auto& lane : lanes_) {
      Envelope envelope;
      while (PopLane(*lane, &envelope)) {
        if (envelope.kind != MarkerKind::kData) continue;
        drained += envelope.batch.size();
        for (const Record& rec : envelope.batch) out->push_back(rec);
        Recycle(*lane, std::move(envelope.batch));
      }
    }
    return drained;
  }

  /// Reopens a drained exchange for one more production phase and seeds it:
  /// pushes `batch` as a data envelope (when non-empty) into lane 0,
  /// followed by one kEndStream marker per lane, so the consumer's next
  /// ReadPhase sees a complete, already-terminated stream without the
  /// original producers running again. Service sessions use this to feed a
  /// warm round's initial workset through the iteration head's external
  /// port. Lanes closed by a previous phase's kEndStream are reopened.
  void Seed(RecordBatch batch) {
    SyncWithProducers();
    for (auto& lane : lanes_) lane->closed = false;
    if (!batch.empty()) {
      Push(0, Envelope{MarkerKind::kData, std::move(batch)});
    } else {
      // An empty seed is a pure end-of-stream; if the caller cut `batch`
      // from the pool, hand its capacity back instead of dropping it.
      Recycle(*lanes_[0], std::move(batch));
    }
    for (int l = 0; l < num_producers_; ++l) {
      Push(l, Envelope{MarkerKind::kEndStream, RecordBatch()});
    }
  }

  // --- observability -------------------------------------------------------

  struct Stats {
    /// Deepest any lane's queue ever got, in envelopes. Recorded on the
    /// producer side of Push (since the v2 data plane landed), so a fully
    /// materialized, never-yet-read exchange reports its true peak.
    int64_t depth_high_water = 0;
    /// Batch-pool acquisitions served from recycled buffers / fresh heap.
    int64_t pool_hits = 0;
    int64_t pool_misses = 0;
    /// Data envelopes TryPush refused because the lane was at capacity
    /// (bounded mode only; each retry attempt counts).
    int64_t backpressure_rejects = 0;
    /// Upper bound on ring segments this exchange ever held resident at
    /// once: per-lane ceil(depth high-water / slots-per-segment), summed.
    int64_t peak_resident_segments = 0;
  };

  /// Aggregated counters over all lanes. Relaxed reads: exact after the
  /// producers quiesced (threads joined / parked), approximate while they
  /// run — fine for both AssembleResult and live monitoring.
  Stats stats() const {
    Stats s;
    constexpr int64_t kSeg =
        static_cast<int64_t>(SpscSegmentQueue<Envelope>::kSlots);
    for (const auto& lane : lanes_) {
      const int64_t hw = static_cast<int64_t>(
          lane->depth_high_water.load(std::memory_order_relaxed));
      if (hw > s.depth_high_water) s.depth_high_water = hw;
      s.pool_hits += static_cast<int64_t>(
          lane->pool_hits.load(std::memory_order_relaxed));
      s.pool_misses += static_cast<int64_t>(
          lane->pool_misses.load(std::memory_order_relaxed));
      s.backpressure_rejects += static_cast<int64_t>(
          lane->backpressure_rejects.load(std::memory_order_relaxed));
      s.peak_resident_segments += (hw + kSeg - 1) / kSeg;
    }
    return s;
  }

 private:
  struct alignas(64) Lane {
    // Forward direction: envelopes, producer -> consumer.
    SpscSegmentQueue<Envelope> queue;
    // Return direction: retired batch buffers, consumer -> producer. As
    // unbounded as the forward queue, so recycling never drops a buffer no
    // matter how far a producer runs ahead; total retention is bounded by
    // the forward queue's own high-water mark (every buffer is either in
    // flight or in returns).
    SpscSegmentQueue<std::vector<Record>> returns;

    // Producer-side counters.
    std::atomic<uint64_t> pushed{0};
    std::atomic<uint64_t> depth_high_water{0};
    std::atomic<uint64_t> pool_hits{0};
    std::atomic<uint64_t> pool_misses{0};
    std::atomic<uint64_t> backpressure_rejects{0};

    // Consumer-owned phase state.
    bool closed = false;      ///< kEndStream observed (reset by Seed)
    bool phase_done = false;  ///< marker observed for the running ReadPhase
    std::atomic<uint64_t> popped{0};
  };

  Lane& LaneAt(int lane) {
    SFDF_DCHECK(lane >= 0 && lane < num_producers_)
        << "lane " << lane << " out of range";
    return *lanes_[static_cast<size_t>(lane)];
  }

  /// Controller-side entry edge: acquire every lane's `pushed` counter,
  /// pairing with the release store that ends each producer's Push. After
  /// this, the producers' plain lane state (tail segment pointer, returns
  /// cursor) is safely visible to the calling thread. Callers must still
  /// guarantee the producers are quiescent (done pushing) — this orders
  /// their writes, it does not stop them. Controller-side AcquireBatch is
  /// covered by calling Reset() first (program order on the controller).
  void SyncWithProducers() {
    for (auto& lane : lanes_) {
      (void)lane->pushed.load(std::memory_order_acquire);
    }
  }

  bool PopLane(Lane& lane, Envelope* out) {
    if (!lane.queue.TryPop(out)) return false;
    lane.popped.store(lane.popped.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    return true;
  }

  bool AnyPhaseLaneReadable() const {
    for (const auto& lane : lanes_) {
      if (!lane->phase_done && lane->queue.Readable()) return true;
    }
    return false;
  }

  /// Returns a retired batch buffer to `lane`'s pool. Buffers that never
  /// allocated are not worth the round trip.
  void Recycle(Lane& lane, RecordBatch batch) {
    std::vector<Record> buffer = std::move(batch.records());
    if (buffer.capacity() == 0) return;
    buffer.clear();  // keeps capacity — that is the point of the pool
    lane.returns.Push(std::move(buffer));
  }

  /// Spin-then-park: the consumer briefly spins over the open lanes, then
  /// parks on the exchange's condvar. Producers publish their envelope
  /// first and only then check `consumer_waiting_`; the consumer announces
  /// `consumer_waiting_` first and only then re-checks the lanes — the two
  /// seq_cst fences order that store/load pair (Dekker), so either the
  /// producer sees the flag and rings the bell, or the consumer sees the
  /// envelope and never sleeps.
  void WaitForWork() {
    for (int spin = 0; spin < kSpinIterations; ++spin) {
      if (AnyPhaseLaneReadable()) return;
    }
    consumer_waiting_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (AnyPhaseLaneReadable()) {
      consumer_waiting_.store(false, std::memory_order_relaxed);
      return;
    }
    std::unique_lock<std::mutex> lock(park_mutex_);
    park_cv_.wait(lock, [this] { return AnyPhaseLaneReadable(); });
    consumer_waiting_.store(false, std::memory_order_relaxed);
  }

  void WakeConsumer() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (consumer_waiting_.load(std::memory_order_relaxed)) {
      // The empty critical section fences against the consumer being
      // between its last lane check and the actual sleep.
      { std::lock_guard<std::mutex> lock(park_mutex_); }
      park_cv_.notify_one();
    }
  }

  /// Lane re-scans before the consumer parks. Kept deliberately small:
  /// oversubscribed deployments (every task instance is a thread) are the
  /// common case, and burning a timeslice spinning starves the very
  /// producer we are waiting on. Overridable for experiments.
#ifndef SFDF_EXCHANGE_SPIN
#define SFDF_EXCHANGE_SPIN 16
#endif
  static constexpr int kSpinIterations = SFDF_EXCHANGE_SPIN;

  const int num_producers_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  /// Bounded-capacity budget per lane, in envelopes (0 = unbounded) and
  /// the pipelined-consumer wake hook. Both are skeleton wiring: written
  /// once before any task runs, read-only afterwards.
  int64_t lane_capacity_ = 0;
  std::function<void()> consumer_waker_;

  std::atomic<bool> consumer_waiting_{false};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
};

}  // namespace sfdf
