// The parallel execution engine (the Nephele stand-in).
//
// The executor instantiates every physical task once per partition, wires
// the instances with channels according to each edge's ship strategy, and
// runs one thread per instance. Iterations execute with feedback buffers
// and superstep barriers (Sections 4.2, 5.3); workset iterations that pass
// the Section 5.2 analysis may instead run as an asynchronous fused
// microstep loop with quiescence-based termination detection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "optimizer/physical_plan.h"
#include "runtime/metrics.h"

namespace sfdf {

struct ExecutionOptions {
  /// Degree of parallelism ("nodes"); 0 = DefaultParallelism().
  int parallelism = 0;
  /// Capture per-superstep statistics for every iteration.
  bool record_superstep_stats = true;
  /// Memory budget per constant-path record cache before it gradually
  /// spills to disk (§4.3). INT64_MAX = never spill.
  int64_t cache_spill_budget_bytes = INT64_MAX;
  /// Write an IterationCheckpoint (solution set + workset) after this
  /// superstep of every workset iteration; -1 = off (§4.2 recovery logs).
  int checkpoint_superstep = -1;
  std::string checkpoint_path;
};

/// Outcome of one iteration construct.
struct IterationReport {
  int iterations = 0;
  /// True if the iteration reached its fixpoint / termination criterion
  /// (as opposed to hitting max_iterations).
  bool converged = false;
  /// True if the iteration executed as asynchronous microsteps.
  bool ran_microsteps = false;
  std::vector<SuperstepStats> supersteps;

  /// Sum of a SuperstepStats field over all supersteps.
  int64_t TotalWorkset() const;
  int64_t TotalApplied() const;
};

struct ExecutionResult {
  double total_millis = 0;
  int64_t records_shipped = 0;
  int64_t records_remote = 0;
  int64_t bytes_shipped = 0;
  int64_t records_combined = 0;
  /// Reports indexed like PhysicalPlan::bulk_iterations /
  /// workset_iterations.
  std::vector<IterationReport> bulk_reports;
  std::vector<IterationReport> workset_reports;
};

class Executor {
 public:
  explicit Executor(ExecutionOptions options = {});

  /// Runs the plan to completion; fills every Sink's output vector.
  /// Blocking; returns aggregate statistics.
  Result<ExecutionResult> Run(const PhysicalPlan& plan);

 private:
  ExecutionOptions options_;
};

}  // namespace sfdf
