// The parallel execution engine (the Nephele stand-in), runtime v3.
//
// The executor instantiates every physical task once per partition, wires
// the instances with exchanges according to each edge's ship strategy, and
// schedules the work on a shared worker-pool Engine (runtime/engine.h) in
// dataflow-topological order: one-shot tasks run when their producers'
// streams are complete; iterations run as superstep waves of resumable
// partition tasks that run-to-superstep-boundary and re-enqueue from an
// atomic arrival gate (Sections 4.2, 5.3). Workset iterations that pass the
// Section 5.2 analysis may instead run as an asynchronous fused microstep
// loop with quiescence-based termination detection, scheduled as
// cooperative polling tasks on the same pool. No dataflow ever pins an OS
// thread: a resident session between rounds has nothing queued and costs
// zero worker time, which is what lets one process serve many concurrent
// sessions on a pool of any size (see src/service/service_host.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "optimizer/physical_plan.h"
#include "runtime/engine.h"
#include "runtime/metrics.h"

namespace sfdf {

/// Synchronization discipline for workset loops (§4.2 vs barrier-free).
enum class SyncMode {
  /// Synchronized supersteps: every loop task waits at the arrival gate
  /// until the whole wave finished the phase (the paper's default).
  kSuperstep,
  /// Barrier-free: each partition runs "local rounds" over whatever its
  /// exchange lanes currently hold; termination is a distributed
  /// quiescence protocol (credits + votes) instead of an empty workset at
  /// a barrier. Requires an idempotent-safe ∪̇ — a CPO comparator or
  /// immediate local application of the delta (see README, Execution
  /// modes).
  kAsync,
  /// kAsync plus a staleness bound: a partition may run at most
  /// `staleness_bound` local rounds ahead of the slowest peer before it
  /// parks until the peer catches up.
  kBoundedStale,
};

/// Scheduling discipline for non-loop (one-shot) plan regions. Orthogonal
/// to SyncMode, which governs the loop *interior*: region_mode decides how
/// the regions *around* the loops hand data to each other.
enum class RegionMode {
  /// A consumer region runs only after every producer region completed —
  /// cross-region exchanges materialize the full edge stream (peak memory
  /// O(data) per edge). The default; matches runtime v3 behavior.
  kMaterialize,
  /// Streaming: record-at-a-time regions (Source/Map/Filter/Union/Sink
  /// chains) run concurrently with their producers as cooperative polling
  /// tasks over bounded exchange lanes; a producer that outruns its
  /// consumer is backpressured and yields its task until the lane drains.
  /// Peak memory per pipelined edge is O(pipeline_lane_capacity), not
  /// O(data). Pipeline breakers (Reduce/Match/Cross/CoGroup) and loop
  /// regions keep materialized edges and their existing semantics.
  kPipelined,
};

struct ExecutionOptions {
  /// Degree of parallelism ("nodes"): the number of partitions each task is
  /// instantiated with — solution-set partitions, exchange lanes, sink
  /// slots. 0 = DefaultParallelism(). Negative values are rejected with
  /// InvalidArgument.
  ///
  /// Orthogonal to `worker_threads`: parallelism fixes the LOGICAL
  /// partitioning of the plan (how data is split and keyed), while
  /// worker_threads sizes the PHYSICAL pool that executes the partition
  /// tasks. parallelism > workers is legal and common — partition tasks
  /// are time-sliced over the pool; workers > parallelism lets independent
  /// stages or co-hosted plans run concurrently.
  int parallelism = 0;
  /// Engine worker pool executing this plan's tasks:
  ///   0  — share the process-wide default engine (Engine::Default(), pool
  ///        size SFDF_ENGINE_WORKERS / DefaultParallelism());
  ///   >0 — this executor creates a private engine of that many workers
  ///        per run/session (a "dedicated team", e.g. for isolation
  ///        baselines).
  /// Negative values are rejected with InvalidArgument. Ignored when
  /// `engine` is set.
  int worker_threads = 0;
  /// Externally owned engine to schedule on (overrides worker_threads) —
  /// how a multi-tenant host runs many plans/sessions on one shared pool.
  /// Must outlive every run/session started with these options.
  Engine* engine = nullptr;
  /// Capture per-superstep statistics for every iteration.
  bool record_superstep_stats = true;
  /// Force-enables the process-wide flight recorder (obs/trace.h) for this
  /// run and everything after it — tracing is a process property (the ring
  /// buffers are per-thread, threads are shared), so enabling is sticky,
  /// exactly like SFDF_TRACE=1 in the environment. Export with
  /// trace::WriteChromeTrace or SFDF_TRACE_OUT=<path>.
  bool trace = false;
  /// Memory budget per constant-path record cache before it gradually
  /// spills to disk (§4.3). INT64_MAX = never spill.
  int64_t cache_spill_budget_bytes = INT64_MAX;
  /// Write an IterationCheckpoint (solution set + workset) after this
  /// superstep of every workset iteration; -1 = off (§4.2 recovery logs).
  /// Values below -1 are rejected with InvalidArgument.
  int checkpoint_superstep = -1;
  std::string checkpoint_path;
  /// Barrier discipline for workset iterations. kAsync / kBoundedStale
  /// require a plan whose ∪̇ is idempotent-safe (a comparator or immediate
  /// apply), no bulk iterations, no microstep plans, and no checkpointing
  /// (checkpoints are superstep-aligned); Run/StartSession reject anything
  /// else with Unsupported.
  SyncMode sync_mode = SyncMode::kSuperstep;
  /// For kBoundedStale: how many local rounds a partition may run ahead of
  /// the slowest peer (k >= 1). Ignored in other modes.
  int staleness_bound = 1;
  /// Scheduling of non-loop regions (see RegionMode). kPipelined streams
  /// eligible regions over bounded exchanges; Run rejects invalid
  /// combinations (capacity < 1) with InvalidArgument and StartSession
  /// rejects kPipelined with Unsupported (a resident session's shutdown
  /// contract requires downstream regions unscheduled between rounds).
  RegionMode region_mode = RegionMode::kMaterialize;
  /// Flow-control window of each pipelined exchange lane, in envelopes
  /// (batches of up to RecordBatch::kDefaultBatchSize records). Only read
  /// under kPipelined; must be >= 1 then.
  int64_t pipeline_lane_capacity = 8;
  /// Per-exchange capacity overrides, keyed by the *consumer* task's
  /// PhysicalTask::name: every pipelined edge into that task gets the
  /// given capacity instead of pipeline_lane_capacity. Naming a task that
  /// is not a pipelined-streaming consumer (a loop task, a pipeline
  /// breaker, or an unknown name) is rejected with InvalidArgument.
  std::map<std::string, int64_t> pipeline_capacity_overrides;
};

/// Outcome of one iteration construct.
struct IterationReport {
  int iterations = 0;
  /// True if the iteration reached its fixpoint / termination criterion
  /// (as opposed to hitting max_iterations).
  bool converged = false;
  /// True if the iteration executed as asynchronous microsteps.
  bool ran_microsteps = false;
  /// True if the iteration executed barrier-free (sync_mode != kSuperstep).
  /// `iterations` then counts the deepest partition's local rounds.
  bool ran_async = false;
  /// Barrier-free observability: how often a partition's quiescence vote
  /// was revoked by an arriving batch, and the largest "rounds ahead of the
  /// slowest peer" any partition observed (this round / run).
  int64_t vote_revocations = 0;
  int64_t max_staleness = 0;
  std::vector<SuperstepStats> supersteps;

  /// Sum of a SuperstepStats field over all supersteps.
  int64_t TotalWorkset() const;
  int64_t TotalApplied() const;
};

struct ExecutionResult {
  double total_millis = 0;
  int64_t records_shipped = 0;
  int64_t records_remote = 0;
  int64_t bytes_shipped = 0;
  int64_t records_combined = 0;
  /// Exchange health (v2 data plane): deepest any exchange lane ever got
  /// (envelopes) and how batch-buffer acquisitions split between recycled
  /// pool buffers and fresh allocations. A healthy steady state shows a
  /// bounded high-water mark and a hit-dominated pool.
  int64_t queue_depth_high_water = 0;
  int64_t batch_pool_hits = 0;
  int64_t batch_pool_misses = 0;
  /// Engine scheduling health (runtime v3): tasks this run enqueued on its
  /// engine client and how long they sat queued before a worker picked
  /// them up. A rising wait on a shared pool means the pool, not the
  /// dataflow, is the bottleneck.
  int64_t engine_tasks = 0;
  int64_t engine_queue_wait_ns_total = 0;
  int64_t engine_queue_wait_ns_max = 0;
  int engine_workers = 0;
  /// Parked-task accounting: how often cooperative tasks (the fused
  /// microstep units) handed their continuation to an engine park slot
  /// instead of busy re-polling, and how many of those were re-enqueued by
  /// a peer's wake. parks == wakes at the end of a clean run.
  int64_t engine_parks = 0;
  int64_t engine_wakes = 0;
  /// Pipelined-region observability (zero under kMaterialize): how often a
  /// bounded lane backpressured a flush (flowing->stalled transitions),
  /// how often a producer task re-enqueued itself with its outputs still
  /// stalled, and an upper bound on ring segments resident across all
  /// exchanges (summed per-lane high-water ceilings) — the memory the
  /// flow-control window actually admitted.
  int64_t backpressure_stalls = 0;
  int64_t producer_yields = 0;
  int64_t peak_resident_segments = 0;
  /// Barrier-free observability (empty / zero unless a workset iteration
  /// ran with sync_mode != kSuperstep): per-partition local-round counters
  /// (concatenated across async iterations), total quiescence-vote
  /// revocations and the maximum observed staleness.
  std::vector<int64_t> async_local_rounds;
  int64_t async_vote_revocations = 0;
  int64_t async_max_staleness = 0;
  /// Reports indexed like PhysicalPlan::bulk_iterations /
  /// workset_iterations.
  std::vector<IterationReport> bulk_reports;
  std::vector<IterationReport> workset_reports;
};

class SolutionSetIndex;
struct SessionState;

/// A resident, warm-restartable execution of a plan with exactly one
/// superstep-mode workset iteration — the executor half of the continuous
/// serving subsystem (src/service/). Created by Executor::StartSession,
/// which performs the one-shot setup (plan instantiation, exchange wiring,
/// engine-client registration) and runs the initial iteration to its
/// fixpoint. The session then keeps every exchange, constant-path cache and
/// solution-set partition alive; RunRound seeds a fresh initial workset and
/// re-enters the superstep loop *warm*, so re-convergence cost is
/// proportional to the change, not the dataset (§5–§7). Between rounds the
/// session has no tasks queued — it consumes no worker time at all, so any
/// number of sessions can share one engine pool.
///
/// Threading contract: RunRound and Finish must be called from one
/// controller thread at a time; solution_partition reads are only safe
/// while no round is running (the serving layer enforces this with its
/// reader/writer exclusion and epoch tags).
class ExecutionSession {
 public:
  ~ExecutionSession();  ///< implies Finish() if it was not called
  ExecutionSession(const ExecutionSession&) = delete;
  ExecutionSession& operator=(const ExecutionSession&) = delete;

  /// Seeds `workset` as the W_0 of a warm round (routed by the iteration's
  /// workset key into the resident head exchanges) and re-runs the
  /// incremental iteration to its fixpoint. Blocking; returns the round's
  /// report. An empty workset is legal and converges after one superstep.
  Result<IterationReport> RunRound(std::vector<Record> workset);

  /// Live repartition / engine move: quiesces at the committed round
  /// boundary (all lanes drained), extracts the resident solution set (plus
  /// any workset an iteration-capped round left behind), tears the runtime
  /// skeleton down and rebuilds it at `new_partitions` partitions (0 = keep
  /// the current width) on `new_engine` (null = keep the current engine; a
  /// non-null engine must outlive the session). The warm state re-enters
  /// through the plan's initial-solution / initial-workset Source tasks and
  /// is re-hashed by the rebuilt exchanges, so shard placement is re-derived
  /// with the same PartitionOf law point reads use. §4.3 constant-path
  /// caches and the solution index rebuild at the resume round's first
  /// superstep; cumulative session statistics survive into Finish().
  /// Blocking; returns the warm resume round's report. On a validation
  /// error the session is untouched; a mid-rebuild failure finishes it.
  Result<IterationReport> Reconfigure(int new_partitions,
                                      Engine* new_engine = nullptr);

  /// Report of the initial (cold) iteration run by StartSession.
  const IterationReport& initial_report() const;

  /// Degree of parallelism — the number of solution-set partitions.
  int parallelism() const;

  /// Resident solution-set partition p. Writable so the serving layer can
  /// upsert records directly between rounds (delta re-seeding).
  SolutionSetIndex* solution_partition(int p);

  /// Partition that owns `probe`'s solution key (same hash that drives the
  /// runtime's exchanges, so lookups stay partition-local). The probe must
  /// carry its key fields at the solution-key positions.
  int PartitionOfSolution(const Record& probe) const;

  /// Key k(s) of the resident solution set.
  const KeySpec& solution_key() const;

  /// Visits every record of the resident solution set (all partitions).
  void ForEachSolution(const std::function<void(const Record&)>& fn) const;

  /// Live scheduling counters of this session's engine client — how many
  /// tasks its rounds have enqueued and how long they waited for a worker.
  /// Safe to call between rounds (same contract as solution reads).
  Engine::ClientStats engine_stats() const;

  /// Workers in the engine pool this session runs on.
  int engine_workers() const;

  /// Shuts the resident dataflow down: the final-flush tasks ship the
  /// converged solution set downstream (filling the plan's sinks), the
  /// remaining plan nodes drain, and the aggregate statistics are
  /// returned. Idempotent via the destructor; must not race RunRound.
  Result<ExecutionResult> Finish();

 private:
  friend class Executor;
  explicit ExecutionSession(std::unique_ptr<SessionState> state);
  std::unique_ptr<SessionState> state_;
};

class Executor {
 public:
  explicit Executor(ExecutionOptions options = {});

  /// Runs the plan to completion; fills every Sink's output vector.
  /// Blocking; returns aggregate statistics. May be called from any thread
  /// that is not an engine pool worker.
  Result<ExecutionResult> Run(const PhysicalPlan& plan);

  /// Session mode: runs `plan`'s workset iteration to its initial fixpoint
  /// and keeps the whole dataflow resident for warm re-convergence rounds.
  /// Requires exactly one non-microstep workset iteration and no bulk
  /// iterations. `plan` must outlive the returned session.
  Result<std::unique_ptr<ExecutionSession>> StartSession(
      const PhysicalPlan& plan);

 private:
  ExecutionOptions options_;
};

}  // namespace sfdf
