// Channels: the in-memory stand-in for Nephele's data channels.
//
// A Channel is an unbounded MPSC queue of envelopes. Besides data batches,
// producers send marker envelopes — the "channel events" of Section 5.3:
// kEndSuperstep signals the end of a producer's superstep, kEndStream the
// end of its life. A receiver reading a phase waits until it has collected
// the marker from each of its producers ("upon reception of an according
// number of events, each node switches to the next superstep").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "record/batch.h"

namespace sfdf {

enum class MarkerKind : uint8_t {
  kData,
  kEndSuperstep,
  kEndStream,
};

struct Envelope {
  MarkerKind kind = MarkerKind::kData;
  RecordBatch batch;
};

/// Unbounded multi-producer single-consumer queue. Unboundedness keeps the
/// task DAG deadlock-free (no backpressure cycles); memory stays modest at
/// the scales this runtime targets.
class Channel {
 public:
  explicit Channel(int num_producers) : num_producers_(num_producers) {}

  void Push(Envelope envelope) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(envelope));
    }
    cv_.notify_one();
  }

  Envelope Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty(); });
    Envelope envelope = std::move(queue_.front());
    queue_.pop_front();
    return envelope;
  }

  int num_producers() const { return num_producers_; }

  /// Drops every queued envelope so the channel can be reused for another
  /// production phase; returns the number dropped. Only legal while no
  /// producer or consumer is active — service sessions call it between
  /// rounds (with every participating task parked at the round gate) to
  /// assert the previous round's seed was fully drained before reseeding.
  size_t Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t dropped = queue_.size();
    queue_.clear();
    return dropped;
  }

  /// Reopens a drained channel for one more production phase and seeds it:
  /// pushes `batch` as a data envelope (when non-empty) followed by one
  /// kEndStream marker per producer, so the consumer's next ReadPhase sees a
  /// complete, already-terminated stream without the original producers
  /// running again. Service sessions use this to feed a warm round's initial
  /// workset through the iteration head's external port.
  void Seed(RecordBatch batch) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!batch.empty()) {
        queue_.push_back(Envelope{MarkerKind::kData, std::move(batch)});
      }
      for (int p = 0; p < num_producers_; ++p) {
        queue_.push_back(Envelope{MarkerKind::kEndStream, RecordBatch()});
      }
    }
    cv_.notify_one();
  }

  /// Drains data batches until one `until` marker per producer arrived,
  /// calling `fn(batch)` for each data batch. Markers of the *other* kind
  /// are a protocol violation except that kEndStream may substitute for
  /// kEndSuperstep (a producer leaving the loop ends every phase).
  template <typename Fn>
  void ReadPhase(MarkerKind until, Fn&& fn) {
    int markers = 0;
    while (markers < num_producers_) {
      Envelope envelope = Pop();
      switch (envelope.kind) {
        case MarkerKind::kData:
          fn(envelope.batch);
          break;
        case MarkerKind::kEndSuperstep:
          SFDF_CHECK(until == MarkerKind::kEndSuperstep)
              << "unexpected end-of-superstep marker";
          ++markers;
          break;
        case MarkerKind::kEndStream:
          ++markers;
          break;
      }
    }
  }

 private:
  const int num_producers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
};

}  // namespace sfdf
