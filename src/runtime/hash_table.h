// Hash tables over records.
//
// JoinHashTable: multimap used as the build side of hash joins and for the
// constant-path cache. UniqueHashTable: insert-or-replace table used by the
// hash-backed solution set index.
//
// Both key on the raw 64-bit images of the key fields (see record/key.h) so
// the same hash drives partitioning and lookup.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "record/key.h"
#include "record/record.h"

namespace sfdf {

/// Composite key: the raw images of up to four key fields. Hashable and
/// equality-comparable; used as the map key in hash drivers.
struct CompositeKey {
  std::array<uint64_t, KeySpec::kMaxKeyFields> values{};
  uint8_t count = 0;

  static CompositeKey From(const Record& rec, const KeySpec& key) {
    CompositeKey k;
    k.count = static_cast<uint8_t>(key.num_fields());
    for (int i = 0; i < key.num_fields(); ++i) {
      k.values[i] = rec.RawField(key.field(i));
    }
    return k;
  }

  bool operator==(const CompositeKey& other) const {
    if (count != other.count) return false;
    for (int i = 0; i < count; ++i) {
      if (values[i] != other.values[i]) return false;
    }
    return true;
  }

  uint64_t Hash() const {
    uint64_t h = 0x2545f4914f6cdd1dULL;
    for (int i = 0; i < count; ++i) h = HashCombine(h, values[i]);
    return h;
  }
};

struct CompositeKeyHash {
  size_t operator()(const CompositeKey& k) const {
    return static_cast<size_t>(k.Hash());
  }
};

/// Chained-bucket multimap: Record build side of hash joins.
/// Open-coded (no std::unordered_multimap) to keep records contiguous per
/// bucket chain and to allow cheap clearing between supersteps.
class JoinHashTable {
 public:
  explicit JoinHashTable(KeySpec build_key);

  void Insert(const Record& rec);

  /// Calls `fn` for every build record whose key matches the key fields of
  /// `probe` under `probe_key`.
  template <typename Fn>
  void Probe(const Record& probe, const KeySpec& probe_key, Fn&& fn) const {
    if (entries_.empty()) return;
    uint64_t h = HashKey(probe, probe_key);
    int32_t slot = heads_[h & mask_];
    while (slot >= 0) {
      const Entry& e = entries_[slot];
      if (e.hash == h && KeyEquals(entries_[slot].record, build_key_, probe,
                                   probe_key)) {
        fn(e.record);
      }
      slot = e.next;
    }
  }

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  bool empty() const { return entries_.empty(); }
  void Clear();

  /// Visits every stored record.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.record);
  }

  const KeySpec& build_key() const { return build_key_; }

 private:
  struct Entry {
    Record record;
    uint64_t hash;
    int32_t next;  // next entry in bucket chain, -1 = end
  };

  void Rehash(size_t new_bucket_count);

  KeySpec build_key_;
  std::vector<int32_t> heads_;  // bucket heads, -1 = empty
  std::vector<Entry> entries_;
  uint64_t mask_ = 0;
};

/// Insert-or-replace hash table with unique keys: the updateable hash table
/// variant of the solution set index.
class UniqueHashTable {
 public:
  explicit UniqueHashTable(KeySpec key);

  /// Returns the stored record for the probe's key, or nullptr.
  const Record* Lookup(const Record& probe, const KeySpec& probe_key) const;

  /// Inserts `rec`, or calls `resolve(existing, rec)` when the key exists;
  /// resolve returns true to replace the existing record. Returns true iff
  /// the table changed.
  bool Upsert(const Record& rec,
              const std::function<bool(const Record& existing,
                                       const Record& incoming)>& resolve);

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.record);
  }

 private:
  struct Entry {
    Record record;
    uint64_t hash;
    int32_t next;
  };

  void Rehash(size_t new_bucket_count);
  int32_t FindSlot(const Record& probe, const KeySpec& probe_key,
                   uint64_t h) const;

  KeySpec key_;
  std::vector<int32_t> heads_;
  std::vector<Entry> entries_;
  uint64_t mask_ = 0;
};

}  // namespace sfdf
