// Engine: the shared worker-pool execution engine (runtime v3).
//
// The paper's runtime (§5.3) dedicates one OS thread to every dataflow task
// instance. That is fine for a single benchmark run, but it couples logical
// operators to physical threads: N resident serving sessions cost
// N × parallelism parked threads even when every one of them idles at its
// round boundary. The Engine decouples the two the way reconfigurable and
// asynchronous dataflow engines do (PAPERS.md: Fries; Asynchronous Complex
// Analytics): a process holds ONE fixed pool of workers, and everything the
// runtime wants executed — a superstep's partition tasks, a one-shot
// operator instance, a microstep poll — is submitted as a schedulable task.
// A resident session between rounds has simply nothing queued, so it
// consumes zero worker time; a process can host arbitrarily many sessions
// on a pool of any size ≥ 1.
//
// ## Clients and fair-share scheduling
//
// Work is submitted under a *client* — one registered lane per plan run or
// resident session. Each client owns a FIFO queue; workers pop round-robin
// across clients with queued tasks. That is the fair-share policy the
// multi-tenant ServiceHost relies on: a service flooding thousands of tasks
// cannot starve a neighbour that has one round pending, because every
// scheduling decision rotates to the next non-empty client before taking a
// second task from the same one.
//
// ## Non-blocking task contract
//
// Pool workers are a shared, fixed resource: a submitted task must RUN TO
// COMPLETION without waiting on another submitted task (no barrier waits,
// no blocking channel reads that only a not-yet-scheduled task can satisfy).
// The executor guarantees this by construction — it schedules a plan in
// dataflow topological order, so every Exchange phase a task reads is fully
// delivered before the task is enqueued, and superstep waves re-enqueue
// themselves from the arrival gate instead of parking threads at a barrier
// (see executor.cc). Controller threads (Executor::Run callers, service
// admission threads) may block on engine-driven completions — they are not
// pool workers.
//
// ## Parked tasks
//
// A cooperative task that runs out of input has two bad options on a shared
// pool: busy re-enqueue (burning workers on empty polls) or blocking (which
// the contract forbids). Park slots are the third: the task hands its
// continuation to the engine (`Park`) and costs nothing until a peer calls
// `Wake`, which moves the continuation back onto the client's queue. The
// wake side is race-free against a concurrent park — a Wake that arrives
// while the task is still deciding to park is remembered as pending and
// consumed by the Park call itself, so no wake-up is ever lost. The fused
// microstep loop uses this to replace its idle-poll backoff: a partition
// parks when its queue is empty and is woken by whichever peer stages
// records for it (or observes global quiescence).
//
// ## Queue-wait accounting
//
// Every pop records how long the task sat queued; per-client totals and
// high-water marks feed ServiceStats / ExecutionResult so multi-tenant
// saturation is observable (a rising queue wait = the pool is the
// bottleneck, add workers or shed services).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <condition_variable>
#include <mutex>
#include <thread>

namespace sfdf {

class Engine {
 public:
  struct Options {
    /// OS worker threads in the pool; 0 = DefaultEngineWorkers()
    /// (SFDF_ENGINE_WORKERS, falling back to SFDF_THREADS /
    /// hardware_concurrency). Clamped to >= 1.
    int workers = 0;
  };

  using TaskFn = std::function<void()>;

  /// Scheduling health of one client lane.
  struct ClientStats {
    int64_t tasks_run = 0;           ///< tasks popped by a worker
    int64_t queue_wait_ns_total = 0; ///< summed submit→pop latency
    int64_t queue_wait_ns_max = 0;   ///< worst single submit→pop latency
    int64_t tasks_parked = 0;        ///< continuations handed to a park slot
    int64_t tasks_woken = 0;         ///< parked continuations re-enqueued
  };

  Engine() : Engine(Options()) {}
  explicit Engine(Options options);

  /// Joins the pool. Every client must have been unregistered (i.e. all
  /// plan runs and sessions on this engine finished) before destruction.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a fair-share lane (one per plan run / resident session).
  /// `name` is for diagnostics only. Thread-safe.
  int RegisterClient(std::string name);

  /// Unregisters a lane. The client's queue must be empty — callers
  /// unregister only after the run/session it belongs to completed.
  void UnregisterClient(int client);

  /// Enqueues `fn` on `client`'s lane. Thread-safe; may be called from
  /// inside a running task (that is how superstep waves re-enqueue).
  void Submit(int client, TaskFn fn);

  /// Allocates a park slot on `client`'s lane (one per parkable task).
  /// Destroy with DestroyParkSlot before unregistering the client.
  uint64_t CreateParkSlot(int client);

  /// Parks `fn` on `slot`: it runs only after a Wake. If a Wake already
  /// arrived since the last run (wake-pending), `fn` is enqueued
  /// immediately instead — the caller never needs its own race handling.
  /// A slot holds at most one parked continuation.
  void Park(uint64_t slot, TaskFn fn);

  /// Re-enqueues the slot's parked continuation on its client lane, or —
  /// when nothing is parked right now — records a pending wake that the
  /// next Park consumes. Extra wakes coalesce (at most one is pending).
  void Wake(uint64_t slot);

  /// Frees a park slot. Must not hold a parked continuation (the task it
  /// belongs to has finished); a stale pending wake is fine and dropped.
  void DestroyParkSlot(uint64_t slot);

  /// Snapshot of a client's scheduling counters.
  ClientStats client_stats(int client) const;

  int workers() const { return static_cast<int>(workers_.size()); }

  /// The process-wide shared engine (pool size DefaultEngineWorkers()).
  /// Constructed on first use, joined at process exit.
  static Engine& Default();

 private:
  struct Queued {
    TaskFn fn;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct ClientState {
    std::string name;
    std::deque<Queued> queue;
    ClientStats stats;
  };
  struct ParkSlot {
    int client = -1;
    TaskFn fn;                 ///< the parked continuation, if any
    bool wake_pending = false; ///< a Wake arrived while nothing was parked
  };

  void WorkerLoop();
  /// Picks the next runnable task round-robin across non-empty clients.
  /// Returns false when nothing is queued. Caller holds mutex_.
  bool PopNext(Queued* out, ClientStats** stats_out);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<int, ClientState> clients_;
  std::map<uint64_t, ParkSlot> park_slots_;
  uint64_t next_park_slot_ = 1;
  int next_client_ = 1;
  int rr_cursor_ = 0;  ///< client id served last; scan resumes after it
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sfdf
