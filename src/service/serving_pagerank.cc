#include "service/serving_pagerank.h"

#include <algorithm>
#include <cmath>

#include "algos/incremental_pagerank.h"
#include "core/solution_set.h"
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"

namespace sfdf {

ServingPageRank::~ServingPageRank() {
  if (service_ != nullptr) {
    Status ignored = service_->Stop();
    (void)ignored;
  }
}

Result<std::unique_ptr<ServingPageRank>> ServingPageRank::Start(
    const Graph& graph, const ServingPageRankOptions& options) {
  if (options.damping <= 0 || options.damping >= 1) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  if (options.epsilon <= 0) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  if (graph.num_vertices() == 0) {
    return Status::InvalidArgument("cannot serve an empty graph");
  }

  if (options.max_vertices < 0 ||
      (options.max_vertices > 0 &&
       options.max_vertices < graph.num_vertices())) {
    return Status::InvalidArgument(
        "max_vertices must be 0 (default) or >= the initial vertex count");
  }

  std::unique_ptr<ServingPageRank> serving(new ServingPageRank);
  serving->damping_ = options.damping;
  serving->epsilon_ = options.epsilon;
  serving->max_vertices_ = options.max_vertices > 0
                               ? options.max_vertices
                               : 16 * graph.num_vertices() + 1024;
  serving->base_ =
      (1.0 - options.damping) / static_cast<double>(graph.num_vertices());
  serving->graph_ = std::make_shared<DynamicGraph>(graph);
  serving->final_output_ = std::make_unique<std::vector<Record>>();

  // S_0: every page at the base rank. W_0: the base mass pushed once along
  // every edge — the cold round then converges full PageRank (§7.2). Both
  // come from the same builders as the batch incremental run.
  PlanBuilder pb;
  auto ranks = pb.Source(
      "S0", BuildInitialRankRecords(graph.num_vertices(), options.damping));
  auto pushes = pb.Source(
      "W0", BuildInitialPushRecords(graph, options.damping));
  // Sessions need superstep boundaries to park rounds at — no microsteps.
  auto it = pb.BeginWorksetIteration(
      "serve-pr", ranks, pushes, /*solution_key=*/{0},
      /*comparator=*/nullptr, IterationMode::kSuperstep,
      options.max_iterations_per_round);
  // ∆ part 1: the shared "absorb" UDF — rank' = rank + Σ pushes, residual
  // in field 2 to feed the push stage.
  auto delta = pb.InnerCoGroup("absorb", it.Workset(), it.SolutionSet(),
                               {0}, {0}, PageRankAbsorbUdf());
  pb.DeclarePreserved(delta, 1, 0, 0);
  // ∆ part 2: adaptive push over the *mutable* adjacency. Unlike the batch
  // formulation's constant transition-matrix Match, the UDF walks the
  // DynamicGraph this serving instance owns, so edge mutations take effect
  // the round after they are applied — no frozen cache to rebuild. The
  // session's round boundary orders the admission thread's writes against
  // these reads.
  std::shared_ptr<DynamicGraph> adjacency = serving->graph_;
  const double damping = options.damping;
  const double epsilon = options.epsilon;
  auto next = pb.Map(
      "push", delta,
      [adjacency, damping, epsilon](const Record& d, Collector* out) {
        const double residual = d.GetDouble(2);
        if (std::abs(residual) <= epsilon) return;  // page converged: halt
        const VertexId page = d.GetInt(0);
        if (!adjacency->HasVertex(page)) return;
        const std::vector<VertexId>& neighbors = adjacency->Neighbors(page);
        if (neighbors.empty()) return;
        const double push =
            damping * residual / static_cast<double>(neighbors.size());
        for (VertexId v : neighbors) {
          out->Emit(Record::OfIntDouble(v, push));
        }
      });
  auto result = it.Close(delta, next);
  pb.Sink("ranks", result, serving->final_output_.get());
  Plan plan = std::move(pb).Finish();

  OptimizerOptions oopt;
  oopt.parallelism = options.parallelism;
  Optimizer optimizer(oopt);
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ServiceOptions sopt;
  sopt.max_batch = options.max_batch;
  sopt.max_linger = options.max_linger;
  sopt.exec.parallelism = options.parallelism;
  sopt.exec.worker_threads = options.worker_threads;
  sopt.exec.engine = options.engine;
  sopt.exec.sync_mode = options.sync_mode;
  sopt.exec.staleness_bound = options.staleness_bound;
  ServingPageRank* raw = serving.get();
  auto service = IterationService::Start(
      std::move(*physical),
      [raw](ExecutionSession& session,
            const std::vector<GraphMutation>& batch) {
        return raw->Translate(session, batch);
      },
      sopt,
      [raw](const GraphMutation& mutation) {
        return raw->ValidateMutation(mutation);
      });
  if (!service.ok()) return service.status();
  serving->service_ = std::move(*service);
  return serving;
}

Status ServingPageRank::ValidateMutation(const GraphMutation& mutation) const {
  const bool is_edge = mutation.kind != MutationKind::kVertexUpsert;
  if (mutation.u < 0 || (is_edge && mutation.v < 0)) {
    return Status::InvalidArgument("negative vertex id in " +
                                   mutation.ToString());
  }
  if (!is_edge && !std::isfinite(mutation.value)) {
    // A NaN/Inf push would defeat the |residual| <= epsilon halt test and
    // poison every reachable page's resident rank.
    return Status::InvalidArgument("non-finite upsert value in " +
                                   mutation.ToString());
  }
  const VertexId highest = is_edge ? std::max(mutation.u, mutation.v)
                                   : mutation.u;
  if (highest >= max_vertices_) {
    return Status::InvalidArgument(
        "vertex id " + std::to_string(highest) +
        " exceeds the serving capacity of " +
        std::to_string(max_vertices_) +
        " (ServingPageRankOptions.max_vertices)");
  }
  return Status::OK();
}

Result<std::vector<Record>> ServingPageRank::Translate(
    ExecutionSession& session, const std::vector<GraphMutation>& batch) {
  // Admission already validated the batch (ValidateMutation); re-check
  // here so a mis-wired service without the validator still rejects the
  // batch atomically, before any resident state changes.
  for (const GraphMutation& mutation : batch) {
    Status status = ValidateMutation(mutation);
    if (!status.ok()) return status;
  }

  std::vector<Record> seeds;
  const KeySpec& solution_key = session.solution_key();

  auto rank_of = [&](VertexId v) -> double {
    Record probe = Record::OfInts(v);
    const Record* rec =
        session.solution_partition(session.PartitionOfSolution(probe))
            ->Peek(probe, solution_key);
    return rec != nullptr ? rec->GetDouble(1) : base_;
  };
  // Delta re-seeding: a page unseen so far enters the vertex space and the
  // resident solution set directly, at the base rank.
  auto ensure_served = [&](VertexId v) {
    graph_->EnsureVertex(v);
    Record probe = Record::OfInts(v);
    SolutionSetIndex* partition =
        session.solution_partition(session.PartitionOfSolution(probe));
    if (partition->Peek(probe, solution_key) == nullptr) {
      partition->Apply(Record::OfIntDouble(v, base_));
    }
  };

  for (const GraphMutation& mutation : batch) {
    if (mutation.kind == MutationKind::kEdgeRemove) {
      // A removal introduces nothing: a never-inserted edge (or unknown
      // endpoint) is a pure no-op — growing the vertex space here would
      // serve phantom pages that a cold recompute does not know.
      if (!graph_->HasEdge(mutation.u, mutation.v)) continue;
    } else {
      ensure_served(mutation.u);
      if (mutation.kind == MutationKind::kEdgeInsert) {
        ensure_served(mutation.v);
      }
    }
    // Seeds are computed against the pre-mutation adjacency, then the
    // mutation is applied so the round's pushes walk the new structure.
    // Cannot fail after the up-front validation: every referenced vertex
    // is in the vertex space by now.
    Status status = AppendPageRankMutationSeeds(*graph_, rank_of, damping_,
                                                mutation, &seeds);
    if (!status.ok()) return status;
    graph_->Apply(mutation);
  }
  return seeds;
}

Result<double> ServingPageRank::Rank(VertexId page,
                                     uint64_t* epoch_out) const {
  IterationService::QueryResult query = service_->QueryKey(page);
  if (epoch_out != nullptr) *epoch_out = query.epoch;
  if (!query.found) {
    return Status::NotFound("page " + std::to_string(page) +
                            " is not served");
  }
  return query.record.GetDouble(1);
}

ServingPageRank::RankSnapshot ServingPageRank::Ranks() const {
  IterationService::SnapshotResult snapshot = service_->Snapshot();
  RankSnapshot result;
  result.epoch = snapshot.epoch;
  result.ranks.reserve(snapshot.records.size());
  for (const Record& rec : snapshot.records) {
    result.ranks.emplace_back(rec.GetInt(0), rec.GetDouble(1));
  }
  std::sort(result.ranks.begin(), result.ranks.end());
  return result;
}

}  // namespace sfdf
