// PageRank as a continuously served workload (§7.2 adaptive PageRank on
// the serving subsystem).
//
// Start() converges full PageRank once, cold; after that the solution set
// stays resident and every admitted mutation batch — edge inserts/removes,
// vertex upserts — is folded in as one warm incremental round whose initial
// workset is the batch's residual pushes (AppendPageRankMutationSeeds).
// Rank()/Ranks() serve batch-consistent, epoch-tagged reads throughout.
//
// The dataflow body is the incremental-PageRank plan with one serving
// twist: the "push" operator walks a mutable DynamicGraph owned by this
// class instead of a constant transition-matrix input, so edge mutations
// take effect without rebuilding a frozen cache. The adjacency is only
// mutated between rounds (on the admission thread, via the translator) and
// only read during rounds (by the executor's wave tasks); the session's
// round boundary (see ExecutionSession::RunRound) orders the two.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "service/iteration_service.h"

namespace sfdf {

struct ServingPageRankOptions {
  double damping = 0.85;
  /// Adaptivity threshold ε: pages stop pushing once their residual falls
  /// below it (§7.2). Smaller = more precise re-convergence.
  double epsilon = 1e-9;
  int parallelism = 0;  ///< 0 = DefaultParallelism()
  /// Engine pool for the resident session (see ExecutionOptions): 0/null =
  /// the shared process default; worker_threads > 0 = a private dedicated
  /// pool; `engine` = an externally owned pool (e.g. a ServiceHost's),
  /// overriding worker_threads.
  int worker_threads = 0;
  Engine* engine = nullptr;
  /// Safety cap on supersteps per warm round.
  int max_iterations_per_round = 10000;
  /// Admission batching (see ServiceOptions).
  int max_batch = 256;
  std::chrono::milliseconds max_linger{2};
  /// Serving capacity: mutations naming a vertex id >= this are rejected at
  /// admission (an unbounded id from an untrusted client would otherwise
  /// force an arbitrarily large adjacency allocation). 0 = 16 × the initial
  /// vertex count + 1024.
  int64_t max_vertices = 0;
  /// Barrier coupling of the resident loop's rounds (cold convergence and
  /// every warm round; see ExecutionOptions::sync_mode). Residual pushes
  /// are additive and merged through immediate apply, so every mode reaches
  /// the same fixpoint up to ε; the epoch/seqlock read contract is
  /// unchanged — a warm round commits only at full quiescence, exactly
  /// where the superstep round commits.
  SyncMode sync_mode = SyncMode::kSuperstep;
  /// Staleness window for SyncMode::kBoundedStale.
  int staleness_bound = 1;
};

class ServingPageRank {
 public:
  /// Converges PageRank on `graph` (blocking) and starts serving. New
  /// vertices may be upserted later; the teleport term stays (1-d)/n for
  /// the initial n (documented approximation — rank mass of late vertices
  /// enters through their edges and explicit upsert mass).
  static Result<std::unique_ptr<ServingPageRank>> Start(
      const Graph& graph, const ServingPageRankOptions& options);

  ~ServingPageRank();

  /// Asynchronous mutation: returns an Await ticket (0 = rejected).
  uint64_t Mutate(std::vector<GraphMutation> mutations) {
    return service_->Mutate(std::move(mutations));
  }
  Status Await(uint64_t ticket) { return service_->Await(ticket); }
  /// Synchronous mutation: blocks until the batch's round committed.
  Status Apply(std::vector<GraphMutation> mutations) {
    return service_->Apply(std::move(mutations));
  }

  /// Batch-consistent point read of a page's served rank; NotFound for
  /// unknown pages. `epoch_out` (optional) receives the batch epoch the
  /// value reflects.
  Result<double> Rank(VertexId page, uint64_t* epoch_out = nullptr) const;

  struct RankSnapshot {
    std::vector<std::pair<VertexId, double>> ranks;  ///< sorted by page id
    uint64_t epoch = 0;
  };
  RankSnapshot Ranks() const;

  uint64_t epoch() const { return service_->epoch(); }
  ServiceStats stats() const { return service_->stats(); }
  /// The underlying service, for admin paths (live reconfiguration, paged
  /// snapshots) that operate below this façade.
  IterationService* service() { return service_.get(); }
  const IterationService* service() const { return service_.get(); }
  std::optional<ExecutionResult> final_result() const {
    return service_->final_result();
  }
  const IterationReport& initial_report() const {
    return service_->initial_report();
  }

  double base_rank() const { return base_; }

  /// Drains pending mutations and shuts the resident session down.
  Status Stop() { return service_->Stop(); }

 private:
  ServingPageRank() = default;

  Result<std::vector<Record>> Translate(
      ExecutionSession& session, const std::vector<GraphMutation>& batch);
  Status ValidateMutation(const GraphMutation& mutation) const;

  double damping_ = 0.85;
  double epsilon_ = 1e-9;
  double base_ = 0;
  int64_t max_vertices_ = 0;

  /// Mutable adjacency shared with the plan's push UDF. shared_ptr because
  /// the UDF closure (inside plan_/session_ in service_) must be able to
  /// outlive reorderings of this struct during teardown.
  std::shared_ptr<DynamicGraph> graph_;
  /// Final solution sink, filled when the session finishes.
  std::unique_ptr<std::vector<Record>> final_output_;
  std::unique_ptr<IterationService> service_;
};

}  // namespace sfdf
