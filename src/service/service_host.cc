#include "service/service_host.h"

#include <utility>

#include "common/logging.h"

namespace sfdf {

namespace {

// Registers one tenant's serving stats into the default MetricsRegistry so
// the gateway's kTelemetry exposition covers every ServiceStats field
// without the positional StatField array growing. The raw service pointer
// is safe: the host destroys `registrations_` before `services_`, and a
// Registration's destructor blocks until any in-flight render completes.
void RegisterTenantMetrics(IterationService* svc, const std::string& tenant,
                           std::vector<MetricsRegistry::Registration>* out) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const MetricLabels labels = {{"tenant", tenant}};
  auto counter = [&](const char* name, auto get) {
    out->push_back(reg.RegisterCounter(name, labels, std::move(get)));
  };
  auto gauge = [&](const char* name, auto get) {
    out->push_back(reg.RegisterGauge(name, labels, std::move(get)));
  };
  counter("sfdf_service_rounds",
          [svc] { return static_cast<double>(svc->stats().rounds); });
  counter("sfdf_service_mutations_applied", [svc] {
    return static_cast<double>(svc->stats().mutations_applied);
  });
  counter("sfdf_service_mutations_rejected", [svc] {
    return static_cast<double>(svc->stats().mutations_rejected);
  });
  counter("sfdf_service_reconfigs",
          [svc] { return static_cast<double>(svc->stats().reconfigs); });
  counter("sfdf_service_supersteps", [svc] {
    return static_cast<double>(svc->stats().total_supersteps);
  });
  counter("sfdf_service_round_millis", [svc] {
    return svc->stats().total_round_millis;
  });
  counter("sfdf_service_engine_tasks",
          [svc] { return static_cast<double>(svc->stats().engine_tasks); });
  counter("sfdf_service_engine_parks",
          [svc] { return static_cast<double>(svc->stats().engine_parks); });
  counter("sfdf_service_engine_wakes",
          [svc] { return static_cast<double>(svc->stats().engine_wakes); });
  counter("sfdf_service_async_local_rounds", [svc] {
    return static_cast<double>(svc->stats().async_local_rounds);
  });
  counter("sfdf_service_async_vote_revocations", [svc] {
    return static_cast<double>(svc->stats().async_vote_revocations);
  });
  gauge("sfdf_service_epoch",
        [svc] { return static_cast<double>(svc->epoch()); });
  gauge("sfdf_service_admission_queue_depth", [svc] {
    return static_cast<double>(svc->stats().admission_queue_depth);
  });
  gauge("sfdf_service_engine_workers",
        [svc] { return static_cast<double>(svc->stats().engine_workers); });
  gauge("sfdf_service_engine_queue_wait_total_ms", [svc] {
    return svc->stats().engine_queue_wait_total_ms;
  });
  gauge("sfdf_service_engine_queue_wait_max_ms", [svc] {
    return svc->stats().engine_queue_wait_max_ms;
  });
  gauge("sfdf_service_reconfig_ms_last",
        [svc] { return svc->stats().reconfig_ms_last; });
  gauge("sfdf_service_async_max_staleness", [svc] {
    return static_cast<double>(svc->stats().async_max_staleness);
  });
  out->push_back(reg.RegisterHistogram(
      "sfdf_service_round_latency_ms", labels,
      [svc] { return svc->round_latency_histogram(); }));
}

}  // namespace

ServiceHost::ServiceHost(Options options)
    : engine_(Engine::Options{.workers = options.workers}) {}

ServiceHost::~ServiceHost() {
  Status ignored = StopAll();
  (void)ignored;
}

Result<IterationService*> ServiceHost::StartService(
    std::string name, PhysicalPlan plan, IterationService::SeedFn translate,
    ServiceOptions options, IterationService::ValidateFn validate) {
  {
    // Reserve the name (null service) before the blocking cold start, so a
    // concurrent StartService with the same name is rejected instead of
    // racing past the check while this one converges. The in-flight count
    // keeps StopAll from tearing the engine down under the cold start.
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return Status::InvalidArgument("service host is stopping");
    }
    for (const auto& [existing, service] : services_) {
      (void)service;
      if (existing == name) {
        return Status::InvalidArgument("service '" + name +
                                       "' already hosted");
      }
    }
    services_.emplace_back(name, nullptr);
    ++starting_;
  }
  // The resident session schedules on the host's shared pool; a private
  // per-service pool would defeat the multi-tenant decoupling.
  options.exec.engine = &engine_;
  options.exec.worker_threads = 0;
  auto service = IterationService::Start(std::move(plan), std::move(translate),
                                         std::move(options),
                                         std::move(validate));
  std::lock_guard<std::mutex> lock(mutex_);
  --starting_;
  starts_cv_.notify_all();
  auto slot = services_.end();
  for (auto it = services_.begin(); it != services_.end(); ++it) {
    if (it->first == name) slot = it;
  }
  SFDF_CHECK(slot != services_.end())
      << "reservation for '" << name
      << "' vanished (StopAll waits for in-flight starts)";
  if (!service.ok()) {
    services_.erase(slot);  // release the reservation
    return service.status();
  }
  // If StopAll raced in after the reservation, it is now waiting on
  // starting_ and will stop this tenant too, right after we publish it.
  slot->second = std::move(*service);
  RegisterTenantMetrics(slot->second.get(), name, &registrations_);
  return slot->second.get();
}

Result<Engine*> ServiceHost::AddEnginePool(const std::string& name,
                                           int workers) {
  if (name.empty() || name == "primary") {
    return Status::InvalidArgument(
        "engine pool name must be non-empty and not 'primary' (the host's "
        "built-in pool)");
  }
  if (workers < 0) {
    return Status::InvalidArgument("engine pool workers must be >= 0");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    return Status::InvalidArgument("service host is stopping");
  }
  for (const auto& [existing, pool] : pools_) {
    (void)pool;
    if (existing == name) {
      return Status::InvalidArgument("engine pool '" + name +
                                     "' already exists");
    }
  }
  pools_.emplace_back(
      name, std::make_unique<Engine>(Engine::Options{.workers = workers}));
  return pools_.back().second.get();
}

Status ServiceHost::ReconfigureService(const std::string& name,
                                       int partitions,
                                       const std::string& pool) {
  IterationService* target = nullptr;
  Engine* engine = nullptr;  // null = keep the tenant's current engine
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return Status::InvalidArgument("service host is stopping");
    }
    for (const auto& [existing, service] : services_) {
      if (existing == name) target = service.get();
    }
    if (target == nullptr) {
      return Status::NotFound("no hosted service named '" + name + "'");
    }
    if (pool == "primary") {
      engine = &engine_;
    } else if (!pool.empty()) {
      for (const auto& [existing, owned] : pools_) {
        if (existing == pool) engine = owned.get();
      }
      if (engine == nullptr) {
        return Status::NotFound("no engine pool named '" + pool + "'");
      }
    }
  }
  // The remap blocks on the tenant's quiesce/resume cycle; run it outside
  // the host lock so other tenants' starts and lookups proceed. Safe: the
  // service and every pool outlive this call (StopAll tears services down
  // under their own Stop, which serializes with the admission thread).
  return target->Reconfigure(partitions, engine);
}

IterationService* ServiceHost::service(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, service] : services_) {
    // Null = a reservation whose cold start is still running; not servable.
    if (existing == name) return service.get();
  }
  return nullptr;
}

std::vector<std::string> ServiceHost::service_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(services_.size());
  for (const auto& [name, service] : services_) {
    (void)service;
    names.push_back(name);
  }
  return names;
}

int ServiceHost::num_services() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(services_.size());
}

Status ServiceHost::StopAll() {
  // Refuse new tenants, then wait out cold starts already in flight —
  // their sessions schedule on engine_, which must outlive them. Then swap
  // the services out under the lock and stop them outside it: Stop()
  // blocks on round drains and must not hold the host lock while doing so.
  std::vector<std::pair<std::string, std::unique_ptr<IterationService>>>
      services;
  std::vector<MetricsRegistry::Registration> registrations;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    starts_cv_.wait(lock, [this] { return starting_ == 0; });
    services.swap(services_);
    registrations.swap(registrations_);
  }
  // Unregister before stopping: exposition callbacks must never observe a
  // stopped (or destroyed) tenant. Destruction blocks on in-flight renders.
  registrations.clear();
  Status first;
  for (auto& [name, service] : services) {
    (void)name;
    if (service == nullptr) continue;  // failed start released mid-sweep
    Status status = service->Stop();
    if (first.ok() && !status.ok()) first = status;
  }
  // Destroying the services here — before the host's engine — tears every
  // session down while the pool is still alive.
  return first;
}

}  // namespace sfdf
