#include "service/serving_cc.h"

#include <algorithm>
#include <utility>

#include "algos/connected_components.h"
#include "core/solution_set.h"
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"
#include "record/comparator.h"

namespace sfdf {

Result<std::unique_ptr<ServingCc>> ServingCc::StartOn(ServiceHost* host,
                                                      std::string name,
                                                      Options options) {
  if (options.num_vertices < 1) {
    return Status::InvalidArgument("ServingCc needs num_vertices >= 1");
  }
  auto cc = std::unique_ptr<ServingCc>(new ServingCc);
  cc->max_vertices_ = options.max_vertices > 0
                          ? options.max_vertices
                          : 16 * options.num_vertices + 1024;
  cc->graph_ = std::make_shared<DynamicGraph>(options.num_vertices);
  cc->output_ = std::make_unique<std::vector<Record>>();

  // The streamed-CC workset iteration: S = (vertex, label) keyed by vertex
  // with min-label conflict resolution; the delta join keeps strict
  // improvements and the neighbors map fans them out over the mutable
  // adjacency.
  std::vector<Record> labels;
  labels.reserve(static_cast<size_t>(options.num_vertices));
  for (int64_t v = 0; v < options.num_vertices; ++v) {
    labels.push_back(Record::OfInts(v, v));
  }
  PlanBuilder pb;
  auto labels_src = pb.Source("V", std::move(labels));
  auto workset_src = pb.Source("W0", std::vector<Record>{});
  auto it = pb.BeginWorksetIteration("serving-cc", labels_src, workset_src,
                                     /*solution_key=*/{0},
                                     OrderByIntFieldDesc(1),
                                     IterationMode::kSuperstep, 100000);
  auto delta = pb.Match("update", it.Workset(), it.SolutionSet(), {0}, {0},
                        [](const Record& cand, const Record& current,
                           Collector* out) {
                          if (cand.GetInt(1) < current.GetInt(1)) {
                            out->Emit(Record::OfInts(cand.GetInt(0),
                                                     cand.GetInt(1)));
                          }
                        });
  pb.DeclarePreserved(delta, 1, 0, 0);
  std::shared_ptr<DynamicGraph> adjacency = cc->graph_;
  auto next = pb.Map("neighbors", delta,
                     [adjacency](const Record& changed, Collector* out) {
                       for (VertexId n :
                            adjacency->Neighbors(changed.GetInt(0))) {
                         out->Emit(Record::OfInts(n, changed.GetInt(1)));
                       }
                     });
  auto result = it.Close(delta, next);
  pb.Sink("labels", result, cc->output_.get());
  Plan plan = std::move(pb).Finish();

  Optimizer optimizer(OptimizerOptions{});
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return physical.status();

  ServingCc* raw = cc.get();
  auto service = host->StartService(
      std::move(name), std::move(*physical),
      [raw](ExecutionSession& session,
            const std::vector<GraphMutation>& batch) {
        return raw->Translate(session, batch);
      },
      options.service,
      [raw](const GraphMutation& m) { return raw->ValidateMutation(m); });
  if (!service.ok()) return service.status();
  cc->service_ = *service;
  return cc;
}

Status ServingCc::ValidateMutation(const GraphMutation& mutation) const {
  switch (mutation.kind) {
    case MutationKind::kEdgeInsert:
      break;
    case MutationKind::kEdgeRemove:
      // Not invertible under the min-label CPO (see AppendCcMutationSeeds);
      // reject at the door so only this call fails, not the service.
      return Status::Unsupported(
          "edge removal is not incrementally servable for connected "
          "components (min-label updates cannot be retracted)");
    case MutationKind::kVertexUpsert:
      if (mutation.u < 0 || mutation.u >= max_vertices_) {
        return Status::InvalidArgument("vertex id out of serving range");
      }
      return Status::OK();
  }
  if (mutation.u < 0 || mutation.v < 0 || mutation.u >= max_vertices_ ||
      mutation.v >= max_vertices_) {
    return Status::InvalidArgument("vertex id out of serving range");
  }
  return Status::OK();
}

Result<std::vector<Record>> ServingCc::Translate(
    ExecutionSession& session, const std::vector<GraphMutation>& batch) {
  std::vector<Record> seeds;
  const KeySpec& key = session.solution_key();
  auto component_of = [&](VertexId v) -> int64_t {
    Record probe = Record::OfInts(v);
    const Record* rec =
        session.solution_partition(session.PartitionOfSolution(probe))
            ->Peek(probe, key);
    return rec != nullptr ? rec->GetInt(1) : v;
  };
  for (const GraphMutation& m : batch) {
    if (m.kind == MutationKind::kEdgeInsert ||
        m.kind == MutationKind::kVertexUpsert) {
      // A previously unseen vertex enters S as its own singleton component
      // before any seed references it.
      const std::vector<VertexId> touched =
          m.kind == MutationKind::kEdgeInsert
              ? std::vector<VertexId>{m.u, m.v}
              : std::vector<VertexId>{m.u};
      graph_->EnsureVertex(*std::max_element(touched.begin(), touched.end()));
      for (VertexId v : touched) {
        Record probe = Record::OfInts(v);
        SolutionSetIndex* partition =
            session.solution_partition(session.PartitionOfSolution(probe));
        if (partition->Peek(probe, key) == nullptr) {
          partition->Apply(Record::OfInts(v, v));
        }
      }
    }
    Status status = AppendCcMutationSeeds(component_of, m, &seeds);
    if (!status.ok()) return status;
    if (m.kind == MutationKind::kEdgeInsert) {
      graph_->AddEdge(m.u, m.v);
      graph_->AddEdge(m.v, m.u);
    }
  }
  return seeds;
}

std::map<int64_t, int64_t> ServingCc::Labels() const {
  std::map<int64_t, int64_t> labels;
  for (const Record& rec : service_->Snapshot().records) {
    labels[rec.GetInt(0)] = rec.GetInt(1);
  }
  return labels;
}

}  // namespace sfdf
