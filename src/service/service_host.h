// ServiceHost: multi-tenant serving on one shared worker pool (runtime v3).
//
// PR 2's serving subsystem made one iteration resident; under the old
// thread-per-task-instance runtime, N resident services cost
// N × parallelism parked OS threads. The host closes that gap: it owns ONE
// Engine and starts every hosted IterationService's resident session on it.
// Between rounds a session has nothing queued (zero worker cost), so the
// pool only ever holds the tasks of rounds actually in flight, and the
// engine's per-client round-robin gives each service a fair share of the
// workers when several rounds overlap — 4+ resident services run fine on a
// pool of 2 workers, which was structurally impossible before.
//
//   clients ──Mutate()──▶ service A ──round tasks──▶┐
//   clients ──Mutate()──▶ service B ──round tasks──▶│ shared Engine
//   clients ──Mutate()──▶ service C ──(idle: ∅)     │ (fair-share RR)
//                                                   ▶ workers × N
//
// Ownership: the host owns both the engine and the services; StopAll (or
// destruction) stops every service — draining its admitted mutations and
// finishing its session — before the pool winds down.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/registry.h"
#include "runtime/engine.h"
#include "service/iteration_service.h"

namespace sfdf {

class ServiceHost {
 public:
  struct Options {
    /// Shared engine pool size; 0 = DefaultEngineWorkers(). Deliberately
    /// independent of how many services are hosted — decoupling logical
    /// services from physical workers is the point.
    int workers = 0;
  };

  explicit ServiceHost(Options options);
  ServiceHost() : ServiceHost(Options()) {}

  ~ServiceHost();  ///< implies StopAll()
  ServiceHost(const ServiceHost&) = delete;
  ServiceHost& operator=(const ServiceHost&) = delete;

  /// Starts a service whose resident session runs on the host's engine
  /// (`options.exec.engine` is overridden; set worker_threads to 0).
  /// Blocking: runs the plan's cold convergence. The returned service is
  /// owned by the host and valid until StopAll/destruction. Names must be
  /// unique; a duplicate is rejected with InvalidArgument.
  Result<IterationService*> StartService(
      std::string name, PhysicalPlan plan, IterationService::SeedFn translate,
      ServiceOptions options, IterationService::ValidateFn validate = nullptr);

  /// Hosted service by name; null if unknown.
  IterationService* service(const std::string& name) const;

  /// Creates an additional named engine pool tenants can be moved onto
  /// with ReconfigureService — e.g. an isolation pool for a noisy tenant,
  /// or a bigger pool for a hot one. The pool lives until StopAll; names
  /// must be unique and must not collide with "primary" (the host's
  /// built-in pool). `workers` 0 = DefaultEngineWorkers().
  Result<Engine*> AddEnginePool(const std::string& name, int workers);

  /// Live reconfiguration of a hosted tenant: repartitions its resident
  /// session to `partitions` (0 = keep) and/or moves it onto another
  /// engine pool (`pool` "" = keep, "primary" = the host's built-in pool,
  /// anything else = a pool from AddEnginePool). Blocking — runs the
  /// tenant's quiesce/remap/resume cycle; other tenants are untouched (the
  /// host lock is NOT held across the remap).
  Status ReconfigureService(const std::string& name, int partitions,
                            const std::string& pool = "");

  std::vector<std::string> service_names() const;
  int num_services() const;

  Engine& engine() { return engine_; }

  /// Stops every hosted service (draining already-admitted mutations) and
  /// finishes their sessions; waits out any StartService cold start still
  /// in flight first (the shared engine must outlive every session). First
  /// error wins; idempotent; the host rejects new tenants afterwards.
  Status StopAll();

 private:
  Engine engine_;
  /// Named extra pools (AddEnginePool). Declared after engine_ and before
  /// services_ so every pool a tenant may have been moved onto outlives
  /// the services (reverse destruction order tears services down first).
  std::vector<std::pair<std::string, std::unique_ptr<Engine>>> pools_;
  mutable std::mutex mutex_;
  std::condition_variable starts_cv_;
  int starting_ = 0;      ///< StartService cold starts in flight
  bool stopping_ = false; ///< StopAll ran; new starts are rejected
  std::vector<std::pair<std::string, std::unique_ptr<IterationService>>>
      services_;
  /// Per-tenant MetricsRegistry registrations (label tenant=<name>).
  /// Declared after services_ so they are destroyed FIRST: a registration's
  /// destructor blocks until any in-flight RenderText finishes, which
  /// guarantees no exposition callback ever reads a dead service.
  std::vector<MetricsRegistry::Registration> registrations_;
};

}  // namespace sfdf
