// RpcGateway: the TCP serving front-end — many concurrent client
// connections multiplexed onto one ServiceHost over the binary frame
// protocol of net/frame.h. This is the layer that turns the resident
// iterative sessions into an actual network service (ROADMAP north star;
// OpenMLDB/Fries-style request-path serving in PAPERS.md).
//
//   clients ──TCP──▶ EventLoop (1 controller thread: accept/read/write)
//                        │ decoded request frames
//                        ▼
//                    dispatch pool (controller threads, may block)
//                        │ Query/Snapshot/Stats answered inline
//                        │ MutateBatch: Mutate() ticket ──▶ per-tenant
//                        │                                 completion thread
//                        ▼                                 (Await, reply at
//                    ServiceHost tenants                    round commit)
//
// ## Threading
//
// The event loop runs on ONE dedicated controller thread; it never blocks
// on service state (runtime-v3 rule: only controller threads may block, and
// even they shouldn't stall the I/O plane). Requests are handed to a small
// dispatch pool — controller threads that MAY block (Query briefly waits
// out an in-flight round on the tenant's reader lock). Mutation tickets are
// resolved asynchronously: the dispatch thread only enqueues (non-blocking
// Mutate) and a per-tenant completion thread Awaits tickets in order,
// posting each response back to the loop thread, which owns all sockets.
//
// ## Backpressure
//
// Responses go through per-connection bounded write queues. When a
// connection's queued bytes exceed write_queue_limit_bytes the gateway
// stops READING that connection (EPOLLIN off) until the queue drains below
// half the limit — a slow consumer throttles itself through natural TCP
// backpressure instead of growing server memory. Admission-side overload is
// separate: ServiceOptions.max_pending_mutations makes the tenant reject
// with ResourceExhausted, which reaches the client as WireCode::kRetry.
//
// ## Failure containment
//
// A malformed or truncated frame (bad magic, wrong version, oversize
// declared length) closes ONLY that connection; a malformed payload inside
// a valid frame gets a kBadRequest response. Admission rejections map to
// distinct wire codes (kRetry for overload, kReject for invalid input) so
// clients can tell backoff from bug. Nothing a client sends can fault the
// host or another tenant's connections.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "net/frame.h"
#include "service/service_host.h"

namespace sfdf {

struct GatewayOptions {
  /// Listen address; loopback by default (this is a building block, not a
  /// hardened public endpoint).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 = kernel-assigned (read it back via port()).
  uint16_t port = 0;
  /// Dispatch pool size — controller threads that execute requests and may
  /// block on tenant state.
  int dispatch_threads = 2;
  /// Per-connection write-queue bound; above it the connection stops being
  /// read until the queue drains below half.
  size_t write_queue_limit_bytes = 1u << 20;
  /// Per-connection cap on a request frame's payload (tightens the codec's
  /// global kMaxPayloadBytes).
  uint32_t max_payload_bytes = net::kMaxPayloadBytes;
  /// Per-tenant auth tokens. A tenant listed here only answers requests
  /// whose header status slot carries the matching token (net/frame.h);
  /// mismatches get WireCode::kUnauthorized. Tenants absent from the map
  /// are unsecured (any token accepted). Tokens ride in the header's
  /// formerly-reserved space, so this is tamper-evident transport hygiene
  /// for trusted networks — not cryptographic authentication.
  std::map<std::string, uint16_t> tenant_tokens;
};

class RpcGateway {
 public:
  /// Binds, listens and starts the loop/dispatch/completion threads.
  /// `host` must outlive the gateway and be stopped AFTER it (the gateway
  /// resolves tenants and Awaits tickets against it until Stop()).
  static Result<std::unique_ptr<RpcGateway>> Start(ServiceHost* host,
                                                   GatewayOptions options);

  ~RpcGateway();  ///< implies Stop()
  RpcGateway(const RpcGateway&) = delete;
  RpcGateway& operator=(const RpcGateway&) = delete;

  /// The bound TCP port (useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Serving-plane health counters (all monotonic except none).
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t frames_received = 0;
    uint64_t frames_sent = 0;
    /// Connections killed for frame-level protocol violations.
    uint64_t protocol_errors = 0;
    /// Times a connection's read side was paused by write backpressure.
    uint64_t reads_paused = 0;
  };
  Counters counters() const;

  /// Closes the listener and every connection, drains the dispatch and
  /// completion threads, and joins the loop thread. Idempotent.
  Status Stop();

 private:
  struct Impl;
  RpcGateway();

  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
};

}  // namespace sfdf
