// The continuous serving subsystem: a resident incremental iteration that
// stays alive after its initial fixpoint and folds streamed graph mutations
// in as warm re-convergence rounds.
//
// Architecture (see README "Serving"):
//
//   clients ──Mutate()──▶ admission queue ──batch──▶ translator (SeedFn)
//                         (max_batch / max_linger)        │ W_0 seeds
//                                                         ▼
//   Query()/Snapshot() ◀──epoch-tagged reads──  resident ExecutionSession
//                                               (warm RunRound per batch)
//
// * Admission: Mutate() enqueues mutations from any number of client
//   threads; the service thread admits a batch once it reaches
//   `max_batch` mutations or the oldest pending mutation has lingered
//   `max_linger` — batching amortizes the per-round barrier cost the same
//   way the paper's supersteps amortize channel events.
// * Warm rounds: each admitted batch is translated into workset seeds and
//   re-converged by ExecutionSession::RunRound, reusing the resident
//   solution set, constant-path caches and task threads (§5–§7: cost
//   proportional to the change, not the dataset).
// * Reads: Query()/Snapshot() are linearizable against batch boundaries
//   via an epoch/seqlock scheme. The epoch is odd while a round is in
//   flight and even between rounds; readers hold the shared side of the
//   state lock (so they only ever overlap a stable, even epoch) and return
//   the epoch they observed, which tags every value with the exact batch
//   boundary it reflects.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/mutation.h"
#include "optimizer/physical_plan.h"
#include "runtime/executor.h"

namespace sfdf {

struct ServiceOptions {
  /// Admission queue: a batch is released once it holds this many
  /// mutations...
  int max_batch = 256;
  /// ...or once the oldest pending mutation has waited this long.
  std::chrono::milliseconds max_linger{2};
  /// Bounded admission: a Mutate/Apply call whose mutations would push the
  /// pending (enqueued, not yet admitted) queue beyond this many entries is
  /// rejected with ResourceExhausted instead of queueing unboundedly —
  /// clients should back off and retry (the network gateway maps this to a
  /// retryable wire code). 0 = unbounded, the historical behavior.
  int64_t max_pending_mutations = 0;
  /// Options for the resident executor session.
  ExecutionOptions exec;
};

struct ServiceStats {
  uint64_t rounds = 0;             ///< warm rounds run (= batches admitted)
  uint64_t mutations_applied = 0;  ///< mutations folded into the solution
  /// Enqueues refused — after Stop/failure, by admission validation, or by
  /// the max_pending_mutations bound.
  uint64_t mutations_rejected = 0;
  /// Mutations sitting in the admission queue right now (enqueued, not yet
  /// admitted into a round) — the backlog the max_pending_mutations bound
  /// applies to.
  uint64_t admission_queue_depth = 0;
  int64_t total_supersteps = 0;    ///< supersteps across all warm rounds
  double total_round_millis = 0;   ///< wall time inside warm rounds
  /// Warm-round latency distribution (translate + RunRound, ms), estimated
  /// from a log-scale histogram over every committed round.
  double round_p50_ms = 0;
  double round_p95_ms = 0;
  double round_p99_ms = 0;
  /// Engine scheduling health of this service's resident session (runtime
  /// v3): tasks its rounds enqueued on the shared pool and how long they
  /// sat queued. Rising waits mean the pool — not this service's dataflow —
  /// is the bottleneck (add workers or shed tenants).
  int engine_workers = 0;
  int64_t engine_tasks = 0;
  double engine_queue_wait_total_ms = 0;
  double engine_queue_wait_max_ms = 0;
  /// Parked-task accounting of the resident session's engine client: how
  /// often its cooperative tasks parked instead of busy re-polling and how
  /// many were re-enqueued by a peer's wake.
  int64_t engine_parks = 0;
  int64_t engine_wakes = 0;
  /// Live reconfigurations (repartition / engine move) committed on this
  /// service, and the wall time the last one spent between quiesce and the
  /// warm resume round's completion — the serving pause a resize costs.
  uint64_t reconfigs = 0;
  double reconfig_ms_last = 0;
  /// Barrier-free (async / bounded-stale) rounds only; all zero when the
  /// session runs supersteps. Local rounds are the per-round maximum over
  /// partitions, summed across warm rounds; revocations count producers
  /// yanking a peer's quiescence vote (termination-protocol churn); max
  /// staleness is the largest local-round lead any partition ever had.
  int64_t async_local_rounds = 0;
  int64_t async_vote_revocations = 0;
  int64_t async_max_staleness = 0;
};

/// A long-running serving instance of one incremental iteration. Construct
/// through Start; thread-safe for any mix of Mutate/Await/Query/Snapshot
/// callers. Algorithm-specific front-ends (ServingPageRank, the CC serving
/// tests) supply the plan and the mutation-to-workset translator.
class IterationService {
 public:
  /// Translates one admitted mutation batch into the warm round's initial
  /// workset. Runs on the service thread between rounds with exclusive
  /// access to the resident state: it may read the solution partitions and
  /// upsert records directly (delta re-seeding) through `session`. A
  /// translator error is treated as an internal fault and fails the service
  /// — reject untrusted input at the door with a ValidateFn instead.
  using SeedFn = std::function<Result<std::vector<Record>>(
      ExecutionSession& session, const std::vector<GraphMutation>& batch)>;

  /// Admission-time structural validation of one client mutation (id
  /// bounds, supported kinds). Runs inside Mutate/Apply on the caller's
  /// thread; a failure rejects that call's mutations without touching any
  /// resident state and without affecting other clients. Null = accept all.
  using ValidateFn = std::function<Status(const GraphMutation& mutation)>;

  /// Takes ownership of `plan`, runs its workset iteration to the initial
  /// fixpoint (blocking) and starts the admission thread.
  static Result<std::unique_ptr<IterationService>> Start(
      PhysicalPlan plan, SeedFn translate, ServiceOptions options,
      ValidateFn validate = nullptr);

  ~IterationService();  ///< implies Stop()
  IterationService(const IterationService&) = delete;
  IterationService& operator=(const IterationService&) = delete;

  /// Enqueues mutations for admission; returns a ticket to Await, or 0 if
  /// the call was rejected — the service stopped/failed, or a mutation
  /// failed admission validation (use Apply for the reason). Mutations are
  /// applied in admission order; one call's mutations may be split across
  /// batches but always complete by the returned ticket. An empty vector
  /// is a flush: it returns the newest existing ticket (0 when nothing was
  /// ever enqueued — Await(0) is trivially satisfied), never a rejection.
  uint64_t Mutate(std::vector<GraphMutation> mutations);

  /// Like Mutate, but on rejection (returned ticket 0) fills `*rejection`
  /// with the reason: InvalidArgument/Unsupported from admission
  /// validation, ResourceExhausted when the pending queue is over
  /// max_pending_mutations, InvalidArgument after Stop/failure. This is
  /// what lets the network gateway hand clients distinct retry-vs-reject
  /// error codes.
  uint64_t Mutate(std::vector<GraphMutation> mutations, Status* rejection);

  /// Blocks until every mutation up to `ticket` is folded into the served
  /// solution (its batch's round committed), or the service failed.
  Status Await(uint64_t ticket);

  /// Mutate + Await.
  Status Apply(std::vector<GraphMutation> mutations);

  struct QueryResult {
    bool found = false;
    Record record;
    uint64_t epoch = 0;  ///< batch boundary this read reflects (even)
  };

  /// Batch-consistent point read. The probe must carry its key fields at
  /// the solution-key positions (QueryKey covers the common single-int-key
  /// schema).
  QueryResult Query(const Record& probe) const;
  QueryResult QueryKey(int64_t key) const;

  /// Batch-consistent full snapshot of the served solution set.
  struct SnapshotResult {
    std::vector<Record> records;
    uint64_t epoch = 0;
  };
  SnapshotResult Snapshot() const;

  /// One bounded page of the served solution set, for snapshot streaming.
  struct SnapshotPageResult {
    std::vector<Record> records;
    uint64_t epoch = 0;        ///< batch boundary this page reflects
    uint64_t next_cursor = 0;  ///< pass to the next call; 0 = exhausted
  };

  /// Cursor-paged snapshot: returns up to `max_records` records starting at
  /// `cursor` (0 = first page; pass the previous page's next_cursor to
  /// continue; max_records <= 0 selects a default page size). Pages taken
  /// at the same epoch concatenate to exactly Snapshot(); when the epoch
  /// changes between pages (a batch committed, or a reconfiguration
  /// remapped the partitions), the caller must restart from cursor 0 — the
  /// cursor encodes a partition/offset position that is only meaningful
  /// within one committed state.
  SnapshotPageResult SnapshotPage(uint64_t cursor,
                                  int64_t max_records = 0) const;

  /// Current batch epoch; even = stable, odd = a round is in flight.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Current partition count of the resident session. Dynamic: changes
  /// when a Reconfigure commits.
  int parallelism() const;

  /// Live reconfiguration: repartitions the resident session to
  /// `new_partitions` (0 = keep the current width) and/or moves it to
  /// `new_engine` (null = keep). Blocking; executes on the admission
  /// thread at a committed batch boundary, BEFORE any mutation batch that
  /// is still pending — already-enqueued mutations replay after the remap
  /// with their tickets preserved, and reads keep answering from the old
  /// (epoch-stable) shards until the swap commits. A structural rejection
  /// (InvalidArgument/Unsupported) leaves the service untouched; a
  /// mid-rebuild failure fails the service like a failed round.
  Status Reconfigure(int new_partitions, Engine* new_engine = nullptr);

  ServiceStats stats() const;

  /// Snapshot of the per-committed-round latency histogram, for registry
  /// exposition (obs/registry.h renders its quantiles). Taken under the
  /// shared state lock, like the stats() percentiles derived from it.
  LatencyHistogram round_latency_histogram() const {
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    return round_latency_;
  }

  /// Report of the initial cold convergence.
  const IterationReport& initial_report() const {
    return session_->initial_report();
  }

  /// Aggregate statistics of the whole resident execution — including the
  /// exchange-health counters (queue-depth high-water mark, batch-pool
  /// hits/misses) folded in when the session was assembled. Empty until
  /// Stop() has shut the session down cleanly.
  std::optional<ExecutionResult> final_result() const;

  /// Stops admission, drains every already-enqueued mutation, shuts the
  /// resident session down and joins all threads. Returns the first round
  /// failure, if any. Idempotent.
  Status Stop();

 private:
  IterationService(SeedFn translate, ValidateFn validate,
                   ServiceOptions options);

  Status Validate(const std::vector<GraphMutation>& mutations) const;
  /// Single validation + enqueue step shared by Mutate and Apply; on
  /// rejection returns 0 and fills `*rejection` with the reason.
  uint64_t MutateInternal(std::vector<GraphMutation> mutations,
                          Status* rejection);
  void AdmissionLoop();
  Status ProcessBatch(const std::vector<GraphMutation>& batch);
  /// Runs one reconfiguration on the admission thread (the only thread
  /// allowed to touch the session) under the writer lock.
  Status DoReconfigure(int new_partitions, Engine* new_engine);
  /// Engine/scheduling snapshot into stats_; caller holds state_mutex_
  /// exclusively and runs on the admission thread.
  void SnapshotEngineStats();

  const SeedFn translate_;
  const ValidateFn validate_;
  const ServiceOptions options_;

  // Destruction order (reverse of declaration): the admission thread is
  // joined by Stop() before session_ and plan_ die; the session must die
  // before the plan it references.
  std::unique_ptr<PhysicalPlan> plan_;
  std::unique_ptr<ExecutionSession> session_;

  /// Guards the resident solution state: the service thread holds the
  /// unique side across translate+round, readers hold the shared side.
  mutable std::shared_mutex state_mutex_;
  std::atomic<uint64_t> epoch_{0};
  ServiceStats stats_;  // guarded by state_mutex_
  /// Per-committed-round latency histogram feeding the stats percentiles;
  /// guarded by state_mutex_ like the counters it accompanies.
  LatencyHistogram round_latency_;

  /// One waiting Reconfigure call. Queued under queue_mutex_; the
  /// admission thread executes waiters ahead of pending mutation batches
  /// (so the admission queue is effectively held across the remap) and
  /// reports back through `done`/`result`.
  struct ReconfigRequest {
    int new_partitions = 0;
    Engine* new_engine = nullptr;
    bool done = false;
    Status result;
  };

  /// Admission queue + ticket/ack state, guarded by queue_mutex_.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<GraphMutation> pending_;
  std::deque<ReconfigRequest*> reconfigs_;
  std::chrono::steady_clock::time_point oldest_arrival_{};
  uint64_t enqueued_seq_ = 0;  ///< ticket of the newest enqueued mutation
  uint64_t admitted_seq_ = 0;  ///< ticket of the newest admitted mutation
  uint64_t applied_seq_ = 0;   ///< ticket of the newest committed mutation
  uint64_t rejected_ = 0;      ///< mutations refused after Stop/failure
  Status failed_ = Status::OK();
  bool stopping_ = false;
  bool joined_ = false;
  /// Filled by Stop() from ExecutionSession::Finish.
  std::optional<ExecutionResult> final_result_;

  std::thread admission_thread_;
};

}  // namespace sfdf
