#include "service/gateway.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "net/event_loop.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace sfdf {

using net::Frame;
using net::FrameDecoder;
using net::Opcode;
using net::PayloadReader;
using net::StatField;
using net::WireCode;
using net::WireCodeOf;

struct RpcGateway::Impl {
  ServiceHost* host = nullptr;
  GatewayOptions options;

  net::EventLoop loop;
  std::thread loop_thread;
  int listen_fd = -1;

  /// One client connection; owned and touched by the loop thread only.
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    /// Bounded response buffer: encoded frames waiting for the socket.
    std::deque<std::vector<uint8_t>> write_queue;
    size_t write_queue_bytes = 0;
    size_t write_offset = 0;  ///< bytes of the front buffer already sent
    bool paused = false;      ///< read interest dropped by backpressure
    Connection(uint64_t id, int fd, uint32_t max_payload)
        : id(id), fd(fd), decoder(max_payload) {}
  };
  std::map<uint64_t, std::unique_ptr<Connection>> connections;
  uint64_t next_connection_id = 1;

  // Dispatch pool: controller threads executing requests (may block).
  std::mutex dispatch_mutex;
  std::condition_variable dispatch_cv;
  std::deque<std::function<void()>> dispatch_queue;
  bool dispatch_stopping = false;
  std::vector<std::thread> dispatch_threads;

  // Per-tenant completion threads resolving mutation tickets.
  struct PendingTicket {
    IterationService* service = nullptr;
    uint64_t ticket = 0;
    uint64_t connection = 0;
    uint64_t request_id = 0;
  };
  struct Awaiter {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<PendingTicket> queue;
    bool stopping = false;
    std::thread thread;
  };
  std::mutex awaiters_mutex;
  std::map<std::string, std::unique_ptr<Awaiter>> awaiters;

  std::mutex stop_mutex;
  bool stopped = false;

  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> reads_paused{0};
  /// High-water mark over every connection's queued response bytes — how
  /// close the gateway ever came to the write_queue_limit_bytes pause.
  std::atomic<int64_t> write_queue_high_water{0};
  /// MetricsRegistry registrations (label listen=<addr:port>). Declared
  /// after the atomics they read: reverse destruction order tears the
  /// registrations down first, and a Registration's destructor blocks until
  /// any in-flight RenderText finishes.
  std::vector<MetricsRegistry::Registration> registrations;

  void RegisterMetrics(const std::string& listen) {
    MetricsRegistry& reg = MetricsRegistry::Default();
    const MetricLabels labels = {{"listen", listen}};
    auto counter = [&](const char* name, std::atomic<uint64_t>* v) {
      registrations.push_back(reg.RegisterCounter(name, labels, [v] {
        return static_cast<double>(v->load(std::memory_order_relaxed));
      }));
    };
    counter("sfdf_gateway_connections_accepted", &connections_accepted);
    counter("sfdf_gateway_connections_closed", &connections_closed);
    counter("sfdf_gateway_frames_received", &frames_received);
    counter("sfdf_gateway_frames_sent", &frames_sent);
    counter("sfdf_gateway_protocol_errors", &protocol_errors);
    counter("sfdf_gateway_reads_paused", &reads_paused);
    registrations.push_back(reg.RegisterGauge(
        "sfdf_gateway_write_queue_high_water_bytes", labels, [this] {
          return static_cast<double>(
              write_queue_high_water.load(std::memory_order_relaxed));
        }));
  }

  // --- loop thread -------------------------------------------------------

  void OnAccept() {
    for (;;) {
      int fd = ::accept4(listen_fd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or a transient error; the listener stays armed
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const uint64_t id = next_connection_id++;
      connections[id] = std::make_unique<Connection>(
          id, fd, options.max_payload_bytes);
      loop.Add(
          fd, [this, id] { OnReadable(id); }, [this, id] { FlushWrites(id); });
      connections_accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void OnReadable(uint64_t id) {
    auto it = connections.find(id);
    if (it == connections.end()) return;
    Connection* conn = it->second.get();
    // One buffer per readiness event: level-triggered epoll re-fires if
    // more is pending, which keeps one firehose client from starving the
    // others.
    uint8_t buf[65536];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->decoder.Feed(buf, static_cast<size_t>(n));
        break;
      }
      if (n == 0) {  // clean EOF
        CloseConnection(id);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(id);
      return;
    }
    for (;;) {
      bool got = false;
      Frame frame;
      Status status = conn->decoder.Next(&got, &frame);
      if (!status.ok()) {
        // Protocol violation: a length-prefixed stream cannot resync, so
        // this connection dies — and only this connection.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(id);
        return;
      }
      if (!got) break;
      frames_received.fetch_add(1, std::memory_order_relaxed);
      static const uint16_t kFrameIn = trace::RegisterName("gateway.frame.in");
      trace::Instant(kFrameIn, static_cast<int64_t>(frame.opcode));
      Dispatch(id, std::move(frame));
    }
  }

  void SendFrame(Connection* conn, const Frame& reply) {
    std::vector<uint8_t> bytes;
    net::EncodeFrame(reply, &bytes);
    frames_sent.fetch_add(1, std::memory_order_relaxed);
    static const uint16_t kReply = trace::RegisterName("gateway.reply");
    trace::Instant(kReply, static_cast<int64_t>(bytes.size()));
    conn->write_queue_bytes += bytes.size();
    conn->write_queue.push_back(std::move(bytes));
    FoldMax(write_queue_high_water,
            static_cast<int64_t>(conn->write_queue_bytes));
    FlushWrites(conn->id);
  }

  void FlushWrites(uint64_t id) {
    auto it = connections.find(id);
    if (it == connections.end()) return;
    Connection* conn = it->second.get();
    while (!conn->write_queue.empty()) {
      const std::vector<uint8_t>& front = conn->write_queue.front();
      const ssize_t n =
          ::send(conn->fd, front.data() + conn->write_offset,
                 front.size() - conn->write_offset, MSG_NOSIGNAL);
      if (n >= 0) {
        conn->write_offset += static_cast<size_t>(n);
        conn->write_queue_bytes -= static_cast<size_t>(n);
        if (conn->write_offset == front.size()) {
          conn->write_queue.pop_front();
          conn->write_offset = 0;
        }
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(id);
      return;
    }
    loop.SetWriteInterest(conn->fd, !conn->write_queue.empty());
    // Write backpressure: a consumer slower than its response stream stops
    // being READ once its queue passes the bound — the kernel's TCP window
    // then pushes back to the client — and resumes below half (hysteresis
    // so the interest bit does not thrash at the boundary).
    if (!conn->paused &&
        conn->write_queue_bytes > options.write_queue_limit_bytes) {
      conn->paused = true;
      reads_paused.fetch_add(1, std::memory_order_relaxed);
      loop.SetReadInterest(conn->fd, false);
    } else if (conn->paused &&
               conn->write_queue_bytes <=
                   options.write_queue_limit_bytes / 2) {
      conn->paused = false;
      loop.SetReadInterest(conn->fd, true);
    }
  }

  void CloseConnection(uint64_t id) {
    auto it = connections.find(id);
    if (it == connections.end()) return;
    loop.Remove(it->second->fd);
    ::close(it->second->fd);
    connections.erase(it);
    connections_closed.fetch_add(1, std::memory_order_relaxed);
  }

  // --- dispatch pool -----------------------------------------------------

  void Dispatch(uint64_t conn_id, Frame frame) {
    {
      std::lock_guard<std::mutex> lock(dispatch_mutex);
      if (dispatch_stopping) return;
      dispatch_queue.push_back(
          [this, conn_id, frame = std::move(frame)]() mutable {
            Handle(conn_id, std::move(frame));
          });
    }
    dispatch_cv.notify_one();
  }

  void DispatchLoop() {
    std::unique_lock<std::mutex> lock(dispatch_mutex);
    for (;;) {
      dispatch_cv.wait(lock, [this] {
        return dispatch_stopping || !dispatch_queue.empty();
      });
      if (dispatch_queue.empty()) return;  // stopping, fully drained
      std::function<void()> task = std::move(dispatch_queue.front());
      dispatch_queue.pop_front();
      lock.unlock();
      task();
      lock.lock();
    }
  }

  void PostReply(uint64_t conn_id, Frame reply) {
    loop.Post([this, conn_id, reply = std::move(reply)]() mutable {
      auto it = connections.find(conn_id);
      if (it == connections.end()) return;  // closed while in flight
      SendFrame(it->second.get(), reply);
    });
  }

  static void Fail(Frame* reply, WireCode code, const std::string& message) {
    reply->status = code;
    reply->payload.clear();
    net::PutString(message, &reply->payload);
  }

  /// Auth gate: a tenant with a configured token only answers requests
  /// whose header token (the request's status slot, net/frame.h) matches.
  /// Checked BEFORE tenant resolution so an unauthenticated caller cannot
  /// probe which tenants exist. kPing carries no tenant and stays open.
  bool Authorize(const std::string& tenant, const Frame& request,
                 Frame* reply) {
    const auto it = options.tenant_tokens.find(tenant);
    if (it == options.tenant_tokens.end()) return true;  // unsecured tenant
    if (static_cast<uint16_t>(request.status) == it->second) return true;
    Fail(reply, WireCode::kUnauthorized,
         "bad or missing auth token for tenant '" + tenant + "'");
    return false;
  }

  IterationService* Resolve(const std::string& tenant, const Frame& request,
                            Frame* reply) {
    if (!Authorize(tenant, request, reply)) return nullptr;
    IterationService* service = host->service(tenant);
    if (service == nullptr) {
      Fail(reply, WireCode::kUnknownTenant, "no tenant '" + tenant + "'");
    }
    return service;
  }

  void Handle(uint64_t conn_id, Frame request) {
    Frame reply;
    reply.opcode = request.opcode;
    reply.request_id = request.request_id;
    {
      // Spans the dispatch-side handling (parse + service call + encode),
      // closed BEFORE the reply is posted so that by the time a client
      // sees the answer the span is already in the ring — a follow-up
      // kTelemetry dump reliably carries it. A deferred MutateBatch reply
      // is traced separately by its awaiter's gateway.reply instant.
      static const uint16_t kRequest = trace::RegisterName("gateway.request");
      trace::Span span(kRequest, static_cast<int64_t>(request.opcode));
      switch (request.opcode) {
        case Opcode::kPing:
          reply.payload = std::move(request.payload);  // echo
          break;
        case Opcode::kQuery:
          HandleQuery(request, &reply);
          break;
        case Opcode::kSnapshot:
          HandleSnapshot(request, &reply);
          break;
        case Opcode::kStats:
          HandleStats(request, &reply);
          break;
        case Opcode::kSnapshotPage:
          HandleSnapshotPage(request, &reply);
          break;
        case Opcode::kTelemetry:
          HandleTelemetry(request, &reply);
          break;
        case Opcode::kReconfigure:
          HandleReconfigure(request, &reply);
          break;
        case Opcode::kMutateBatch:
          if (HandleMutate(conn_id, request, &reply)) return;  // deferred
          break;
        default:
          Fail(&reply, WireCode::kBadRequest, "unknown opcode");
      }
    }
    PostReply(conn_id, std::move(reply));
  }

  void HandleQuery(const Frame& request, Frame* reply) {
    PayloadReader reader(request.payload);
    const std::string tenant = reader.String();
    const Record probe = reader.ReadRecord();
    if (!reader.AtEnd()) {
      Fail(reply, WireCode::kBadRequest, "malformed Query payload");
      return;
    }
    IterationService* service = Resolve(tenant, request, reply);
    if (service == nullptr) return;
    const IterationService::QueryResult result = service->Query(probe);
    net::PutU64(result.epoch, &reply->payload);
    net::PutU8(result.found ? 1 : 0, &reply->payload);
    if (result.found) net::PutRecord(result.record, &reply->payload);
  }

  void HandleSnapshot(const Frame& request, Frame* reply) {
    PayloadReader reader(request.payload);
    const std::string tenant = reader.String();
    if (!reader.AtEnd()) {
      Fail(reply, WireCode::kBadRequest, "malformed Snapshot payload");
      return;
    }
    IterationService* service = Resolve(tenant, request, reply);
    if (service == nullptr) return;
    const IterationService::SnapshotResult snapshot = service->Snapshot();
    net::PutU64(snapshot.epoch, &reply->payload);
    net::PutU32(static_cast<uint32_t>(snapshot.records.size()),
                &reply->payload);
    for (const Record& rec : snapshot.records) {
      net::PutRecord(rec, &reply->payload);
    }
    if (reply->payload.size() > net::kMaxPayloadBytes) {
      Fail(reply, WireCode::kInternal,
           "snapshot exceeds the frame payload limit; stream it in bounded "
           "frames via SnapshotPage");
    }
  }

  void HandleSnapshotPage(const Frame& request, Frame* reply) {
    PayloadReader reader(request.payload);
    const std::string tenant = reader.String();
    const uint64_t cursor = reader.U64();
    const uint32_t max_records = reader.U32();
    if (!reader.AtEnd()) {
      Fail(reply, WireCode::kBadRequest, "malformed SnapshotPage payload");
      return;
    }
    IterationService* service = Resolve(tenant, request, reply);
    if (service == nullptr) return;
    const IterationService::SnapshotPageResult page =
        service->SnapshotPage(cursor, static_cast<int64_t>(max_records));
    net::PutU64(page.epoch, &reply->payload);
    net::PutU64(page.next_cursor, &reply->payload);
    net::PutU32(static_cast<uint32_t>(page.records.size()), &reply->payload);
    for (const Record& rec : page.records) {
      net::PutRecord(rec, &reply->payload);
    }
    if (reply->payload.size() > net::kMaxPayloadBytes) {
      // Only reachable with an explicit oversize max_records; the default
      // page size keeps well under the frame cap for serving-size records.
      Fail(reply, WireCode::kReject,
           "page exceeds the frame payload limit; lower max records");
    }
  }

  void HandleReconfigure(const Frame& request, Frame* reply) {
    PayloadReader reader(request.payload);
    const std::string tenant = reader.String();
    const uint32_t partitions = reader.U32();
    const std::string pool = reader.String();
    if (!reader.AtEnd()) {
      Fail(reply, WireCode::kBadRequest, "malformed Reconfigure payload");
      return;
    }
    IterationService* service = Resolve(tenant, request, reply);
    if (service == nullptr) return;
    // Admin path: the host owns the engine pools, so the remap goes through
    // it. Blocking this dispatch thread through the quiesce/remap/resume
    // cycle is fine — dispatch threads are controller threads that may
    // block, and the loop thread keeps serving other connections.
    const Status status =
        host->ReconfigureService(tenant, static_cast<int>(partitions), pool);
    if (!status.ok()) {
      Fail(reply, WireCodeOf(status), status.ToString());
      return;
    }
    net::PutU32(static_cast<uint32_t>(service->parallelism()),
                &reply->payload);
  }

  void HandleStats(const Frame& request, Frame* reply) {
    PayloadReader reader(request.payload);
    const std::string tenant = reader.String();
    if (!reader.AtEnd()) {
      Fail(reply, WireCode::kBadRequest, "malformed Stats payload");
      return;
    }
    IterationService* service = Resolve(tenant, request, reply);
    if (service == nullptr) return;
    const ServiceStats stats = service->stats();
    const std::pair<StatField, double> fields[] = {
        {StatField::kRounds, static_cast<double>(stats.rounds)},
        {StatField::kMutationsApplied,
         static_cast<double>(stats.mutations_applied)},
        {StatField::kMutationsRejected,
         static_cast<double>(stats.mutations_rejected)},
        {StatField::kAdmissionQueueDepth,
         static_cast<double>(stats.admission_queue_depth)},
        {StatField::kTotalSupersteps,
         static_cast<double>(stats.total_supersteps)},
        {StatField::kRoundP50Ms, stats.round_p50_ms},
        {StatField::kRoundP95Ms, stats.round_p95_ms},
        {StatField::kRoundP99Ms, stats.round_p99_ms},
        {StatField::kEpoch, static_cast<double>(service->epoch())},
        {StatField::kEngineWorkers,
         static_cast<double>(stats.engine_workers)},
        {StatField::kEngineTasks, static_cast<double>(stats.engine_tasks)},
        {StatField::kEngineQueueWaitTotalMs,
         stats.engine_queue_wait_total_ms},
        {StatField::kEngineParks, static_cast<double>(stats.engine_parks)},
        {StatField::kEngineWakes, static_cast<double>(stats.engine_wakes)},
        {StatField::kReconfigs, static_cast<double>(stats.reconfigs)},
        {StatField::kReconfigMsLast, stats.reconfig_ms_last},
        {StatField::kAsyncLocalRounds,
         static_cast<double>(stats.async_local_rounds)},
        {StatField::kAsyncVoteRevocations,
         static_cast<double>(stats.async_vote_revocations)},
        {StatField::kAsyncMaxStaleness,
         static_cast<double>(stats.async_max_staleness)},
    };
    net::PutU32(static_cast<uint32_t>(std::size(fields)), &reply->payload);
    for (const auto& [field, value] : fields) {
      net::PutU16(static_cast<uint16_t>(field), &reply->payload);
      net::PutF64(value, &reply->payload);
    }
  }

  /// Telemetry is tenant-less (like Ping): the exposition text carries
  /// per-tenant labels, and the trace buffers are process-wide. Request:
  /// u8 include_trace + u32 max events per thread (0 = default). Reply:
  /// u32-length metrics exposition + u8 has_trace + (if set) u32-length
  /// Chrome-trace JSON. The trace dump self-limits: the export is retried
  /// at halved per-thread caps until the frame fits, and dropped entirely
  /// (has_trace=0) rather than failing the request when even the smallest
  /// window will not fit next to the metrics.
  void HandleTelemetry(const Frame& request, Frame* reply) {
    PayloadReader reader(request.payload);
    const bool include_trace = reader.U8() != 0;
    const uint32_t max_events = reader.U32();
    if (!reader.AtEnd()) {
      Fail(reply, WireCode::kBadRequest, "malformed Telemetry payload");
      return;
    }
    const std::string metrics = MetricsRegistry::Default().RenderText();
    std::string trace_json;
    bool has_trace = false;
    if (include_trace) {
      // Even a disabled recorder may still hold events from an earlier
      // enabled window — export whatever the rings retain.
      size_t cap = max_events == 0 ? 4096 : max_events;
      const size_t overhead = metrics.size() + 16;  // lengths + flag byte
      const size_t budget =
          overhead < net::kMaxPayloadBytes ? net::kMaxPayloadBytes - overhead
                                           : 0;
      trace_json = trace::ExportChromeTraceJson(cap);
      while (trace_json.size() > budget && cap > 64) {
        cap /= 2;
        trace_json = trace::ExportChromeTraceJson(cap);
      }
      has_trace = trace_json.size() <= budget;
      if (!has_trace) trace_json.clear();
    }
    net::PutBytes(metrics, &reply->payload);
    net::PutU8(has_trace ? 1 : 0, &reply->payload);
    if (has_trace) net::PutBytes(trace_json, &reply->payload);
    if (reply->payload.size() > net::kMaxPayloadBytes) {
      Fail(reply, WireCode::kInternal,
           "telemetry exposition exceeds the frame payload limit");
    }
  }

  /// Returns true when the response is deferred to the tenant's completion
  /// thread (ticket accepted), false when `reply` is ready now.
  bool HandleMutate(uint64_t conn_id, const Frame& request, Frame* reply) {
    PayloadReader reader(request.payload);
    const std::string tenant = reader.String();
    const uint32_t count = reader.U32();
    std::vector<GraphMutation> mutations;
    // A lying count cannot commit us to an allocation: each mutation is 25
    // payload bytes, so cap the reserve by what the payload could hold.
    mutations.reserve(
        std::min<size_t>(count, request.payload.size() / 25 + 1));
    for (uint32_t i = 0; reader.ok() && i < count; ++i) {
      mutations.push_back(reader.ReadMutation());
    }
    if (!reader.AtEnd() || mutations.empty()) {
      Fail(reply, WireCode::kBadRequest, "malformed MutateBatch payload");
      return false;
    }
    IterationService* service = Resolve(tenant, request, reply);
    if (service == nullptr) return false;
    Status rejection;
    const uint64_t ticket = service->Mutate(std::move(mutations), &rejection);
    if (ticket == 0) {
      // Distinct wire codes: kRetry for queue overload (back off and
      // resend), kReject for validation failures (fix the request).
      Fail(reply, WireCodeOf(rejection), rejection.ToString());
      return false;
    }
    EnqueueAwait(tenant, service, ticket, conn_id, request.request_id);
    return true;
  }

  // --- completion threads ------------------------------------------------

  void EnqueueAwait(const std::string& tenant, IterationService* service,
                    uint64_t ticket, uint64_t conn_id, uint64_t request_id) {
    Awaiter* awaiter;
    {
      std::lock_guard<std::mutex> lock(awaiters_mutex);
      auto it = awaiters.find(tenant);
      if (it == awaiters.end()) {
        auto fresh = std::make_unique<Awaiter>();
        fresh->thread = std::thread(&Impl::AwaiterLoop, this, fresh.get());
        it = awaiters.emplace(tenant, std::move(fresh)).first;
      }
      awaiter = it->second.get();
    }
    {
      std::lock_guard<std::mutex> lock(awaiter->mutex);
      awaiter->queue.push_back(
          PendingTicket{service, ticket, conn_id, request_id});
    }
    awaiter->cv.notify_one();
  }

  void AwaiterLoop(Awaiter* awaiter) {
    std::unique_lock<std::mutex> lock(awaiter->mutex);
    for (;;) {
      awaiter->cv.wait(lock, [awaiter] {
        return awaiter->stopping || !awaiter->queue.empty();
      });
      if (awaiter->queue.empty()) return;  // stopping, fully drained
      const PendingTicket pending = awaiter->queue.front();
      awaiter->queue.pop_front();
      lock.unlock();
      // Tickets are admitted in enqueue order, so awaiting in FIFO order
      // means most Awaits return immediately after the first of a batch.
      const Status status = pending.service->Await(pending.ticket);
      Frame reply;
      reply.opcode = Opcode::kMutateBatch;
      reply.request_id = pending.request_id;
      if (status.ok()) {
        // Just the ticket: a "current epoch" here would race later batches
        // (another client's round may already be in flight). Epoch-tagged
        // reads come from Query/Snapshot, which take them consistently.
        net::PutU64(pending.ticket, &reply.payload);
      } else {
        reply.status = WireCodeOf(status);
        net::PutString(status.ToString(), &reply.payload);
      }
      PostReply(pending.connection, std::move(reply));
      lock.lock();
    }
  }
};

RpcGateway::RpcGateway() : impl_(std::make_unique<Impl>()) {}

RpcGateway::~RpcGateway() {
  Status ignored = Stop();
  (void)ignored;
}

Result<std::unique_ptr<RpcGateway>> RpcGateway::Start(ServiceHost* host,
                                                      GatewayOptions options) {
  if (host == nullptr) {
    return Status::InvalidArgument("RpcGateway requires a ServiceHost");
  }
  if (options.dispatch_threads < 1) {
    return Status::InvalidArgument(
        "GatewayOptions.dispatch_threads must be >= 1");
  }
  if (options.max_payload_bytes > net::kMaxPayloadBytes) {
    options.max_payload_bytes = net::kMaxPayloadBytes;
  }

  auto gateway = std::unique_ptr<RpcGateway>(new RpcGateway);
  Impl* impl = gateway->impl_.get();
  impl->host = host;
  impl->options = options;

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("bind failed: ") +
                           std::strerror(err));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("listen failed: ") +
                           std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  gateway->port_ = ntohs(bound.sin_port);
  impl->listen_fd = fd;
  impl->RegisterMetrics(options.bind_address + ":" +
                        std::to_string(gateway->port_));

  // Registering before the loop thread exists satisfies Add's loop-thread
  // contract trivially (no concurrent loop yet).
  impl->loop.Add(fd, [impl] { impl->OnAccept(); }, nullptr);
  impl->loop_thread = std::thread([impl] { impl->loop.Run(); });
  for (int i = 0; i < options.dispatch_threads; ++i) {
    impl->dispatch_threads.emplace_back([impl] { impl->DispatchLoop(); });
  }
  return gateway;
}

RpcGateway::Counters RpcGateway::counters() const {
  Counters counters;
  counters.connections_accepted =
      impl_->connections_accepted.load(std::memory_order_relaxed);
  counters.connections_closed =
      impl_->connections_closed.load(std::memory_order_relaxed);
  counters.frames_received =
      impl_->frames_received.load(std::memory_order_relaxed);
  counters.frames_sent = impl_->frames_sent.load(std::memory_order_relaxed);
  counters.protocol_errors =
      impl_->protocol_errors.load(std::memory_order_relaxed);
  counters.reads_paused = impl_->reads_paused.load(std::memory_order_relaxed);
  return counters;
}

Status RpcGateway::Stop() {
  Impl* impl = impl_.get();
  {
    std::lock_guard<std::mutex> lock(impl->stop_mutex);
    if (impl->stopped) return Status::OK();
    impl->stopped = true;
  }
  // Unregister the gateway's metrics first so a concurrent RenderText (via
  // a peer gateway's kTelemetry) never reads frozen counters as live.
  impl->registrations.clear();
  // A gateway that never finished Start() (socket/bind/listen failed before
  // the loop thread spawned) has nothing to drain — and posting to a loop
  // nobody runs would wait forever.
  if (!impl->loop_thread.joinable()) return Status::OK();
  // 1. Freeze the I/O plane on its own thread: close the listener and
  //    every connection (late replies then drop harmlessly).
  std::promise<void> io_closed;
  impl->loop.Post([impl, &io_closed] {
    impl->loop.Remove(impl->listen_fd);
    ::close(impl->listen_fd);
    while (!impl->connections.empty()) {
      impl->CloseConnection(impl->connections.begin()->first);
    }
    io_closed.set_value();
  });
  io_closed.get_future().wait();
  // 2. Drain the dispatch pool (tasks may still enqueue awaits).
  {
    std::lock_guard<std::mutex> lock(impl->dispatch_mutex);
    impl->dispatch_stopping = true;
  }
  impl->dispatch_cv.notify_all();
  for (std::thread& thread : impl->dispatch_threads) thread.join();
  impl->dispatch_threads.clear();
  // 3. Drain the completion threads — every accepted ticket is still
  //    awaited so its service-side effects are settled before we return.
  {
    std::lock_guard<std::mutex> lock(impl->awaiters_mutex);
    for (auto& [tenant, awaiter] : impl->awaiters) {
      {
        std::lock_guard<std::mutex> alock(awaiter->mutex);
        awaiter->stopping = true;
      }
      awaiter->cv.notify_all();
    }
    for (auto& [tenant, awaiter] : impl->awaiters) {
      awaiter->thread.join();
    }
    impl->awaiters.clear();
  }
  // 4. Stop the loop itself.
  impl->loop.Stop();
  impl->loop_thread.join();
  return Status::OK();
}

}  // namespace sfdf
