// Connected components as a hosted serving workload: the streamed-CC
// dataflow (min-label propagation over a mutable adjacency, §7.1's CPO
// iteration served continuously) packaged as a ServiceHost tenant.
//
// This is the canonical multi-tenant serving fixture: the gateway tests,
// the network example and the QPS bench all host N of these on one
// ServiceHost and drive them concurrently. Edge inserts are folded in as
// warm incremental rounds; edge removes are rejected AT ADMISSION with
// Unsupported (min-label CC is not invertible — see
// AppendCcMutationSeeds), so a remove rejects only the offending call
// instead of faulting the service. Vertex ids are capped at admission the
// same way ServingPageRank caps them.
//
// Lifetime: the host owns the IterationService; this object owns the state
// the resident plan references (the adjacency and the final-flush sink), so
// it must stay alive until the host's StopAll() — destroy tenants only
// after the host stopped (or the host itself) has torn the services down.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/dynamic_graph.h"
#include "service/service_host.h"

namespace sfdf {

class ServingCc {
 public:
  struct Options {
    /// Initial vertices (each starts as its own singleton component).
    int64_t num_vertices = 0;
    /// Mutations naming a vertex id >= this are rejected at admission;
    /// 0 = 16 × num_vertices + 1024 (same rationale as ServingPageRank:
    /// an untrusted id must not force an arbitrary allocation).
    int64_t max_vertices = 0;
    /// Admission/batching knobs, forwarded to the IterationService.
    ServiceOptions service;
  };

  /// Starts a CC tenant named `name` on `host` (blocking cold
  /// convergence — trivial here, every vertex is its own component).
  static Result<std::unique_ptr<ServingCc>> StartOn(ServiceHost* host,
                                                    std::string name,
                                                    Options options);

  /// The hosted service (owned by the host): Mutate/Apply/Query/Snapshot/
  /// Await/stats. Edge inserts are treated as undirected (both arcs).
  IterationService& service() { return *service_; }
  const IterationService& service() const { return *service_; }

  /// Convenience: component label per vertex from an epoch-consistent
  /// snapshot.
  std::map<int64_t, int64_t> Labels() const;

 private:
  ServingCc() = default;

  Result<std::vector<Record>> Translate(
      ExecutionSession& session, const std::vector<GraphMutation>& batch);
  Status ValidateMutation(const GraphMutation& mutation) const;

  int64_t max_vertices_ = 0;
  std::shared_ptr<DynamicGraph> graph_;
  std::unique_ptr<std::vector<Record>> output_;
  IterationService* service_ = nullptr;  ///< owned by the host
};

}  // namespace sfdf
