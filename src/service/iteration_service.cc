#include "service/iteration_service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/solution_set.h"

namespace sfdf {

IterationService::IterationService(SeedFn translate, ValidateFn validate,
                                   ServiceOptions options)
    : translate_(std::move(translate)),
      validate_(std::move(validate)),
      options_(std::move(options)) {}

Result<std::unique_ptr<IterationService>> IterationService::Start(
    PhysicalPlan plan, SeedFn translate, ServiceOptions options,
    ValidateFn validate) {
  if (options.max_batch < 1) {
    return Status::InvalidArgument("ServiceOptions.max_batch must be >= 1");
  }
  if (options.max_linger.count() < 0) {
    return Status::InvalidArgument("ServiceOptions.max_linger must be >= 0");
  }
  if (options.max_pending_mutations < 0) {
    return Status::InvalidArgument(
        "ServiceOptions.max_pending_mutations must be >= 0");
  }
  if (!translate) {
    return Status::InvalidArgument("IterationService requires a translator");
  }

  std::unique_ptr<IterationService> service(new IterationService(
      std::move(translate), std::move(validate), options));
  service->plan_ = std::make_unique<PhysicalPlan>(std::move(plan));

  // One-shot setup + cold convergence; the session then stays resident.
  Executor executor(options.exec);
  auto session = executor.StartSession(*service->plan_);
  if (!session.ok()) return session.status();
  service->session_ = std::move(*session);

  service->admission_thread_ =
      std::thread(&IterationService::AdmissionLoop, service.get());
  return service;
}

IterationService::~IterationService() {
  Status ignored = Stop();
  (void)ignored;
}

Status IterationService::Validate(
    const std::vector<GraphMutation>& mutations) const {
  if (!validate_) return Status::OK();
  for (const GraphMutation& mutation : mutations) {
    Status status = validate_(mutation);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

uint64_t IterationService::Mutate(std::vector<GraphMutation> mutations) {
  Status ignored;
  return MutateInternal(std::move(mutations), &ignored);
}

uint64_t IterationService::Mutate(std::vector<GraphMutation> mutations,
                                  Status* rejection) {
  *rejection = Status::OK();
  return MutateInternal(std::move(mutations), rejection);
}

uint64_t IterationService::MutateInternal(std::vector<GraphMutation> mutations,
                                          Status* rejection) {
  if (mutations.empty()) {
    // A flush: the newest existing ticket is already the right thing to
    // Await (0 = nothing enqueued yet, which Await satisfies trivially) —
    // never a rejection.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return enqueued_seq_;
  }
  Status valid = Validate(mutations);
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (!valid.ok() || stopping_ || !failed_.ok()) {
    // Rejections are counted under the queue lock; stats() merges them. A
    // validation failure rejects only this call — the service keeps going.
    rejected_ += mutations.size();
    *rejection = !valid.ok()
                     ? valid
                     : Status::InvalidArgument(
                           "service no longer accepts mutations (stopped "
                           "or failed)");
    return 0;
  }
  if (options_.max_pending_mutations > 0 &&
      pending_.size() + mutations.size() >
          static_cast<size_t>(options_.max_pending_mutations)) {
    // Bounded admission: the queue is the only elastic buffer between
    // clients and the round cadence; past the bound we shed load instead
    // of growing it. Retryable — nothing about this call was invalid.
    rejected_ += mutations.size();
    *rejection = Status::ResourceExhausted(
        "admission queue full (" + std::to_string(pending_.size()) + " of " +
        std::to_string(options_.max_pending_mutations) +
        " pending mutations); retry later");
    return 0;
  }
  if (pending_.empty()) {
    oldest_arrival_ = std::chrono::steady_clock::now();
  }
  pending_.insert(pending_.end(), mutations.begin(), mutations.end());
  enqueued_seq_ += mutations.size();
  queue_cv_.notify_all();
  return enqueued_seq_;
}

Status IterationService::Await(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_cv_.wait(lock, [this, ticket] {
    return applied_seq_ >= ticket || !failed_.ok();
  });
  if (applied_seq_ >= ticket) return Status::OK();
  return failed_;
}

Status IterationService::Apply(std::vector<GraphMutation> mutations) {
  if (mutations.empty()) return Status::OK();
  Status rejection;
  uint64_t ticket = MutateInternal(std::move(mutations), &rejection);
  if (ticket == 0) return rejection;
  return Await(ticket);
}

IterationService::QueryResult IterationService::Query(
    const Record& probe) const {
  QueryResult result;
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  // Seqlock validation: while any reader holds the shared lock the writer
  // cannot be mid-round, so the service epoch must read even and match the
  // batch stamp of the partition the value comes from.
  const uint64_t service_epoch = epoch_.load(std::memory_order_acquire);
  SFDF_DCHECK(service_epoch % 2 == 0) << "read overlapped a round";
  ExecutionSession& session = *session_;
  SolutionSetIndex* partition =
      session.solution_partition(session.PartitionOfSolution(probe));
  const Record* rec = partition->Peek(probe, session.solution_key());
  if (rec != nullptr) {
    result.found = true;
    result.record = *rec;
  }
  // The partition's stamp is the batch boundary this value reflects.
  result.epoch = partition->epoch();
  SFDF_DCHECK(result.epoch == service_epoch) << "partition stamp drifted";
  return result;
}

IterationService::QueryResult IterationService::QueryKey(int64_t key) const {
  SFDF_DCHECK(session_->solution_key() == KeySpec{0})
      << "QueryKey assumes the single-int-field-0 solution key";
  return Query(Record::OfInts(key));
}

IterationService::SnapshotResult IterationService::Snapshot() const {
  SnapshotResult result;
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  const uint64_t service_epoch = epoch_.load(std::memory_order_acquire);
  SFDF_DCHECK(service_epoch % 2 == 0) << "read overlapped a round";
  session_->ForEachSolution(
      [&](const Record& rec) { result.records.push_back(rec); });
  // Every partition must carry the same committed batch stamp; that stamp
  // is the boundary the snapshot reflects.
  result.epoch = session_->solution_partition(0)->epoch();
  for (int p = 1; p < session_->parallelism(); ++p) {
    SFDF_DCHECK(session_->solution_partition(p)->epoch() == result.epoch)
        << "partition stamps disagree";
  }
  SFDF_DCHECK(result.epoch == service_epoch) << "partition stamp drifted";
  return result;
}

ServiceStats IterationService::stats() const {
  ServiceStats stats;
  {
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    stats = stats_;
    stats.round_p50_ms = round_latency_.Quantile(0.50);
    stats.round_p95_ms = round_latency_.Quantile(0.95);
    stats.round_p99_ms = round_latency_.Quantile(0.99);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.mutations_rejected = rejected_;
    stats.admission_queue_depth = pending_.size();
  }
  return stats;
}

Status IterationService::ProcessBatch(
    const std::vector<GraphMutation>& batch) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  // Odd epoch: a round is in flight; readers are excluded by the lock and
  // a lock-free observer can tell the state is mid-batch.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  Stopwatch watch;

  auto seeds = translate_(*session_, batch);
  Status status = seeds.ok() ? Status::OK() : seeds.status();
  IterationReport report;
  if (status.ok()) {
    auto round = session_->RunRound(std::move(*seeds));
    if (round.ok()) {
      report = std::move(*round);
    } else {
      status = round.status();
    }
  }

  if (status.ok()) {
    // Even epoch: the batch boundary is committed; stamp every partition
    // so epoch-tagged reads can attribute values to it.
    const uint64_t epoch =
        epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    for (int p = 0; p < session_->parallelism(); ++p) {
      session_->solution_partition(p)->set_epoch(epoch);
    }
    ++stats_.rounds;
    stats_.mutations_applied += batch.size();
    stats_.total_supersteps += report.iterations;
    const double round_millis = watch.ElapsedMillis();
    stats_.total_round_millis += round_millis;
    round_latency_.Record(round_millis);
    // Engine-scheduling snapshot, taken here on the admission thread (the
    // only thread that may touch the session) so stats() never races the
    // session teardown in Stop().
    const Engine::ClientStats engine = session_->engine_stats();
    stats_.engine_workers = session_->engine_workers();
    stats_.engine_tasks = engine.tasks_run;
    stats_.engine_queue_wait_total_ms =
        static_cast<double>(engine.queue_wait_ns_total) / 1e6;
    stats_.engine_queue_wait_max_ms =
        static_cast<double>(engine.queue_wait_ns_max) / 1e6;
  } else {
    // Failed batch: no boundary was committed (translators are atomic —
    // they validate before touching any state), so step back to the
    // previous even epoch; reads keep matching the partition stamps.
    epoch_.fetch_sub(1, std::memory_order_acq_rel);
  }
  return status;
}

void IterationService::AdmissionLoop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) return;  // stopping, fully drained
    if (!stopping_ &&
        pending_.size() < static_cast<size_t>(options_.max_batch)) {
      // Linger: give concurrent writers a chance to coalesce into this
      // batch, bounded by the oldest pending mutation's wait.
      auto deadline = oldest_arrival_ + options_.max_linger;
      queue_cv_.wait_until(lock, deadline, [this] {
        return stopping_ ||
               pending_.size() >= static_cast<size_t>(options_.max_batch);
      });
    }

    const size_t take =
        std::min(pending_.size(), static_cast<size_t>(options_.max_batch));
    std::vector<GraphMutation> batch(pending_.begin(),
                                     pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    admitted_seq_ += take;
    const uint64_t ticket = admitted_seq_;
    // Remaining mutations restart their linger clock (conservative: they
    // wait at most one extra max_linger).
    oldest_arrival_ = std::chrono::steady_clock::now();

    lock.unlock();
    Status status = ProcessBatch(batch);
    lock.lock();

    if (!status.ok()) {
      failed_ = status;
      rejected_ += pending_.size();
      pending_.clear();
      queue_cv_.notify_all();
      return;
    }
    applied_seq_ = ticket;
    queue_cv_.notify_all();
  }
}

Status IterationService::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    queue_cv_.notify_all();
  }
  if (admission_thread_.joinable()) admission_thread_.join();

  Status status;
  bool finish_session = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    status = failed_;
    finish_session = !joined_;
    joined_ = true;
  }
  // session_ is null when Start() failed before the session came up (the
  // half-constructed service is destroyed on the error path).
  if (finish_session && session_ != nullptr) {
    auto exec = session_->Finish();
    if (exec.ok()) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      final_result_ = std::move(*exec);
    } else if (status.ok()) {
      status = exec.status();
    }
  }
  return status;
}

std::optional<ExecutionResult> IterationService::final_result() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return final_result_;
}

}  // namespace sfdf
