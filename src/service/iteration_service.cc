#include "service/iteration_service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/solution_set.h"
#include "obs/trace.h"

namespace sfdf {

IterationService::IterationService(SeedFn translate, ValidateFn validate,
                                   ServiceOptions options)
    : translate_(std::move(translate)),
      validate_(std::move(validate)),
      options_(std::move(options)) {}

Result<std::unique_ptr<IterationService>> IterationService::Start(
    PhysicalPlan plan, SeedFn translate, ServiceOptions options,
    ValidateFn validate) {
  if (options.max_batch < 1) {
    return Status::InvalidArgument("ServiceOptions.max_batch must be >= 1");
  }
  if (options.max_linger.count() < 0) {
    return Status::InvalidArgument("ServiceOptions.max_linger must be >= 0");
  }
  if (options.max_pending_mutations < 0) {
    return Status::InvalidArgument(
        "ServiceOptions.max_pending_mutations must be >= 0");
  }
  if (!translate) {
    return Status::InvalidArgument("IterationService requires a translator");
  }

  std::unique_ptr<IterationService> service(new IterationService(
      std::move(translate), std::move(validate), options));
  service->plan_ = std::make_unique<PhysicalPlan>(std::move(plan));

  // One-shot setup + cold convergence; the session then stays resident.
  Executor executor(options.exec);
  auto session = executor.StartSession(*service->plan_);
  if (!session.ok()) return session.status();
  service->session_ = std::move(*session);

  service->admission_thread_ =
      std::thread(&IterationService::AdmissionLoop, service.get());
  return service;
}

IterationService::~IterationService() {
  Status ignored = Stop();
  (void)ignored;
}

Status IterationService::Validate(
    const std::vector<GraphMutation>& mutations) const {
  if (!validate_) return Status::OK();
  for (const GraphMutation& mutation : mutations) {
    Status status = validate_(mutation);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

uint64_t IterationService::Mutate(std::vector<GraphMutation> mutations) {
  Status ignored;
  return MutateInternal(std::move(mutations), &ignored);
}

uint64_t IterationService::Mutate(std::vector<GraphMutation> mutations,
                                  Status* rejection) {
  *rejection = Status::OK();
  return MutateInternal(std::move(mutations), rejection);
}

uint64_t IterationService::MutateInternal(std::vector<GraphMutation> mutations,
                                          Status* rejection) {
  if (mutations.empty()) {
    // A flush: the newest existing ticket is already the right thing to
    // Await (0 = nothing enqueued yet, which Await satisfies trivially) —
    // never a rejection.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return enqueued_seq_;
  }
  Status valid = Validate(mutations);
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (!valid.ok() || stopping_ || !failed_.ok()) {
    // Rejections are counted under the queue lock; stats() merges them. A
    // validation failure rejects only this call — the service keeps going.
    rejected_ += mutations.size();
    *rejection = !valid.ok()
                     ? valid
                     : Status::InvalidArgument(
                           "service no longer accepts mutations (stopped "
                           "or failed)");
    return 0;
  }
  if (options_.max_pending_mutations > 0 &&
      pending_.size() + mutations.size() >
          static_cast<size_t>(options_.max_pending_mutations)) {
    // Bounded admission: the queue is the only elastic buffer between
    // clients and the round cadence; past the bound we shed load instead
    // of growing it. Retryable — nothing about this call was invalid.
    rejected_ += mutations.size();
    *rejection = Status::ResourceExhausted(
        "admission queue full (" + std::to_string(pending_.size()) + " of " +
        std::to_string(options_.max_pending_mutations) +
        " pending mutations); retry later");
    return 0;
  }
  if (pending_.empty()) {
    oldest_arrival_ = std::chrono::steady_clock::now();
  }
  pending_.insert(pending_.end(), mutations.begin(), mutations.end());
  enqueued_seq_ += mutations.size();
  queue_cv_.notify_all();
  return enqueued_seq_;
}

Status IterationService::Await(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_cv_.wait(lock, [this, ticket] {
    return applied_seq_ >= ticket || !failed_.ok();
  });
  if (applied_seq_ >= ticket) return Status::OK();
  return failed_;
}

Status IterationService::Apply(std::vector<GraphMutation> mutations) {
  if (mutations.empty()) return Status::OK();
  Status rejection;
  uint64_t ticket = MutateInternal(std::move(mutations), &rejection);
  if (ticket == 0) return rejection;
  return Await(ticket);
}

IterationService::QueryResult IterationService::Query(
    const Record& probe) const {
  QueryResult result;
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  // Seqlock validation: while any reader holds the shared lock the writer
  // cannot be mid-round, so the service epoch must read even and match the
  // batch stamp of the partition the value comes from.
  const uint64_t service_epoch = epoch_.load(std::memory_order_acquire);
  SFDF_DCHECK(service_epoch % 2 == 0) << "read overlapped a round";
  ExecutionSession& session = *session_;
  SolutionSetIndex* partition =
      session.solution_partition(session.PartitionOfSolution(probe));
  const Record* rec = partition->Peek(probe, session.solution_key());
  if (rec != nullptr) {
    result.found = true;
    result.record = *rec;
  }
  // The partition's stamp is the batch boundary this value reflects.
  result.epoch = partition->epoch();
  SFDF_DCHECK(result.epoch == service_epoch) << "partition stamp drifted";
  return result;
}

IterationService::QueryResult IterationService::QueryKey(int64_t key) const {
  {
    // solution_key() walks the live ExecContext, which Reconfigure swaps
    // out under the writer lock — even this sanity probe must hold the
    // read lock to avoid touching a skeleton mid-teardown.
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    SFDF_DCHECK(session_->solution_key() == KeySpec{0})
        << "QueryKey assumes the single-int-field-0 solution key";
  }
  return Query(Record::OfInts(key));
}

IterationService::SnapshotPageResult IterationService::SnapshotPage(
    uint64_t cursor, int64_t max_records) const {
  // Cursor layout: partition index in the high 16 bits, record offset into
  // that partition's stable iteration order in the low 48. Opaque to
  // clients; only meaningful within one committed epoch (the index order
  // is stable as long as no batch merged records and no remap happened).
  constexpr int kOffsetBits = 48;
  constexpr uint64_t kOffsetMask = (uint64_t{1} << kOffsetBits) - 1;
  constexpr int64_t kDefaultPageRecords = 32768;
  const int64_t page = max_records > 0 ? max_records : kDefaultPageRecords;

  SnapshotPageResult result;
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  const uint64_t service_epoch = epoch_.load(std::memory_order_acquire);
  SFDF_DCHECK(service_epoch % 2 == 0) << "read overlapped a round";
  const int P = session_->parallelism();
  int p = static_cast<int>(cursor >> kOffsetBits);
  uint64_t skip = cursor & kOffsetMask;
  while (p < P && static_cast<int64_t>(result.records.size()) < page) {
    SolutionSetIndex* partition = session_->solution_partition(p);
    const auto partition_size = static_cast<uint64_t>(partition->size());
    if (skip >= partition_size) {
      ++p;
      skip = 0;
      continue;
    }
    uint64_t index = 0;
    uint64_t consumed = skip;
    partition->ForEachWhile([&](const Record& rec) {
      if (index++ < skip) return true;  // already served by a prior page
      if (static_cast<int64_t>(result.records.size()) >= page) return false;
      result.records.push_back(rec);
      consumed = index;
      return true;
    });
    if (consumed >= partition_size) {
      ++p;
      skip = 0;
    } else {
      skip = consumed;  // page filled mid-partition
      break;
    }
  }
  // Skip trailing empty partitions so the client never pays an empty
  // round-trip for them (only at a partition boundary, skip == 0).
  while (p < P && skip == 0 && session_->solution_partition(p)->size() == 0) {
    ++p;
  }
  result.next_cursor =
      p < P ? (static_cast<uint64_t>(p) << kOffsetBits) | skip : 0;
  result.epoch = session_->solution_partition(0)->epoch();
  SFDF_DCHECK(result.epoch == service_epoch) << "partition stamp drifted";
  return result;
}

IterationService::SnapshotResult IterationService::Snapshot() const {
  SnapshotResult result;
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  const uint64_t service_epoch = epoch_.load(std::memory_order_acquire);
  SFDF_DCHECK(service_epoch % 2 == 0) << "read overlapped a round";
  session_->ForEachSolution(
      [&](const Record& rec) { result.records.push_back(rec); });
  // Every partition must carry the same committed batch stamp; that stamp
  // is the boundary the snapshot reflects.
  result.epoch = session_->solution_partition(0)->epoch();
  for (int p = 1; p < session_->parallelism(); ++p) {
    SFDF_DCHECK(session_->solution_partition(p)->epoch() == result.epoch)
        << "partition stamps disagree";
  }
  SFDF_DCHECK(result.epoch == service_epoch) << "partition stamp drifted";
  return result;
}

ServiceStats IterationService::stats() const {
  ServiceStats stats;
  {
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    stats = stats_;
    stats.round_p50_ms = round_latency_.Quantile(0.50);
    stats.round_p95_ms = round_latency_.Quantile(0.95);
    stats.round_p99_ms = round_latency_.Quantile(0.99);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.mutations_rejected = rejected_;
    stats.admission_queue_depth = pending_.size();
  }
  return stats;
}

void IterationService::SnapshotEngineStats() {
  // Taken on the admission thread (the only thread that may touch the
  // session) so stats() never races the session teardown in Stop().
  const Engine::ClientStats engine = session_->engine_stats();
  stats_.engine_workers = session_->engine_workers();
  stats_.engine_tasks = engine.tasks_run;
  stats_.engine_queue_wait_total_ms =
      static_cast<double>(engine.queue_wait_ns_total) / 1e6;
  stats_.engine_queue_wait_max_ms =
      static_cast<double>(engine.queue_wait_ns_max) / 1e6;
  stats_.engine_parks = engine.tasks_parked;
  stats_.engine_wakes = engine.tasks_woken;
}

int IterationService::parallelism() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return session_->parallelism();
}

Status IterationService::Reconfigure(int new_partitions, Engine* new_engine) {
  if (new_partitions < 0) {
    return Status::InvalidArgument(
        "Reconfigure new_partitions must be >= 0 (0 = keep current), got " +
        std::to_string(new_partitions));
  }
  ReconfigRequest request;
  request.new_partitions = new_partitions;
  request.new_engine = new_engine;
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (stopping_ || !failed_.ok()) {
    return !failed_.ok() ? failed_
                         : Status::InvalidArgument(
                               "service no longer accepts reconfigurations "
                               "(stopped or failed)");
  }
  // Hand the request to the admission thread: reconfiguration is session
  // work and the admission thread is the only thread allowed to touch the
  // session. It runs ahead of any pending mutation batch.
  reconfigs_.push_back(&request);
  queue_cv_.notify_all();
  queue_cv_.wait(lock, [&request] { return request.done; });
  return request.result;
}

Status IterationService::DoReconfigure(int new_partitions,
                                       Engine* new_engine) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  // Odd epoch across the whole swap, exactly like a round: readers are
  // excluded by the writer lock (they keep answering from the old shards
  // right up to the lock handover) and lock-free epoch observers can tell
  // a boundary is in flight. The session itself quiesces at the committed
  // round boundary inside ExecutionSession::Reconfigure.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  Stopwatch watch;
  static const uint16_t kReconfigure =
      trace::RegisterName("service.reconfigure");
  trace::Span span(kReconfigure, new_partitions);
  auto report = session_->Reconfigure(new_partitions, new_engine);
  if (report.ok()) {
    // Commit: stamp every partition of the NEW width with the new even
    // epoch. The epoch bump also tells paged-snapshot clients their
    // cursors died with the old shard layout.
    const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    for (int p = 0; p < session_->parallelism(); ++p) {
      session_->solution_partition(p)->set_epoch(epoch);
    }
    ++stats_.reconfigs;
    stats_.reconfig_ms_last = watch.ElapsedMillis();
    stats_.total_supersteps += report->iterations;
    SnapshotEngineStats();
    return Status::OK();
  }
  // Rejected or failed: no boundary was committed — step back to the
  // previous even epoch. On a structural rejection the session still
  // serves at the old width; on a rebuild failure the caller fails the
  // service (the session is finished).
  epoch_.fetch_sub(1, std::memory_order_acq_rel);
  return report.status();
}

Status IterationService::ProcessBatch(
    const std::vector<GraphMutation>& batch) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  // Odd epoch: a round is in flight; readers are excluded by the lock and
  // a lock-free observer can tell the state is mid-batch.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  Stopwatch watch;
  static const uint16_t kRound = trace::RegisterName("service.round");
  trace::Span span(kRound, static_cast<int64_t>(batch.size()));

  auto seeds = translate_(*session_, batch);
  Status status = seeds.ok() ? Status::OK() : seeds.status();
  IterationReport report;
  if (status.ok()) {
    auto round = session_->RunRound(std::move(*seeds));
    if (round.ok()) {
      report = std::move(*round);
    } else {
      status = round.status();
    }
  }

  if (status.ok()) {
    // Even epoch: the batch boundary is committed; stamp every partition
    // so epoch-tagged reads can attribute values to it.
    const uint64_t epoch =
        epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    for (int p = 0; p < session_->parallelism(); ++p) {
      session_->solution_partition(p)->set_epoch(epoch);
    }
    static const uint16_t kCommit =
        trace::RegisterName("service.epoch.commit");
    trace::Instant(kCommit, static_cast<int64_t>(epoch));
    ++stats_.rounds;
    stats_.mutations_applied += batch.size();
    stats_.total_supersteps += report.iterations;
    if (report.ran_async) {
      stats_.async_local_rounds += report.iterations;
      stats_.async_vote_revocations += report.vote_revocations;
      stats_.async_max_staleness =
          std::max(stats_.async_max_staleness, report.max_staleness);
    }
    const double round_millis = watch.ElapsedMillis();
    stats_.total_round_millis += round_millis;
    round_latency_.Record(round_millis);
    SnapshotEngineStats();
  } else {
    // Failed batch: no boundary was committed (translators are atomic —
    // they validate before touching any state), so step back to the
    // previous even epoch; reads keep matching the partition stamps.
    epoch_.fetch_sub(1, std::memory_order_acq_rel);
  }
  return status;
}

void IterationService::AdmissionLoop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  // Releases every queued Reconfigure waiter with `status` (stop/failure
  // paths — the remap can no longer happen). Caller holds queue_mutex_.
  auto release_reconfigs = [this](const Status& status) {
    while (!reconfigs_.empty()) {
      ReconfigRequest* request = reconfigs_.front();
      reconfigs_.pop_front();
      request->result = status;
      request->done = true;
    }
  };
  for (;;) {
    queue_cv_.wait(lock, [this] {
      return stopping_ || !pending_.empty() || !reconfigs_.empty();
    });
    if (stopping_) {
      // No remap happens once the service is winding down; don't leave
      // callers blocked behind the drain.
      release_reconfigs(Status::InvalidArgument(
          "service no longer accepts reconfigurations (stopping)"));
      queue_cv_.notify_all();
    } else if (!reconfigs_.empty()) {
      // Reconfigurations run ahead of any pending mutation batch: the
      // admission queue is held across the remap, and its already-enqueued
      // mutations replay afterwards with their tickets preserved.
      ReconfigRequest* request = reconfigs_.front();
      reconfigs_.pop_front();
      lock.unlock();
      Status status =
          DoReconfigure(request->new_partitions, request->new_engine);
      lock.lock();
      // Structural rejections (InvalidArgument/Unsupported) leave the
      // session serving at the old width and reject only this call;
      // anything else means the rebuild died mid-swap — the session is
      // finished, so the service fails like it does on a failed round.
      const bool fatal = !status.ok() &&
                         status.code() != StatusCode::kInvalidArgument &&
                         status.code() != StatusCode::kUnsupported;
      request->result = status;
      request->done = true;
      if (fatal) {
        failed_ = status;
        release_reconfigs(status);
        rejected_ += pending_.size();
        pending_.clear();
        queue_cv_.notify_all();
        return;
      }
      queue_cv_.notify_all();
      continue;
    }
    if (pending_.empty()) return;  // stopping, fully drained
    if (!stopping_ &&
        pending_.size() < static_cast<size_t>(options_.max_batch)) {
      // Linger: give concurrent writers a chance to coalesce into this
      // batch, bounded by the oldest pending mutation's wait.
      auto deadline = oldest_arrival_ + options_.max_linger;
      queue_cv_.wait_until(lock, deadline, [this] {
        return stopping_ ||
               pending_.size() >= static_cast<size_t>(options_.max_batch);
      });
    }

    const size_t take =
        std::min(pending_.size(), static_cast<size_t>(options_.max_batch));
    std::vector<GraphMutation> batch(pending_.begin(),
                                     pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);
    admitted_seq_ += take;
    const uint64_t ticket = admitted_seq_;
    static const uint16_t kAdmit = trace::RegisterName("service.admit");
    trace::Instant(kAdmit, static_cast<int64_t>(take));
    // Remaining mutations restart their linger clock (conservative: they
    // wait at most one extra max_linger).
    oldest_arrival_ = std::chrono::steady_clock::now();

    lock.unlock();
    Status status = ProcessBatch(batch);
    lock.lock();

    if (!status.ok()) {
      failed_ = status;
      release_reconfigs(status);
      rejected_ += pending_.size();
      pending_.clear();
      queue_cv_.notify_all();
      return;
    }
    applied_seq_ = ticket;
    queue_cv_.notify_all();
  }
}

Status IterationService::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    queue_cv_.notify_all();
  }
  if (admission_thread_.joinable()) admission_thread_.join();

  Status status;
  bool finish_session = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    status = failed_;
    finish_session = !joined_;
    joined_ = true;
  }
  // session_ is null when Start() failed before the session came up (the
  // half-constructed service is destroyed on the error path).
  if (finish_session && session_ != nullptr) {
    auto exec = session_->Finish();
    if (exec.ok()) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      final_result_ = std::move(*exec);
    } else if (status.ok()) {
      status = exec.status();
    }
  }
  return status;
}

std::optional<ExecutionResult> IterationService::final_result() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return final_result_;
}

}  // namespace sfdf
