#include "baselines/spark/spark.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/env.h"
#include "common/stopwatch.h"

namespace sfdf {
namespace spark {

namespace {

/// A boxed shuffle element: individually heap-allocated, like the per-record
/// objects of a JVM dataflow without object reuse.
template <typename V>
struct Boxed {
  int64_t key;
  V value;
};

/// Approximate JVM object cost: payload + header + pointer.
template <typename V>
constexpr int64_t BoxedBytes() {
  return static_cast<int64_t>(sizeof(Boxed<V>)) + 24;
}

/// Runs `fn(p)` for p in [0, parallelism) on a thread per partition.
void ParallelFor(int parallelism, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(parallelism);
  for (int p = 0; p < parallelism; ++p) {
    threads.emplace_back([&fn, p] { fn(p); });
  }
  for (std::thread& t : threads) t.join();
}

int ResolveParallelism(const SparkOptions& options) {
  return options.parallelism > 0 ? options.parallelism : DefaultParallelism();
}

/// One all-to-all shuffle of boxed elements. `produce(p, emit)` generates
/// the partition's outgoing elements; the result groups arrivals per target
/// partition. Returns OutOfMemory when the buffered volume exceeds the
/// budget (no spilling — the limitation the paper names).
template <typename V>
Status Shuffle(
    int parallelism, int64_t budget_bytes,
    const std::function<void(int, const std::function<void(int64_t, V)>&)>&
        produce,
    std::vector<std::vector<std::unique_ptr<Boxed<V>>>>* out,
    int64_t* message_count) {
  out->clear();
  out->resize(parallelism);
  std::vector<std::mutex> locks(parallelism);
  std::atomic<int64_t> live_bytes{0};
  std::atomic<bool> oom{false};
  std::atomic<int64_t> count{0};

  ParallelFor(parallelism, [&](int p) {
    // Local staging per target keeps lock contention low, like a map-side
    // shuffle buffer.
    std::vector<std::vector<std::unique_ptr<Boxed<V>>>> staged(parallelism);
    auto emit = [&](int64_t key, V value) {
      if (oom.load(std::memory_order_relaxed)) return;
      auto boxed = std::make_unique<Boxed<V>>(Boxed<V>{key, value});
      int64_t bytes =
          live_bytes.fetch_add(BoxedBytes<V>(), std::memory_order_relaxed) +
          BoxedBytes<V>();
      if (bytes > budget_bytes) {
        oom.store(true, std::memory_order_relaxed);
        return;
      }
      count.fetch_add(1, std::memory_order_relaxed);
      staged[static_cast<uint64_t>(key) % parallelism].push_back(
          std::move(boxed));
    };
    produce(p, emit);
    for (int target = 0; target < parallelism; ++target) {
      if (staged[target].empty()) continue;
      std::lock_guard<std::mutex> lock(locks[target]);
      auto& bucket = (*out)[target];
      for (auto& boxed : staged[target]) bucket.push_back(std::move(boxed));
    }
  });
  if (oom.load()) {
    return Status::OutOfMemory(
        "spark baseline exceeded its shuffle memory budget (no spilling)");
  }
  *message_count += count.load();
  return Status::OK();
}

}  // namespace

Result<SparkPageRankResult> PageRank(const Graph& graph, int iterations,
                                     double damping,
                                     const SparkOptions& options) {
  const int P = ResolveParallelism(options);
  const int64_t n = graph.num_vertices();
  const double base = (1.0 - damping) / static_cast<double>(n);

  // The rank "RDD": boxed elements, fully rebuilt every iteration.
  std::vector<std::unique_ptr<Boxed<double>>> ranks(n);
  for (VertexId v = 0; v < n; ++v) {
    ranks[v] = std::make_unique<Boxed<double>>(
        Boxed<double>{v, 1.0 / static_cast<double>(n)});
  }

  SparkPageRankResult result;
  Stopwatch total;
  for (int iter = 0; iter < iterations; ++iter) {
    Stopwatch watch;
    SparkIterationStats stats;
    std::vector<std::vector<std::unique_ptr<Boxed<double>>>> shuffled;
    Status st = Shuffle<double>(
        P, options.memory_budget_bytes,
        [&](int p, const std::function<void(int64_t, double)>& emit) {
          for (VertexId u = p; u < n; u += P) {
            int64_t degree = graph.OutDegree(u);
            if (degree == 0) continue;
            double share = ranks[u]->value / static_cast<double>(degree);
            for (const VertexId* v = graph.NeighborsBegin(u);
                 v != graph.NeighborsEnd(u); ++v) {
              emit(*v, share);
            }
          }
        },
        &shuffled, &stats.messages);
    if (!st.ok()) return st;

    // reduceByKey(sum) + map(damping): a complete new rank dataset.
    std::vector<std::unique_ptr<Boxed<double>>> next(n);
    ParallelFor(P, [&](int p) {
      std::unordered_map<int64_t, double> sums;
      for (const auto& boxed : shuffled[p]) {
        sums[boxed->key] += boxed->value;
      }
      for (VertexId v = p; v < n; v += P) {
        auto it = sums.find(v);
        double sum = it == sums.end() ? 0.0 : it->second;
        next[v] = std::make_unique<Boxed<double>>(
            Boxed<double>{v, base + damping * sum});
      }
    });
    ranks = std::move(next);
    stats.millis = watch.ElapsedMillis();
    result.stats.iterations.push_back(stats);
  }
  result.stats.total_millis = total.ElapsedMillis();
  result.ranks.resize(n);
  for (VertexId v = 0; v < n; ++v) result.ranks[v] = ranks[v]->value;
  return result;
}

Result<SparkCcResult> ConnectedComponents(const Graph& graph,
                                          bool simulate_incremental,
                                          int max_iterations,
                                          const SparkOptions& options) {
  const int P = ResolveParallelism(options);
  const int64_t n = graph.num_vertices();

  std::vector<std::unique_ptr<Boxed<int64_t>>> labels(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v] = std::make_unique<Boxed<int64_t>>(Boxed<int64_t>{v, v});
  }
  // The simulated-incremental variant tags each label with a changed flag
  // (Section 6.2): only changed vertices message their neighbors, but every
  // vertex must still self-message to carry its state to the next dataset.
  std::vector<uint8_t> changed(n, 1);

  SparkCcResult result;
  Stopwatch total;
  for (int iter = 0; iter < max_iterations; ++iter) {
    Stopwatch watch;
    SparkIterationStats stats;
    std::vector<std::vector<std::unique_ptr<Boxed<int64_t>>>> shuffled;
    Status st = Shuffle<int64_t>(
        P, options.memory_budget_bytes,
        [&](int p, const std::function<void(int64_t, int64_t)>& emit) {
          for (VertexId u = p; u < n; u += P) {
            int64_t label = labels[u]->value;
            if (!simulate_incremental || changed[u]) {
              for (const VertexId* v = graph.NeighborsBegin(u);
                   v != graph.NeighborsEnd(u); ++v) {
                emit(*v, label);
              }
            }
            // Bulk semantics: the vertex's own label always participates in
            // the min (and carries the state into the new dataset).
            emit(u, label);
          }
        },
        &shuffled, &stats.messages);
    if (!st.ok()) return st;

    std::vector<std::unique_ptr<Boxed<int64_t>>> next(n);
    std::atomic<int64_t> changes{0};
    ParallelFor(P, [&](int p) {
      std::unordered_map<int64_t, int64_t> mins;
      for (const auto& boxed : shuffled[p]) {
        auto [it, inserted] = mins.emplace(boxed->key, boxed->value);
        if (!inserted && boxed->value < it->second) it->second = boxed->value;
      }
      int64_t local_changes = 0;
      for (VertexId v = p; v < n; v += P) {
        int64_t old_label = labels[v]->value;
        auto it = mins.find(v);
        int64_t new_label = it == mins.end() ? old_label : it->second;
        changed[v] = new_label < old_label ? 1 : 0;
        if (changed[v]) ++local_changes;
        next[v] =
            std::make_unique<Boxed<int64_t>>(Boxed<int64_t>{v, new_label});
      }
      changes.fetch_add(local_changes, std::memory_order_relaxed);
    });
    labels = std::move(next);
    stats.changed = changes.load();
    stats.millis = watch.ElapsedMillis();
    result.stats.iterations.push_back(stats);
    result.iterations = iter + 1;
    if (stats.changed == 0) {
      result.converged = true;
      break;
    }
  }
  result.stats.total_millis = total.ElapsedMillis();
  result.labels.resize(n);
  for (VertexId v = 0; v < n; ++v) result.labels[v] = labels[v]->value;
  return result;
}

}  // namespace spark
}  // namespace sfdf
