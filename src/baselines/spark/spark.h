// "Spark": the bulk-only dataflow baseline of the evaluation (Section 6).
//
// Models the properties the paper attributes to Spark circa 2012:
//  * iterative programs drive a loop around batch jobs over partitioned
//    in-memory datasets (RDD-style); every iteration produces a complete
//    new dataset — there is no mutable iteration state;
//  * every shuffled element is an individually heap-allocated object
//    ("Spark uses new objects for all messages, creating a substantial
//    garbage collection overhead"), unlike the flat serialized records of
//    the Stratosphere-style engine;
//  * shuffle buffers cannot spill: exceeding the memory budget aborts the
//    job with OutOfMemory — the failure the paper hit on Webbase/Twitter.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace sfdf {
namespace spark {

struct SparkOptions {
  int parallelism = 0;  ///< 0 = default
  /// Budget for buffered shuffle messages; exceeded ⇒ OutOfMemory.
  int64_t memory_budget_bytes = 512LL << 20;
};

/// Per-iteration measurements (Figures 8 and 11).
struct SparkIterationStats {
  double millis = 0;
  int64_t messages = 0;
  int64_t changed = 0;  ///< CC: labels lowered this iteration
};

struct SparkRunStats {
  std::vector<SparkIterationStats> iterations;
  double total_millis = 0;
};

/// Bulk PageRank (the Pegasus-style implementation the paper used).
struct SparkPageRankResult {
  std::vector<double> ranks;
  SparkRunStats stats;
};
Result<SparkPageRankResult> PageRank(const Graph& graph, int iterations,
                                     double damping,
                                     const SparkOptions& options);

/// Bulk Connected Components, plus the Figure 11 "Spark Sim. Incr."
/// variant: a changed-flag suppresses messages of converged vertices, but
/// unchanged state must still be copied forward via self-messages each
/// iteration (no mutable state to share across iterations).
struct SparkCcResult {
  std::vector<VertexId> labels;
  SparkRunStats stats;
  int iterations = 0;
  bool converged = false;
};
Result<SparkCcResult> ConnectedComponents(const Graph& graph,
                                          bool simulate_incremental,
                                          int max_iterations,
                                          const SparkOptions& options);

}  // namespace spark
}  // namespace sfdf
