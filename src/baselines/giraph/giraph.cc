#include "baselines/giraph/giraph.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/env.h"
#include "common/stopwatch.h"

namespace sfdf {
namespace giraph {

namespace {

int ResolveParallelism(const GiraphOptions& options) {
  return options.parallelism > 0 ? options.parallelism : DefaultParallelism();
}

void ParallelFor(int parallelism, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(parallelism);
  for (int p = 0; p < parallelism; ++p) {
    threads.emplace_back([&fn, p] { fn(p); });
  }
  for (std::thread& t : threads) t.join();
}

/// Flat message store: per partition, (target vertex, value) pairs.
/// Double-buffered across supersteps like Pregel's message queues.
template <typename V>
using MessageBuffers = std::vector<std::vector<std::pair<VertexId, V>>>;

constexpr int64_t kMessageBytes = 16;  // flat pair, no object headers

/// Generic BSP engine: `compute(v, incoming, send)` runs for every vertex
/// with pending messages; `send(target, value)` enqueues (combined) for the
/// next superstep. Superstep 0 delivers `initial` to every vertex.
template <typename V, typename Combine>
Status RunBsp(const Graph& graph, const GiraphOptions& options,
              const std::function<void(VertexId, const std::vector<V>&,
                                       const std::function<void(VertexId, V)>&)>&
                  compute,
              Combine combine, bool seed_all_vertices,
              GiraphRunStats* stats_out, int* supersteps_out,
              bool* converged_out) {
  const int P = ResolveParallelism(options);
  const int64_t n = graph.num_vertices();

  MessageBuffers<V> current(P);
  MessageBuffers<V> next(P);
  std::vector<std::mutex> locks(P);
  std::atomic<int64_t> buffered_bytes{0};
  std::atomic<bool> oom{false};

  bool first_superstep = true;
  Stopwatch total;
  for (int superstep = 0; superstep < options.max_supersteps; ++superstep) {
    Stopwatch watch;
    std::atomic<int64_t> messages{0};
    std::atomic<int64_t> active{0};

    ParallelFor(P, [&](int p) {
      // Sender-side combiner: one slot per target vertex (Pregel combiners).
      // Every *emitted* message occupies buffer space until its batch is
      // combined and flushed, so raw sends count against the budget — the
      // paper's failure mode: "the number of messages created exceeds the
      // heap size on each node".
      std::vector<std::unordered_map<VertexId, V>> outgoing(P);
      auto send = [&](VertexId target, V value) {
        if (buffered_bytes.fetch_add(kMessageBytes,
                                     std::memory_order_relaxed) +
                kMessageBytes >
            options.message_budget_bytes) {
          oom.store(true, std::memory_order_relaxed);
          return;
        }
        auto& slot = outgoing[static_cast<uint64_t>(target) % P];
        auto [it, inserted] = slot.emplace(target, value);
        if (!inserted) it->second = combine(it->second, value);
      };

      // Group this partition's incoming messages by vertex.
      std::unordered_map<VertexId, std::vector<V>> inbox;
      if (first_superstep && seed_all_vertices) {
        for (VertexId v = p; v < n; v += P) inbox[v];  // empty message list
      }
      for (const auto& [target, value] : current[p]) {
        inbox[target].push_back(value);
      }
      active.fetch_add(static_cast<int64_t>(inbox.size()),
                       std::memory_order_relaxed);
      for (const auto& [vid, incoming] : inbox) {
        compute(vid, incoming, send);
      }

      // Deliver combined messages into the next superstep's buffers.
      int64_t sent = 0;
      for (int target = 0; target < P; ++target) {
        if (outgoing[target].empty()) continue;
        sent += static_cast<int64_t>(outgoing[target].size());
        std::lock_guard<std::mutex> lock(locks[target]);
        auto& bucket = next[target];
        for (const auto& [vid, value] : outgoing[target]) {
          bucket.emplace_back(vid, value);
        }
      }
      messages.fetch_add(sent, std::memory_order_relaxed);
    });
    if (oom.load()) {
      return Status::OutOfMemory(
          "giraph baseline exceeded its message memory budget (no spilling)");
    }

    first_superstep = false;
    int64_t sent = messages.load();
    GiraphSuperstepStats stats;
    stats.millis = watch.ElapsedMillis();
    stats.messages = sent;
    stats.active_vertices = active.load();
    stats_out->supersteps.push_back(stats);
    *supersteps_out = superstep + 1;

    // Superstep barrier: swap the double-buffered queues.
    for (int p = 0; p < P; ++p) {
      current[p] = std::move(next[p]);
      next[p].clear();
    }
    buffered_bytes.store(0);
    if (sent == 0) {
      *converged_out = true;
      break;
    }
  }
  stats_out->total_millis = total.ElapsedMillis();
  return Status::OK();
}

}  // namespace

Result<GiraphCcResult> ConnectedComponents(const Graph& graph,
                                           const GiraphOptions& options) {
  const int64_t n = graph.num_vertices();
  std::vector<std::atomic<int64_t>> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v].store(v);

  GiraphCcResult result;
  auto compute = [&](VertexId vid, const std::vector<int64_t>& incoming,
                     const std::function<void(VertexId, int64_t)>& send) {
    int64_t current = labels[vid].load(std::memory_order_relaxed);
    int64_t min_label = current;
    for (int64_t msg : incoming) min_label = std::min(min_label, msg);
    // Superstep 0: every vertex introduces itself to its neighbors; later
    // supersteps only react to received messages (vote-to-halt).
    bool introduce = incoming.empty();
    if (min_label < current || introduce) {
      labels[vid].store(min_label, std::memory_order_relaxed);
      for (const VertexId* nb = graph.NeighborsBegin(vid);
           nb != graph.NeighborsEnd(vid); ++nb) {
        send(*nb, min_label);
      }
    }
  };
  Status st = RunBsp<int64_t>(
      graph, options, compute,
      [](int64_t a, int64_t b) { return std::min(a, b); },
      /*seed_all_vertices=*/true, &result.stats, &result.supersteps,
      &result.converged);
  if (!st.ok()) return st;
  result.labels.resize(n);
  for (VertexId v = 0; v < n; ++v) result.labels[v] = labels[v].load();
  return result;
}

Result<GiraphPageRankResult> PageRank(const Graph& graph, int supersteps,
                                      double damping,
                                      const GiraphOptions& options) {
  const int64_t n = graph.num_vertices();
  const double base = (1.0 - damping) / static_cast<double>(n);
  std::vector<std::atomic<double>> ranks(n);
  for (VertexId v = 0; v < n; ++v) {
    ranks[v].store(1.0 / static_cast<double>(n));
  }

  GiraphOptions bounded = options;
  bounded.max_supersteps = supersteps + 1;  // +1: final silent superstep
  GiraphPageRankResult result;
  int ran = 0;
  bool converged = false;
  auto compute = [&](VertexId vid, const std::vector<double>& incoming,
                     const std::function<void(VertexId, double)>& send) {
    double rank = ranks[vid].load(std::memory_order_relaxed);
    if (!incoming.empty()) {
      double sum = 0;
      for (double msg : incoming) sum += msg;
      rank = base + damping * sum;
      ranks[vid].store(rank, std::memory_order_relaxed);
    }
    int64_t degree = graph.OutDegree(vid);
    if (degree == 0) return;
    double share = rank / static_cast<double>(degree);
    for (const VertexId* nb = graph.NeighborsBegin(vid);
         nb != graph.NeighborsEnd(vid); ++nb) {
      send(*nb, share);
    }
  };
  Status st = RunBsp<double>(
      graph, bounded, compute, [](double a, double b) { return a + b; },
      /*seed_all_vertices=*/true, &result.stats, &ran, &converged);
  if (!st.ok()) return st;
  // Drop the final silent superstep from the stats if present.
  if (static_cast<int>(result.stats.supersteps.size()) > supersteps) {
    result.stats.supersteps.resize(supersteps);
  }
  result.ranks.resize(n);
  for (VertexId v = 0; v < n; ++v) result.ranks[v] = ranks[v].load();
  return result;
}

}  // namespace giraph
}  // namespace sfdf
