// "Giraph": the Pregel-style specialized graph system of the evaluation
// (Section 6) — bulk synchronous parallel processing with a vertex-centric
// programming model.
//
// Models the system as the paper describes it:
//  * vertices hold mutable state; a vertex is recomputed only when it
//    receives messages (exploiting sparse computational dependencies);
//  * sender-side combiners (min/sum) collapse messages per target vertex;
//  * hand-tuned object reuse — state lives in flat arrays, messages in
//    flat vectors (the paper notes Giraph "is hand tuned to avoid creating
//    objects");
//  * no message spilling: exceeding the message-memory budget aborts with
//    OutOfMemory (the Webbase/Twitter failures of Figures 7/9).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace sfdf {
namespace giraph {

struct GiraphOptions {
  int parallelism = 0;  ///< 0 = default
  int max_supersteps = 1000000;
  /// Budget for buffered messages; exceeded ⇒ OutOfMemory.
  int64_t message_budget_bytes = 512LL << 20;
};

struct GiraphSuperstepStats {
  double millis = 0;
  int64_t messages = 0;         ///< after combining
  int64_t active_vertices = 0;  ///< vertices that computed
};

struct GiraphRunStats {
  std::vector<GiraphSuperstepStats> supersteps;
  double total_millis = 0;
};

/// Vertex-centric Connected Components: propagate the minimum component id
/// (min combiner); converges when no messages remain.
struct GiraphCcResult {
  std::vector<VertexId> labels;
  GiraphRunStats stats;
  int supersteps = 0;
  bool converged = false;
};
Result<GiraphCcResult> ConnectedComponents(const Graph& graph,
                                           const GiraphOptions& options);

/// Vertex-centric PageRank (the Pregel paper's example): fixed number of
/// supersteps, sum combiner.
struct GiraphPageRankResult {
  std::vector<double> ranks;
  GiraphRunStats stats;
};
Result<GiraphPageRankResult> PageRank(const Graph& graph, int supersteps,
                                      double damping,
                                      const GiraphOptions& options);

}  // namespace giraph
}  // namespace sfdf
