// User-defined function interfaces — the first-order functions passed to the
// PACT second-order functions (Map, Reduce, Match, Cross, CoGroup; Section 3).
#pragma once

#include <functional>
#include <vector>

#include "record/record.h"

namespace sfdf {

/// Receives records emitted by a UDF. Implementations route to channels,
/// buffers, or indexes depending on where the operator runs.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void Emit(const Record& rec) = 0;
};

/// Collector that appends to a vector; used in tests and drivers.
class VectorCollector : public Collector {
 public:
  explicit VectorCollector(std::vector<Record>* out) : out_(out) {}
  void Emit(const Record& rec) override { out_->push_back(rec); }

 private:
  std::vector<Record>* out_;
};

/// Map: called once per record (record-at-a-time).
using MapUdf = std::function<void(const Record&, Collector*)>;

/// Filter: keep the record iff the predicate returns true.
using FilterUdf = std::function<bool(const Record&)>;

/// Reduce: called once per key group with all records of that group.
using ReduceUdf =
    std::function<void(const std::vector<Record>& group, Collector*)>;

/// Match: called once per pair of records with equal keys (equi-join);
/// record-at-a-time with respect to the probe side.
using MatchUdf =
    std::function<void(const Record& left, const Record& right, Collector*)>;

/// Cross: called once per pair in the Cartesian product.
using CrossUdf = MatchUdf;

/// CoGroup: called once per key with the full groups from both inputs
/// (either may be empty). InnerCoGroup drivers skip one-sided keys.
using CoGroupUdf = std::function<void(const std::vector<Record>& left,
                                      const std::vector<Record>& right,
                                      Collector*)>;

/// Optional chained pre-aggregation (combiner): merges two records of the
/// same key into one before shipping, cutting network volume (Section 6.1,
/// "records are pre-aggregated (cf. Combiners in MapReduce and Pregel)").
using CombineFn = std::function<Record(const Record& a, const Record& b)>;

}  // namespace sfdf
