// Logical dataflow plans: a DAG of operators with embedded iteration
// constructs. Bulk iterations are the tuple (G, I, O, T|n) of Section 4.1;
// workset iterations are the tuple (∆, S0, W0) with solution-set key and
// optional conflict comparator of Section 5.1.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataflow/udf.h"
#include "record/comparator.h"
#include "record/key.h"
#include "record/record.h"

namespace sfdf {

/// Logical operator kinds. The k*Placeholder kinds are the iteration-body
/// input edges (I of a bulk iteration; S and W of a workset iteration).
enum class OperatorKind {
  kSource,
  kSink,
  kMap,
  kFilter,
  kReduce,
  kMatch,
  kCross,
  kCoGroup,
  kInnerCoGroup,
  kUnion,
  kBulkPlaceholder,      ///< I — latest partial solution, input to G
  kSolutionPlaceholder,  ///< S_i — solution set, input to ∆
  kWorksetPlaceholder,   ///< W_i — workset, input to ∆
  kIterationResult,      ///< output of a converged iteration
};

std::string_view OperatorKindName(OperatorKind kind);

/// True for operators that produce output from one record at a time
/// (Map, Filter, Match, Cross) — the microstep condition of Section 5.2.
bool IsRecordAtATime(OperatorKind kind);

using NodeId = int;
constexpr NodeId kInvalidNode = -1;

/// One logical operator. Plain data; owned by Plan.
struct LogicalNode {
  NodeId id = kInvalidNode;
  OperatorKind kind = OperatorKind::kMap;
  std::string name;
  std::vector<NodeId> inputs;

  /// Grouping / join keys. Unary operators use key_left.
  KeySpec key_left;
  KeySpec key_right;

  // UDF slots; which one is set depends on `kind`.
  MapUdf map_udf;
  FilterUdf filter_udf;
  ReduceUdf reduce_udf;
  MatchUdf match_udf;      // also Cross
  CoGroupUdf cogroup_udf;  // also InnerCoGroup
  CombineFn combiner;      // optional, for Reduce

  /// Source payload (shared so plans stay cheap to copy).
  std::shared_ptr<std::vector<Record>> source_data;
  /// Sink destination; filled after execution.
  std::vector<Record>* sink_out = nullptr;

  /// OutputContract-style annotations (paper footnote 3): which input fields
  /// the UDF copies unchanged to which output fields. Lets the optimizer
  /// propagate partitioning/sort properties through user code — the
  /// mechanism behind the Figure 4 broadcast plan. Index 0: left/only input,
  /// index 1: right input.
  struct FieldPreservation {
    int from = -1;
    int to = -1;
  };
  std::vector<FieldPreservation> preserved_fields[2];

  /// Which iteration body this node belongs to (-1: none). Bulk and workset
  /// iterations have separate id spaces; `iteration_is_workset` picks one.
  int iteration_id = -1;
  bool iteration_is_workset = false;
  /// For kIterationResult: which iteration it returns (-1 otherwise).
  int result_of_bulk = -1;
  int result_of_workset = -1;

  /// Cardinality estimate used by the optimizer.
  double estimated_rows = 0;
};

/// How a workset iteration executes (Section 5.2/5.3).
enum class IterationMode {
  kSuperstep,  ///< synchronized supersteps with barrier
  kMicrostep,  ///< asynchronous microsteps (requires the §5.2 conditions)
  kAuto,       ///< microstep if the plan qualifies, else superstep
};

/// Bulk iteration (G, I, O, T | n), Section 4.1.
struct BulkIterationSpec {
  int id = -1;
  NodeId initial_input = kInvalidNode;  ///< provides S_0 (outside the body)
  NodeId body_input = kInvalidNode;     ///< I placeholder node
  NodeId body_output = kInvalidNode;    ///< O: node producing the next partial solution
  /// T: body node whose emitted-record count decides continuation; the
  /// iteration continues while T emits at least one record. kInvalidNode
  /// means "fixed number of iterations" semantics.
  NodeId term_criterion = kInvalidNode;
  NodeId result_node = kInvalidNode;
  int max_iterations = 20;
  /// Partitioning key of the partial solution, if stable across supersteps;
  /// lets the optimizer treat the feedback edge as partitioning-preserving.
  KeySpec solution_key;
};

/// Workset (incremental) iteration (∆, S0, W0), Section 5.1.
struct WorksetIterationSpec {
  int id = -1;
  NodeId initial_solution = kInvalidNode;
  NodeId initial_workset = kInvalidNode;
  NodeId solution_placeholder = kInvalidNode;
  NodeId workset_placeholder = kInvalidNode;
  NodeId delta_output = kInvalidNode;         ///< D_{i+1} producer
  NodeId next_workset_output = kInvalidNode;  ///< W_{i+1} producer
  NodeId result_node = kInvalidNode;
  /// Key k(s) identifying records of the solution set.
  KeySpec solution_key;
  /// Conflict resolution for S ∪̇ D when several delta records share a key:
  /// the larger record wins (CPO successor). Null: last write wins.
  RecordOrder comparator;
  IterationMode mode = IterationMode::kAuto;
  int max_iterations = 1000000;  ///< safety cap; worksets normally drain first
};

class BulkIterationHandle;
class WorksetIterationHandle;

/// A complete logical dataflow: nodes + iteration specs. Build through
/// PlanBuilder.
class Plan {
 public:
  const std::vector<LogicalNode>& nodes() const { return nodes_; }
  const LogicalNode& node(NodeId id) const { return nodes_.at(id); }
  LogicalNode& mutable_node(NodeId id) { return nodes_.at(id); }

  const std::vector<BulkIterationSpec>& bulk_iterations() const {
    return bulk_iterations_;
  }
  const std::vector<WorksetIterationSpec>& workset_iterations() const {
    return workset_iterations_;
  }

  /// Consumers of each node (computed lazily from inputs).
  std::vector<std::vector<NodeId>> BuildConsumerIndex() const;

  /// Pretty-printed plan for debugging / EXPLAIN-style output.
  std::string ToString() const;

 private:
  friend class PlanBuilder;
  friend class BulkIterationHandle;
  friend class WorksetIterationHandle;
  std::vector<LogicalNode> nodes_;
  std::vector<BulkIterationSpec> bulk_iterations_;
  std::vector<WorksetIterationSpec> workset_iterations_;
};

}  // namespace sfdf
