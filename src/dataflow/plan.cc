#include "dataflow/plan.h"

#include <sstream>

namespace sfdf {

std::string_view OperatorKindName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kSource: return "Source";
    case OperatorKind::kSink: return "Sink";
    case OperatorKind::kMap: return "Map";
    case OperatorKind::kFilter: return "Filter";
    case OperatorKind::kReduce: return "Reduce";
    case OperatorKind::kMatch: return "Match";
    case OperatorKind::kCross: return "Cross";
    case OperatorKind::kCoGroup: return "CoGroup";
    case OperatorKind::kInnerCoGroup: return "InnerCoGroup";
    case OperatorKind::kUnion: return "Union";
    case OperatorKind::kBulkPlaceholder: return "I";
    case OperatorKind::kSolutionPlaceholder: return "S";
    case OperatorKind::kWorksetPlaceholder: return "W";
    case OperatorKind::kIterationResult: return "IterationResult";
  }
  return "Unknown";
}

bool IsRecordAtATime(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kMap:
    case OperatorKind::kFilter:
    case OperatorKind::kMatch:
    case OperatorKind::kCross:
      return true;
    default:
      return false;
  }
}

std::vector<std::vector<NodeId>> Plan::BuildConsumerIndex() const {
  std::vector<std::vector<NodeId>> consumers(nodes_.size());
  for (const LogicalNode& node : nodes_) {
    for (NodeId input : node.inputs) {
      consumers[input].push_back(node.id);
    }
  }
  return consumers;
}

std::string Plan::ToString() const {
  std::ostringstream out;
  out << "Plan{\n";
  for (const LogicalNode& node : nodes_) {
    out << "  #" << node.id << " " << OperatorKindName(node.kind) << " '"
        << node.name << "'";
    if (!node.inputs.empty()) {
      out << " <- [";
      for (size_t i = 0; i < node.inputs.size(); ++i) {
        if (i > 0) out << ", ";
        out << node.inputs[i];
      }
      out << "]";
    }
    if (node.key_left.num_fields() > 0) out << " keyL=" << node.key_left.ToString();
    if (node.key_right.num_fields() > 0)
      out << " keyR=" << node.key_right.ToString();
    if (node.iteration_id >= 0) out << " iter=" << node.iteration_id;
    out << " rows~" << node.estimated_rows;
    out << "\n";
  }
  for (const BulkIterationSpec& spec : bulk_iterations_) {
    out << "  bulk-iteration #" << spec.id << ": I=#" << spec.body_input
        << " O=#" << spec.body_output << " T=#" << spec.term_criterion
        << " max=" << spec.max_iterations << "\n";
  }
  for (const WorksetIterationSpec& spec : workset_iterations_) {
    out << "  workset-iteration #" << spec.id << ": S=#"
        << spec.solution_placeholder << " W=#" << spec.workset_placeholder
        << " D=#" << spec.delta_output << " W'=#" << spec.next_workset_output
        << " key=" << spec.solution_key.ToString() << "\n";
  }
  out << "}";
  return out.str();
}

}  // namespace sfdf
