// Fluent construction of logical plans.
//
// Example (PageRank skeleton, Figure 3):
//
//   PlanBuilder pb;
//   auto ranks = pb.Source("p", ranks_data);            // (pid, rank)
//   auto links = pb.Source("A", matrix_data);           // (tid, pid, prob)
//   auto it = pb.BeginBulkIteration("pr", ranks, 20, /*solution_key=*/{0});
//   auto contrib = pb.Match("joinPA", it.PartialSolution(), links,
//                           {0}, {1}, JoinUdf);
//   auto next = pb.Reduce("sum", contrib, {0}, SumUdf);
//   auto result = it.Close(next);
//   pb.Sink("out", result, &output);
//   Plan plan = std::move(pb).Finish();
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dataflow/plan.h"

namespace sfdf {

class PlanBuilder;

/// Handle to a logical node inside a builder; returned by every operator
/// factory and accepted as operator input.
class DataSet {
 public:
  DataSet() = default;
  NodeId id() const { return id_; }
  bool valid() const { return id_ != kInvalidNode; }

 private:
  friend class PlanBuilder;
  friend class BulkIterationHandle;
  friend class WorksetIterationHandle;
  DataSet(PlanBuilder* builder, NodeId id) : builder_(builder), id_(id) {}
  PlanBuilder* builder_ = nullptr;
  NodeId id_ = kInvalidNode;
};

/// Open bulk iteration; created by PlanBuilder::BeginBulkIteration.
class BulkIterationHandle {
 public:
  /// The I placeholder — the latest partial solution, input to the body G.
  DataSet PartialSolution() const { return partial_solution_; }

  /// Closes the body with O = `next_partial_solution`, optional termination
  /// criterion T (iteration continues while T emits records). Returns the
  /// iteration-result node usable downstream.
  DataSet Close(DataSet next_partial_solution,
                DataSet term_criterion = DataSet());

 private:
  friend class PlanBuilder;
  PlanBuilder* builder_ = nullptr;
  int spec_index = -1;
  DataSet partial_solution_;
};

/// Open workset iteration; created by PlanBuilder::BeginWorksetIteration.
class WorksetIterationHandle {
 public:
  /// S_i — the solution set placeholder. Must feed a Match / CoGroup /
  /// InnerCoGroup keyed on the solution key (the operator the S index is
  /// merged into, Section 5.3).
  DataSet SolutionSet() const { return solution_; }
  /// W_i — the current workset.
  DataSet Workset() const { return workset_; }

  /// Closes the body: D = `delta` (records merged into S via ∪̇),
  /// W' = `next_workset`. Returns the iteration result (final S).
  DataSet Close(DataSet delta, DataSet next_workset);

 private:
  friend class PlanBuilder;
  PlanBuilder* builder_ = nullptr;
  int spec_index = -1;
  DataSet solution_;
  DataSet workset_;
};

/// Builds a Plan. Single-use: call Finish() exactly once.
class PlanBuilder {
 public:
  PlanBuilder() = default;

  /// In-memory source. The data vector is shared, not copied.
  DataSet Source(const std::string& name,
                 std::shared_ptr<std::vector<Record>> data);
  DataSet Source(const std::string& name, std::vector<Record> data);

  DataSet Map(const std::string& name, DataSet input, MapUdf udf);
  DataSet Filter(const std::string& name, DataSet input, FilterUdf udf);

  /// Reduce groups `input` on `key`; optional `combiner` enables chained
  /// pre-aggregation before the shuffle.
  DataSet Reduce(const std::string& name, DataSet input, KeySpec key,
                 ReduceUdf udf, CombineFn combiner = nullptr);

  DataSet Match(const std::string& name, DataSet left, DataSet right,
                KeySpec left_key, KeySpec right_key, MatchUdf udf);
  DataSet Cross(const std::string& name, DataSet left, DataSet right,
                CrossUdf udf);
  DataSet CoGroup(const std::string& name, DataSet left, DataSet right,
                  KeySpec left_key, KeySpec right_key, CoGroupUdf udf);
  /// CoGroup that drops keys missing on either side (inner-join flavor).
  DataSet InnerCoGroup(const std::string& name, DataSet left, DataSet right,
                       KeySpec left_key, KeySpec right_key, CoGroupUdf udf);
  DataSet Union(const std::string& name, DataSet left, DataSet right);

  /// Terminal operator: collects the distributed result into `*out`.
  void Sink(const std::string& name, DataSet input, std::vector<Record>* out);

  /// Declares that `op`'s UDF copies input field `from` (of input
  /// `input_index`, 0=left 1=right) unchanged into output field `to`
  /// (an OutputContract; see LogicalNode::FieldPreservation).
  void DeclarePreserved(DataSet op, int input_index, int from, int to);

  BulkIterationHandle BeginBulkIteration(const std::string& name,
                                         DataSet initial, int max_iterations,
                                         KeySpec solution_key = KeySpec());

  WorksetIterationHandle BeginWorksetIteration(
      const std::string& name, DataSet initial_solution,
      DataSet initial_workset, KeySpec solution_key,
      RecordOrder comparator = nullptr,
      IterationMode mode = IterationMode::kAuto, int max_iterations = 1000000);

  /// Validates and returns the plan. Aborts on structurally invalid plans
  /// (Status-returning validation is available via Validate()).
  Plan Finish() &&;

  /// Structural validation; called by Finish.
  Status Validate() const;

 private:
  friend class BulkIterationHandle;
  friend class WorksetIterationHandle;

  NodeId AddNode(OperatorKind kind, const std::string& name,
                 std::vector<NodeId> inputs);
  double EstimateRows(const LogicalNode& node) const;

  Plan plan_;
  /// Iteration currently being built (-1: none). Nodes created while an
  /// iteration is open become part of its body.
  int open_iteration_ = -1;
  bool open_is_workset_ = false;
  bool finished_ = false;
};

}  // namespace sfdf
