#include "dataflow/plan_builder.h"

#include <algorithm>

#include "common/logging.h"

namespace sfdf {

NodeId PlanBuilder::AddNode(OperatorKind kind, const std::string& name,
                            std::vector<NodeId> inputs) {
  SFDF_CHECK(!finished_) << "PlanBuilder already finished";
  for (NodeId input : inputs) {
    SFDF_CHECK(input >= 0 && input < static_cast<NodeId>(plan_.nodes_.size()))
        << "unknown input node " << input << " for '" << name << "'";
  }
  LogicalNode node;
  node.id = static_cast<NodeId>(plan_.nodes_.size());
  node.kind = kind;
  node.name = name;
  node.inputs = std::move(inputs);
  node.iteration_id = open_iteration_;
  node.iteration_is_workset = open_is_workset_;
  plan_.nodes_.push_back(std::move(node));
  return plan_.nodes_.back().id;
}

double PlanBuilder::EstimateRows(const LogicalNode& node) const {
  auto in_rows = [&](int i) {
    return plan_.nodes_[node.inputs[i]].estimated_rows;
  };
  switch (node.kind) {
    case OperatorKind::kSource:
      return node.source_data ? static_cast<double>(node.source_data->size())
                              : 0;
    case OperatorKind::kMap:
      return in_rows(0);
    case OperatorKind::kFilter:
      return in_rows(0) * 0.5;
    case OperatorKind::kReduce:
      return in_rows(0) * 0.25;  // groups shrink the stream
    case OperatorKind::kMatch:
      return std::max(in_rows(0), in_rows(1));
    case OperatorKind::kCross:
      return in_rows(0) * in_rows(1);
    case OperatorKind::kCoGroup:
    case OperatorKind::kInnerCoGroup:
      return std::max(in_rows(0), in_rows(1)) * 0.5;
    case OperatorKind::kUnion:
      return in_rows(0) + in_rows(1);
    case OperatorKind::kSink:
    case OperatorKind::kBulkPlaceholder:
    case OperatorKind::kSolutionPlaceholder:
    case OperatorKind::kWorksetPlaceholder:
    case OperatorKind::kIterationResult:
      return node.inputs.empty() ? 0 : in_rows(0);
  }
  return 0;
}

DataSet PlanBuilder::Source(const std::string& name,
                            std::shared_ptr<std::vector<Record>> data) {
  NodeId id = AddNode(OperatorKind::kSource, name, {});
  LogicalNode& node = plan_.nodes_[id];
  node.source_data = std::move(data);
  node.iteration_id = -1;  // sources are never body nodes
  node.estimated_rows = EstimateRows(node);
  return DataSet(this, id);
}

DataSet PlanBuilder::Source(const std::string& name,
                            std::vector<Record> data) {
  return Source(name,
                std::make_shared<std::vector<Record>>(std::move(data)));
}

DataSet PlanBuilder::Map(const std::string& name, DataSet input, MapUdf udf) {
  NodeId id = AddNode(OperatorKind::kMap, name, {input.id()});
  plan_.nodes_[id].map_udf = std::move(udf);
  plan_.nodes_[id].estimated_rows = EstimateRows(plan_.nodes_[id]);
  return DataSet(this, id);
}

DataSet PlanBuilder::Filter(const std::string& name, DataSet input,
                            FilterUdf udf) {
  NodeId id = AddNode(OperatorKind::kFilter, name, {input.id()});
  plan_.nodes_[id].filter_udf = std::move(udf);
  plan_.nodes_[id].estimated_rows = EstimateRows(plan_.nodes_[id]);
  return DataSet(this, id);
}

DataSet PlanBuilder::Reduce(const std::string& name, DataSet input,
                            KeySpec key, ReduceUdf udf, CombineFn combiner) {
  NodeId id = AddNode(OperatorKind::kReduce, name, {input.id()});
  LogicalNode& node = plan_.nodes_[id];
  node.key_left = key;
  node.reduce_udf = std::move(udf);
  node.combiner = std::move(combiner);
  node.estimated_rows = EstimateRows(node);
  return DataSet(this, id);
}

DataSet PlanBuilder::Match(const std::string& name, DataSet left,
                           DataSet right, KeySpec left_key, KeySpec right_key,
                           MatchUdf udf) {
  SFDF_CHECK(left_key.num_fields() == right_key.num_fields())
      << "Match key arity mismatch in '" << name << "'";
  NodeId id = AddNode(OperatorKind::kMatch, name, {left.id(), right.id()});
  LogicalNode& node = plan_.nodes_[id];
  node.key_left = left_key;
  node.key_right = right_key;
  node.match_udf = std::move(udf);
  node.estimated_rows = EstimateRows(node);
  return DataSet(this, id);
}

DataSet PlanBuilder::Cross(const std::string& name, DataSet left,
                           DataSet right, CrossUdf udf) {
  NodeId id = AddNode(OperatorKind::kCross, name, {left.id(), right.id()});
  LogicalNode& node = plan_.nodes_[id];
  node.match_udf = std::move(udf);
  node.estimated_rows = EstimateRows(node);
  return DataSet(this, id);
}

DataSet PlanBuilder::CoGroup(const std::string& name, DataSet left,
                             DataSet right, KeySpec left_key,
                             KeySpec right_key, CoGroupUdf udf) {
  SFDF_CHECK(left_key.num_fields() == right_key.num_fields())
      << "CoGroup key arity mismatch in '" << name << "'";
  NodeId id = AddNode(OperatorKind::kCoGroup, name, {left.id(), right.id()});
  LogicalNode& node = plan_.nodes_[id];
  node.key_left = left_key;
  node.key_right = right_key;
  node.cogroup_udf = std::move(udf);
  node.estimated_rows = EstimateRows(node);
  return DataSet(this, id);
}

DataSet PlanBuilder::InnerCoGroup(const std::string& name, DataSet left,
                                  DataSet right, KeySpec left_key,
                                  KeySpec right_key, CoGroupUdf udf) {
  SFDF_CHECK(left_key.num_fields() == right_key.num_fields())
      << "InnerCoGroup key arity mismatch in '" << name << "'";
  NodeId id =
      AddNode(OperatorKind::kInnerCoGroup, name, {left.id(), right.id()});
  LogicalNode& node = plan_.nodes_[id];
  node.key_left = left_key;
  node.key_right = right_key;
  node.cogroup_udf = std::move(udf);
  node.estimated_rows = EstimateRows(node);
  return DataSet(this, id);
}

DataSet PlanBuilder::Union(const std::string& name, DataSet left,
                           DataSet right) {
  NodeId id = AddNode(OperatorKind::kUnion, name, {left.id(), right.id()});
  plan_.nodes_[id].estimated_rows = EstimateRows(plan_.nodes_[id]);
  return DataSet(this, id);
}

void PlanBuilder::Sink(const std::string& name, DataSet input,
                       std::vector<Record>* out) {
  SFDF_CHECK(open_iteration_ == -1) << "Sink inside an open iteration body";
  NodeId id = AddNode(OperatorKind::kSink, name, {input.id()});
  plan_.nodes_[id].sink_out = out;
  plan_.nodes_[id].estimated_rows = EstimateRows(plan_.nodes_[id]);
}

void PlanBuilder::DeclarePreserved(DataSet op, int input_index, int from,
                                   int to) {
  SFDF_CHECK(op.valid() && input_index >= 0 && input_index < 2);
  LogicalNode& node = plan_.nodes_[op.id()];
  node.preserved_fields[input_index].push_back(
      LogicalNode::FieldPreservation{from, to});
}

BulkIterationHandle PlanBuilder::BeginBulkIteration(const std::string& name,
                                                    DataSet initial,
                                                    int max_iterations,
                                                    KeySpec solution_key) {
  SFDF_CHECK(open_iteration_ == -1) << "nested iterations are not supported";
  BulkIterationSpec spec;
  spec.id = static_cast<int>(plan_.bulk_iterations_.size());
  spec.initial_input = initial.id();
  spec.max_iterations = max_iterations;
  spec.solution_key = solution_key;

  open_iteration_ = spec.id;
  open_is_workset_ = false;
  NodeId input_id =
      AddNode(OperatorKind::kBulkPlaceholder, name + ".I", {initial.id()});
  plan_.nodes_[input_id].estimated_rows =
      plan_.nodes_[initial.id()].estimated_rows;
  spec.body_input = input_id;
  plan_.bulk_iterations_.push_back(spec);

  BulkIterationHandle handle;
  handle.builder_ = this;
  handle.spec_index = spec.id;
  handle.partial_solution_ = DataSet(this, input_id);
  return handle;
}

DataSet BulkIterationHandle::Close(DataSet next_partial_solution,
                                   DataSet term_criterion) {
  PlanBuilder* pb = builder_;
  SFDF_CHECK(pb != nullptr && pb->open_iteration_ == spec_index &&
             !pb->open_is_workset_)
      << "Close() on a stale bulk-iteration handle";
  BulkIterationSpec& spec = pb->plan_.bulk_iterations_[spec_index];
  spec.body_output = next_partial_solution.id();
  spec.term_criterion = term_criterion.valid() ? term_criterion.id() : kInvalidNode;

  NodeId result = pb->AddNode(OperatorKind::kIterationResult, "bulk.result",
                              {next_partial_solution.id()});
  pb->plan_.nodes_[result].result_of_bulk = spec_index;
  pb->plan_.nodes_[result].iteration_id = -1;  // result lives outside the body
  pb->plan_.nodes_[result].estimated_rows =
      pb->plan_.nodes_[next_partial_solution.id()].estimated_rows;
  spec.result_node = result;
  pb->open_iteration_ = -1;
  return DataSet(pb, result);
}

WorksetIterationHandle PlanBuilder::BeginWorksetIteration(
    const std::string& name, DataSet initial_solution, DataSet initial_workset,
    KeySpec solution_key, RecordOrder comparator, IterationMode mode,
    int max_iterations) {
  SFDF_CHECK(open_iteration_ == -1) << "nested iterations are not supported";
  SFDF_CHECK(solution_key.num_fields() > 0)
      << "workset iteration requires a solution key";
  WorksetIterationSpec spec;
  spec.id = static_cast<int>(plan_.workset_iterations_.size());
  spec.initial_solution = initial_solution.id();
  spec.initial_workset = initial_workset.id();
  spec.solution_key = solution_key;
  spec.comparator = std::move(comparator);
  spec.mode = mode;
  spec.max_iterations = max_iterations;

  open_iteration_ = spec.id;
  open_is_workset_ = true;
  NodeId s_id = AddNode(OperatorKind::kSolutionPlaceholder, name + ".S",
                        {initial_solution.id()});
  plan_.nodes_[s_id].estimated_rows =
      plan_.nodes_[initial_solution.id()].estimated_rows;
  NodeId w_id = AddNode(OperatorKind::kWorksetPlaceholder, name + ".W",
                        {initial_workset.id()});
  plan_.nodes_[w_id].estimated_rows =
      plan_.nodes_[initial_workset.id()].estimated_rows;
  spec.solution_placeholder = s_id;
  spec.workset_placeholder = w_id;
  plan_.workset_iterations_.push_back(spec);

  WorksetIterationHandle handle;
  handle.builder_ = this;
  handle.spec_index = spec.id;
  handle.solution_ = DataSet(this, s_id);
  handle.workset_ = DataSet(this, w_id);
  return handle;
}

DataSet WorksetIterationHandle::Close(DataSet delta, DataSet next_workset) {
  PlanBuilder* pb = builder_;
  SFDF_CHECK(pb != nullptr && pb->open_iteration_ == spec_index &&
             pb->open_is_workset_)
      << "Close() on a stale workset-iteration handle";
  WorksetIterationSpec& spec = pb->plan_.workset_iterations_[spec_index];
  spec.delta_output = delta.id();
  spec.next_workset_output = next_workset.id();

  NodeId result = pb->AddNode(OperatorKind::kIterationResult, "workset.result",
                              {delta.id()});
  pb->plan_.nodes_[result].result_of_workset = spec_index;
  pb->plan_.nodes_[result].iteration_id = -1;
  pb->plan_.nodes_[result].estimated_rows =
      pb->plan_.nodes_[spec.initial_solution].estimated_rows;
  spec.result_node = result;
  pb->open_iteration_ = -1;
  return DataSet(pb, result);
}

Status PlanBuilder::Validate() const {
  if (open_iteration_ != -1) {
    return Status::InvalidArgument("an iteration body is still open");
  }
  bool has_sink = false;
  for (const LogicalNode& node : plan_.nodes_) {
    if (node.kind == OperatorKind::kSink) has_sink = true;
    for (NodeId input : node.inputs) {
      if (input < 0 || input >= static_cast<NodeId>(plan_.nodes_.size())) {
        return Status::InvalidArgument("node '" + node.name +
                                       "' references unknown input");
      }
      // DAG property: inputs must precede the node (builder emits in
      // topological order by construction).
      if (input >= node.id) {
        return Status::InvalidArgument("node '" + node.name +
                                       "' has a forward reference");
      }
    }
    switch (node.kind) {
      case OperatorKind::kMap:
        if (!node.map_udf) return Status::InvalidArgument(node.name + ": missing map UDF");
        break;
      case OperatorKind::kFilter:
        if (!node.filter_udf)
          return Status::InvalidArgument(node.name + ": missing filter UDF");
        break;
      case OperatorKind::kReduce:
        if (!node.reduce_udf)
          return Status::InvalidArgument(node.name + ": missing reduce UDF");
        if (node.key_left.empty())
          return Status::InvalidArgument(node.name + ": reduce without key");
        break;
      case OperatorKind::kMatch:
        if (!node.match_udf)
          return Status::InvalidArgument(node.name + ": missing match UDF");
        if (node.key_left.empty() || node.key_right.empty())
          return Status::InvalidArgument(node.name + ": match without keys");
        break;
      case OperatorKind::kCross:
        if (!node.match_udf)
          return Status::InvalidArgument(node.name + ": missing cross UDF");
        break;
      case OperatorKind::kCoGroup:
      case OperatorKind::kInnerCoGroup:
        if (!node.cogroup_udf)
          return Status::InvalidArgument(node.name + ": missing cogroup UDF");
        break;
      default:
        break;
    }
  }
  // Iteration bodies: outputs must belong to the body.
  for (const BulkIterationSpec& spec : plan_.bulk_iterations_) {
    if (spec.body_output == kInvalidNode) {
      return Status::InvalidArgument("bulk iteration was never closed");
    }
    if (plan_.nodes_[spec.body_output].iteration_id != spec.id) {
      return Status::InvalidArgument("bulk iteration output is not a body node");
    }
  }
  for (const WorksetIterationSpec& spec : plan_.workset_iterations_) {
    if (spec.delta_output == kInvalidNode ||
        spec.next_workset_output == kInvalidNode) {
      return Status::InvalidArgument("workset iteration was never closed");
    }
  }
  if (!has_sink) {
    return Status::InvalidArgument("plan has no sink");
  }
  return Status::OK();
}

Plan PlanBuilder::Finish() && {
  Status st = Validate();
  SFDF_CHECK(st.ok()) << "invalid plan: " << st.ToString();
  finished_ = true;
  return std::move(plan_);
}

}  // namespace sfdf
