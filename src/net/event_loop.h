// A dependency-free epoll event loop — the I/O half of the network serving
// gateway (src/service/gateway.h).
//
// One EventLoop is driven by ONE dedicated controller thread calling Run().
// That thread is never an engine pool worker: the runtime-v3 contract (pool
// workers must not block on other pool tasks, see runtime/engine.h) stays
// intact because all socket readiness waiting happens here, outside the
// pool, and everything the loop hands to the serving layer is dispatched to
// controller-side worker threads that are allowed to block.
//
// Threading model (the usual reactor discipline):
//   * Fd handlers, posted callbacks and timer callbacks all run on the loop
//     thread — state touched only from callbacks needs no locking.
//   * Post() is the only way other threads talk to the loop; it enqueues a
//     callback and wakes the epoll_wait via an eventfd.
//   * Stop() is thread-safe and makes Run() return after the current
//     dispatch round.
//
// Fd registrations carry a generation token so a stale readiness event for
// a just-closed-and-reused fd number (close + accept inside one dispatch
// round) can never reach the new owner's callbacks.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace sfdf {
namespace net {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Creates the epoll instance and the wake eventfd. Aborts (SFDF_CHECK)
  /// if the kernel refuses either — there is no meaningful fallback.
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with read interest. `on_readable` / `on_writable` run
  /// on the loop thread; `on_writable` only fires while write interest is
  /// enabled (SetWriteInterest). Loop thread only.
  void Add(int fd, Callback on_readable, Callback on_writable);

  /// Toggles EPOLLIN for `fd` — disabling read interest is how a
  /// connection under write backpressure stops accepting new requests.
  /// Loop thread only.
  void SetReadInterest(int fd, bool enabled);

  /// Toggles EPOLLOUT for `fd`. Loop thread only.
  void SetWriteInterest(int fd, bool enabled);

  /// Deregisters `fd` (does not close it). Pending events already fetched
  /// for this fd are dropped via the generation token. Loop thread only.
  void Remove(int fd);

  /// Runs the loop on the calling thread until Stop().
  void Run();

  /// Makes Run() return; safe from any thread, idempotent.
  void Stop();

  /// Enqueues `fn` to run on the loop thread; safe from any thread. After
  /// Stop() the callback is silently dropped (the loop is winding down and
  /// the state it would touch is being torn off).
  void Post(Callback fn);

  /// Runs `fn` on the loop thread after `delay`; returns a timer id usable
  /// with CancelTimer. Loop thread only (the gateway arms timers from
  /// handlers).
  uint64_t RunAfter(std::chrono::milliseconds delay, Callback fn);

  /// Cancels a pending timer; a no-op if it already fired. Loop thread
  /// only.
  void CancelTimer(uint64_t id);

  /// Number of registered fds (excludes the internal wake fd).
  int num_fds() const { return static_cast<int>(handlers_.size()); }

 private:
  struct Handler {
    Callback on_readable;
    Callback on_writable;
    uint64_t token = 0;
    uint32_t interest = 0;  ///< current EPOLLIN/EPOLLOUT mask
  };
  struct Timer {
    std::chrono::steady_clock::time_point deadline;
    uint64_t id = 0;
    Callback fn;
  };

  void UpdateInterest(int fd, Handler* handler, uint32_t interest);
  int NextTimeoutMillis() const;
  void RunDueTimers();
  void DrainPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::map<int, Handler> handlers_;  ///< loop thread only
  /// Generation-token → fd index so event dispatch resolves a token in
  /// O(log n) instead of scanning handlers_; kept in sync by Add/Remove.
  std::map<uint64_t, int> fd_of_token_;
  uint64_t next_token_ = 1;
  std::vector<Timer> timers_;  ///< sorted min-heap by deadline
  uint64_t next_timer_id_ = 1;

  std::mutex post_mutex_;
  std::vector<Callback> posted_;
  bool stopped_ = false;  ///< guarded by post_mutex_
};

}  // namespace net
}  // namespace sfdf
