// The gateway's binary wire format: length-prefixed frames with strict
// bounds checking, built on the record/serde primitives.
//
// ## Frame layout (all integers little-endian)
//
//   offset  size  field
//        0     4  magic       the ASCII bytes "SFDF" (a little-endian
//                             uint32 load of them reads 0x46444653)
//        4     1  version     kFrameVersion (1)
//        5     1  opcode      Opcode
//        6     2  status      responses: WireCode. Requests: the tenant
//                             auth token (0 when the tenant is unsecured)
//                             — the header's formerly-reserved space,
//                             reused so authenticated requests cost zero
//                             extra bytes
//        8     8  request_id  client-chosen, echoed verbatim in the response
//       16     4  payload_len bytes following the header; bounded by
//                             kMaxPayloadBytes
//       20  ....  payload     opcode-specific (see service/gateway.h)
//
// ## Error discipline
//
// The decoder distinguishes "need more bytes" (a clean prefix of a valid
// frame — keep reading) from a protocol violation (bad magic, unknown
// version, oversize declared length). A violation is unrecoverable for the
// STREAM — there is no way to resynchronize a length-prefixed protocol —
// so the gateway closes that connection; but only that connection. The
// payload of a well-formed frame is parsed with the same
// bounds-checked-cursor discipline (PayloadReader): a malformed payload
// yields a per-request error response, never undefined behavior.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/mutation.h"
#include "record/record.h"

namespace sfdf {
namespace net {

/// LE uint32 load of the bytes "SFDF".
constexpr uint32_t kFrameMagic = 0x46444653u;
constexpr uint8_t kFrameVersion = 1;
constexpr size_t kFrameHeaderBytes = 20;
/// Upper bound on a frame payload; a declared length above this is a
/// protocol violation (it would otherwise let one client commit the server
/// to an arbitrary allocation).
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

/// Request/response kinds. Responses echo the request's opcode; the status
/// field tells success from failure.
enum class Opcode : uint8_t {
  kPing = 1,          ///< empty payload; response echoes it (RTT floor)
  kQuery = 2,         ///< tenant + probe record -> found flag + record
  kSnapshot = 3,      ///< tenant -> full epoch-consistent solution set
  kMutateBatch = 4,   ///< tenant + mutations -> ticket, answered at commit
  kStats = 5,         ///< tenant -> ServiceStats + gateway counters
  kReconfigure = 6,   ///< admin: tenant + u32 partitions (0 = keep) +
                      ///< string pool ("" = keep) -> u32 new parallelism
  kSnapshotPage = 7,  ///< tenant + u64 cursor + u32 max records -> one
                      ///< bounded page (epoch, next cursor, records)
  kTelemetry = 8,     ///< u8 include_trace + u32 max events/thread ->
                      ///< metrics exposition text + optional trace JSON.
                      ///< Tenant-less (like Ping): the exposition carries
                      ///< per-tenant labels instead. Supersedes kStats for
                      ///< new fields — the StatField array stays frozen.
};
std::string_view OpcodeName(Opcode opcode);

/// Wire-level result codes, chosen so clients can decide retry-vs-reject
/// without parsing messages.
enum class WireCode : uint16_t {
  kOk = 0,
  kRetry = 1,          ///< transient overload (ResourceExhausted): back off
  kReject = 2,         ///< the request itself is invalid; do not retry
  kNotFound = 3,       ///< query key unknown to the solution set
  kUnknownTenant = 4,  ///< no hosted service under that name
  kBadRequest = 5,     ///< malformed payload inside a well-formed frame
  kInternal = 6,       ///< server-side failure
  kUnauthorized = 7,   ///< tenant auth token missing or wrong; do not retry
};
std::string_view WireCodeName(WireCode code);

/// Maps a service-layer Status onto the wire taxonomy.
WireCode WireCodeOf(const Status& status);

/// Field ids of a Stats response payload (u32 count, then per entry a u16
/// StatField + f64 value — integral counters are carried as exact doubles,
/// all being far below 2^53). Unknown ids must be skipped by clients so
/// servers can add fields.
enum class StatField : uint16_t {
  kRounds = 1,
  kMutationsApplied = 2,
  kMutationsRejected = 3,
  kAdmissionQueueDepth = 4,
  kTotalSupersteps = 5,
  kRoundP50Ms = 6,
  kRoundP95Ms = 7,
  kRoundP99Ms = 8,
  kEpoch = 9,
  kEngineWorkers = 10,
  kEngineTasks = 11,
  kEngineQueueWaitTotalMs = 12,
  kEngineParks = 13,
  kEngineWakes = 14,
  kReconfigs = 15,
  kReconfigMsLast = 16,
  // Barrier-free (async / bounded-stale) execution; zero on superstep
  // tenants.
  kAsyncLocalRounds = 17,
  kAsyncVoteRevocations = 18,
  kAsyncMaxStaleness = 19,
};

struct Frame {
  Opcode opcode = Opcode::kPing;
  WireCode status = WireCode::kOk;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Appends the wire image of `frame` (header + payload) to `out`. The
/// payload must respect kMaxPayloadBytes (checked).
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

/// Incremental decoder for one connection's byte stream.
class FrameDecoder {
 public:
  /// `max_payload` lets a server tighten the global bound per connection.
  explicit FrameDecoder(uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Appends raw socket bytes.
  void Feed(const uint8_t* data, size_t n);

  /// Tries to decode the next complete frame. Returns OK with *got=true
  /// and *out filled; OK with *got=false when more bytes are needed; or a
  /// non-OK status on a protocol violation (close the connection).
  Status Next(bool* got, Frame* out);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const uint32_t max_payload_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
};

// ---------------------------------------------------------------------------
// Payload building blocks. Writers append to a byte vector; PayloadReader
// is a bounds-checked cursor that goes (and stays) failed on any overrun,
// so call sites can parse eagerly and check status() once.
// ---------------------------------------------------------------------------

void PutU8(uint8_t v, std::vector<uint8_t>* out);
void PutU16(uint16_t v, std::vector<uint8_t>* out);
void PutU32(uint32_t v, std::vector<uint8_t>* out);
void PutU64(uint64_t v, std::vector<uint8_t>* out);
void PutI64(int64_t v, std::vector<uint8_t>* out);
void PutF64(double v, std::vector<uint8_t>* out);
/// u16 length + raw bytes; strings above 64 KiB are a programming error.
void PutString(std::string_view s, std::vector<uint8_t>* out);
/// u32 length + raw bytes — the large-blob sibling of PutString, for
/// payloads that outgrow 64 KiB (telemetry exposition text, trace dumps).
/// Still bounded by the frame payload cap at encode time.
void PutBytes(std::string_view s, std::vector<uint8_t>* out);
/// Reuses record/serde's SerializeRecord image.
void PutRecord(const Record& rec, std::vector<uint8_t>* out);
/// Wire image of one graph mutation: u8 kind, i64 u, i64 v, f64 value.
void PutMutation(const GraphMutation& mutation, std::vector<uint8_t>* out);

class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<uint8_t>& data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64();
  double F64();
  std::string String();
  /// u32-length counterpart of String() (PutBytes image).
  std::string Bytes();
  Record ReadRecord();
  /// Fails the reader on an unknown kind byte (untrusted input).
  GraphMutation ReadMutation();

  /// True once every read so far stayed in bounds AND the cursor consumed
  /// the payload exactly (call at the end: trailing garbage is an error).
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }
  Status status() const {
    return ok_ ? Status::OK()
               : Status::InvalidArgument("malformed request payload");
  }

 private:
  bool Need(size_t n);

  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace net
}  // namespace sfdf
