#include "net/frame.h"

#include <cstring>

#include "common/logging.h"
#include "record/serde.h"

namespace sfdf {
namespace net {

std::string_view OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing: return "Ping";
    case Opcode::kQuery: return "Query";
    case Opcode::kSnapshot: return "Snapshot";
    case Opcode::kMutateBatch: return "MutateBatch";
    case Opcode::kStats: return "Stats";
    case Opcode::kReconfigure: return "Reconfigure";
    case Opcode::kSnapshotPage: return "SnapshotPage";
    case Opcode::kTelemetry: return "Telemetry";
  }
  return "Unknown";
}

std::string_view WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk: return "Ok";
    case WireCode::kRetry: return "Retry";
    case WireCode::kReject: return "Reject";
    case WireCode::kNotFound: return "NotFound";
    case WireCode::kUnknownTenant: return "UnknownTenant";
    case WireCode::kBadRequest: return "BadRequest";
    case WireCode::kInternal: return "Internal";
    case WireCode::kUnauthorized: return "Unauthorized";
  }
  return "Unknown";
}

WireCode WireCodeOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireCode::kOk;
    case StatusCode::kResourceExhausted:
      return WireCode::kRetry;
    case StatusCode::kInvalidArgument:
    case StatusCode::kUnsupported:
      return WireCode::kReject;
    case StatusCode::kNotFound:
      return WireCode::kNotFound;
    case StatusCode::kPermissionDenied:
      return WireCode::kUnauthorized;
    default:
      return WireCode::kInternal;
  }
}

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutF64(double v, std::vector<uint8_t>* out) {
  uint64_t raw;
  std::memcpy(&raw, &v, sizeof(raw));
  PutU64(raw, out);
}

void PutString(std::string_view s, std::vector<uint8_t>* out) {
  SFDF_CHECK(s.size() <= UINT16_MAX) << "wire string too long";
  PutU16(static_cast<uint16_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

void PutBytes(std::string_view s, std::vector<uint8_t>* out) {
  SFDF_CHECK(s.size() <= UINT32_MAX) << "wire blob too long";
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

void PutRecord(const Record& rec, std::vector<uint8_t>* out) {
  SerializeRecord(rec, out);
}

void PutMutation(const GraphMutation& mutation, std::vector<uint8_t>* out) {
  PutU8(static_cast<uint8_t>(mutation.kind), out);
  PutI64(mutation.u, out);
  PutI64(mutation.v, out);
  PutF64(mutation.value, out);
}

bool PayloadReader::Need(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t PayloadReader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

uint16_t PayloadReader::U16() {
  if (!Need(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_] |
                                     (static_cast<uint16_t>(data_[pos_ + 1])
                                      << 8));
  pos_ += 2;
  return v;
}

uint32_t PayloadReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t PayloadReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

int64_t PayloadReader::I64() { return static_cast<int64_t>(U64()); }

double PayloadReader::F64() {
  uint64_t raw = U64();
  double v;
  std::memcpy(&v, &raw, sizeof(v));
  return v;
}

std::string PayloadReader::String() {
  const uint16_t len = U16();
  if (!Need(len)) return std::string();
  std::string s(reinterpret_cast<const char*>(data_.data()) + pos_, len);
  pos_ += len;
  return s;
}

std::string PayloadReader::Bytes() {
  const uint32_t len = U32();
  if (!Need(len)) return std::string();
  std::string s(reinterpret_cast<const char*>(data_.data()) + pos_, len);
  pos_ += len;
  return s;
}

GraphMutation PayloadReader::ReadMutation() {
  GraphMutation mutation;
  const uint8_t kind = U8();
  if (kind > static_cast<uint8_t>(MutationKind::kVertexUpsert)) {
    ok_ = false;
    return mutation;
  }
  mutation.kind = static_cast<MutationKind>(kind);
  mutation.u = I64();
  mutation.v = I64();
  mutation.value = F64();
  return mutation;
}

Record PayloadReader::ReadRecord() {
  Record rec;
  if (!ok_) return rec;
  // Delegate to the serde decoder, which carries its own bounds checks
  // (arity cap, type validation) against untrusted bytes.
  Status status = DeserializeRecord(data_, &pos_, &rec);
  if (!status.ok()) ok_ = false;
  return rec;
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  SFDF_CHECK(frame.payload.size() <= kMaxPayloadBytes)
      << "frame payload over kMaxPayloadBytes";
  out->reserve(out->size() + kFrameHeaderBytes + frame.payload.size());
  PutU32(kFrameMagic, out);
  PutU8(kFrameVersion, out);
  PutU8(static_cast<uint8_t>(frame.opcode), out);
  PutU16(static_cast<uint16_t>(frame.status), out);
  PutU64(frame.request_id, out);
  PutU32(static_cast<uint32_t>(frame.payload.size()), out);
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  // Compact lazily: drop fully-consumed bytes once they dominate the
  // buffer, so a long-lived connection does not grow it forever.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

Status FrameDecoder::Next(bool* got, Frame* out) {
  *got = false;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Status::OK();
  const uint8_t* h = buffer_.data() + consumed_;
  uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<uint32_t>(h[i]) << (8 * i);
  }
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint8_t version = h[4];
  if (version != kFrameVersion) {
    return Status::InvalidArgument("unsupported frame version " +
                                   std::to_string(version));
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(h[16 + i]) << (8 * i);
  }
  if (payload_len > max_payload_) {
    return Status::InvalidArgument("frame payload length " +
                                   std::to_string(payload_len) +
                                   " over limit");
  }
  if (available < kFrameHeaderBytes + payload_len) return Status::OK();

  out->opcode = static_cast<Opcode>(h[5]);
  out->status = static_cast<WireCode>(
      static_cast<uint16_t>(h[6] | (static_cast<uint16_t>(h[7]) << 8)));
  uint64_t request_id = 0;
  for (int i = 0; i < 8; ++i) {
    request_id |= static_cast<uint64_t>(h[8 + i]) << (8 * i);
  }
  out->request_id = request_id;
  out->payload.assign(h + kFrameHeaderBytes,
                      h + kFrameHeaderBytes + payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  *got = true;
  return Status::OK();
}

}  // namespace net
}  // namespace sfdf
