#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace sfdf {
namespace net {

namespace {

/// Heap order: earliest deadline on top (std::push_heap builds a max-heap,
/// so compare reversed).
struct TimerCmp {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a.deadline > b.deadline;
  }
};

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  SFDF_CHECK(epoll_fd_ >= 0) << "epoll_create1 failed";
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  SFDF_CHECK(wake_fd_ >= 0) << "eventfd failed";
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // token 0 = the wake fd
  SFDF_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0)
      << "epoll_ctl(wake) failed";
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::UpdateInterest(int fd, Handler* handler, uint32_t interest) {
  if (handler->interest == interest) return;
  handler->interest = interest;
  epoll_event ev{};
  ev.events = interest;
  ev.data.u64 = handler->token;
  SFDF_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
      << "epoll_ctl(mod) failed for fd " << fd;
}

void EventLoop::Add(int fd, Callback on_readable, Callback on_writable) {
  Handler handler;
  handler.on_readable = std::move(on_readable);
  handler.on_writable = std::move(on_writable);
  handler.token = next_token_++;
  handler.interest = EPOLLIN;
  epoll_event ev{};
  ev.events = handler.interest;
  ev.data.u64 = handler.token;
  SFDF_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl(add) failed for fd " << fd;
  fd_of_token_[handler.token] = fd;
  handlers_[fd] = std::move(handler);
}

void EventLoop::SetReadInterest(int fd, bool enabled) {
  auto it = handlers_.find(fd);
  SFDF_CHECK(it != handlers_.end()) << "interest on unregistered fd " << fd;
  uint32_t interest = it->second.interest;
  interest = enabled ? (interest | EPOLLIN) : (interest & ~EPOLLIN);
  UpdateInterest(fd, &it->second, interest);
}

void EventLoop::SetWriteInterest(int fd, bool enabled) {
  auto it = handlers_.find(fd);
  SFDF_CHECK(it != handlers_.end()) << "interest on unregistered fd " << fd;
  uint32_t interest = it->second.interest;
  interest = enabled ? (interest | EPOLLOUT) : (interest & ~EPOLLOUT);
  UpdateInterest(fd, &it->second, interest);
}

void EventLoop::Remove(int fd) {
  auto it = handlers_.find(fd);
  SFDF_CHECK(it != handlers_.end()) << "remove of unregistered fd " << fd;
  SFDF_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) == 0)
      << "epoll_ctl(del) failed for fd " << fd;
  fd_of_token_.erase(it->second.token);
  handlers_.erase(it);
}

uint64_t EventLoop::RunAfter(std::chrono::milliseconds delay, Callback fn) {
  Timer timer;
  timer.deadline = std::chrono::steady_clock::now() + delay;
  timer.id = next_timer_id_++;
  timer.fn = std::move(fn);
  const uint64_t id = timer.id;
  timers_.push_back(std::move(timer));
  std::push_heap(timers_.begin(), timers_.end(), TimerCmp{});
  return id;
}

void EventLoop::CancelTimer(uint64_t id) {
  auto it = std::find_if(timers_.begin(), timers_.end(),
                         [id](const Timer& t) { return t.id == id; });
  if (it == timers_.end()) return;
  timers_.erase(it);
  std::make_heap(timers_.begin(), timers_.end(), TimerCmp{});
}

int EventLoop::NextTimeoutMillis() const {
  if (timers_.empty()) return -1;  // block until an event or a Post wake
  auto now = std::chrono::steady_clock::now();
  auto until = timers_.front().deadline - now;
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(until);
  return std::max<int>(0, static_cast<int>(ms.count()) + 1);
}

void EventLoop::RunDueTimers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.front().deadline <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), TimerCmp{});
    Timer timer = std::move(timers_.back());
    timers_.pop_back();
    timer.fn();
  }
}

void EventLoop::DrainPosted() {
  std::vector<Callback> batch;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    batch.swap(posted_);
  }
  for (Callback& fn : batch) fn();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(post_mutex_);
      if (stopped_) return;
    }
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents,
                             NextTimeoutMillis());
    if (n < 0) {
      SFDF_CHECK(errno == EINTR) << "epoll_wait failed";
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t token = events[i].data.u64;
      if (token == 0) {  // the wake eventfd: drain the counter
        uint64_t count;
        while (::read(wake_fd_, &count, sizeof(count)) > 0) {
        }
        continue;
      }
      // Re-resolve the fd by token: an earlier callback in this round may
      // have Removed (and even reused) the fd number, but the token dies
      // with the registration that owned it.
      auto found = fd_of_token_.find(token);
      if (found == fd_of_token_.end()) continue;  // stale event, fd removed
      const uint32_t got = events[i].events;
      Handler* handler = &handlers_.at(found->second);
      if ((got & (EPOLLIN | EPOLLERR | EPOLLHUP)) && handler->on_readable) {
        handler->on_readable();
      }
      // The readable callback may have removed the registration.
      found = fd_of_token_.find(token);
      if (found == fd_of_token_.end()) continue;
      handler = &handlers_.at(found->second);
      if ((got & EPOLLOUT) && handler->on_writable) {
        handler->on_writable();
      }
    }
    DrainPosted();
    RunDueTimers();
  }
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stopped_ = true;
  }
  const uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void EventLoop::Post(Callback fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    if (stopped_) return;
    posted_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace net
}  // namespace sfdf
