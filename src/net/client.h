// RpcClient: a small blocking TCP client for the gateway protocol
// (net/frame.h; served by service/gateway.h). One connection, one thread at
// a time — the multi-connection load generator in bench_gateway_qps simply
// opens one client per worker thread. Requests carry monotonically
// increasing request ids; the blocking calls verify the response matches.
//
// For windowed pipelining (several requests in flight on one connection)
// use the split Send*/ReceiveReply primitives and pair responses by
// request id yourself. SendRaw exists for protocol tests: it puts arbitrary
// bytes on the wire so tests can prove a garbage client only kills its own
// connection.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/mutation.h"
#include "net/frame.h"
#include "record/record.h"

namespace sfdf {
namespace net {

class RpcClient {
 public:
  /// Blocking connect to `host:port` (IPv4 dotted quad), TCP_NODELAY on.
  static Result<std::unique_ptr<RpcClient>> Connect(const std::string& host,
                                                    uint16_t port);

  ~RpcClient();  ///< closes the socket
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Auth token stamped into every subsequent request's header status
  /// field (net/frame.h). 0 = unsecured. The gateway rejects a mismatch
  /// against its per-tenant token table with WireCode::kUnauthorized,
  /// which these blocking calls surface as PermissionDenied.
  void set_auth_token(uint16_t token) { auth_token_ = token; }

  /// Round-trip floor: empty frame there and back.
  Status Ping();

  struct QueryReply {
    bool found = false;
    Record record;
    uint64_t epoch = 0;
  };
  /// Batch-consistent point read; `found == false` is a successful reply
  /// for an unknown key, a non-OK status a transport/protocol/tenant error.
  Result<QueryReply> Query(const std::string& tenant, const Record& probe);
  Result<QueryReply> QueryKey(const std::string& tenant, int64_t key);

  struct SnapshotReply {
    std::vector<Record> records;
    uint64_t epoch = 0;
  };
  Result<SnapshotReply> Snapshot(const std::string& tenant);

  struct SnapshotPageReply {
    std::vector<Record> records;
    uint64_t epoch = 0;
    uint64_t next_cursor = 0;  ///< 0 = exhausted; else pass to next call
  };
  /// One bounded page of the tenant's snapshot (cursor 0 = first page,
  /// max_records 0 = server default). Cursors are only valid within one
  /// epoch: if the epoch changed between pages, restart from 0.
  Result<SnapshotPageReply> SnapshotPage(const std::string& tenant,
                                         uint64_t cursor = 0,
                                         uint32_t max_records = 0);
  /// Whole snapshot via the paged opcode — unbounded record counts that
  /// would overflow a single Snapshot frame stream through in pages.
  /// Restarts automatically when a commit lands between pages.
  Result<SnapshotReply> SnapshotAll(const std::string& tenant,
                                    uint32_t max_records_per_page = 0);

  struct MutateReply {
    uint64_t ticket = 0;  ///< the batch's round committed up to this ticket
  };
  /// Sends the batch and blocks until the gateway reports its round
  /// committed. Admission rejections surface as ResourceExhausted (back
  /// off and retry) or InvalidArgument (fix the request).
  Result<MutateReply> Mutate(const std::string& tenant,
                             const std::vector<GraphMutation>& mutations);

  /// Tenant stats keyed by StatField (unknown ids preserved numerically).
  struct StatsReply {
    std::map<uint16_t, double> fields;
    double Get(StatField field) const {
      auto it = fields.find(static_cast<uint16_t>(field));
      return it == fields.end() ? 0.0 : it->second;
    }
  };
  Result<StatsReply> Stats(const std::string& tenant);

  /// Process-wide telemetry (tenant-less, like Ping): the gateway's full
  /// metrics exposition text — every tenant's serving stats under
  /// tenant="..." labels plus the gateway's own counters — and, when
  /// `include_trace` is set, a Chrome-trace JSON dump of the flight
  /// recorder (empty `trace_json` with has_trace=false when the server
  /// dropped it to fit the frame). `max_events_per_thread` bounds the trace
  /// window (0 = server default); the server halves it further if needed.
  struct TelemetryReply {
    std::string metrics_text;
    bool has_trace = false;
    std::string trace_json;
  };
  Result<TelemetryReply> Telemetry(bool include_trace = false,
                                   uint32_t max_events_per_thread = 0);

  /// Admin: live-reconfigures a tenant — `partitions` (0 = keep) and/or
  /// engine pool (`""` = keep, `"primary"` = the host's built-in pool).
  /// Blocks through the tenant's quiesce/remap/resume cycle; returns the
  /// session's parallelism after the remap.
  Result<uint32_t> Reconfigure(const std::string& tenant, uint32_t partitions,
                               const std::string& pool = "");

  // --- pipelining primitives ---------------------------------------------

  /// Sends a MutateBatch without waiting; returns the request id to pair
  /// with a later ReceiveReply.
  Result<uint64_t> SendMutate(const std::string& tenant,
                              const std::vector<GraphMutation>& mutations);
  /// Sends a Query without waiting.
  Result<uint64_t> SendQueryKey(const std::string& tenant, int64_t key);
  /// Blocks for the next response frame, whatever request it answers.
  Result<Frame> ReceiveReply();

  /// Raw bytes straight onto the socket (protocol tests only).
  Status SendRaw(const void* data, size_t n);

 private:
  RpcClient() = default;

  Result<uint64_t> SendRequest(Opcode opcode, std::vector<uint8_t> payload);
  /// SendRequest + ReceiveReply + request-id check + wire-error mapping.
  Result<Frame> Call(Opcode opcode, std::vector<uint8_t> payload);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint16_t auth_token_ = 0;
  FrameDecoder decoder_;
};

/// Maps a non-OK response frame to a client-side Status (the payload's
/// message is preserved). OK frames map to Status::OK().
Status StatusOfReply(const Frame& reply);

}  // namespace net
}  // namespace sfdf
