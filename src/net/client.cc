#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sfdf {
namespace net {

Status StatusOfReply(const Frame& reply) {
  if (reply.status == WireCode::kOk) return Status::OK();
  PayloadReader reader(reply.payload);
  std::string message = reader.String();
  if (!reader.ok()) message = "(unparseable error payload)";
  message = std::string(WireCodeName(reply.status)) + ": " + message;
  switch (reply.status) {
    case WireCode::kRetry:
      return Status::ResourceExhausted(std::move(message));
    case WireCode::kReject:
    case WireCode::kBadRequest:
      return Status::InvalidArgument(std::move(message));
    case WireCode::kNotFound:
    case WireCode::kUnknownTenant:
      return Status::NotFound(std::move(message));
    case WireCode::kUnauthorized:
      return Status::PermissionDenied(std::move(message));
    default:
      return Status::Internal(std::move(message));
  }
}

Result<std::unique_ptr<RpcClient>> RpcClient::Connect(const std::string& host,
                                                      uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("connect failed: ") +
                           std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto client = std::unique_ptr<RpcClient>(new RpcClient);
  client->fd_ = fd;
  return client;
}

RpcClient::~RpcClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status RpcClient::SendRaw(const void* data, size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<uint64_t> RpcClient::SendRequest(Opcode opcode,
                                        std::vector<uint8_t> payload) {
  Frame frame;
  frame.opcode = opcode;
  // In a request the header's status slot carries the tenant auth token
  // (net/frame.h); 0 = unsecured.
  frame.status = static_cast<WireCode>(auth_token_);
  frame.request_id = next_request_id_++;
  frame.payload = std::move(payload);
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  SFDF_RETURN_NOT_OK(SendRaw(bytes.data(), bytes.size()));
  return frame.request_id;
}

Result<Frame> RpcClient::ReceiveReply() {
  for (;;) {
    bool got = false;
    Frame frame;
    SFDF_RETURN_NOT_OK(decoder_.Next(&got, &frame));
    if (got) return frame;
    uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IoError("connection closed by the gateway");
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("recv failed: ") +
                           std::strerror(errno));
  }
}

Result<Frame> RpcClient::Call(Opcode opcode, std::vector<uint8_t> payload) {
  auto request_id = SendRequest(opcode, std::move(payload));
  if (!request_id.ok()) return request_id.status();
  auto reply = ReceiveReply();
  if (!reply.ok()) return reply.status();
  if (reply->request_id != *request_id || reply->opcode != opcode) {
    return Status::Internal("response does not match the request");
  }
  SFDF_RETURN_NOT_OK(StatusOfReply(*reply));
  return reply;
}

Status RpcClient::Ping() {
  auto reply = Call(Opcode::kPing, {});
  return reply.ok() ? Status::OK() : reply.status();
}

Result<RpcClient::QueryReply> RpcClient::Query(const std::string& tenant,
                                               const Record& probe) {
  std::vector<uint8_t> payload;
  PutString(tenant, &payload);
  PutRecord(probe, &payload);
  auto reply = Call(Opcode::kQuery, std::move(payload));
  if (!reply.ok()) return reply.status();
  PayloadReader reader(reply->payload);
  QueryReply result;
  result.epoch = reader.U64();
  result.found = reader.U8() != 0;
  if (result.found) result.record = reader.ReadRecord();
  if (!reader.AtEnd()) return Status::Internal("malformed Query reply");
  return result;
}

Result<RpcClient::QueryReply> RpcClient::QueryKey(const std::string& tenant,
                                                  int64_t key) {
  return Query(tenant, Record::OfInts(key));
}

Result<RpcClient::SnapshotReply> RpcClient::Snapshot(
    const std::string& tenant) {
  std::vector<uint8_t> payload;
  PutString(tenant, &payload);
  auto reply = Call(Opcode::kSnapshot, std::move(payload));
  if (!reply.ok()) return reply.status();
  PayloadReader reader(reply->payload);
  SnapshotReply result;
  result.epoch = reader.U64();
  const uint32_t count = reader.U32();
  for (uint32_t i = 0; reader.ok() && i < count; ++i) {
    result.records.push_back(reader.ReadRecord());
  }
  if (!reader.AtEnd()) return Status::Internal("malformed Snapshot reply");
  return result;
}

Result<RpcClient::SnapshotPageReply> RpcClient::SnapshotPage(
    const std::string& tenant, uint64_t cursor, uint32_t max_records) {
  std::vector<uint8_t> payload;
  PutString(tenant, &payload);
  PutU64(cursor, &payload);
  PutU32(max_records, &payload);
  auto reply = Call(Opcode::kSnapshotPage, std::move(payload));
  if (!reply.ok()) return reply.status();
  PayloadReader reader(reply->payload);
  SnapshotPageReply result;
  result.epoch = reader.U64();
  result.next_cursor = reader.U64();
  const uint32_t count = reader.U32();
  for (uint32_t i = 0; reader.ok() && i < count; ++i) {
    result.records.push_back(reader.ReadRecord());
  }
  if (!reader.AtEnd()) {
    return Status::Internal("malformed SnapshotPage reply");
  }
  return result;
}

Result<RpcClient::SnapshotReply> RpcClient::SnapshotAll(
    const std::string& tenant, uint32_t max_records_per_page) {
  // Pages only concatenate within one epoch; a commit (or remap) between
  // pages invalidates the cursor, so start over. Bounded retries: a write
  // rate that outpaces whole-snapshot reads is a caller problem.
  for (int attempt = 0; attempt < 8; ++attempt) {
    SnapshotReply result;
    uint64_t cursor = 0;
    bool restart = false;
    do {
      auto page = SnapshotPage(tenant, cursor, max_records_per_page);
      if (!page.ok()) return page.status();
      if (!result.records.empty() && page->epoch != result.epoch) {
        restart = true;
        break;
      }
      result.epoch = page->epoch;
      result.records.insert(result.records.end(),
                            std::make_move_iterator(page->records.begin()),
                            std::make_move_iterator(page->records.end()));
      cursor = page->next_cursor;
    } while (cursor != 0);
    if (!restart) return result;
  }
  return Status::ResourceExhausted(
      "snapshot epoch kept advancing across paging attempts");
}

namespace {

std::vector<uint8_t> MutatePayload(
    const std::string& tenant, const std::vector<GraphMutation>& mutations) {
  std::vector<uint8_t> payload;
  PutString(tenant, &payload);
  PutU32(static_cast<uint32_t>(mutations.size()), &payload);
  for (const GraphMutation& mutation : mutations) {
    PutMutation(mutation, &payload);
  }
  return payload;
}

}  // namespace

Result<uint64_t> RpcClient::SendMutate(
    const std::string& tenant, const std::vector<GraphMutation>& mutations) {
  return SendRequest(Opcode::kMutateBatch, MutatePayload(tenant, mutations));
}

Result<uint64_t> RpcClient::SendQueryKey(const std::string& tenant,
                                         int64_t key) {
  std::vector<uint8_t> payload;
  PutString(tenant, &payload);
  PutRecord(Record::OfInts(key), &payload);
  return SendRequest(Opcode::kQuery, std::move(payload));
}

Result<RpcClient::MutateReply> RpcClient::Mutate(
    const std::string& tenant, const std::vector<GraphMutation>& mutations) {
  auto reply = Call(Opcode::kMutateBatch, MutatePayload(tenant, mutations));
  if (!reply.ok()) return reply.status();
  PayloadReader reader(reply->payload);
  MutateReply result;
  result.ticket = reader.U64();
  if (!reader.AtEnd()) return Status::Internal("malformed Mutate reply");
  return result;
}

Result<uint32_t> RpcClient::Reconfigure(const std::string& tenant,
                                        uint32_t partitions,
                                        const std::string& pool) {
  std::vector<uint8_t> payload;
  PutString(tenant, &payload);
  PutU32(partitions, &payload);
  PutString(pool, &payload);
  auto reply = Call(Opcode::kReconfigure, std::move(payload));
  if (!reply.ok()) return reply.status();
  PayloadReader reader(reply->payload);
  const uint32_t parallelism = reader.U32();
  if (!reader.AtEnd()) {
    return Status::Internal("malformed Reconfigure reply");
  }
  return parallelism;
}

Result<RpcClient::StatsReply> RpcClient::Stats(const std::string& tenant) {
  std::vector<uint8_t> payload;
  PutString(tenant, &payload);
  auto reply = Call(Opcode::kStats, std::move(payload));
  if (!reply.ok()) return reply.status();
  PayloadReader reader(reply->payload);
  StatsReply result;
  const uint32_t count = reader.U32();
  for (uint32_t i = 0; reader.ok() && i < count; ++i) {
    const uint16_t field = reader.U16();
    const double value = reader.F64();
    result.fields[field] = value;
  }
  if (!reader.AtEnd()) return Status::Internal("malformed Stats reply");
  return result;
}

Result<RpcClient::TelemetryReply> RpcClient::Telemetry(
    bool include_trace, uint32_t max_events_per_thread) {
  std::vector<uint8_t> payload;
  PutU8(include_trace ? 1 : 0, &payload);
  PutU32(max_events_per_thread, &payload);
  auto reply = Call(Opcode::kTelemetry, std::move(payload));
  if (!reply.ok()) return reply.status();
  PayloadReader reader(reply->payload);
  TelemetryReply result;
  result.metrics_text = reader.Bytes();
  result.has_trace = reader.U8() != 0;
  if (result.has_trace) result.trace_json = reader.Bytes();
  if (!reader.AtEnd()) return Status::Internal("malformed Telemetry reply");
  return result;
}

}  // namespace net
}  // namespace sfdf
