// Physical execution strategies: how data ships between operators and how
// operators execute locally (Section 3 / 4.3: "shipping strategies
// (partitioning, broadcasting) and local strategies (hashing vs. sorting)").
#pragma once

#include <string_view>

namespace sfdf {

/// How records travel across an edge of the physical plan.
enum class ShipStrategy {
  kForward,        ///< stay in the producing partition (pipelined, free)
  kHashPartition,  ///< hash-repartition by a key
  kBroadcast,      ///< replicate to every partition
};

std::string_view ShipStrategyName(ShipStrategy s);

/// How a (binary or grouping) operator executes within a partition.
enum class LocalStrategy {
  kNone,            ///< record-at-a-time pipelining (Map, Filter, Cross stream)
  kHashBuildLeft,   ///< hash join: build on the left input, probe with right
  kHashBuildRight,  ///< hash join: build on the right input, probe with left
  kSortMerge,       ///< sort both inputs, merge groups (Match/CoGroup)
  kSortGroup,       ///< sort-based grouping (Reduce)
  kCrossBuildLeft,  ///< materialize left, stream right
  kCrossBuildRight, ///< materialize right, stream left
};

std::string_view LocalStrategyName(LocalStrategy s);

}  // namespace sfdf
