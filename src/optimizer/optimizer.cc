#include "optimizer/optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/env.h"
#include "common/logging.h"
#include "core/microstep_analysis.h"

namespace sfdf {

namespace {

// Cost-model constants (relative units per record).
constexpr double kShipHash = 1.0;
constexpr double kShipBroadcastPerCopy = 1.0;
constexpr double kHashBuild = 0.5;
constexpr double kHashProbe = 0.2;
constexpr double kSort = 1.5;
constexpr double kStream = 0.1;
constexpr double kCombinerFactor = 0.4;  // volume reduction by pre-aggregation

/// One enumerated physical alternative for a logical node's output.
struct InputChoice {
  ShipStrategy ship = ShipStrategy::kForward;
  KeySpec ship_key;
  int producer_candidate = 0;
  /// Partitioning this choice relied on the producer delivering (for
  /// conflict repair on shared nodes); empty = none.
  KeySpec required_partitioning;
  /// Sort order to establish on the cached (constant) input (§4.3 /
  /// Figure 4: A cached partitioned and sorted by tid).
  KeySpec cache_sort_key;
  bool use_combiner = false;
};

struct Candidate {
  PhysProps props;
  double cost = 0;
  LocalStrategy local = LocalStrategy::kNone;
  std::vector<InputChoice> inputs;
  /// Reduce only: input arrives sorted on the grouping key, skip the sort.
  bool presorted = false;
};

struct IterationInfo {
  bool is_workset = false;
  int spec_index = -1;
  double weight = 1;  // expected iterations, applied to dynamic-path costs
};

/// All optimizer working state for one plan.
struct OptCtx {
  const Plan* plan = nullptr;
  const OptimizerOptions* options = nullptr;
  int parallelism = 0;

  std::vector<std::vector<NodeId>> consumers;
  /// -1: not in a body; 0: constant path; 1: dynamic path.
  std::vector<int> path_class;
  /// Expected-iteration weight of the iteration a node belongs to (1 if none).
  std::vector<double> iter_weight;
  std::vector<InterestingProperties> ips;
  std::vector<std::vector<Candidate>> cands;
  std::vector<WorksetAnalysis> ws_analysis;

  const LogicalNode& node(NodeId id) const { return plan->node(id); }
  bool IsDynamic(NodeId id) const { return path_class[id] == 1; }

  /// Weight applied to work that repeats every superstep: consumer dynamic
  /// and data arriving from the dynamic path (otherwise it flows once and
  /// is cached).
  double EdgeWeight(NodeId producer, NodeId consumer) const {
    if (!IsDynamic(consumer)) return 1;
    if (!IsDynamic(producer)) return 1;  // constant input, shipped once
    return iter_weight[consumer];
  }
  double NodeWeight(NodeId id) const {
    return IsDynamic(id) ? iter_weight[id] : 1;
  }
};

std::vector<FieldMapping> MappingsOf(const LogicalNode& node, int input) {
  std::vector<FieldMapping> out;
  if (node.kind == OperatorKind::kFilter && input == 0) {
    // Filters pass records through unchanged: identity mapping.
    for (int i = 0; i < Record::kMaxFields; ++i) {
      out.push_back(FieldMapping{i, i});
    }
    return out;
  }
  for (const auto& p : node.preserved_fields[input]) {
    out.push_back(FieldMapping{p.from, p.to});
  }
  return out;
}

/// Remaps the physical properties of an input through an operator's
/// field-preservation contract (partitioning / sort survive only if every
/// key field is preserved).
PhysProps RemapProps(const PhysProps& in, const LogicalNode& node, int input) {
  PhysProps out;
  std::vector<FieldMapping> mapping = MappingsOf(node, input);
  if (in.distribution == Distribution::kHashPartitioned) {
    KeySpec remapped;
    if (RemapKey(in.partition_key, mapping, &remapped)) {
      out.distribution = Distribution::kHashPartitioned;
      out.partition_key = remapped;
    }
  }
  if (!in.sort_key.empty()) {
    KeySpec remapped;
    if (RemapKey(in.sort_key, mapping, &remapped)) {
      out.sort_key = remapped;
    }
  }
  return out;
}

/// Dominance pruning: drop candidates that cost more without delivering
/// better properties.
void Prune(std::vector<Candidate>* cands) {
  std::vector<Candidate> kept;
  for (const Candidate& c : *cands) {
    bool dominated = false;
    for (const Candidate& other : *cands) {
      if (&other == &c) continue;
      bool props_cover = (other.props == c.props) ||
                         (other.props.distribution == c.props.distribution &&
                          other.props.partition_key == c.props.partition_key &&
                          c.props.sort_key.empty());
      if (props_cover && other.cost < c.cost) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(c);
  }
  // Keep the list small and deterministic.
  std::sort(kept.begin(), kept.end(),
            [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });
  if (kept.size() > 6) kept.resize(6);
  *cands = std::move(kept);
}

/// Ship alternatives delivering `required` partitioning for one input edge.
struct ShipOption {
  InputChoice choice;
  PhysProps delivered;
  double cost = 0;
};

std::vector<ShipOption> PartitionedShipOptions(const OptCtx& ctx,
                                               NodeId producer, NodeId consumer,
                                               int producer_cand,
                                               const KeySpec& required) {
  const Candidate& pc = ctx.cands[producer][producer_cand];
  double rows = ctx.node(producer).estimated_rows;
  double w = ctx.EdgeWeight(producer, consumer);
  std::vector<ShipOption> options;
  if (pc.props.IsPartitionedBy(required)) {
    ShipOption fwd;
    fwd.choice.ship = ShipStrategy::kForward;
    fwd.choice.producer_candidate = producer_cand;
    fwd.choice.required_partitioning = required;
    fwd.delivered = pc.props;
    options.push_back(fwd);
  }
  ShipOption hash;
  hash.choice.ship = ShipStrategy::kHashPartition;
  hash.choice.ship_key = required;
  hash.choice.producer_candidate = producer_cand;
  hash.delivered.distribution = Distribution::kHashPartitioned;
  hash.delivered.partition_key = required;
  hash.cost = rows * kShipHash * w;
  options.push_back(hash);
  return options;
}

ShipOption ForwardShip(const OptCtx& ctx, NodeId producer, int producer_cand) {
  ShipOption fwd;
  fwd.choice.ship = ShipStrategy::kForward;
  fwd.choice.producer_candidate = producer_cand;
  fwd.delivered = ctx.cands[producer][producer_cand].props;
  return fwd;
}

ShipOption BroadcastShip(const OptCtx& ctx, NodeId producer, NodeId consumer,
                         int producer_cand) {
  ShipOption bc;
  bc.choice.ship = ShipStrategy::kBroadcast;
  bc.choice.producer_candidate = producer_cand;
  bc.delivered.distribution = Distribution::kReplicated;
  bc.cost = ctx.node(producer).estimated_rows * kShipBroadcastPerCopy *
            ctx.parallelism * ctx.EdgeWeight(producer, consumer) *
            ctx.options->broadcast_cost_factor;
  return bc;
}

// ---------------------------------------------------------------------------
// Interesting properties (two top-down traversals with feedback, §4.3)
// ---------------------------------------------------------------------------

void PropagateInterestingProperties(OptCtx* ctx) {
  const Plan& plan = *ctx->plan;
  ctx->ips.assign(plan.nodes().size(), {});
  if (!ctx->options->enable_interesting_properties) return;

  auto one_pass = [&] {
    // Reverse topological order: consumers first.
    for (auto it = plan.nodes().rbegin(); it != plan.nodes().rend(); ++it) {
      const LogicalNode& consumer = *it;
      for (size_t port = 0; port < consumer.inputs.size(); ++port) {
        NodeId producer = consumer.inputs[port];
        // Properties the consumer itself creates for this edge.
        InterestingProperty own;
        switch (consumer.kind) {
          case OperatorKind::kReduce:
            own.partition_key = consumer.key_left;
            own.sort_key = consumer.key_left;
            break;
          case OperatorKind::kMatch:
            own.partition_key =
                port == 0 ? consumer.key_left : consumer.key_right;
            break;
          case OperatorKind::kCoGroup:
          case OperatorKind::kInnerCoGroup:
            own.partition_key =
                port == 0 ? consumer.key_left : consumer.key_right;
            own.sort_key = own.partition_key;
            break;
          default:
            break;
        }
        AddInterestingProperty(&ctx->ips[producer], own);
        // Inherited properties: the consumer's own IPs remapped through its
        // field-preservation contract.
        for (const InterestingProperty& ip : ctx->ips[consumer.id]) {
          InterestingProperty inherited;
          KeySpec remapped;
          if (!ip.partition_key.empty() &&
              RemapKeyToInput(ip.partition_key,
                              MappingsOf(consumer, static_cast<int>(port)),
                              &remapped)) {
            inherited.partition_key = remapped;
          }
          if (!ip.sort_key.empty() &&
              RemapKeyToInput(ip.sort_key,
                              MappingsOf(consumer, static_cast<int>(port)),
                              &remapped)) {
            inherited.sort_key = remapped;
          }
          AddInterestingProperty(&ctx->ips[producer], inherited);
        }
      }
    }
  };

  one_pass();
  // Feedback: the properties requested at the iteration input I depend on
  // those at O and vice versa; feed I's IPs back to O and re-traverse.
  for (const BulkIterationSpec& spec : plan.bulk_iterations()) {
    for (const InterestingProperty& ip : ctx->ips[spec.body_input]) {
      AddInterestingProperty(&ctx->ips[spec.body_output], ip);
    }
  }
  for (const WorksetIterationSpec& spec : plan.workset_iterations()) {
    for (const InterestingProperty& ip : ctx->ips[spec.workset_placeholder]) {
      AddInterestingProperty(&ctx->ips[spec.next_workset_output], ip);
    }
  }
  one_pass();
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

void ClassifyPaths(OptCtx* ctx) {
  const Plan& plan = *ctx->plan;
  ctx->path_class.assign(plan.nodes().size(), -1);
  ctx->iter_weight.assign(plan.nodes().size(), 1);

  auto mark_dynamic = [&](NodeId start, int iteration, bool workset) {
    std::vector<NodeId> stack = {start};
    ctx->path_class[start] = 1;
    while (!stack.empty()) {
      NodeId node = stack.back();
      stack.pop_back();
      for (NodeId consumer : ctx->consumers[node]) {
        const LogicalNode& c = plan.node(consumer);
        if (c.iteration_id != iteration || c.iteration_is_workset != workset) {
          continue;
        }
        if (ctx->path_class[consumer] != 1) {
          ctx->path_class[consumer] = 1;
          stack.push_back(consumer);
        }
      }
    }
  };

  for (const LogicalNode& node : plan.nodes()) {
    if (node.iteration_id >= 0) ctx->path_class[node.id] = 0;
  }
  for (const BulkIterationSpec& spec : plan.bulk_iterations()) {
    mark_dynamic(spec.body_input, spec.id, false);
    double weight = ctx->options->expected_iterations > 0
                        ? ctx->options->expected_iterations
                        : std::min(spec.max_iterations, 20);
    for (const LogicalNode& node : plan.nodes()) {
      if (node.iteration_id == spec.id && !node.iteration_is_workset) {
        ctx->iter_weight[node.id] = weight;
      }
    }
  }
  for (const WorksetIterationSpec& spec : plan.workset_iterations()) {
    mark_dynamic(spec.workset_placeholder, spec.id, true);
    // The solution placeholder feeds the join's index build (once), but the
    // join itself is dynamic through its probe side.
    double weight = ctx->options->expected_iterations > 0
                        ? ctx->options->expected_iterations
                        : 20;
    for (const LogicalNode& node : plan.nodes()) {
      if (node.iteration_id == spec.id && node.iteration_is_workset) {
        ctx->iter_weight[node.id] = weight;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Candidate enumeration (bottom-up)
// ---------------------------------------------------------------------------

double MinProducerCost(const OptCtx& ctx, NodeId producer) {
  double best = std::numeric_limits<double>::infinity();
  for (const Candidate& c : ctx.cands[producer]) best = std::min(best, c.cost);
  return best;
}

void EnumerateNode(OptCtx* ctx, const LogicalNode& node) {
  std::vector<Candidate>& out = ctx->cands[node.id];
  const double node_weight = ctx->NodeWeight(node.id);

  switch (node.kind) {
    case OperatorKind::kSource: {
      Candidate c;
      c.cost = 0;
      out.push_back(c);
      break;
    }
    case OperatorKind::kBulkPlaceholder:
    case OperatorKind::kSolutionPlaceholder:
    case OperatorKind::kWorksetPlaceholder:
    case OperatorKind::kIterationResult: {
      // Fixed, single candidate; the physical wiring of these edges is done
      // by the iteration expansion.
      Candidate c;
      NodeId source = node.inputs[0];
      c.cost = MinProducerCost(*ctx, source) +
               ctx->node(source).estimated_rows * kShipHash;
      if (node.kind == OperatorKind::kBulkPlaceholder) {
        // Feedback repartitions by the solution key each superstep.
        for (const BulkIterationSpec& spec : ctx->plan->bulk_iterations()) {
          if (spec.body_input == node.id && !spec.solution_key.empty()) {
            c.props.distribution = Distribution::kHashPartitioned;
            c.props.partition_key = spec.solution_key;
          }
        }
      } else if (node.kind == OperatorKind::kWorksetPlaceholder) {
        for (size_t i = 0; i < ctx->plan->workset_iterations().size(); ++i) {
          if (ctx->plan->workset_iterations()[i].workset_placeholder ==
              node.id) {
            c.props.distribution = Distribution::kHashPartitioned;
            c.props.partition_key = ctx->ws_analysis[i].workset_route_key;
          }
        }
      } else if (node.kind == OperatorKind::kSolutionPlaceholder ||
                 node.kind == OperatorKind::kIterationResult) {
        for (const WorksetIterationSpec& spec :
             ctx->plan->workset_iterations()) {
          if (spec.solution_placeholder == node.id ||
              spec.result_node == node.id) {
            c.props.distribution = Distribution::kHashPartitioned;
            c.props.partition_key = spec.solution_key;
          }
        }
        for (const BulkIterationSpec& spec : ctx->plan->bulk_iterations()) {
          if (spec.result_node == node.id && !spec.solution_key.empty()) {
            c.props.distribution = Distribution::kHashPartitioned;
            c.props.partition_key = spec.solution_key;
          }
        }
      }
      out.push_back(c);
      break;
    }
    case OperatorKind::kMap:
    case OperatorKind::kFilter: {
      NodeId in = node.inputs[0];
      for (size_t pc = 0; pc < ctx->cands[in].size(); ++pc) {
        ShipOption ship = ForwardShip(*ctx, in, static_cast<int>(pc));
        Candidate c;
        c.props = RemapProps(ship.delivered, node, 0);
        c.inputs.push_back(ship.choice);
        c.cost = ctx->cands[in][pc].cost + ship.cost +
                 ctx->node(in).estimated_rows * kStream * node_weight;
        out.push_back(c);
      }
      break;
    }
    case OperatorKind::kUnion: {
      // Cheapest candidate of each side, forwarded.
      Candidate c;
      double cost = 0;
      for (int port = 0; port < 2; ++port) {
        NodeId in = node.inputs[port];
        size_t best = 0;
        for (size_t pc = 1; pc < ctx->cands[in].size(); ++pc) {
          if (ctx->cands[in][pc].cost < ctx->cands[in][best].cost) best = pc;
        }
        ShipOption ship = ForwardShip(*ctx, in, static_cast<int>(best));
        c.inputs.push_back(ship.choice);
        cost += ctx->cands[in][best].cost;
      }
      c.cost = cost;
      out.push_back(c);
      break;
    }
    case OperatorKind::kReduce: {
      NodeId in = node.inputs[0];
      double rows = ctx->node(in).estimated_rows;
      for (size_t pc = 0; pc < ctx->cands[in].size(); ++pc) {
        for (ShipOption& ship : PartitionedShipOptions(
                 *ctx, in, node.id, static_cast<int>(pc), node.key_left)) {
          Candidate c;
          c.local = LocalStrategy::kSortGroup;
          double ship_cost = ship.cost;
          if (ctx->options->enable_combiners && node.combiner &&
              ship.choice.ship == ShipStrategy::kHashPartition) {
            ship.choice.use_combiner = true;
            ship_cost *= kCombinerFactor;
          }
          c.presorted = ship.choice.ship == ShipStrategy::kForward &&
                        ship.delivered.IsSortedBy(node.key_left);
          double sort_cost =
              c.presorted ? 0 : rows * kSort * node_weight;
          c.inputs.push_back(ship.choice);
          c.cost = ctx->cands[in][pc].cost + ship_cost + sort_cost +
                   rows * kStream * node_weight;
          // Output: grouped emission is keyed and sorted by the key, if the
          // UDF preserves the key fields.
          PhysProps raw;
          raw.distribution = Distribution::kHashPartitioned;
          raw.partition_key = node.key_left;
          raw.sort_key = node.key_left;
          c.props = RemapProps(raw, node, 0);
          out.push_back(c);
        }
      }
      break;
    }
    case OperatorKind::kMatch: {
      NodeId left = node.inputs[0];
      NodeId right = node.inputs[1];
      double lrows = ctx->node(left).estimated_rows;
      double rrows = ctx->node(right).estimated_rows;
      for (size_t lc = 0; lc < ctx->cands[left].size(); ++lc) {
        for (size_t rc = 0; rc < ctx->cands[right].size(); ++rc) {
          double base = ctx->cands[left][lc].cost + ctx->cands[right][rc].cost;
          // (a,b) Partitioned hash joins, build on either side.
          for (bool build_left : {true, false}) {
            NodeId build = build_left ? left : right;
            NodeId probe = build_left ? right : left;
            double brows = build_left ? lrows : rrows;
            double prows = build_left ? rrows : lrows;
            int bcand = static_cast<int>(build_left ? lc : rc);
            int pcand = static_cast<int>(build_left ? rc : lc);
            const KeySpec& bkey = build_left ? node.key_left : node.key_right;
            const KeySpec& pkey = build_left ? node.key_right : node.key_left;
            // Probing repeats every superstep of a dynamic join, even when
            // the probe data itself is a constant-path cache.
            const double probe_weight = ctx->NodeWeight(node.id);
            for (const ShipOption& bship : PartitionedShipOptions(
                     *ctx, build, node.id, bcand, bkey)) {
              for (const ShipOption& pship : PartitionedShipOptions(
                       *ctx, probe, node.id, pcand, pkey)) {
                Candidate c;
                c.local = build_left ? LocalStrategy::kHashBuildLeft
                                     : LocalStrategy::kHashBuildRight;
                c.inputs.resize(2);
                c.inputs[build_left ? 0 : 1] = bship.choice;
                c.inputs[build_left ? 1 : 0] = pship.choice;
                c.cost = base + bship.cost + pship.cost +
                         brows * kHashBuild *
                             ctx->EdgeWeight(build, node.id) +
                         prows * kHashProbe * probe_weight;
                // The probe side's properties survive through preservation.
                c.props =
                    RemapProps(pship.delivered, node, build_left ? 1 : 0);
                out.push_back(c);
              }
            }
            // (c) Broadcast the build side; the probe side stays put and
            // keeps all its physical properties. The replicated build work
            // (every partition builds the full table, every superstep on
            // the dynamic path) is part of the broadcast penalty and scales
            // with the broadcast_cost_factor knob.
            {
              ShipOption bship = BroadcastShip(*ctx, build, node.id, bcand);
              ShipOption pship = ForwardShip(*ctx, probe, pcand);
              Candidate c;
              c.local = build_left ? LocalStrategy::kHashBuildLeft
                                   : LocalStrategy::kHashBuildRight;
              c.inputs.resize(2);
              c.inputs[build_left ? 0 : 1] = bship.choice;
              c.inputs[build_left ? 1 : 0] = pship.choice;
              c.cost = base + bship.cost +
                       brows * ctx->parallelism * kHashBuild *
                           ctx->EdgeWeight(build, node.id) *
                           ctx->options->broadcast_cost_factor +
                       prows * kHashProbe * probe_weight;
              c.props = RemapProps(pship.delivered, node, build_left ? 1 : 0);
              out.push_back(c);
              // IP-seeded variant: when the probe side is constant-path and
              // cached, establish a requested partitioning + sort order on
              // the cache — the Figure 4 broadcast plan, where A is cached
              // partitioned and sorted by tid while p is broadcast. The
              // constant-path ship + sort cost is paid once.
              if (!ctx->IsDynamic(probe) && ctx->IsDynamic(node.id)) {
                for (const InterestingProperty& ip : ctx->ips[node.id]) {
                  if (ip.sort_key.empty() && ip.partition_key.empty()) continue;
                  const KeySpec& requested =
                      ip.sort_key.empty() ? ip.partition_key : ip.sort_key;
                  KeySpec probe_key_mapped;
                  if (!RemapKeyToInput(
                          requested, MappingsOf(node, build_left ? 1 : 0),
                          &probe_key_mapped)) {
                    continue;
                  }
                  Candidate seeded = c;
                  InputChoice& probe_choice = seeded.inputs[build_left ? 1 : 0];
                  probe_choice.ship = ShipStrategy::kHashPartition;
                  probe_choice.ship_key = probe_key_mapped;
                  probe_choice.cache_sort_key = probe_key_mapped;
                  seeded.cost += prows * kShipHash +  // partition once
                                 prows * kSort;       // sort once at cache build
                  PhysProps delivered;
                  delivered.distribution = Distribution::kHashPartitioned;
                  delivered.partition_key = probe_key_mapped;
                  delivered.sort_key = probe_key_mapped;
                  seeded.props =
                      RemapProps(delivered, node, build_left ? 1 : 0);
                  out.push_back(seeded);
                }
              }
            }
          }
          // (d) Sort-merge join, both sides partitioned.
          for (const ShipOption& lship : PartitionedShipOptions(
                   *ctx, left, node.id, static_cast<int>(lc), node.key_left)) {
            for (const ShipOption& rship : PartitionedShipOptions(
                     *ctx, right, node.id, static_cast<int>(rc),
                     node.key_right)) {
              Candidate c;
              c.local = LocalStrategy::kSortMerge;
              c.inputs = {lship.choice, rship.choice};
              double lsort = lship.delivered.IsSortedBy(node.key_left)
                                 ? 0
                                 : lrows * kSort;
              double rsort = rship.delivered.IsSortedBy(node.key_right)
                                 ? 0
                                 : rrows * kSort;
              c.cost = base + lship.cost + rship.cost +
                       lsort * ctx->EdgeWeight(left, node.id) +
                       rsort * ctx->EdgeWeight(right, node.id) +
                       (lrows + rrows) * kStream * node_weight;
              PhysProps raw;
              raw.distribution = Distribution::kHashPartitioned;
              raw.partition_key = node.key_left;
              raw.sort_key = node.key_left;
              c.props = RemapProps(raw, node, 0);
              out.push_back(c);
            }
          }
        }
      }
      break;
    }
    case OperatorKind::kCross: {
      NodeId left = node.inputs[0];
      NodeId right = node.inputs[1];
      double pairs = ctx->node(left).estimated_rows *
                     ctx->node(right).estimated_rows;
      for (bool build_left : {true, false}) {
        NodeId build = build_left ? left : right;
        NodeId probe = build_left ? right : left;
        size_t bbest = 0;
        size_t pbest = 0;
        ShipOption bship = BroadcastShip(*ctx, build, node.id,
                                         static_cast<int>(bbest));
        ShipOption pship = ForwardShip(*ctx, probe, static_cast<int>(pbest));
        Candidate c;
        c.local = build_left ? LocalStrategy::kCrossBuildLeft
                             : LocalStrategy::kCrossBuildRight;
        c.inputs.resize(2);
        c.inputs[build_left ? 0 : 1] = bship.choice;
        c.inputs[build_left ? 1 : 0] = pship.choice;
        c.cost = MinProducerCost(*ctx, left) + MinProducerCost(*ctx, right) +
                 bship.cost + pairs * kStream * node_weight;
        c.props = RemapProps(pship.delivered, node, build_left ? 1 : 0);
        out.push_back(c);
      }
      break;
    }
    case OperatorKind::kCoGroup:
    case OperatorKind::kInnerCoGroup: {
      NodeId left = node.inputs[0];
      NodeId right = node.inputs[1];
      double lrows = ctx->node(left).estimated_rows;
      double rrows = ctx->node(right).estimated_rows;
      for (size_t lc = 0; lc < ctx->cands[left].size(); ++lc) {
        for (size_t rc = 0; rc < ctx->cands[right].size(); ++rc) {
          double base = ctx->cands[left][lc].cost + ctx->cands[right][rc].cost;
          for (const ShipOption& lship : PartitionedShipOptions(
                   *ctx, left, node.id, static_cast<int>(lc), node.key_left)) {
            for (const ShipOption& rship : PartitionedShipOptions(
                     *ctx, right, node.id, static_cast<int>(rc),
                     node.key_right)) {
              Candidate c;
              c.local = LocalStrategy::kSortMerge;
              c.inputs = {lship.choice, rship.choice};
              double lsort = lship.delivered.IsSortedBy(node.key_left)
                                 ? 0
                                 : lrows * kSort;
              double rsort = rship.delivered.IsSortedBy(node.key_right)
                                 ? 0
                                 : rrows * kSort;
              c.cost = base + lship.cost + rship.cost +
                       lsort * ctx->EdgeWeight(left, node.id) +
                       rsort * ctx->EdgeWeight(right, node.id) +
                       (lrows + rrows) * kStream * node_weight;
              PhysProps raw;
              raw.distribution = Distribution::kHashPartitioned;
              raw.partition_key = node.key_left;
              raw.sort_key = node.key_left;
              c.props = RemapProps(raw, node, 0);
              out.push_back(c);
            }
          }
        }
      }
      break;
    }
    case OperatorKind::kSink: {
      NodeId in = node.inputs[0];
      size_t best = 0;
      for (size_t pc = 1; pc < ctx->cands[in].size(); ++pc) {
        if (ctx->cands[in][pc].cost < ctx->cands[in][best].cost) best = pc;
      }
      Candidate c;
      ShipOption ship = ForwardShip(*ctx, in, static_cast<int>(best));
      c.inputs.push_back(ship.choice);
      c.cost = ctx->cands[in][best].cost;
      out.push_back(c);
      break;
    }
  }
  SFDF_CHECK(!out.empty()) << "no candidates for node '" << node.name << "'";
  Prune(&out);
}

}  // namespace

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

Optimizer::Optimizer(OptimizerOptions options) : options_(options) {}

Result<PhysicalPlan> Optimizer::Optimize(const Plan& plan) const {
  OptCtx ctx;
  ctx.plan = &plan;
  ctx.options = &options_;
  ctx.parallelism =
      options_.parallelism > 0 ? options_.parallelism : DefaultParallelism();
  ctx.consumers = plan.BuildConsumerIndex();

  // Workset-body analysis first: it validates the body structure.
  for (const WorksetIterationSpec& spec : plan.workset_iterations()) {
    auto analysis = AnalyzeWorksetBody(plan, spec);
    if (!analysis.ok()) return analysis.status();
    if (spec.mode == IterationMode::kMicrostep &&
        !analysis.value().microstep_capable) {
      return Status::Unsupported("microstep execution requested but: " +
                                 analysis.value().microstep_blocker);
    }
    ctx.ws_analysis.push_back(std::move(analysis).value());
  }

  ClassifyPaths(&ctx);
  PropagateInterestingProperties(&ctx);

  ctx.cands.resize(plan.nodes().size());
  for (const LogicalNode& node : plan.nodes()) {
    EnumerateNode(&ctx, node);
  }

  // --- Backtrack: requirements from sinks & iteration-internal outputs ---
  std::vector<int> req(plan.nodes().size(), -1);
  auto argmin = [&](NodeId id) {
    int best = 0;
    for (size_t i = 1; i < ctx.cands[id].size(); ++i) {
      if (ctx.cands[id][i].cost < ctx.cands[id][best].cost) {
        best = static_cast<int>(i);
      }
    }
    return best;
  };
  for (auto it = plan.nodes().rbegin(); it != plan.nodes().rend(); ++it) {
    const LogicalNode& node = *it;
    bool internal_output = false;
    for (const BulkIterationSpec& spec : plan.bulk_iterations()) {
      if (node.id == spec.body_output || node.id == spec.term_criterion) {
        internal_output = true;
      }
    }
    for (const WorksetIterationSpec& spec : plan.workset_iterations()) {
      if (node.id == spec.delta_output || node.id == spec.next_workset_output) {
        internal_output = true;
      }
    }
    if (req[node.id] == -1 &&
        (node.kind == OperatorKind::kSink || internal_output)) {
      req[node.id] = argmin(node.id);
    }
    if (req[node.id] == -1) continue;
    const Candidate& chosen = ctx.cands[node.id][req[node.id]];
    for (size_t port = 0; port < chosen.inputs.size(); ++port) {
      NodeId producer = node.inputs[port];
      if (req[producer] == -1) {
        req[producer] = chosen.inputs[port].producer_candidate;
      }
    }
  }
  // Nodes never required (e.g. placeholders' initial inputs reached through
  // the fixed-candidate path): default to their cheapest candidate.
  for (const LogicalNode& node : plan.nodes()) {
    if (req[node.id] == -1) req[node.id] = argmin(node.id);
  }

  // --- Emit physical plan ---
  PhysicalPlan physical;
  physical.parallelism = ctx.parallelism;

  std::vector<int> task_of(plan.nodes().size(), -1);
  // Upper bound on task count: one per executable node plus head/tail/term
  // (bulk) and head/tail/apply (workset) per iteration. Reserving it keeps
  // the PhysicalTask* handles returned by add_task stable — push_back below
  // never reallocates. Adding a new task kind? Update this bound.
  physical.tasks.reserve(plan.nodes().size() +
                         3 * plan.bulk_iterations().size() +
                         3 * plan.workset_iterations().size());
  auto add_task = [&](OperatorKind kind, TaskRole role,
                      const std::string& name) -> PhysicalTask* {
    PhysicalTask task;
    task.id = static_cast<int>(physical.tasks.size());
    task.kind = kind;
    task.role = role;
    task.name = name;
    // Must not reallocate: callers hold PhysicalTask* across add_task calls.
    assert(physical.tasks.size() < physical.tasks.capacity());
    physical.tasks.push_back(std::move(task));
    return &physical.tasks.back();
  };

  // Pass 1: one task per executable logical node.
  for (const LogicalNode& node : plan.nodes()) {
    switch (node.kind) {
      case OperatorKind::kBulkPlaceholder:
      case OperatorKind::kSolutionPlaceholder:
      case OperatorKind::kWorksetPlaceholder:
      case OperatorKind::kIterationResult:
        continue;  // expanded below
      default:
        break;
    }
    const Candidate& chosen = ctx.cands[node.id][req[node.id]];
    PhysicalTask* task = add_task(node.kind, TaskRole::kRegular, node.name);
    task->logical_node = node.id;
    task->key_left = node.key_left;
    task->key_right = node.key_right;
    task->map_udf = node.map_udf;
    task->filter_udf = node.filter_udf;
    task->reduce_udf = node.reduce_udf;
    task->match_udf = node.match_udf;
    task->cogroup_udf = node.cogroup_udf;
    task->source_data = node.source_data;
    task->sink_out = node.sink_out;
    task->local = chosen.local;
    task->output_props = chosen.props;
    if (node.iteration_id >= 0) {
      if (node.iteration_is_workset) {
        task->workset_iteration = node.iteration_id;
      } else {
        task->bulk_iteration = node.iteration_id;
      }
      task->on_dynamic_path = ctx.IsDynamic(node.id);
    }
    task_of[node.id] = task->id;
  }

  // Pass 2: iteration expansion.
  std::vector<int> bulk_head(plan.bulk_iterations().size(), -1);
  std::vector<int> bulk_tail(plan.bulk_iterations().size(), -1);
  std::vector<int> bulk_term(plan.bulk_iterations().size(), -1);
  for (size_t i = 0; i < plan.bulk_iterations().size(); ++i) {
    const BulkIterationSpec& spec = plan.bulk_iterations()[i];
    PhysicalTask* head = add_task(OperatorKind::kBulkPlaceholder,
                                  TaskRole::kBulkHead, "bulk.head");
    head->bulk_iteration = spec.id;
    head->on_dynamic_path = true;
    head->output_props = ctx.cands[spec.body_input][0].props;
    bulk_head[i] = head->id;
    task_of[spec.body_input] = head->id;

    PhysicalTask* tail = add_task(OperatorKind::kBulkPlaceholder,
                                  TaskRole::kBulkTail, "bulk.tail");
    tail->bulk_iteration = spec.id;
    tail->on_dynamic_path = true;
    tail->output_props = head->output_props;
    bulk_tail[i] = tail->id;
    task_of[spec.result_node] = tail->id;

    if (spec.term_criterion != kInvalidNode) {
      PhysicalTask* term = add_task(OperatorKind::kBulkPlaceholder,
                                    TaskRole::kTermSink, "bulk.term");
      term->bulk_iteration = spec.id;
      term->on_dynamic_path = true;
      bulk_term[i] = term->id;
    }
  }
  std::vector<int> ws_head(plan.workset_iterations().size(), -1);
  std::vector<int> ws_tail(plan.workset_iterations().size(), -1);
  std::vector<int> ws_apply(plan.workset_iterations().size(), -1);
  for (size_t i = 0; i < plan.workset_iterations().size(); ++i) {
    const WorksetIterationSpec& spec = plan.workset_iterations()[i];
    const WorksetAnalysis& analysis = ctx.ws_analysis[i];
    PhysicalTask* head = add_task(OperatorKind::kWorksetPlaceholder,
                                  TaskRole::kWorksetHead, "workset.head");
    head->workset_iteration = spec.id;
    head->on_dynamic_path = true;
    head->output_props = ctx.cands[spec.workset_placeholder][0].props;
    ws_head[i] = head->id;
    task_of[spec.workset_placeholder] = head->id;

    PhysicalTask* tail = add_task(OperatorKind::kWorksetPlaceholder,
                                  TaskRole::kWorksetTail, "workset.tail");
    tail->workset_iteration = spec.id;
    tail->on_dynamic_path = true;
    ws_tail[i] = tail->id;

    PhysicalTask* apply = add_task(OperatorKind::kWorksetPlaceholder,
                                   TaskRole::kDeltaApply, "workset.apply");
    apply->workset_iteration = spec.id;
    apply->on_dynamic_path = true;
    apply->output_props = ctx.cands[spec.solution_placeholder][0].props;
    ws_apply[i] = apply->id;
    task_of[spec.result_node] = apply->id;

    // Mark the solution join.
    PhysicalTask& join = physical.tasks[task_of[analysis.solution_join]];
    join.role = TaskRole::kSolutionJoin;
    join.solution_side = analysis.solution_side;
    join.on_dynamic_path = true;
  }

  // Pass 3: wire inputs.
  for (const LogicalNode& node : plan.nodes()) {
    if (task_of[node.id] == -1) continue;
    PhysicalTask& task = physical.tasks[task_of[node.id]];
    if (task.role == TaskRole::kBulkHead || task.role == TaskRole::kBulkTail ||
        task.role == TaskRole::kWorksetHead ||
        task.role == TaskRole::kDeltaApply) {
      continue;  // iteration plumbing wired below
    }
    const Candidate& chosen = ctx.cands[node.id][req[node.id]];
    task.inputs.resize(node.inputs.size());
    for (size_t port = 0; port < node.inputs.size(); ++port) {
      NodeId producer_node = node.inputs[port];
      const InputChoice& choice = chosen.inputs[port];
      PhysicalInput input;
      input.producer = task_of[producer_node];
      input.ship = choice.ship;
      input.ship_key = choice.ship_key;
      input.cache_sort_key = choice.cache_sort_key;
      // Conflict repair: if this choice relied on a partitioning the
      // finally-chosen producer candidate does not deliver, repartition.
      const Candidate& producer_cand =
          ctx.cands[producer_node][req[producer_node]];
      if (!choice.required_partitioning.empty() &&
          choice.ship == ShipStrategy::kForward &&
          !producer_cand.props.IsPartitionedBy(choice.required_partitioning)) {
        input.ship = ShipStrategy::kHashPartition;
        input.ship_key = choice.required_partitioning;
      }
      if (choice.use_combiner && node.combiner) {
        input.combiner = node.combiner;
        input.combine_key = node.key_left;
      }
      bool producer_dynamic = ctx.IsDynamic(producer_node);
      input.constant_path = !producer_dynamic && ctx.IsDynamic(node.id);
      input.cached = input.constant_path && options_.enable_caching;
      task.inputs[port] = std::move(input);
    }
    if (node.kind == OperatorKind::kReduce) {
      task.input_presorted = chosen.presorted;
    }
  }

  // Iteration plumbing.
  auto ship_into = [&](NodeId producer_node, const KeySpec& key) {
    PhysicalInput input;
    input.producer = task_of[producer_node];
    const Candidate& pc = ctx.cands[producer_node][req[producer_node]];
    if (!key.empty() && !pc.props.IsPartitionedBy(key)) {
      input.ship = ShipStrategy::kHashPartition;
      input.ship_key = key;
    } else {
      input.ship = ShipStrategy::kForward;
    }
    return input;
  };

  for (size_t i = 0; i < plan.bulk_iterations().size(); ++i) {
    const BulkIterationSpec& spec = plan.bulk_iterations()[i];
    PhysicalTask& head = physical.tasks[bulk_head[i]];
    head.inputs.push_back(ship_into(spec.initial_input, spec.solution_key));
    PhysicalTask& tail = physical.tasks[bulk_tail[i]];
    {
      PhysicalInput input;
      input.producer = task_of[spec.body_output];
      const Candidate& oc = ctx.cands[spec.body_output][req[spec.body_output]];
      if (!spec.solution_key.empty() &&
          !oc.props.IsPartitionedBy(spec.solution_key)) {
        input.ship = ShipStrategy::kHashPartition;
        input.ship_key = spec.solution_key;
      }
      tail.inputs.push_back(std::move(input));
    }
    if (bulk_term[i] >= 0) {
      PhysicalTask& term = physical.tasks[bulk_term[i]];
      PhysicalInput input;
      input.producer = task_of[spec.term_criterion];
      term.inputs.push_back(std::move(input));
    }
    PhysicalBulkIteration pbi;
    pbi.head_task = bulk_head[i];
    pbi.tail_task = bulk_tail[i];
    pbi.term_sink_task = bulk_term[i];
    pbi.max_iterations = spec.max_iterations;
    pbi.solution_key = spec.solution_key;
    physical.bulk_iterations.push_back(std::move(pbi));
  }

  for (size_t i = 0; i < plan.workset_iterations().size(); ++i) {
    const WorksetIterationSpec& spec = plan.workset_iterations()[i];
    const WorksetAnalysis& analysis = ctx.ws_analysis[i];
    PhysicalTask& head = physical.tasks[ws_head[i]];
    head.inputs.push_back(
        ship_into(spec.initial_workset, analysis.workset_route_key));
    PhysicalTask& tail = physical.tasks[ws_tail[i]];
    {
      PhysicalInput input;
      input.producer = task_of[spec.next_workset_output];
      tail.inputs.push_back(std::move(input));
    }
    // Solution side of the join: initial S, partitioned by the solution key.
    PhysicalTask& join = physical.tasks[task_of[analysis.solution_join]];
    join.inputs[analysis.solution_side] =
        ship_into(spec.initial_solution, spec.solution_key);

    const bool immediate = analysis.local_updates &&
                           analysis.delta_is_join_output &&
                           !options_.disable_immediate_apply;
    PhysicalTask& apply = physical.tasks[ws_apply[i]];
    {
      PhysicalInput input;
      input.producer = task_of[spec.delta_output];
      if (!immediate) {
        const Candidate& dc = ctx.cands[spec.delta_output][req[spec.delta_output]];
        if (!dc.props.IsPartitionedBy(spec.solution_key)) {
          input.ship = ShipStrategy::kHashPartition;
          input.ship_key = spec.solution_key;
        }
      }
      apply.inputs.push_back(std::move(input));
    }

    PhysicalWorksetIteration pwi;
    pwi.head_task = ws_head[i];
    pwi.tail_task = ws_tail[i];
    pwi.delta_apply_task = ws_apply[i];
    pwi.solution_join_task = join.id;
    pwi.workset_route_key = analysis.workset_route_key;
    pwi.solution_key = spec.solution_key;
    pwi.comparator = spec.comparator;
    pwi.max_iterations = spec.max_iterations;
    pwi.immediate_apply = immediate;
    pwi.microstep = spec.mode == IterationMode::kMicrostep;
    // Index structure follows the join's strategy (§5.3): hash join ⇒
    // updateable hash table; sort/group strategies (CoGroup) ⇒ B+-tree.
    const LogicalNode& join_node = plan.node(analysis.solution_join);
    bool sorted_strategy = join_node.kind != OperatorKind::kMatch;
    if (options_.force_solution_index == 1) {
      pwi.use_btree_index = false;
    } else if (options_.force_solution_index == 2) {
      pwi.use_btree_index = true;
    } else {
      pwi.use_btree_index = sorted_strategy;
    }
    physical.workset_iterations.push_back(std::move(pwi));
  }

  // Total estimated cost: the sum over sink requirements.
  for (const LogicalNode& node : plan.nodes()) {
    if (node.kind == OperatorKind::kSink) {
      physical.estimated_cost += ctx.cands[node.id][req[node.id]].cost;
    }
  }
  return physical;
}

Result<std::string> Optimizer::Explain(const Plan& plan) const {
  auto physical = Optimize(plan);
  if (!physical.ok()) return physical.status();
  return physical.value().ToString();
}

}  // namespace sfdf
