// The plan optimizer (Section 4.3).
//
// Follows the Volcano-style approach: bottom-up enumeration of physical
// candidates per operator (ship strategy per input × local strategy), pruned
// by cost and physical properties, guided by interesting properties that are
// collected in two top-down traversals — the second pass feeds the
// properties of the iteration input edge I back through the feedback edge to
// O, as described in the paper.
//
// Iteration-specific behaviour:
//  * Every edge is classified constant-path / dynamic-path; dynamic costs
//    are weighted by the expected iteration count, so plans that place
//    expensive work on the constant path win.
//  * Constant-path inputs of dynamic operators are cached across supersteps
//    (the cache materializes inside the consuming operator: a hash table for
//    hash strategies, a sorted buffer for sort strategies).
//  * Interesting properties additionally *seed* candidates that establish a
//    partitioning/sort early on the constant path — this produces the
//    broadcast PageRank plan of Figure 4 (matrix pre-partitioned and sorted
//    by tid while the rank vector is broadcast).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/plan.h"
#include "optimizer/physical_plan.h"

namespace sfdf {

struct OptimizerOptions {
  /// Degree of parallelism to compile for; 0 = DefaultParallelism().
  int parallelism = 0;
  /// Expected number of iterations used to weight dynamic-path costs.
  /// 0 = derive from each iteration's max_iterations (capped at 20).
  int expected_iterations = 0;
  /// Master switches for ablation benchmarks.
  bool enable_interesting_properties = true;
  bool enable_caching = true;
  bool enable_combiners = true;
  /// Multiplier on broadcast shipping cost. 1.0 = honest cost model; large
  /// values forbid broadcast plans, tiny values force them (used by the
  /// Figure 7 benchmark to run both PageRank plans of Figure 4).
  double broadcast_cost_factor = 1.0;
  /// Force the solution-set index structure (ablation): 0 = derive from the
  /// join strategy, 1 = hash table, 2 = B+-tree.
  int force_solution_index = 0;
  /// Ablation: buffer delta records until the end of the superstep even
  /// when the §5.3 locality conditions would allow merging them into S
  /// immediately.
  bool disable_immediate_apply = false;
};

class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = {});

  /// Compiles a logical plan into an executable physical plan.
  Result<PhysicalPlan> Optimize(const Plan& plan) const;

  /// EXPLAIN: compiles and pretty-prints the chosen plan.
  Result<std::string> Explain(const Plan& plan) const;

 private:
  OptimizerOptions options_;
};

}  // namespace sfdf
