// Physical plans: the optimizer's output, the executor's input.
//
// A physical plan is a DAG of tasks. Each logical operator becomes one task;
// iteration constructs additionally expand into head/tail/apply tasks that
// implement the feedback-channel execution of Sections 4.2 and 5.3:
//
//   Bulk:     BulkHead ──▶ body ──▶ BulkTail ─(feedback buffer)─▶ BulkHead
//                                └─▶ TermSink (T criterion)
//   Workset:  WorksetHead ──▶ ∆ body ──▶ DeltaApply (S ∪̇ D)
//                                   └──▶ WorksetTail ─(queues)─▶ WorksetHead
//
// The executor instantiates every task once per partition and connects them
// with channels according to each input's ShipStrategy.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataflow/plan.h"
#include "optimizer/properties.h"
#include "optimizer/strategies.h"

namespace sfdf {

/// Special runtime roles of tasks created by iteration expansion.
enum class TaskRole {
  kRegular,
  kBulkHead,      ///< emits S_i into the body each superstep
  kBulkTail,      ///< collects O into the next-S buffer; emits final result
  kTermSink,      ///< counts T-criterion records (bulk iterations)
  kWorksetHead,   ///< emits W_i from the double-buffered queues
  kWorksetTail,   ///< routes W_{i+1} records back into the head queues
  kDeltaApply,    ///< merges D into the solution set via ∪̇; emits final S
  kSolutionJoin,  ///< body join/cogroup merged with the S index (§5.3)
};

std::string_view TaskRoleName(TaskRole role);

/// One input edge of a physical task.
struct PhysicalInput {
  int producer = -1;  ///< producing task id
  ShipStrategy ship = ShipStrategy::kForward;
  KeySpec ship_key;        ///< for kHashPartition
  bool constant_path = false;  ///< carries loop-invariant data (§4.1)
  /// Cache the materialized form of this input across supersteps (§4.3).
  /// Set on constant-path inputs of dynamic-path operators. When false on a
  /// constant-path edge (ablation), raw records are retained but derived
  /// structures (hash tables) are rebuilt every superstep.
  bool cached = false;
  /// Sort the cached input by this key (establishes an interesting property
  /// on the constant path — the Figure 4 cache "partitioned and sorted").
  KeySpec cache_sort_key;
  /// Combiner applied in the router before shipping (chained pre-aggregation).
  CombineFn combiner;
  KeySpec combine_key;
};

/// One physical task (operator instance template; the executor clones it per
/// partition).
struct PhysicalTask {
  int id = -1;
  OperatorKind kind = OperatorKind::kMap;
  TaskRole role = TaskRole::kRegular;
  std::string name;
  NodeId logical_node = kInvalidNode;

  KeySpec key_left;
  KeySpec key_right;
  MapUdf map_udf;
  FilterUdf filter_udf;
  ReduceUdf reduce_udf;
  MatchUdf match_udf;
  CoGroupUdf cogroup_udf;

  std::shared_ptr<std::vector<Record>> source_data;
  std::vector<Record>* sink_out = nullptr;

  LocalStrategy local = LocalStrategy::kNone;
  std::vector<PhysicalInput> inputs;

  /// Reduce only: the input arrives sorted by the grouping key (single
  /// forward producer), so the driver skips its sort.
  bool input_presorted = false;

  /// Iteration membership: index into PhysicalPlan::bulk_iterations /
  /// workset_iterations; -1 for non-iterative tasks.
  int bulk_iteration = -1;
  int workset_iteration = -1;
  bool on_dynamic_path = false;

  /// For kSolutionJoin: which input (0/1) is the solution set side.
  int solution_side = -1;

  /// Properties the optimizer determined for this task's output.
  PhysProps output_props;
};

/// Physical counterpart of BulkIterationSpec.
struct PhysicalBulkIteration {
  int head_task = -1;
  int tail_task = -1;
  int term_sink_task = -1;  ///< -1: fixed iteration count
  int max_iterations = 20;
  KeySpec solution_key;
};

/// Physical counterpart of WorksetIterationSpec.
struct PhysicalWorksetIteration {
  int head_task = -1;
  int tail_task = -1;
  int delta_apply_task = -1;
  int solution_join_task = -1;
  /// Key of W records used to route them to head partitions (must equal the
  /// probe key of the solution join so probes stay partition-local).
  KeySpec workset_route_key;
  KeySpec solution_key;
  RecordOrder comparator;
  /// True: run asynchronous microsteps (fused pipeline, no barrier).
  bool microstep = false;
  /// True: delta records may be applied to S immediately (the §5.3 locality
  /// conditions hold); otherwise they are buffered until superstep end.
  bool immediate_apply = false;
  /// Solution set index structure, derived from the join's local strategy.
  bool use_btree_index = false;
  int max_iterations = 1000000;
};

/// The full physical plan.
struct PhysicalPlan {
  std::vector<PhysicalTask> tasks;
  std::vector<PhysicalBulkIteration> bulk_iterations;
  std::vector<PhysicalWorksetIteration> workset_iterations;
  /// Degree of parallelism the plan was compiled for.
  int parallelism = 1;
  /// Total estimated cost (optimizer's objective; exposed for tests/EXPLAIN).
  double estimated_cost = 0;

  std::string ToString() const;
};

}  // namespace sfdf
