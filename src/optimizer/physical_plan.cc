#include "optimizer/physical_plan.h"

#include <sstream>

namespace sfdf {

std::string_view TaskRoleName(TaskRole role) {
  switch (role) {
    case TaskRole::kRegular: return "Regular";
    case TaskRole::kBulkHead: return "BulkHead";
    case TaskRole::kBulkTail: return "BulkTail";
    case TaskRole::kTermSink: return "TermSink";
    case TaskRole::kWorksetHead: return "WorksetHead";
    case TaskRole::kWorksetTail: return "WorksetTail";
    case TaskRole::kDeltaApply: return "DeltaApply";
    case TaskRole::kSolutionJoin: return "SolutionJoin";
  }
  return "Unknown";
}

std::string_view ShipStrategyName(ShipStrategy s) {
  switch (s) {
    case ShipStrategy::kForward: return "forward";
    case ShipStrategy::kHashPartition: return "partition";
    case ShipStrategy::kBroadcast: return "broadcast";
  }
  return "?";
}

std::string_view LocalStrategyName(LocalStrategy s) {
  switch (s) {
    case LocalStrategy::kNone: return "pipeline";
    case LocalStrategy::kHashBuildLeft: return "hash-build-left";
    case LocalStrategy::kHashBuildRight: return "hash-build-right";
    case LocalStrategy::kSortMerge: return "sort-merge";
    case LocalStrategy::kSortGroup: return "sort-group";
    case LocalStrategy::kCrossBuildLeft: return "cross-build-left";
    case LocalStrategy::kCrossBuildRight: return "cross-build-right";
  }
  return "?";
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream out;
  out << "PhysicalPlan{dop=" << parallelism << ", cost~" << estimated_cost
      << "\n";
  for (const PhysicalTask& task : tasks) {
    out << "  T" << task.id << " " << OperatorKindName(task.kind);
    if (task.role != TaskRole::kRegular) out << "/" << TaskRoleName(task.role);
    out << " '" << task.name << "' [" << LocalStrategyName(task.local) << "]";
    if (task.on_dynamic_path) out << " dyn";
    for (const PhysicalInput& input : task.inputs) {
      out << " <-T" << input.producer << ":" << ShipStrategyName(input.ship);
      if (input.ship == ShipStrategy::kHashPartition) {
        out << input.ship_key.ToString();
      }
      if (input.cached) out << "+cache";
      if (input.constant_path) out << "(const)";
    }
    out << " => " << task.output_props.ToString();
    out << "\n";
  }
  out << "}";
  return out.str();
}

}  // namespace sfdf
