#include "optimizer/properties.h"

#include <algorithm>
#include <sstream>

namespace sfdf {

std::string PhysProps::ToString() const {
  std::ostringstream out;
  switch (distribution) {
    case Distribution::kArbitrary:
      out << "arbitrary";
      break;
    case Distribution::kHashPartitioned:
      out << "hash" << partition_key.ToString();
      break;
    case Distribution::kReplicated:
      out << "replicated";
      break;
  }
  if (!sort_key.empty()) out << " sorted" << sort_key.ToString();
  return out.str();
}

std::string InterestingProperty::ToString() const {
  std::ostringstream out;
  out << "IP{";
  if (!partition_key.empty()) out << "part" << partition_key.ToString();
  if (!sort_key.empty()) out << " sort" << sort_key.ToString();
  out << "}";
  return out.str();
}

void AddInterestingProperty(InterestingProperties* props,
                            const InterestingProperty& p) {
  if (p.partition_key.empty() && p.sort_key.empty()) return;
  if (std::find(props->begin(), props->end(), p) == props->end()) {
    props->push_back(p);
  }
}

}  // namespace sfdf
