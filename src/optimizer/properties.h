// Physical data properties and interesting properties (Section 4.3).
//
// A property describes how an intermediate result is laid out across and
// within partitions. Interesting properties are properties that some
// downstream operator could exploit; the optimizer both *prunes* with them
// (keep a more expensive plan if it delivers an interesting property) and
// *seeds* candidates that establish them early — the mechanism that yields
// the Figure 4 plan where the constant path pre-partitions and pre-sorts
// the transition matrix.
#pragma once

#include <string>
#include <vector>

#include "record/key.h"

namespace sfdf {

/// Distribution of a dataset across partitions.
enum class Distribution {
  kArbitrary,        ///< no guarantee
  kHashPartitioned,  ///< hash-partitioned by `partition_key`
  kReplicated,       ///< full copy in every partition
};

/// Physical properties of a dataflow edge's data.
struct PhysProps {
  Distribution distribution = Distribution::kArbitrary;
  KeySpec partition_key;  ///< valid iff distribution == kHashPartitioned
  KeySpec sort_key;       ///< within-partition sort order; empty = unsorted

  bool IsPartitionedBy(const KeySpec& key) const {
    return distribution == Distribution::kHashPartitioned &&
           partition_key == key;
  }
  bool IsSortedBy(const KeySpec& key) const { return sort_key == key; }
  bool IsReplicated() const { return distribution == Distribution::kReplicated; }

  bool operator==(const PhysProps& other) const {
    return distribution == other.distribution &&
           partition_key == other.partition_key && sort_key == other.sort_key;
  }

  std::string ToString() const;
};

/// An interesting property requested at some edge: "it would help if the
/// data arriving here were partitioned/sorted like this".
struct InterestingProperty {
  KeySpec partition_key;  ///< empty = partitioning not requested
  KeySpec sort_key;       ///< empty = sort not requested

  bool operator==(const InterestingProperty& other) const {
    return partition_key == other.partition_key && sort_key == other.sort_key;
  }
  std::string ToString() const;
};

using InterestingProperties = std::vector<InterestingProperty>;

/// Adds `p` to `props` if not already present (and not empty).
void AddInterestingProperty(InterestingProperties* props,
                            const InterestingProperty& p);

}  // namespace sfdf
