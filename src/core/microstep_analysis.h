// Static analysis of a workset-iteration body ∆ (Section 5.2).
//
// Microstep execution — taking one workset element at a time and applying
// its updates immediately — is only well-defined when:
//   1. ∆ consists solely of record-at-a-time operators (Map, Filter, Match,
//      Cross); group-at-a-time operators need supersteps to scope the sets.
//   2. Binary operators have at most one input on the dynamic data path.
//   3. The dynamic data path is unbranched (each operator has at most one
//      body consumer), except for the output that connects to D.
//
// Updates to the solution set may skip distributed locking when they are
// partition-local: the key field k(s) is constant across the path between S
// and D, and all operations on that path are key-less or use k(s) as key.
// This analysis additionally derives the routing key of workset records —
// the probe key of the operator the S index is merged into — so probes stay
// partition-local.
#pragma once

#include <string>

#include "common/result.h"
#include "dataflow/plan.h"

namespace sfdf {

/// Outcome of analyzing one workset iteration body.
struct WorksetAnalysis {
  /// The body operator that consumes the S placeholder; the S index is
  /// merged into it (Section 5.3).
  NodeId solution_join = kInvalidNode;
  /// Which input of the join is the solution set (0 = left, 1 = right).
  int solution_side = -1;
  /// Probe-side join key; workset records are routed by the corresponding
  /// fields so S probes never cross partitions.
  KeySpec workset_route_key;

  /// All §5.2 conditions hold: the iteration may execute asynchronously in
  /// microsteps.
  bool microstep_capable = false;
  /// Why not, if not.
  std::string microstep_blocker;

  /// Updates are partition-local: delta records may merge into S
  /// immediately without locking (D is produced by the solution join and
  /// the join preserves the key fields).
  bool local_updates = false;

  /// D is the direct output of the solution join (no operators between).
  bool delta_is_join_output = false;
};

/// Analyzes the body of `spec` within `plan`. Fails if the body is not a
/// valid workset iteration (e.g. S feeds no join, or the workset routing key
/// cannot be derived).
Result<WorksetAnalysis> AnalyzeWorksetBody(const Plan& plan,
                                           const WorksetIterationSpec& spec);

}  // namespace sfdf
