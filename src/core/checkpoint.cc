#include "core/checkpoint.h"

#include <cstdio>

#include "record/batch.h"
#include "record/serde.h"

namespace sfdf {

namespace {
constexpr uint64_t kMagic = 0x53464446434B5054ULL;  // "SFDFCKPT"

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU64(const std::vector<uint8_t>& data, size_t* offset, uint64_t* v) {
  if (*offset + 8 > data.size()) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(data[*offset + i]) << (8 * i);
  }
  *offset += 8;
  *v = r;
  return true;
}

}  // namespace

Status SaveCheckpoint(const std::string& path,
                      const IterationCheckpoint& checkpoint) {
  std::vector<uint8_t> bytes;
  PutU64(kMagic, &bytes);
  PutU64(static_cast<uint64_t>(checkpoint.superstep), &bytes);
  SerializeBatch(RecordBatch(checkpoint.solution), &bytes);
  SerializeBatch(RecordBatch(checkpoint.workset), &bytes);
  // Write-then-rename keeps a crash from leaving a torn checkpoint.
  std::string tmp = path + ".tmp";
  SFDF_RETURN_NOT_OK(WriteFile(tmp, bytes));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename checkpoint into place: " + path);
  }
  return Status::OK();
}

Result<IterationCheckpoint> LoadCheckpoint(const std::string& path) {
  std::vector<uint8_t> bytes;
  SFDF_RETURN_NOT_OK(ReadFile(path, &bytes));
  size_t offset = 0;
  uint64_t magic;
  if (!GetU64(bytes, &offset, &magic) || magic != kMagic) {
    return Status::IoError("not a checkpoint file: " + path);
  }
  IterationCheckpoint checkpoint;
  uint64_t superstep;
  if (!GetU64(bytes, &offset, &superstep)) {
    return Status::IoError("truncated checkpoint header");
  }
  checkpoint.superstep = static_cast<int>(superstep);
  RecordBatch solution;
  SFDF_RETURN_NOT_OK(DeserializeBatch(bytes, &offset, &solution));
  RecordBatch workset;
  SFDF_RETURN_NOT_OK(DeserializeBatch(bytes, &offset, &workset));
  checkpoint.solution = std::move(solution.records());
  checkpoint.workset = std::move(workset.records());
  return checkpoint;
}

}  // namespace sfdf
