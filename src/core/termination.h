// Termination detection for asynchronous microstep execution (Section 5.3).
//
// The paper points to message-acknowledgement algorithms for distributed
// termination detection [27]. In this shared-memory runtime the equivalent
// is a global credit counter of in-flight workset records: every record
// pushed into a queue increments it, and a worker decrements it only after
// fully processing the record (including pushing all records it spawned).
// The computation is quiescent — all queues empty, nobody processing — iff
// the counter reaches zero.
#pragma once

#include <atomic>
#include <cstdint>

namespace sfdf {

class QuiescenceDetector {
 public:
  /// `startup_credits` keeps the detector non-quiescent until every worker
  /// finished loading its initial workset (call FinishStartup once each).
  explicit QuiescenceDetector(int startup_credits)
      : pending_(startup_credits) {}

  void RecordEnqueued() { pending_.fetch_add(1, std::memory_order_acq_rel); }

  void RecordProcessed() {
    int64_t prev = pending_.fetch_sub(1, std::memory_order_acq_rel);
    (void)prev;
  }

  /// One startup credit released; called by each worker after its initial
  /// workset is enqueued.
  void FinishStartup() { RecordProcessed(); }

  bool Quiescent() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  int64_t pending() const { return pending_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> pending_;
};

}  // namespace sfdf
