#include "core/solution_set.h"

#include "runtime/btree.h"
#include "runtime/hash_table.h"

namespace sfdf {

namespace {

/// ∪̇ conflict resolution: replace unless a comparator says the incoming
/// record is not a successor of the existing one (Section 5.1).
bool ResolveReplace(const RecordOrder& comparator, const Record& existing,
                    const Record& incoming) {
  if (!comparator) return true;  // last write wins
  return comparator(incoming, existing) > 0;
}

class HashSolutionIndex : public SolutionSetIndex {
 public:
  HashSolutionIndex(KeySpec key, RecordOrder comparator)
      : table_(key), comparator_(std::move(comparator)) {}

  const Record* Peek(const Record& probe,
                     const KeySpec& probe_key) const override {
    return table_.Lookup(probe, probe_key);
  }

  bool Apply(const Record& rec) override {
    bool applied = table_.Upsert(rec, [this](const Record& existing,
                                             const Record& incoming) {
      return ResolveReplace(comparator_, existing, incoming);
    });
    if (applied) {
      ++stats_.applied;
    } else {
      ++stats_.discarded;
    }
    return applied;
  }

  void ForEach(const std::function<void(const Record&)>& fn) const override {
    table_.ForEach(fn);
  }

  int64_t size() const override { return table_.size(); }

 private:
  UniqueHashTable table_;
  RecordOrder comparator_;
};

class BTreeSolutionIndex : public SolutionSetIndex {
 public:
  BTreeSolutionIndex(KeySpec key, RecordOrder comparator)
      : tree_(key), comparator_(std::move(comparator)) {}

  const Record* Peek(const Record& probe,
                     const KeySpec& probe_key) const override {
    return tree_.Lookup(probe, probe_key);
  }

  bool Apply(const Record& rec) override {
    bool applied = tree_.Upsert(rec, [this](const Record& existing,
                                            const Record& incoming) {
      return ResolveReplace(comparator_, existing, incoming);
    });
    if (applied) {
      ++stats_.applied;
    } else {
      ++stats_.discarded;
    }
    return applied;
  }

  void ForEach(const std::function<void(const Record&)>& fn) const override {
    tree_.ForEach(fn);
  }

  int64_t size() const override { return tree_.size(); }

 private:
  BPlusTree tree_;
  RecordOrder comparator_;
};

}  // namespace

std::unique_ptr<SolutionSetIndex> MakeHashSolutionIndex(
    KeySpec solution_key, RecordOrder comparator) {
  return std::make_unique<HashSolutionIndex>(solution_key,
                                             std::move(comparator));
}

std::unique_ptr<SolutionSetIndex> MakeBTreeSolutionIndex(
    KeySpec solution_key, RecordOrder comparator) {
  return std::make_unique<BTreeSolutionIndex>(solution_key,
                                              std::move(comparator));
}

}  // namespace sfdf
