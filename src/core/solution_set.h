// The solution set S of an incremental iteration (Section 5).
//
// S is partitioned by its key k(s) across all workers; each partition stores
// its records in a primary index. The index structure follows the execution
// strategy of the operator it is merged into (Section 5.3): a hash strategy
// stores S in an updateable hash table, a sort strategy in a B+-tree.
//
// The delta set D is merged via the modified union  S ∪̇ D : a record from D
// replaces the record of S with the same key. When several candidates exist,
// an optional comparator establishes the order between old and new record;
// the larger one (the CPO successor) survives and the smaller is discarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "record/comparator.h"
#include "record/key.h"
#include "record/record.h"

namespace sfdf {

/// Counters for the Figure 2 instrumentation: how much of the solution is
/// touched per iteration ("vertices inspected" = lookups, "vertices changed"
/// = applied updates).
struct SolutionSetStats {
  int64_t lookups = 0;
  int64_t applied = 0;    ///< delta records that won and were merged
  int64_t discarded = 0;  ///< delta records dropped by the comparator
};

/// One partition of the solution set. Not thread-safe: the execution
/// protocol guarantees single-threaded access phases (see executor).
class SolutionSetIndex {
 public:
  virtual ~SolutionSetIndex() = default;

  /// Bulk-loads the initial partial solution S_0 of this partition.
  /// Duplicate keys resolve through Apply semantics.
  void Build(const std::vector<Record>& records) {
    for (const Record& rec : records) Apply(rec);
  }

  /// Returns the record whose key equals the key fields of `probe` under
  /// `probe_key`, or nullptr. Counts as a lookup.
  const Record* Lookup(const Record& probe, const KeySpec& probe_key) {
    ++stats_.lookups;
    return Peek(probe, probe_key);
  }

  /// Stats-free point read: like Lookup, but const and without touching the
  /// instrumentation counters. The serving layer uses it for snapshot /
  /// point queries so concurrent readers of a quiescent partition stay free
  /// of shared writes.
  virtual const Record* Peek(const Record& probe,
                             const KeySpec& probe_key) const = 0;

  /// Merges one delta record via ∪̇: inserts, or replaces the existing
  /// same-key record. With a comparator, the replacement only happens if the
  /// new record is larger (a CPO successor); otherwise the delta record is
  /// discarded. Returns true iff the record was inserted or replaced.
  virtual bool Apply(const Record& rec) = 0;

  /// Visits every record of the partition (final result extraction).
  virtual void ForEach(
      const std::function<void(const Record&)>& fn) const = 0;

  /// Visits records until `fn` returns false. The visit order is the
  /// index's internal order, which is stable as long as no records are
  /// merged in between calls — the property the serving layer's paged
  /// snapshot cursors rely on. The default adapts ForEach (the underlying
  /// containers have no early-exit walk): once `fn` declines, remaining
  /// records are still iterated but no longer passed through.
  virtual void ForEachWhile(
      const std::function<bool(const Record&)>& fn) const {
    bool more = true;
    ForEach([&](const Record& rec) {
      if (more) more = fn(rec);
    });
  }

  virtual int64_t size() const = 0;

  const SolutionSetStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SolutionSetStats{}; }

  /// Epoch tag for serving-layer snapshot reads. The serving session stamps
  /// every partition with the batch epoch after a warm round commits; a
  /// reader returns the stamp of the partition it read from and validates
  /// it (seqlock-style) against the service-level epoch, so every value is
  /// attributed to one batch-consistent state. The tag itself is an atomic
  /// so the validation reads are race-free; the record data is protected by
  /// the serving layer's reader/writer exclusion.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void set_epoch(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_release);
  }

 protected:
  SolutionSetStats stats_;
  std::atomic<uint64_t> epoch_{0};
};

/// Creates a hash-table-backed partition index (updateable hash table).
std::unique_ptr<SolutionSetIndex> MakeHashSolutionIndex(
    KeySpec solution_key, RecordOrder comparator = nullptr);

/// Creates a B+-tree-backed partition index (sorted primary index).
std::unique_ptr<SolutionSetIndex> MakeBTreeSolutionIndex(
    KeySpec solution_key, RecordOrder comparator = nullptr);

}  // namespace sfdf
