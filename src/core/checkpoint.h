// Iteration checkpointing (Section 4.2: "Iterative dataflows may log
// intermediate results for recovery just as non-iterative dataflows ...
// the execution engine judiciously picks operators whose output is
// materialized for recovery").
//
// For a workset iteration the materialization points are the partitioned
// solution set S_i and the workset W_i at a superstep boundary — together
// they fully determine the remaining computation. The executor writes them
// at a configured superstep; recovery seeds a fresh iteration with the
// loaded state (see ExecutionOptions::checkpoint_*).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "record/record.h"

namespace sfdf {

struct IterationCheckpoint {
  /// The superstep after which the snapshot was taken.
  int superstep = 0;
  /// Full contents of the solution set (all partitions).
  std::vector<Record> solution;
  /// The workset pending for the next superstep.
  std::vector<Record> workset;
};

/// Writes `checkpoint` to `path` (single binary file, atomic via rename).
Status SaveCheckpoint(const std::string& path,
                      const IterationCheckpoint& checkpoint);

/// Reads a checkpoint written by SaveCheckpoint.
Result<IterationCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace sfdf
