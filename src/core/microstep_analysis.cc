#include "core/microstep_analysis.h"

#include <vector>

#include "record/key.h"

namespace sfdf {

namespace {

/// Nodes of `plan` reachable from `start` through body nodes of iteration
/// `iteration_id` (inclusive of start).
std::vector<bool> ReachableBodyNodes(const Plan& plan, NodeId start,
                                     int iteration_id) {
  std::vector<bool> reachable(plan.nodes().size(), false);
  auto consumers = plan.BuildConsumerIndex();
  std::vector<NodeId> stack = {start};
  reachable[start] = true;
  while (!stack.empty()) {
    NodeId node = stack.back();
    stack.pop_back();
    for (NodeId consumer : consumers[node]) {
      if (plan.node(consumer).iteration_id != iteration_id) continue;
      if (!reachable[consumer]) {
        reachable[consumer] = true;
        stack.push_back(consumer);
      }
    }
  }
  return reachable;
}

/// Converts FieldPreservation annotations into optimizer FieldMappings.
std::vector<FieldMapping> MappingsOf(const LogicalNode& node, int input) {
  std::vector<FieldMapping> out;
  for (const auto& p : node.preserved_fields[input]) {
    out.push_back(FieldMapping{p.from, p.to});
  }
  return out;
}

}  // namespace

Result<WorksetAnalysis> AnalyzeWorksetBody(const Plan& plan,
                                           const WorksetIterationSpec& spec) {
  WorksetAnalysis analysis;
  auto consumers = plan.BuildConsumerIndex();

  // --- Locate the solution join: the unique consumer of the S placeholder.
  const auto& s_consumers = consumers[spec.solution_placeholder];
  std::vector<NodeId> body_s_consumers;
  for (NodeId c : s_consumers) {
    if (plan.node(c).iteration_id == spec.id) body_s_consumers.push_back(c);
  }
  if (body_s_consumers.size() != 1) {
    return Status::InvalidArgument(
        "workset iteration: the solution set must feed exactly one body "
        "operator (the operator its index merges into), found " +
        std::to_string(body_s_consumers.size()));
  }
  NodeId join_id = body_s_consumers[0];
  const LogicalNode& join = plan.node(join_id);
  if (join.kind != OperatorKind::kMatch &&
      join.kind != OperatorKind::kCoGroup &&
      join.kind != OperatorKind::kInnerCoGroup) {
    return Status::InvalidArgument(
        "workset iteration: the solution set must feed a Match, CoGroup or "
        "InnerCoGroup, found " + std::string(OperatorKindName(join.kind)));
  }
  analysis.solution_join = join_id;
  analysis.solution_side =
      join.inputs[0] == spec.solution_placeholder ? 0 : 1;

  // The join key on the S side must be exactly the solution key, so index
  // lookups are primary-key lookups.
  const KeySpec& s_side_key =
      analysis.solution_side == 0 ? join.key_left : join.key_right;
  if (!(s_side_key == spec.solution_key)) {
    return Status::InvalidArgument(
        "workset iteration: the solution join must join S on the solution "
        "key " + spec.solution_key.ToString() + ", found " +
        s_side_key.ToString());
  }
  const KeySpec& probe_key =
      analysis.solution_side == 0 ? join.key_right : join.key_left;

  // --- Derive the workset routing key: map the probe key back through any
  // record-at-a-time operators between the W placeholder and the join.
  {
    NodeId probe_input = join.inputs[1 - analysis.solution_side];
    KeySpec key = probe_key;
    NodeId cursor = probe_input;
    bool ok = true;
    while (cursor != spec.workset_placeholder) {
      const LogicalNode& node = plan.node(cursor);
      if (node.inputs.size() != 1 || node.iteration_id != spec.id) {
        ok = false;
        break;
      }
      KeySpec remapped;
      if (node.kind == OperatorKind::kFilter) {
        remapped = key;  // filters pass records through unchanged
      } else if (!RemapKeyToInput(key, MappingsOf(node, 0), &remapped)) {
        ok = false;
        break;
      }
      key = remapped;
      cursor = node.inputs[0];
    }
    if (!ok) {
      return Status::InvalidArgument(
          "workset iteration: cannot derive the workset routing key — the "
          "path from W to the solution join must preserve the probe key "
          "fields (declare them with DeclarePreserved)");
    }
    analysis.workset_route_key = key;
  }

  // --- Local-update condition: D is the join's own output and the join
  // declares preservation of the key fields into the solution-key positions.
  analysis.delta_is_join_output = (spec.delta_output == join_id);
  if (analysis.delta_is_join_output) {
    for (int side = 0; side < 2; ++side) {
      const KeySpec& in_key =
          side == 0 ? join.key_left : join.key_right;
      KeySpec mapped;
      if (RemapKey(in_key, MappingsOf(join, side), &mapped) &&
          mapped == spec.solution_key) {
        analysis.local_updates = true;
        break;
      }
    }
  }

  // --- Microstep conditions (Section 5.2).
  analysis.microstep_capable = true;
  auto block = [&](const std::string& reason) {
    analysis.microstep_capable = false;
    if (analysis.microstep_blocker.empty()) analysis.microstep_blocker = reason;
  };

  std::vector<bool> dynamic =
      ReachableBodyNodes(plan, spec.workset_placeholder, spec.id);

  for (const LogicalNode& node : plan.nodes()) {
    if (node.iteration_id != spec.id || !node.iteration_is_workset) continue;
    if (node.kind == OperatorKind::kWorksetPlaceholder ||
        node.kind == OperatorKind::kSolutionPlaceholder) {
      continue;  // structural nodes, not operators
    }
    bool is_join = node.id == join_id;
    // 1. Record-at-a-time operators only. The solution join must be a Match
    //    (group-at-a-time CoGroup needs supersteps to scope the groups).
    if (!IsRecordAtATime(node.kind)) {
      if (is_join && (node.kind == OperatorKind::kCoGroup ||
                      node.kind == OperatorKind::kInnerCoGroup)) {
        block("the solution-set operator is group-at-a-time (" +
              std::string(OperatorKindName(node.kind)) +
              "); use Match for microstep execution");
      } else {
        block("operator '" + node.name + "' is group-at-a-time (" +
              std::string(OperatorKindName(node.kind)) + ")");
      }
    }
    // 2. Binary operators: at most one dynamic input.
    if (node.inputs.size() == 2) {
      int dynamic_inputs = 0;
      for (NodeId input : node.inputs) {
        if (input == spec.workset_placeholder ||
            (static_cast<size_t>(input) < dynamic.size() && dynamic[input])) {
          ++dynamic_inputs;
        }
      }
      if (dynamic_inputs > 1 && !is_join) {
        block("operator '" + node.name + "' has two dynamic inputs");
      }
    }
    // 3. Unbranched dynamic path: at most one body consumer per
    //    dynamic-path node (the D output is exempt).
    if (dynamic[node.id] && node.id != spec.delta_output) {
      int body_consumers = 0;
      for (NodeId c : consumers[node.id]) {
        if (plan.node(c).iteration_id == spec.id) ++body_consumers;
      }
      if (body_consumers > 1) {
        block("dynamic path branches at '" + node.name + "'");
      }
    }
  }
  // 4. Microsteps additionally require lock-free local updates.
  if (analysis.microstep_capable && !analysis.local_updates) {
    block("updates are not partition-local (D must be the solution join's "
          "output and the join must preserve the key fields)");
  }

  return analysis;
}

}  // namespace sfdf
