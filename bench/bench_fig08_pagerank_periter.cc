// Figure 8: execution times of the individual iterations for PageRank on
// the Wikipedia dataset (Spark, Giraph, Stratosphere-partition).
//
// Expected shape: Stratosphere and Giraph have near-constant iteration
// times with a longer first iteration (constant-path execution / vertex
// setup); Spark's per-iteration times sit higher and vary more (per-message
// object churn — the JVM's GC pressure in the paper, allocation churn
// here).
#include <cstdio>
#include <vector>

#include "algos/pagerank.h"
#include "baselines/giraph/giraph.h"
#include "baselines/spark/spark.h"
#include "bench_common.h"
#include "graph/datasets.h"

int main() {
  using namespace sfdf;
  bench::Header("Figure 8", "PageRank per-iteration times, Wikipedia (ms)",
                "constant iteration times for Giraph/Stratosphere with a "
                "longer first iteration; higher and noisier times for Spark");

  Graph graph = DatasetByName("wikipedia").generate(ScaleFactor());
  const int kIterations = 20;

  std::vector<double> spark_ms;
  {
    spark::SparkOptions options;
    options.memory_budget_bytes = bench::SparkBudget();
    auto result = spark::PageRank(graph, kIterations, 0.85, options);
    if (result.ok()) {
      for (const auto& it : result->stats.iterations) {
        spark_ms.push_back(it.millis);
      }
    }
  }
  std::vector<double> giraph_ms;
  {
    giraph::GiraphOptions options;
    options.message_budget_bytes = bench::GiraphBudget();
    auto result = giraph::PageRank(graph, kIterations, 0.85, options);
    if (result.ok()) {
      for (const auto& s : result->stats.supersteps) {
        giraph_ms.push_back(s.millis);
      }
    }
  }
  std::vector<double> strato_ms;
  {
    PageRankOptions options;
    options.iterations = kIterations;
    options.plan = PageRankPlan::kPartition;
    auto result = RunPageRank(graph, options);
    if (result.ok()) {
      for (const auto& s : result->exec.bulk_reports[0].supersteps) {
        strato_ms.push_back(s.millis);
      }
    }
  }

  std::printf("%-10s %12s %12s %12s\n", "iteration", "spark", "giraph",
              "strato-prt");
  for (int i = 0; i < kIterations; ++i) {
    auto cell = [&](const std::vector<double>& series) {
      return i < static_cast<int>(series.size()) ? series[i] : -1.0;
    };
    std::printf("%-10d %12.2f %12.2f %12.2f\n", i + 1, cell(spark_ms),
                cell(giraph_ms), cell(strato_ms));
    std::printf("row iteration=%d spark_ms=%.2f giraph_ms=%.2f strato_ms=%.2f\n",
                i + 1, cell(spark_ms), cell(giraph_ms), cell(strato_ms));
  }
  bench::PrintPeakRss();
  return 0;
}
