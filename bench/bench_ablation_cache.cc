// Ablation: constant-path caching (§4.3).
//
// The optimizer caches loop-invariant inputs at the operator where the
// constant path meets the dynamic path (here: the graph topology as the
// join's build-side hash table). With caching disabled, the raw records are
// kept but the hash table is rebuilt every superstep.
//
// Expected: caching wins, and the gap grows with the iteration count.
#include <benchmark/benchmark.h>

#include "algos/connected_components.h"
#include "common/env.h"
#include "graph/generators.h"

namespace sfdf {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    RmatOptions opt;
    opt.num_vertices = static_cast<int64_t>(16384 * ScaleFactor());
    opt.num_edges = static_cast<int64_t>(100000 * ScaleFactor());
    opt.seed = 42;
    return new Graph(GenerateRmat(opt));
  }();
  return *graph;
}

void BM_IncrementalCc(benchmark::State& state, bool enable_caching) {
  const Graph& graph = BenchGraph();
  for (auto _ : state) {
    CcOptions options;
    options.variant = CcVariant::kIncrementalCoGroup;
    options.enable_caching = enable_caching;
    options.record_superstep_stats = false;
    auto result = RunConnectedComponents(graph, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

void BM_CacheEnabled(benchmark::State& state) {
  BM_IncrementalCc(state, true);
}
void BM_CacheDisabled(benchmark::State& state) {
  BM_IncrementalCc(state, false);
}

BENCHMARK(BM_CacheEnabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheDisabled)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sfdf

BENCHMARK_MAIN();
