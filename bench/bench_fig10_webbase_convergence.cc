// Figure 10: execution time and workset elements ("messages sent") per
// iteration for Connected Components on the Webbase graph, run to full
// convergence on the incremental plan — plus the §6.2 comparison: the bulk
// plan's extrapolated full-convergence time vs. the incremental plan's
// measured one (the paper's headline: 37 minutes vs. ~47 hours, a ~75×
// speedup; "two orders of magnitude" territory).
//
// Expected shape: the huge-diameter component keeps the iteration running
// for hundreds of supersteps; after the initial flood both per-iteration
// time and messages drop by orders of magnitude and stay tiny for the long
// tail (time bounded below by superstep synchronization).
#include <cstdio>

#include "algos/connected_components.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "graph/datasets.h"

int main() {
  using namespace sfdf;
  bench::Header(
      "Figure 10", "CC on Webbase: per-iteration time & messages, full run",
      "hundreds of iterations; time and messages drop by orders of "
      "magnitude after the initial flood; bulk extrapolates to ~2 orders "
      "of magnitude slower");

  Graph graph = DatasetByName("webbase").generate(ScaleFactor());
  std::printf("graph: %s\n", graph.ToString().c_str());

  // --- Incremental plan to full convergence ---
  CcOptions options;
  options.variant = CcVariant::kIncrementalCoGroup;
  options.max_iterations = 1000000;
  Stopwatch incr_watch;
  auto incr = RunConnectedComponents(graph, options);
  if (!incr.ok()) {
    std::printf("error: %s\n", incr.status().ToString().c_str());
    return 1;
  }
  double incr_total = incr_watch.ElapsedSeconds();
  const auto& steps = incr->exec.workset_reports[0].supersteps;
  std::printf("incremental: %d iterations, %.3f s total, converged=%d\n",
              incr->iterations, incr_total, incr->converged ? 1 : 0);

  // Print a decimating sample of the long series (like the log-scale plot).
  std::printf("%-10s %14s %14s\n", "iteration", "millis", "messages");
  int stride = std::max<int>(1, static_cast<int>(steps.size()) / 40);
  for (size_t i = 0; i < steps.size();
       i += (i < 10 ? 1 : static_cast<size_t>(stride))) {
    std::printf("%-10d %14.3f %14lld\n", steps[i].superstep + 1,
                steps[i].millis,
                static_cast<long long>(steps[i].workset_size));
    std::printf("row iteration=%d millis=%.3f messages=%lld\n",
                steps[i].superstep + 1, steps[i].millis,
                static_cast<long long>(steps[i].workset_size));
  }

  // --- Bulk plan, first 20 iterations, extrapolated to convergence ---
  CcOptions bulk_options;
  bulk_options.variant = CcVariant::kBulk;
  bulk_options.max_iterations = 20;
  Stopwatch bulk_watch;
  auto bulk = RunConnectedComponents(graph, bulk_options);
  if (!bulk.ok()) {
    std::printf("bulk error: %s\n", bulk.status().ToString().c_str());
    return 1;
  }
  double bulk20 = bulk_watch.ElapsedSeconds();
  double bulk_extrapolated =
      bulk20 / 20.0 * static_cast<double>(incr->iterations);
  std::printf(
      "bulk: first 20 iterations took %.3f s; extrapolated to %d "
      "iterations: %.1f s\n",
      bulk20, incr->iterations, bulk_extrapolated);
  std::printf(
      "summary incr_total_s=%.3f bulk20_s=%.3f bulk_extrapolated_s=%.1f "
      "speedup=%.1f iterations=%d\n",
      incr_total, bulk20, bulk_extrapolated,
      incr_total > 0 ? bulk_extrapolated / incr_total : 0, incr->iterations);
  return 0;
}
