// Figure 10: execution time and workset elements ("messages sent") per
// iteration for Connected Components on the Webbase graph, run to full
// convergence on the incremental plan — plus the §6.2 comparison: the bulk
// plan's extrapolated full-convergence time vs. the incremental plan's
// measured one (the paper's headline: 37 minutes vs. ~47 hours, a ~75×
// speedup; "two orders of magnitude" territory).
//
// Expected shape: the huge-diameter component keeps the iteration running
// for hundreds of supersteps; after the initial flood both per-iteration
// time and messages drop by orders of magnitude and stay tiny for the long
// tail (time bounded below by superstep synchronization).
//
// --mode=superstep|async|bounded_stale:K re-runs the same incremental
// workload (fig10_workload.h, shared with bench_async_staleness) under a
// different barrier discipline. Barrier-free modes have no supersteps, so
// the per-iteration series is only printed for --mode=superstep; the
// bulk-extrapolation baseline always runs in superstep mode (bulk plans
// reject barrier-free execution by design).
#include <cstdio>

#include "algos/connected_components.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "fig10_workload.h"

int main(int argc, char** argv) {
  using namespace sfdf;
  auto parsed = bench::ExecModeFromArgs(argc, argv);
  if (!parsed.ok()) {
    std::printf("error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const bench::ExecMode mode = *parsed;
  bench::Header(
      "Figure 10", "CC on Webbase: per-iteration time & messages, full run",
      "hundreds of iterations; time and messages drop by orders of "
      "magnitude after the initial flood; bulk extrapolates to ~2 orders "
      "of magnitude slower");
  std::printf("mode: %s\n", mode.name.c_str());

  Graph graph = bench::Fig10Graph();
  std::printf("graph: %s\n", graph.ToString().c_str());

  // --- Incremental plan to full convergence ---
  Stopwatch incr_watch;
  auto incr = RunConnectedComponents(graph, bench::Fig10CcOptions(mode));
  if (!incr.ok()) {
    std::printf("error: %s\n", incr.status().ToString().c_str());
    return 1;
  }
  double incr_total = incr_watch.ElapsedSeconds();
  std::printf("incremental: %d iterations, %.3f s total, converged=%d\n",
              incr->iterations, incr_total, incr->converged ? 1 : 0);

  if (mode.sync_mode == SyncMode::kSuperstep) {
    // Print a decimating sample of the long series (the log-scale plot).
    const auto& steps = incr->exec.workset_reports[0].supersteps;
    std::printf("%-10s %14s %14s\n", "iteration", "millis", "messages");
    int stride = std::max<int>(1, static_cast<int>(steps.size()) / 40);
    for (size_t i = 0; i < steps.size();
         i += (i < 10 ? 1 : static_cast<size_t>(stride))) {
      std::printf("%-10d %14.3f %14lld\n", steps[i].superstep + 1,
                  steps[i].millis,
                  static_cast<long long>(steps[i].workset_size));
      std::printf("row iteration=%d millis=%.3f messages=%lld\n",
                  steps[i].superstep + 1, steps[i].millis,
                  static_cast<long long>(steps[i].workset_size));
    }
  } else {
    // Barrier-free rounds are per-partition and unsynchronized — there is
    // no global per-iteration series to plot. Report the run-level
    // quiescence-protocol counters instead.
    int64_t local_rounds = 0;
    for (int64_t r : incr->exec.async_local_rounds) local_rounds += r;
    std::printf(
        "barrier-free run: no superstep series; local_rounds=%lld "
        "revocations=%lld max_staleness=%lld\n",
        static_cast<long long>(local_rounds),
        static_cast<long long>(incr->exec.async_vote_revocations),
        static_cast<long long>(incr->exec.async_max_staleness));
    std::printf(
        "row mode=%s local_rounds=%lld revocations=%lld max_staleness=%lld "
        "incr_total_s=%.3f\n",
        mode.name.c_str(), static_cast<long long>(local_rounds),
        static_cast<long long>(incr->exec.async_vote_revocations),
        static_cast<long long>(incr->exec.async_max_staleness), incr_total);
  }

  // --- Bulk plan, first 20 iterations, extrapolated to convergence ---
  // Always superstep: ValidateSyncMode rejects barrier-free bulk plans, and
  // the figure's baseline is the paper's synchronized bulk iteration.
  CcOptions bulk_options;
  bulk_options.variant = CcVariant::kBulk;
  bulk_options.max_iterations = 20;
  Stopwatch bulk_watch;
  auto bulk = RunConnectedComponents(graph, bulk_options);
  if (!bulk.ok()) {
    std::printf("bulk error: %s\n", bulk.status().ToString().c_str());
    return 1;
  }
  double bulk20 = bulk_watch.ElapsedSeconds();
  double bulk_extrapolated =
      bulk20 / 20.0 * static_cast<double>(incr->iterations);
  std::printf(
      "bulk: first 20 iterations took %.3f s; extrapolated to %d "
      "iterations: %.1f s\n",
      bulk20, incr->iterations, bulk_extrapolated);
  std::printf(
      "summary incr_total_s=%.3f bulk20_s=%.3f bulk_extrapolated_s=%.1f "
      "speedup=%.1f iterations=%d mode=%s\n",
      incr_total, bulk20, bulk_extrapolated,
      incr_total > 0 ? bulk_extrapolated / incr_total : 0, incr->iterations,
      mode.name.c_str());
  bench::PrintPeakRss();
  return 0;
}
