// Figure 7: total execution times for the PageRank algorithm (20
// iterations) on Wikipedia, Webbase and Twitter, across four systems:
// Spark, Giraph, Stratosphere-partition and Stratosphere-broadcast.
//
// Expected shape (paper):
//  * On Wikipedia all systems are roughly comparable; the broadcast plan is
//    cheapest (saves the per-iteration shuffle of the contributions).
//  * Spark and Giraph run out of memory on Webbase and Twitter (no message
//    spilling).
//  * The broadcast plan degrades on Webbase (rebuilding the replicated rank
//    table dominates as the vector grows).
#include <cstdio>
#include <string>

#include "algos/pagerank.h"
#include "baselines/giraph/giraph.h"
#include "baselines/spark/spark.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "graph/datasets.h"

namespace sfdf {
namespace {

constexpr int kIterations = 20;

Result<double> RunSpark(const Graph& graph) {
  spark::SparkOptions options;
  options.memory_budget_bytes = bench::SparkBudget();
  Stopwatch watch;
  auto result = spark::PageRank(graph, kIterations, 0.85, options);
  if (!result.ok()) return result.status();
  return watch.ElapsedSeconds();
}

Result<double> RunGiraph(const Graph& graph) {
  giraph::GiraphOptions options;
  options.message_budget_bytes = bench::GiraphBudget();
  Stopwatch watch;
  auto result = giraph::PageRank(graph, kIterations, 0.85, options);
  if (!result.ok()) return result.status();
  return watch.ElapsedSeconds();
}

Result<double> RunStratosphere(const Graph& graph, PageRankPlan plan) {
  PageRankOptions options;
  options.iterations = kIterations;
  options.plan = plan;
  Stopwatch watch;
  auto result = RunPageRank(graph, options);
  if (!result.ok()) return result.status();
  return watch.ElapsedSeconds();
}

}  // namespace
}  // namespace sfdf

int main() {
  using namespace sfdf;
  bench::Header("Figure 7", "PageRank total execution times (seconds)",
                "comparable systems on wikipedia; Spark/Giraph OOM on the "
                "large sets; broadcast plan degrades on webbase");

  std::printf("%-11s %10s %10s %10s %10s\n", "dataset", "spark", "giraph",
              "strato-prt", "strato-bc");
  for (const char* name : {"wikipedia", "webbase", "twitter"}) {
    Graph graph = DatasetByName(name).generate(ScaleFactor());
    auto spark_time = RunSpark(graph);
    auto giraph_time = RunGiraph(graph);
    auto part_time = RunStratosphere(graph, PageRankPlan::kPartition);
    auto bc_time = RunStratosphere(graph, PageRankPlan::kBroadcast);
    std::printf("%-11s %s %s %s %s\n", name,
                bench::Cell(spark_time).c_str(),
                bench::Cell(giraph_time).c_str(),
                bench::Cell(part_time).c_str(),
                bench::Cell(bc_time).c_str());
    std::printf(
        "row dataset=%s spark=%s giraph=%s strato_part=%s strato_bc=%s\n",
        name, bench::Cell(spark_time).c_str(),
        bench::Cell(giraph_time).c_str(), bench::Cell(part_time).c_str(),
        bench::Cell(bc_time).c_str());
  }
  bench::PrintPeakRss();
  return 0;
}
