// Ablation: chained pre-aggregation (combiners, §6.1).
//
// PageRank's Reduce input is pre-aggregated in the shipping router before
// crossing partitions ("these records are pre-aggregated (cf. Combiners in
// MapReduce and Pregel) and are then sent over the network"). Disabling the
// combiner ships every raw contribution.
//
// Expected: the combiner reduces shipped records (and usually time) on the
// partition plan; reported via the shipped-records counter.
#include <benchmark/benchmark.h>

#include "algos/pagerank.h"
#include "common/env.h"
#include "dataflow/plan_builder.h"
#include "graph/generators.h"
#include "optimizer/optimizer.h"
#include "runtime/executor.h"

namespace sfdf {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    RmatOptions opt;
    opt.num_vertices = static_cast<int64_t>(16384 * ScaleFactor());
    opt.num_edges = static_cast<int64_t>(100000 * ScaleFactor());
    opt.seed = 42;
    return new Graph(GenerateRmat(opt));
  }();
  return *graph;
}

void RunWithCombiner(benchmark::State& state, bool enable_combiners) {
  const Graph& graph = BenchGraph();
  int64_t shipped = 0;
  for (auto _ : state) {
    std::vector<Record> output;
    PlanBuilder pb;
    auto ranks = pb.Source("p", BuildInitialRanks(graph));
    auto matrix = pb.Source("A", BuildTransitionMatrix(graph));
    auto it = pb.BeginBulkIteration("pr", ranks, 10, {0});
    auto contribs = pb.Match(
        "joinPA", it.PartialSolution(), matrix, {0}, {1},
        [](const Record& p, const Record& a, Collector* c) {
          c->Emit(Record::OfIntDouble(a.GetInt(0),
                                      p.GetDouble(1) * a.GetDouble(2)));
        });
    pb.DeclarePreserved(contribs, 1, 0, 0);
    auto next = pb.Reduce(
        "sum", contribs, {0},
        [](const std::vector<Record>& group, Collector* c) {
          double sum = 0;
          for (const Record& rec : group) sum += rec.GetDouble(1);
          c->Emit(Record::OfIntDouble(group.front().GetInt(0), sum));
        },
        [](const Record& a, const Record& b) {
          return Record::OfIntDouble(a.GetInt(0),
                                     a.GetDouble(1) + b.GetDouble(1));
        });
    pb.DeclarePreserved(next, 0, 0, 0);
    auto result = it.Close(next);
    pb.Sink("ranks", result, &output);
    Plan plan = std::move(pb).Finish();

    OptimizerOptions oopt;
    oopt.enable_combiners = enable_combiners;
    oopt.broadcast_cost_factor = 1e9;  // partition plan: shuffles every step
    auto physical = Optimizer(oopt).Optimize(plan);
    if (!physical.ok()) {
      state.SkipWithError(physical.status().ToString().c_str());
      return;
    }
    Executor executor;
    auto exec = executor.Run(*physical);
    if (!exec.ok()) {
      state.SkipWithError(exec.status().ToString().c_str());
      return;
    }
    shipped = exec->records_shipped;
  }
  state.counters["records_shipped"] = static_cast<double>(shipped);
}

void BM_CombinerEnabled(benchmark::State& state) {
  RunWithCombiner(state, true);
}
void BM_CombinerDisabled(benchmark::State& state) {
  RunWithCombiner(state, false);
}

BENCHMARK(BM_CombinerEnabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CombinerDisabled)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sfdf

BENCHMARK_MAIN();
