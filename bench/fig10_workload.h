// The Figure-10 convergence workload, shared between the figure harness
// (bench_fig10_webbase_convergence) and the barrier-free mode sweep
// (bench_async_staleness): Connected Components on the Webbase stand-in,
// incremental (workset) plan, run to full convergence. Keeping the
// dataset, variant and iteration cap in one place guarantees the mode
// sweep measures exactly the workload the figure reports — a speedup on a
// subtly different graph would be meaningless.
//
// The execution-mode flag both binaries accept is parsed here too:
//   --mode=superstep          synchronized supersteps (paper default)
//   --mode=async              barrier-free local rounds, quiescence stop
//   --mode=bounded_stale:K    barrier-free, capped at K rounds of lead
#pragma once

#include <cstdlib>
#include <string>

#include "algos/connected_components.h"
#include "common/env.h"
#include "common/result.h"
#include "graph/datasets.h"
#include "graph/graph.h"

namespace sfdf {
namespace bench {

struct ExecMode {
  SyncMode sync_mode = SyncMode::kSuperstep;
  int staleness_bound = 1;
  std::string name = "superstep";
};

inline Result<ExecMode> ParseExecMode(const std::string& spec) {
  ExecMode mode;
  mode.name = spec;
  if (spec == "superstep") {
    mode.sync_mode = SyncMode::kSuperstep;
    return mode;
  }
  if (spec == "async") {
    mode.sync_mode = SyncMode::kAsync;
    return mode;
  }
  const std::string prefix = "bounded_stale:";
  if (spec.rfind(prefix, 0) == 0) {
    const int k = std::atoi(spec.c_str() + prefix.size());
    if (k < 1) {
      return Status::InvalidArgument("bounded_stale window must be >= 1: " +
                                     spec);
    }
    mode.sync_mode = SyncMode::kBoundedStale;
    mode.staleness_bound = k;
    return mode;
  }
  return Status::InvalidArgument(
      "unknown mode '" + spec +
      "' (expected superstep | async | bounded_stale:K)");
}

/// Scans argv for --mode=...; anything else is rejected so a typo cannot
/// silently fall back to the superstep default.
inline Result<ExecMode> ExecModeFromArgs(int argc, char** argv) {
  ExecMode mode;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--mode=";
    if (arg.rfind(prefix, 0) != 0) {
      return Status::InvalidArgument("unexpected argument '" + arg +
                                     "' (only --mode=... is accepted)");
    }
    SFDF_ASSIGN_OR_RETURN(mode, ParseExecMode(arg.substr(prefix.size())));
  }
  return mode;
}

inline Graph Fig10Graph() {
  return DatasetByName("webbase").generate(ScaleFactor());
}

/// The figure's incremental plan (INCR-CC as an InnerCoGroup workset
/// iteration), in the requested barrier discipline. Min-label propagation
/// is monotone under the ∪̇ comparator, so every mode converges to the
/// same labels — the sweep asserts that.
inline CcOptions Fig10CcOptions(const ExecMode& mode) {
  CcOptions options;
  options.variant = CcVariant::kIncrementalCoGroup;
  options.max_iterations = 1000000;
  options.sync_mode = mode.sync_mode;
  options.staleness_bound = mode.staleness_bound;
  return options;
}

}  // namespace bench
}  // namespace sfdf
