// Flight-recorder overhead: the always-on tracing gate must cost nothing
// measurable when tracing is off. Runs fig07's PageRank workload (20
// iterations, partition plan, wikipedia) three ways:
//   1. off_ref   — tracing never enabled (the shipped default),
//   2. on        — tracing enabled (rings allocating + recording),
//   3. off_after — disabled again, with the recorder warm (rings and the
//                  name table allocated) — the state a process is in after
//                  one diagnostic window, which is what "near-zero cost
//                  when off" must hold for.
// Each timing is the median of 3 runs. Gate: off_after within 2% of
// off_ref, enforced at full scale on hosts with >= 4 hardware threads and
// report-only elsewhere (small scales and starved hosts put the medians
// inside scheduler noise). The tracing-on cost is reported, not gated.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "algos/pagerank.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "graph/datasets.h"
#include "obs/trace.h"

namespace sfdf {
namespace {

constexpr int kIterations = 20;
constexpr int kRepeats = 3;

double MedianRunSeconds(const Graph& graph) {
  double times[kRepeats];
  for (int i = 0; i < kRepeats; ++i) {
    PageRankOptions options;
    options.iterations = kIterations;
    options.plan = PageRankPlan::kPartition;
    Stopwatch watch;
    auto result = RunPageRank(graph, options);
    SFDF_CHECK(result.ok()) << result.status().ToString();
    times[i] = watch.ElapsedSeconds();
  }
  std::sort(times, times + kRepeats);
  return times[kRepeats / 2];
}

}  // namespace
}  // namespace sfdf

int main() {
  using namespace sfdf;
  bench::Header("Trace overhead",
                "flight-recorder cost on fig07 PageRank (partition plan)",
                "tracing off is within 2% of the untraced baseline; "
                "tracing on costs a few percent");

  Graph graph = DatasetByName("wikipedia").generate(ScaleFactor());

  trace::SetEnabled(false);
  const double off_ref = MedianRunSeconds(graph);
  trace::SetEnabled(true);
  const double on = MedianRunSeconds(graph);
  trace::SetEnabled(false);
  const double off_after = MedianRunSeconds(graph);

  const double off_delta_pct = (off_after / off_ref - 1.0) * 100.0;
  const double on_delta_pct = (on / off_ref - 1.0) * 100.0;
  std::printf("%-10s %10s %10s\n", "mode", "median-s", "vs-off-%");
  std::printf("%-10s %10.3f %10s\n", "off-ref", off_ref, "-");
  std::printf("%-10s %10.3f %+10.2f\n", "on", on, on_delta_pct);
  std::printf("%-10s %10.3f %+10.2f\n", "off-after", off_after,
              off_delta_pct);

  std::printf(
      "row mode=off_ref seconds=%.3f\n"
      "row mode=on seconds=%.3f delta_pct=%.2f\n"
      "row mode=off_after seconds=%.3f delta_pct=%.2f\n",
      off_ref, on, on_delta_pct, off_after, off_delta_pct);

  // The 2% gate only means something when the medians sit above scheduler
  // noise: full scale, and enough hardware threads that the partitions are
  // not time-slicing one core.
  const bool gate = ScaleFactor() >= 1.0 &&
                    std::thread::hardware_concurrency() >= 4;
  if (gate && off_after > off_ref * 1.02) {
    std::printf("row metric=gate status=FAIL off_after_pct=%.2f limit=2.00\n",
                off_delta_pct);
    bench::PrintPeakRss();
    return 1;
  }
  std::printf("row metric=gate status=%s enforced=%d\n",
              gate ? "PASS" : "SKIPPED", gate ? 1 : 0);
  bench::PrintPeakRss();
  return 0;
}
