// Barrier-free iteration sweep: the Figure-10 convergence workload
// (INCR-CC on Webbase, fig10_workload.h) executed under every barrier
// discipline — synchronized supersteps, fully asynchronous local rounds,
// and bounded staleness with windows k ∈ {1, 2, 4, 8}.
//
// Expected shape: the superstep run pays a global barrier per iteration,
// and Figure 10's long tail is hundreds of near-empty iterations — so once
// partitions can make progress on whatever their lanes hold, wall-clock
// drops. Async is the upper bound on reordering freedom; bounded_stale:k
// interpolates between it and the superstep schedule (k=1 is the tightest
// coupling that still needs no global barrier). Every mode must converge
// to EXACTLY the superstep labels: min-label propagation is monotone under
// the ∪̇ comparator, so update order cannot change the fixpoint — the
// sweep checks that on every run and fails loudly on any mismatch.
//
// The speedup floor (best barrier-free mode >= 1.3x over superstep) is
// only enforced where barriers actually cost something: at full scale and
// on hosts with >= 4 hardware threads. On smaller hosts the partitions are
// time-sliced onto one core, a barrier costs a handful of context
// switches, and the protocol-overhead comparison is reported for the
// record, not gated — the same policy bench_exchange applies to its
// contention floor.
#include <cstdio>
#include <thread>
#include <vector>

#include "algos/connected_components.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "fig10_workload.h"

int main() {
  using namespace sfdf;
  bench::Header(
      "Async", "Barrier-free CC convergence: superstep vs async vs "
               "bounded_stale(k)",
      "identical labels in every mode; barrier-free modes shed the per-"
      "iteration barrier, so best-of >= 1.3x over superstep where >= 4 "
      "hardware threads give barriers a real cost");

  Graph graph = bench::Fig10Graph();
  std::printf("graph: %s\n", graph.ToString().c_str());

  const char* kModes[] = {"superstep",       "async",
                          "bounded_stale:1", "bounded_stale:2",
                          "bounded_stale:4", "bounded_stale:8"};
  std::printf("%-16s %10s %10s %12s %12s %10s %9s\n", "mode", "seconds",
              "rounds", "local_rounds", "revocations", "staleness",
              "speedup");

  std::vector<VertexId> reference_labels;
  double superstep_seconds = 0;
  double best_barrier_free = 0;
  const char* best_mode = "none";
  for (const char* spec : kModes) {
    auto parsed = bench::ParseExecMode(spec);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    // Best-of-3 per mode: the whole sweep is oversubscribed on small
    // hosts, and one descheduled partition stalls a superstep barrier (or
    // a staleness window) for a full quantum.
    const int kReps = 3;
    double seconds = 0;
    CcResult result;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      auto run = RunConnectedComponents(graph, bench::Fig10CcOptions(*parsed));
      if (!run.ok()) {
        std::printf("error (%s): %s\n", spec, run.status().ToString().c_str());
        return 1;
      }
      const double elapsed = watch.ElapsedSeconds();
      if (rep == 0 || elapsed < seconds) {
        seconds = elapsed;
        result = std::move(*run);
      }
    }
    if (!result.converged) {
      std::printf("FAIL: %s did not converge\n", spec);
      return 1;
    }
    // Fixpoint equivalence: every discipline must produce the superstep
    // labels bit-for-bit.
    if (reference_labels.empty()) {
      reference_labels = result.labels;
    } else if (result.labels != reference_labels) {
      std::printf("FAIL: %s labels diverge from the superstep fixpoint\n",
                  spec);
      return 1;
    }

    int64_t local_rounds = 0;
    for (int64_t r : result.exec.async_local_rounds) local_rounds += r;
    const bool barrier_free = parsed->sync_mode != SyncMode::kSuperstep;
    if (!barrier_free) superstep_seconds = seconds;
    const double speedup =
        (barrier_free && seconds > 0) ? superstep_seconds / seconds : 1.0;
    if (barrier_free && speedup > best_barrier_free) {
      best_barrier_free = speedup;
      best_mode = spec;
    }
    std::printf("%-16s %10.3f %10d %12lld %12lld %10lld %8.2fx\n", spec,
                seconds, result.iterations,
                static_cast<long long>(local_rounds),
                static_cast<long long>(result.exec.async_vote_revocations),
                static_cast<long long>(result.exec.async_max_staleness),
                speedup);
    std::printf(
        "row mode=%s seconds=%.3f rounds=%d local_rounds=%lld "
        "revocations=%lld max_staleness=%lld speedup=%.3f converged=%d\n",
        spec, seconds, result.iterations,
        static_cast<long long>(local_rounds),
        static_cast<long long>(result.exec.async_vote_revocations),
        static_cast<long long>(result.exec.async_max_staleness), speedup,
        result.converged ? 1 : 0);
  }

  std::printf("summary best_mode=%s best_speedup=%.3f superstep_s=%.3f\n",
              best_mode, best_barrier_free, superstep_seconds);
  bench::PrintPeakRss();

  // Acceptance floor: the best barrier-free mode must beat supersteps by
  // >= 1.3x — but only where the comparison is measurable (full scale, so
  // the tail has hundreds of iterations; >= 4 hardware threads, so a
  // barrier actually idles cores). Elsewhere: reported, not enforced.
  const unsigned hw = std::thread::hardware_concurrency();
  if (ScaleFactor() < 1.0) return 0;
  if (hw < 4) {
    std::printf(
        "note: %u hardware thread(s) — partitions are time-sliced, so the "
        "1.3x barrier-elimination floor is reported, not enforced "
        "(measured %.2fx)\n",
        hw, best_barrier_free);
    return 0;
  }
  if (best_barrier_free < 1.3) {
    std::printf("FAIL: best barrier-free speedup %.2fx below the 1.3x floor\n",
                best_barrier_free);
    return 1;
  }
  return 0;
}
