// Table 2: Data Set Properties.
//
// Prints the paper's published properties next to the synthetic stand-ins'
// measured properties. The stand-ins are scaled down (DESIGN.md §1) but
// preserve the orderings the evaluation depends on: Hollywood ≫ Twitter ≫
// Webbase ≈ Wikipedia by average degree; Webbase largest, with a huge-
// diameter component.
#include <cstdio>

#include "bench_common.h"
#include "graph/datasets.h"

int main() {
  using namespace sfdf;
  bench::Header("Table 2", "Data Set Properties",
                "avg degree: hollywood(115) > twitter(35) > webbase(15) ~ "
                "wikipedia(13); webbase is the largest graph");

  std::printf("%-11s %12s %14s %8s | %10s %12s %8s %8s\n", "dataset",
              "paper|V|", "paper|E|", "paperdeg", "standin|V|", "standin|E|",
              "deg", "maxdeg");
  for (const DatasetSpec& spec : Table2Datasets()) {
    Graph graph = spec.generate(ScaleFactor());
    GraphStats stats = ComputeStats(graph);
    std::printf("%-11s %12lld %14lld %8.2f | %10lld %12lld %8.2f %8lld\n",
                spec.name.c_str(),
                static_cast<long long>(spec.paper_vertices),
                static_cast<long long>(spec.paper_edges),
                spec.paper_avg_degree,
                static_cast<long long>(stats.num_vertices),
                static_cast<long long>(stats.num_directed_edges),
                stats.avg_degree, static_cast<long long>(stats.max_degree));
    std::printf("row dataset=%s vertices=%lld edges=%lld avg_degree=%.2f\n",
                spec.name.c_str(), static_cast<long long>(stats.num_vertices),
                static_cast<long long>(stats.num_directed_edges),
                stats.avg_degree);
  }
  bench::PrintPeakRss();
  return 0;
}
