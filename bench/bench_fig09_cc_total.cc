// Figure 9: total execution times for the Connected Components algorithm on
// all four datasets across five configurations: Spark (bulk), Giraph,
// Stratosphere Full (bulk), Stratosphere Micro (Match update function) and
// Stratosphere Incr (CoGroup update function). Webbase runs the first 20
// iterations only, like the paper ("Webbase (20)").
//
// Expected shape (paper):
//  * Incremental ≈ 2× faster than bulk on Wikipedia; ≈ 5.3× on Twitter;
//    ≈ 3× on Webbase(20). Giraph also clearly beats the bulk dataflows.
//  * On the dense Hollywood graph the gain is smaller, and the CoGroup
//    variant beats the Match variant (~30% in the paper) because grouping
//    amortizes the per-candidate accesses to the partial solution.
//  * Spark and Giraph OOM on Twitter and Webbase.
#include <cstdio>

#include "algos/connected_components.h"
#include "baselines/giraph/giraph.h"
#include "baselines/spark/spark.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "graph/datasets.h"

namespace sfdf {
namespace {

Result<double> RunSpark(const Graph& graph, int max_iterations) {
  spark::SparkOptions options;
  options.memory_budget_bytes = bench::SparkBudget();
  Stopwatch watch;
  auto result =
      spark::ConnectedComponents(graph, false, max_iterations, options);
  if (!result.ok()) return result.status();
  return watch.ElapsedSeconds();
}

Result<double> RunGiraph(const Graph& graph, int max_iterations) {
  giraph::GiraphOptions options;
  options.message_budget_bytes = bench::GiraphBudget();
  options.max_supersteps = max_iterations;
  Stopwatch watch;
  auto result = giraph::ConnectedComponents(graph, options);
  if (!result.ok()) return result.status();
  return watch.ElapsedSeconds();
}

Result<double> RunStrato(const Graph& graph, CcVariant variant,
                         int max_iterations) {
  CcOptions options;
  options.variant = variant;
  options.max_iterations = max_iterations;
  Stopwatch watch;
  auto result = RunConnectedComponents(graph, options);
  if (!result.ok()) return result.status();
  return watch.ElapsedSeconds();
}

}  // namespace
}  // namespace sfdf

int main() {
  using namespace sfdf;
  bench::Header(
      "Figure 9", "Connected Components total execution times (seconds)",
      "incr/micro >> bulk (2x wikipedia, ~5x twitter, ~3x webbase20); "
      "cogroup beats match on dense hollywood; Spark/Giraph OOM on "
      "twitter+webbase");

  std::printf("%-13s %10s %10s %10s %10s %10s\n", "dataset", "spark",
              "giraph", "strato-ful", "strato-mic", "strato-inc");
  for (const char* name : {"wikipedia", "hollywood", "twitter", "webbase"}) {
    Graph graph = DatasetByName(name).generate(ScaleFactor());
    // The Webbase stand-in needs hundreds of iterations to converge; like
    // the paper, the cross-system comparison uses the first 20.
    const bool webbase = std::string(name) == "webbase";
    const int max_iters = webbase ? 20 : 10000;
    auto spark_time = RunSpark(graph, max_iters);
    auto giraph_time = RunGiraph(graph, max_iters);
    auto full_time = RunStrato(graph, CcVariant::kBulk, max_iters);
    auto micro_time =
        RunStrato(graph, CcVariant::kIncrementalMatch, max_iters);
    auto incr_time =
        RunStrato(graph, CcVariant::kIncrementalCoGroup, max_iters);
    const char* label = webbase ? "webbase(20)" : name;
    std::printf("%-13s %s %s %s %s %s\n", label,
                bench::Cell(spark_time).c_str(),
                bench::Cell(giraph_time).c_str(),
                bench::Cell(full_time).c_str(),
                bench::Cell(micro_time).c_str(),
                bench::Cell(incr_time).c_str());
    std::printf(
        "row dataset=%s spark=%s giraph=%s full=%s micro=%s incr=%s\n", label,
        bench::Cell(spark_time).c_str(), bench::Cell(giraph_time).c_str(),
        bench::Cell(full_time).c_str(), bench::Cell(micro_time).c_str(),
        bench::Cell(incr_time).c_str());
    if (full_time.ok() && incr_time.ok() && *incr_time > 0) {
      std::printf("speedup dataset=%s bulk_over_incr=%.2f\n", label,
                  *full_time / *incr_time);
    }
  }
  bench::PrintPeakRss();
  return 0;
}
