// Exchange microbenchmark: the v2 per-producer SPSC data plane against the
// v1 single-mutex MPSC channel it replaced, across producer/consumer grids.
//
// Expected shape: the two are comparable when one producer feeds one
// consumer (no contention to remove), and the exchange pulls ahead as
// producers are added — the legacy channel serializes every push through
// one mutex + condvar pair and allocates a fresh buffer per batch, while
// exchange lanes publish with plain release stores and recycle retired
// buffers through the per-lane pool. The acceptance floor for the v2 data
// plane is >= 2x envelope throughput at 8 producers on one consumer.
//
// The floor is only enforced where it is measurable: contention is a
// parallel phenomenon, so on hosts with < 4 hardware threads (where 8
// producers are time-sliced onto one or two cores and an uncontended mutex
// costs ~50ns) the grid is reported, not gated — the same policy
// bench_service_throughput applies to its smoke mode. The pool hit rate
// and queue-depth columns are meaningful everywhere.
#include <algorithm>
#include <cstdio>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "runtime/exchange.h"

namespace sfdf {
namespace {

/// The v1 channel, verbatim modulo the lane parameter it ignores: an
/// unbounded MPSC deque, one mutex and one condvar shared by every
/// producer. Kept here as the benchmark baseline.
class LegacyMutexChannel {
 public:
  explicit LegacyMutexChannel(int num_producers)
      : num_producers_(num_producers) {}

  void Push(int /*lane*/, Envelope envelope) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(envelope));
    }
    cv_.notify_one();
  }

  // The v1 router cut a fresh, organically growing buffer per batch.
  RecordBatch AcquireBatch(int /*lane*/) { return RecordBatch(); }

  template <typename Fn>
  void ReadPhase(MarkerKind until, Fn&& fn) {
    int markers = 0;
    while (markers < num_producers_) {
      Envelope envelope;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return !queue_.empty(); });
        envelope = std::move(queue_.front());
        queue_.pop_front();
      }
      switch (envelope.kind) {
        case MarkerKind::kData:
          fn(envelope.batch);
          break;
        case MarkerKind::kEndSuperstep:
          SFDF_CHECK(until == MarkerKind::kEndSuperstep);
          ++markers;
          break;
        case MarkerKind::kEndStream:
          ++markers;
          break;
      }
    }
  }

 private:
  const int num_producers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
};

// Small envelopes on purpose: they weight the per-envelope channel-layer
// cost (the thing this bench isolates) the way thin incremental supersteps
// do — a workset iteration near its fixpoint ships mostly partial batches.
constexpr int kRecordsPerEnvelope = 4;

struct GridOutcome {
  double seconds = 0;
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;
  int64_t depth_high_water = 0;
};

int64_t PoolHits(const Exchange& exchange) {
  return exchange.stats().pool_hits;
}
int64_t PoolHits(const LegacyMutexChannel&) { return 0; }
int64_t PoolMisses(const Exchange& exchange) {
  return exchange.stats().pool_misses;
}
int64_t PoolMisses(const LegacyMutexChannel&) { return 0; }
int64_t DepthHighWater(const Exchange& exchange) {
  return exchange.stats().depth_high_water;
}
int64_t DepthHighWater(const LegacyMutexChannel&) { return 0; }

/// Free-running throughput: every producer streams `per_producer` small
/// batches into every consumer queue (round-robin), ends each queue with
/// one end-of-stream marker, and the consumers drain to end-of-stream —
/// the regime inside one superstep, where producers run ahead unboundedly
/// and retired buffers flow back through the returns queue as the consumer
/// catches up.
template <typename Queue>
GridOutcome RunGrid(int producers, int consumers, int64_t per_producer) {
  std::vector<std::unique_ptr<Queue>> queues;
  for (int c = 0; c < consumers; ++c) {
    queues.push_back(std::make_unique<Queue>(producers));
  }
  std::vector<int64_t> received(consumers, 0);
  Stopwatch watch;
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int64_t i = 0; i < per_producer; ++i) {
        Queue& queue = *queues[i % consumers];
        RecordBatch batch = queue.AcquireBatch(p);
        for (int r = 0; r < kRecordsPerEnvelope; ++r) {
          batch.Add(Record::OfInts(p, i, r));
        }
        queue.Push(p, Envelope{MarkerKind::kData, std::move(batch)});
      }
      for (int c = 0; c < consumers; ++c) {
        Envelope end;
        end.kind = MarkerKind::kEndStream;
        queues[c]->Push(p, std::move(end));
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      queues[c]->ReadPhase(MarkerKind::kEndStream,
                           [&](const RecordBatch& batch) {
                             received[c] +=
                                 static_cast<int64_t>(batch.size());
                           });
    });
  }
  for (std::thread& t : threads) t.join();
  GridOutcome outcome;
  outcome.seconds = watch.ElapsedSeconds();
  int64_t total = 0;
  for (int c = 0; c < consumers; ++c) total += received[c];
  SFDF_CHECK(total == static_cast<int64_t>(producers) * per_producer *
                          kRecordsPerEnvelope)
      << "lost records: " << total;
  for (const auto& queue : queues) {
    outcome.pool_hits += PoolHits(*queue);
    outcome.pool_misses += PoolMisses(*queue);
    const int64_t hw = DepthHighWater(*queue);
    if (hw > outcome.depth_high_water) outcome.depth_high_water = hw;
  }
  return outcome;
}

}  // namespace
}  // namespace sfdf

int main() {
  using namespace sfdf;
  bench::Header("Exchange", "v2 SPSC-lane exchange vs v1 mutex channel "
                            "(envelope throughput)",
                "parity at 1 producer; exchange >= 2x at 8 producers on one "
                "consumer (lock-light lanes + pooled batches)");

  const int64_t total_envelope_target = Scaled(320000, 4000);
  std::printf("%-10s %-10s %14s %14s %9s %10s %9s\n", "producers",
              "consumers", "legacy_meps", "exchange_meps", "speedup",
              "pool_hit", "depth_hw");

  double speedup_8x1 = 0;
  for (int consumers : {1, 2}) {
    for (int producers : {1, 2, 4, 8}) {
      // Keep total envelope volume constant per grid cell so cells are
      // comparable: more producers, fewer envelopes each. Best-of-k runs
      // suppress scheduler noise (the whole grid is heavily oversubscribed
      // on small machines).
      const int64_t per_producer =
          std::max<int64_t>(total_envelope_target / producers, 100);
      const int kReps = 3;
      GridOutcome legacy;
      GridOutcome exchange;
      for (int rep = 0; rep < kReps; ++rep) {
        GridOutcome l = RunGrid<LegacyMutexChannel>(producers, consumers,
                                                    per_producer);
        if (rep == 0 || l.seconds < legacy.seconds) legacy = l;
        GridOutcome e = RunGrid<Exchange>(producers, consumers, per_producer);
        if (rep == 0 || e.seconds < exchange.seconds) exchange = e;
      }

      const double pool_hit_rate =
          static_cast<double>(exchange.pool_hits) /
          static_cast<double>(exchange.pool_hits + exchange.pool_misses);
      const double total_envelopes = static_cast<double>(producers) *
                                     static_cast<double>(per_producer);
      const double legacy_meps = total_envelopes / legacy.seconds / 1e6;
      const double exchange_meps = total_envelopes / exchange.seconds / 1e6;
      const double speedup = legacy.seconds / exchange.seconds;
      if (producers == 8 && consumers == 1) speedup_8x1 = speedup;

      std::printf("%-10d %-10d %14.3f %14.3f %8.2fx %9.1f%% %9lld\n",
                  producers, consumers, legacy_meps, exchange_meps, speedup,
                  pool_hit_rate * 100.0,
                  static_cast<long long>(exchange.depth_high_water));
      std::printf(
          "row producers=%d consumers=%d legacy_meps=%.3f "
          "exchange_meps=%.3f speedup=%.3f pool_hits=%lld pool_misses=%lld "
          "depth_high_water=%lld\n",
          producers, consumers, legacy_meps, exchange_meps, speedup,
          static_cast<long long>(exchange.pool_hits),
          static_cast<long long>(exchange.pool_misses),
          static_cast<long long>(exchange.depth_high_water));
    }
  }
  bench::PrintPeakRss();

  // Acceptance floor: the lock-light exchange must at least double the
  // mutex channel's envelope throughput under 8-producer contention.
  // Enforced only at full scale (smoke runs are too short) and only where
  // producers can actually contend in parallel (>= 4 hardware threads);
  // elsewhere the grid is reported for the record.
  const unsigned hw = std::thread::hardware_concurrency();
  if (ScaleFactor() < 1.0) return 0;
  if (hw < 4) {
    std::printf("note: %u hardware thread(s) — 8 producers are time-sliced, "
                "so the 2x contention floor is reported, not enforced "
                "(measured %.2fx)\n",
                hw, speedup_8x1);
    return 0;
  }
  if (speedup_8x1 < 2.0) {
    std::printf("FAIL: 8-producer speedup %.2fx below the 2x floor\n",
                speedup_8x1);
    return 1;
  }
  return 0;
}
