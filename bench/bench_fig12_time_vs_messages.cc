// Figure 12: correlation between per-iteration execution time and the
// number of exchanged messages (workset/candidate records) for the
// Wikipedia graph, across Stratosphere Full, Micro (Match) and Incr
// (CoGroup).
//
// Expected shape (paper): for the bulk and the batch-incremental (CoGroup)
// configurations, iteration time is almost a linear function of the
// candidate count — with the same slope. The microstep (Match) variant
// shows a similar linear relationship with a much lower slope: its
// per-record update function is much cheaper, so it can process many more
// redundant candidates in the same time.
#include <cstdio>
#include <vector>

#include "algos/connected_components.h"
#include "bench_common.h"
#include "graph/datasets.h"

namespace sfdf {
namespace {

struct Point {
  double messages = 0;
  double millis = 0;
};

std::vector<Point> Series(const Graph& graph, CcVariant variant) {
  CcOptions options;
  options.variant = variant;
  auto result = RunConnectedComponents(graph, options);
  std::vector<Point> points;
  if (!result.ok()) return points;
  const auto& reports = variant == CcVariant::kBulk
                            ? result->exec.bulk_reports
                            : result->exec.workset_reports;
  for (const SuperstepStats& s : reports[0].supersteps) {
    // Bulk iterations re-process the whole solution; their "messages" are
    // the records entering the superstep, like the paper counts.
    double messages = variant == CcVariant::kBulk
                          ? static_cast<double>(s.records_shipped)
                          : static_cast<double>(s.workset_size);
    points.push_back(Point{messages, s.millis});
  }
  return points;
}

/// Least-squares slope through the origin: ms per million messages. Skips
/// the first iteration, which carries the one-time constant-path work
/// (cache/index builds) in every configuration.
double Slope(const std::vector<Point>& points) {
  double xy = 0;
  double xx = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    xy += points[i].messages * points[i].millis;
    xx += points[i].messages * points[i].messages;
  }
  return xx > 0 ? xy / xx * 1e6 : 0;
}

}  // namespace
}  // namespace sfdf

int main() {
  using namespace sfdf;
  bench::Header(
      "Figure 12", "Per-iteration time vs. messages, Wikipedia",
      "bulk and cogroup: linear, similar slope; match variant: linear with "
      "a much lower slope (cheaper per-record updates)");

  Graph graph = DatasetByName("wikipedia").generate(ScaleFactor());

  auto full = Series(graph, CcVariant::kBulk);
  auto micro = Series(graph, CcVariant::kIncrementalMatch);
  auto incr = Series(graph, CcVariant::kIncrementalCoGroup);

  std::printf("%-5s %14s %10s %14s %10s %14s %10s\n", "iter", "msgs-ful",
              "ms-ful", "msgs-mic", "ms-mic", "msgs-inc", "ms-inc");
  size_t rows = std::max({full.size(), micro.size(), incr.size()});
  for (size_t i = 0; i < rows; ++i) {
    auto m = [&](const std::vector<Point>& s) {
      return i < s.size() ? s[i].messages : -1.0;
    };
    auto t = [&](const std::vector<Point>& s) {
      return i < s.size() ? s[i].millis : -1.0;
    };
    std::printf("%-5zu %14.0f %10.2f %14.0f %10.2f %14.0f %10.2f\n", i + 1,
                m(full), t(full), m(micro), t(micro), m(incr), t(incr));
    std::printf(
        "row iter=%zu full_msgs=%.0f full_ms=%.2f micro_msgs=%.0f "
        "micro_ms=%.2f incr_msgs=%.0f incr_ms=%.2f\n",
        i + 1, m(full), t(full), m(micro), t(micro), m(incr), t(incr));
  }

  double s_full = Slope(full);
  double s_micro = Slope(micro);
  double s_incr = Slope(incr);
  std::printf(
      "slopes (ms per 1M messages): full=%.2f cogroup=%.2f match=%.2f\n",
      s_full, s_incr, s_micro);
  std::printf("slope_ratio cogroup/match=%.2f (paper: match slope is much "
              "lower)\n",
              s_micro > 0 ? s_incr / s_micro : 0);
  bench::PrintPeakRss();
  return 0;
}
