// Runtime v3 experiment: N resident serving sessions on ONE shared engine
// pool vs N dedicated per-service pools ("thread teams"), plus idle
// tenants riding along for free.
//
// Expected: the shared 2-worker pool sustains >= 0.8x the aggregate
// mutations/s of N dedicated pools on the same host — the fair-share
// scheduler's overhead is small — while hosting 4+ resident services on 2
// workers at all, which the old thread-per-task-instance runtime could not
// do (it pinned parallelism x tasks OS threads per service). Idle tenants
// have nothing queued between rounds, so adding them must not move the
// active tenants' throughput.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "graph/datasets.h"
#include "graph/graph.h"
#include "runtime/engine.h"
#include "service/serving_pagerank.h"

namespace {

using namespace sfdf;

struct ConfigResult {
  double cold_seconds = 0;    ///< summed cold convergence of all tenants
  double stream_seconds = 0;  ///< wall time of the mutation storm
  uint64_t streamed = 0;      ///< mutations folded across active tenants
  double sustained = 0;       ///< aggregate mutations/s
  double round_p50_ms = 0;    ///< worst active tenant's p50
  double round_p99_ms = 0;    ///< worst active tenant's p99
  double queue_wait_ms = 0;   ///< summed engine queue wait, active tenants
};

/// Starts `active + idle` PageRank tenants and storms the active ones with
/// single-edge mutations from one writer thread each. `shared` = all
/// tenants on one `pool_workers`-worker engine; otherwise every tenant gets
/// its own dedicated pool of `pool_workers` workers.
ConfigResult RunConfig(const Graph& graph, int active, int idle, bool shared,
                       int pool_workers, int mutations_per_tenant) {
  ConfigResult out;
  std::unique_ptr<Engine> pool;
  if (shared) {
    pool = std::make_unique<Engine>(Engine::Options{.workers = pool_workers});
  }

  ServingPageRankOptions options;
  options.epsilon = 1e-9;
  options.max_batch = 64;
  options.max_linger = std::chrono::milliseconds(1);
  if (shared) {
    options.engine = pool.get();
  } else {
    options.worker_threads = pool_workers;
  }

  std::vector<std::unique_ptr<ServingPageRank>> tenants;
  Stopwatch cold_watch;
  for (int i = 0; i < active + idle; ++i) {
    auto started = ServingPageRank::Start(graph, options);
    if (!started.ok()) {
      std::printf("tenant %d failed to start: %s\n", i,
                  started.status().ToString().c_str());
      std::exit(1);
    }
    tenants.push_back(std::move(*started));
  }
  out.cold_seconds = cold_watch.ElapsedSeconds();

  const int64_t n = graph.num_vertices();

  // One storm: every active tenant absorbs `mutations_per_tenant` from its
  // own writer thread; returns {seconds, mutations folded}. Repeated on
  // the SAME resident tenants (steady-state serving) with the best run
  // kept — single storms are short enough that admission-linger phasing
  // dominates a lone sample.
  auto storm = [&](int round) {
    std::vector<uint64_t> before(active);
    for (int i = 0; i < active; ++i) {
      before[i] = tenants[i]->stats().mutations_applied;
    }
    Stopwatch stream_watch;
    std::vector<std::thread> writers;
    std::vector<uint64_t> last_ticket(active, 0);
    for (int w = 0; w < active; ++w) {
      ServingPageRank* tenant = tenants[w].get();
      writers.emplace_back([tenant, &last_ticket, n, w, round,
                            mutations_per_tenant] {
        for (int i = 0; i < mutations_per_tenant; ++i) {
          // Disjoint per-tenant chords; alternate insert/remove so the
          // structure stays bounded and every round does residual work.
          int64_t u = ((w + round * 7) * (n / 8) + i / 2) % n;
          int64_t v = (u + 2 + w) % n;
          GraphMutation m = (i % 2 == 0) ? GraphMutation::EdgeInsert(u, v)
                                         : GraphMutation::EdgeRemove(u, v);
          last_ticket[w] = tenant->Mutate({m});
        }
      });
    }
    for (std::thread& t : writers) t.join();
    for (int w = 0; w < active; ++w) {
      if (last_ticket[w] == 0 || !tenants[w]->Await(last_ticket[w]).ok()) {
        std::printf("tenant %d mutation stream failed\n", w);
        std::exit(1);
      }
    }
    std::pair<double, uint64_t> result{stream_watch.ElapsedSeconds(), 0};
    for (int i = 0; i < active; ++i) {
      result.second += tenants[i]->stats().mutations_applied - before[i];
    }
    return result;
  };

  const int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    auto [seconds, streamed] = storm(rep);
    const double sustained =
        static_cast<double>(streamed) / std::max(seconds, 1e-9);
    if (sustained > out.sustained) {
      out.sustained = sustained;
      out.stream_seconds = seconds;
      out.streamed = streamed;
    }
  }

  for (int i = 0; i < active; ++i) {
    const ServiceStats stats = tenants[i]->stats();
    out.round_p50_ms = std::max(out.round_p50_ms, stats.round_p50_ms);
    out.round_p99_ms = std::max(out.round_p99_ms, stats.round_p99_ms);
    out.queue_wait_ms += stats.engine_queue_wait_total_ms;
  }
  for (auto& tenant : tenants) {
    if (!tenant->Stop().ok()) {
      std::printf("tenant failed to stop cleanly\n");
      std::exit(1);
    }
  }
  return out;
}

void PrintRow(const char* config, int active, int idle, int pool_workers,
              bool shared, const ConfigResult& r) {
  std::printf(
      "row config=%s active=%d idle=%d pool_workers=%d shared=%d "
      "cold_s=%.3f stream_s=%.3f streamed=%llu sustained_per_s=%.0f "
      "round_p50_ms=%.3f round_p99_ms=%.3f queue_wait_ms=%.3f\n",
      config, active, idle, pool_workers, shared ? 1 : 0, r.cold_seconds,
      r.stream_seconds, static_cast<unsigned long long>(r.streamed),
      r.sustained, r.round_p50_ms, r.round_p99_ms, r.queue_wait_ms);
}

}  // namespace

int main() {
  using namespace sfdf;
  bench::Header("Engine multi-tenancy",
                "N resident services: shared pool vs dedicated teams",
                "4 services run on a 2-worker shared pool (impossible under "
                "thread-per-instance); aggregate sustained mutations/s on "
                "the shared pool >= 0.8x of 4 dedicated teams; idle tenants "
                "do not move active throughput");

  const int kActive = 4;
  const int kPoolWorkers = 2;
  const int kMutations = static_cast<int>(Scaled(1000, 20));
  Graph graph = DatasetByName("wikipedia").generate(ScaleFactor() * 0.25);
  std::printf("graph: %s, %d tenants, %d mutations/tenant\n",
              graph.ToString().c_str(), kActive, kMutations);

  // 4 services, one shared pool of 2 workers — the acceptance shape.
  ConfigResult shared =
      RunConfig(graph, kActive, /*idle=*/0, /*shared=*/true, kPoolWorkers,
                kMutations);
  PrintRow("shared", kActive, 0, kPoolWorkers, true, shared);

  // Same, plus 4 idle tenants resident on the same pool.
  ConfigResult shared_idle =
      RunConfig(graph, kActive, /*idle=*/4, /*shared=*/true, kPoolWorkers,
                kMutations);
  PrintRow("shared_plus_idle", kActive, 4, kPoolWorkers, true, shared_idle);

  // Baseline: every service owns a dedicated pool (the old "one thread
  // team per session" layout, expressed in engine terms).
  ConfigResult dedicated =
      RunConfig(graph, kActive, /*idle=*/0, /*shared=*/false, kPoolWorkers,
                kMutations);
  PrintRow("dedicated", kActive, 0, kPoolWorkers, false, dedicated);

  const double share_ratio =
      shared.sustained / std::max(dedicated.sustained, 1e-9);
  const double idle_ratio =
      shared_idle.sustained / std::max(shared.sustained, 1e-9);
  std::printf("%-38s %10.2f\n", "shared/dedicated sustained ratio",
              share_ratio);
  std::printf("%-38s %10.2f\n", "with-idle/shared sustained ratio",
              idle_ratio);
  std::printf("row config=summary share_ratio=%.3f idle_ratio=%.3f\n",
              share_ratio, idle_ratio);

  bench::PrintPeakRss();
  // Acceptance floor, full scale only: the shared pool keeps >= 0.8x the
  // dedicated teams' aggregate throughput. (In smoke mode the per-round
  // work is microseconds and the admission linger dominates everything, so
  // the ratio is reported but not enforced.)
  if (ScaleFactor() < 1.0) return 0;
  return share_ratio >= 0.8 ? 0 : 1;
}
