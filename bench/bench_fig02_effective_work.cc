// Figure 2: the effective work the Connected Components algorithm performs
// on the FOAF subgraph — per iteration: vertices inspected (solution-set
// lookups), vertices changed (applied delta records), and working-set
// entries produced.
//
// Expected shape: all three series start high (first iterations process the
// whole graph) and collapse by orders of magnitude within a handful of
// iterations; the number of changed vertices closely follows the workset
// size (the paper's reading of the figure).
#include <cstdio>

#include "algos/connected_components.h"
#include "bench_common.h"
#include "graph/datasets.h"

int main() {
  using namespace sfdf;
  bench::Header("Figure 2", "Effective work of incremental CC on FOAF",
                "workset and changed-vertex counts collapse after the first "
                "few iterations; later iterations touch only 'hot' regions");

  Graph graph = FoafGraph(ScaleFactor() * 0.1);
  std::printf("graph: %s\n", graph.ToString().c_str());

  CcOptions options;
  options.variant = CcVariant::kIncrementalCoGroup;
  auto result = RunConnectedComponents(graph, options);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %16s %16s %16s\n", "iteration", "inspected", "changed",
              "workset");
  const auto& steps = result->exec.workset_reports[0].supersteps;
  for (const SuperstepStats& s : steps) {
    std::printf("%-10d %16lld %16lld %16lld\n", s.superstep + 1,
                static_cast<long long>(s.solution_lookups),
                static_cast<long long>(s.delta_applied),
                static_cast<long long>(s.workset_size));
    std::printf("row iteration=%d inspected=%lld changed=%lld workset=%lld\n",
                s.superstep + 1, static_cast<long long>(s.solution_lookups),
                static_cast<long long>(s.delta_applied),
                static_cast<long long>(s.workset_size));
  }
  std::printf("iterations=%d converged=%d\n", result->iterations,
              result->converged ? 1 : 0);

  // Shape check: work in the last iterations is orders of magnitude below
  // the first iteration.
  if (steps.size() >= 4) {
    const auto& first = steps.front();
    const auto& late = steps[steps.size() - 2];
    double collapse = first.workset_size > 0
                          ? static_cast<double>(late.workset_size) /
                                static_cast<double>(first.workset_size)
                          : 0;
    std::printf("late/first workset ratio = %.6f (paper: <0.01)\n", collapse);
  }
  bench::PrintPeakRss();
  return 0;
}
