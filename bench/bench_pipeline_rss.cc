// Pipelined regions (PR 9): peak-RSS and wall-clock of a multi-stage
// non-loop pipeline under region_mode materialize vs pipelined.
//
// The plan is a 5-stage streaming chain
//     source -> widen(Map) -> keep(Filter) -> fold(Map) -> rare(Filter) -> sink
// whose tail filter passes ~1/8192 of the records, so the sink holds O(1)
// state and the peak footprint is dominated by the inter-stage exchanges:
// materialize mode parks every stage's full output in unbounded lanes
// (O(n) per edge), pipelined mode caps each lane at a few envelopes, so
// its execution footprint should stay flat as the input scales.
//
// ru_maxrss is a process-lifetime high-water mark, so each (mode, scale)
// measurement forks: the child generates the input, baselines its peak RSS
// after generation, runs the plan, and reports (peak - baseline) plus the
// wall time and flow-control counters over a pipe. Forking also isolates
// the allocator: no measurement inherits another's heap high-water. The
// parent touches no engine before forking (fork + worker threads don't
// mix).
//
// Expected shape: materialize rss_delta_mb grows roughly linearly with
// scale; pipelined rss_delta_mb stays near-flat and far below it, with
// backpressure_stalls/producer_yields > 0 proving the bounded lanes
// engaged. Wall-clock: pipelined should be comparable, and can only win
// meaningfully when stages overlap on >= 4 hardware threads — below that
// the comparison is reported, not gated.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"
#include "runtime/executor.h"

namespace sfdf {
namespace {

struct Sample {
  double seconds = 0;
  double rss_delta_mb = 0;
  int64_t sink_records = 0;
  int64_t stalls = 0;
  int64_t yields = 0;
  int64_t peak_segments = 0;
  int ok = 0;
};

Sample RunPipeline(RegionMode mode, int64_t n) {
  auto data = std::make_shared<std::vector<Record>>();
  data->reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    data->push_back(Record::OfInts(i, i % 97));
  }
  const double baseline_mb = bench::PeakRssMb();

  std::vector<Record> out;
  PlanBuilder pb;
  auto src = pb.Source("events", data);
  auto widened = pb.Map("widen", src, [](const Record& r, Collector* c) {
    c->Emit(Record::OfInts(r.GetInt(0), r.GetInt(1), r.GetInt(0) * 3 + 1));
  });
  auto kept = pb.Filter("keep", widened,
                        [](const Record& r) { return r.GetInt(1) != 96; });
  auto folded = pb.Map("fold", kept, [](const Record& r, Collector* c) {
    c->Emit(Record::OfInts(r.GetInt(0), r.GetInt(2) ^ (r.GetInt(1) * 7)));
  });
  auto rare = pb.Filter("rare", folded,
                        [](const Record& r) { return r.GetInt(0) % 8192 == 0; });
  pb.Sink("out", rare, &out);
  Plan plan = std::move(pb).Finish();

  const int P = DefaultParallelism();
  Optimizer optimizer(OptimizerOptions{.parallelism = P});
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) return {};

  ExecutionOptions options;
  options.parallelism = P;
  options.worker_threads = P;  // private pool: the child owns its engine
  options.region_mode = mode;
  Executor executor(options);
  Stopwatch watch;
  auto result = executor.Run(*physical);
  if (!result.ok()) return {};

  Sample s;
  s.seconds = watch.ElapsedSeconds();
  s.rss_delta_mb = bench::PeakRssMb() - baseline_mb;
  s.sink_records = static_cast<int64_t>(out.size());
  s.stalls = result->backpressure_stalls;
  s.yields = result->producer_yields;
  s.peak_segments = result->peak_resident_segments;
  s.ok = 1;
  return s;
}

/// One fork per measurement so every sample gets a fresh ru_maxrss.
Sample MeasureInChild(RegionMode mode, int64_t n) {
  int fds[2];
  if (pipe(fds) != 0) return {};
  fflush(stdout);
  const pid_t pid = fork();
  if (pid == 0) {
    close(fds[0]);
    const Sample s = RunPipeline(mode, n);
    ssize_t ignored = write(fds[1], &s, sizeof(s));
    (void)ignored;
    _exit(s.ok ? 0 : 1);
  }
  close(fds[1]);
  Sample s;
  size_t got = 0;
  while (got < sizeof(s)) {
    const ssize_t r =
        read(fds[0], reinterpret_cast<char*>(&s) + got, sizeof(s) - got);
    if (r <= 0) break;
    got += static_cast<size_t>(r);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != sizeof(s) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return {};
  }
  return s;
}

}  // namespace
}  // namespace sfdf

int main() {
  using namespace sfdf;
  bench::Header("Pipelined regions",
                "peak RSS and wall-clock, materialize vs pipelined",
                "materialize RSS grows linearly with scale; pipelined RSS "
                "stays flat (bounded lanes)");

  const int64_t base = static_cast<int64_t>(600000 * ScaleFactor());
  const double factors[] = {0.25, 0.5, 1.0};
  std::printf("%-12s %-10s %10s %12s %12s %10s %10s\n", "mode", "scale",
              "records", "seconds", "rss_mb", "stalls", "yields");

  Sample mat[3];
  Sample pipe[3];
  bool all_ok = true;
  for (int i = 0; i < 3; ++i) {
    const int64_t n = static_cast<int64_t>(static_cast<double>(base) *
                                           factors[i]);
    mat[i] = MeasureInChild(RegionMode::kMaterialize, n);
    pipe[i] = MeasureInChild(RegionMode::kPipelined, n);
    all_ok = all_ok && mat[i].ok && pipe[i].ok;
    for (const auto* pair : {&mat[i], &pipe[i]}) {
      const bool is_mat = pair == &mat[i];
      std::printf("%-12s %-10.2f %10lld %12.3f %12.1f %10lld %10lld\n",
                  is_mat ? "materialize" : "pipelined", factors[i],
                  static_cast<long long>(n), pair->seconds,
                  pair->rss_delta_mb, static_cast<long long>(pair->stalls),
                  static_cast<long long>(pair->yields));
      std::printf(
          "row mode=%s scale_factor=%.2f records=%lld seconds=%.3f "
          "rss_delta_mb=%.1f stalls=%lld yields=%lld peak_segments=%lld "
          "sink_records=%lld\n",
          is_mat ? "materialize" : "pipelined", factors[i],
          static_cast<long long>(n), pair->seconds, pair->rss_delta_mb,
          static_cast<long long>(pair->stalls),
          static_cast<long long>(pair->yields),
          static_cast<long long>(pair->peak_segments),
          static_cast<long long>(pair->sink_records));
    }
  }
  if (!all_ok) {
    std::printf("FAIL: a measurement child did not complete\n");
    return 1;
  }
  if (mat[2].sink_records != pipe[2].sink_records) {
    std::printf("FAIL: modes disagree on sink cardinality (%lld vs %lld)\n",
                static_cast<long long>(mat[2].sink_records),
                static_cast<long long>(pipe[2].sink_records));
    return 1;
  }

  // RSS growth across the 4x scale sweep, and the cross-mode gap at top
  // scale. A flat pipelined profile means growth stays near zero while the
  // materialize profile adds O(n) per inter-stage edge.
  const double mat_growth = mat[2].rss_delta_mb - mat[0].rss_delta_mb;
  const double pipe_growth = pipe[2].rss_delta_mb - pipe[0].rss_delta_mb;
  const double wall_ratio =
      pipe[2].seconds > 0 ? mat[2].seconds / pipe[2].seconds : 0;
  std::printf(
      "summary materialize_growth_mb=%.1f pipelined_growth_mb=%.1f "
      "rss_top_ratio=%.2f\n",
      mat_growth, pipe_growth,
      pipe[2].rss_delta_mb > 0 ? mat[2].rss_delta_mb / pipe[2].rss_delta_mb
                               : 0);
  std::printf("speedup mode=pipelined wall=%.2f\n", wall_ratio);
  bench::PrintPeakRss();

  // Gates, full scale only (smoke inputs fit inside allocator slack and
  // the RSS signal drowns).
  if (ScaleFactor() < 1.0) return 0;
  if (pipe[2].stalls == 0 || pipe[2].yields == 0) {
    std::printf("FAIL: bounded lanes never engaged (stalls=%lld yields=%lld)\n",
                static_cast<long long>(pipe[2].stalls),
                static_cast<long long>(pipe[2].yields));
    return 1;
  }
  if (!(mat[2].rss_delta_mb > pipe[2].rss_delta_mb)) {
    std::printf("FAIL: pipelined peak RSS (%.1f MB) not below materialize "
                "(%.1f MB) at full scale\n",
                pipe[2].rss_delta_mb, mat[2].rss_delta_mb);
    return 1;
  }
  if (pipe_growth > 0.5 * mat_growth) {
    std::printf("FAIL: pipelined RSS growth %.1f MB not flat vs materialize "
                "growth %.1f MB\n",
                pipe_growth, mat_growth);
    return 1;
  }
  // The wall-clock gate needs real stage overlap; below 4 hardware threads
  // it is informational.
  if (std::thread::hardware_concurrency() >= 4) {
    if (wall_ratio < 0.85) {
      std::printf("FAIL: pipelined wall %.3fs much slower than materialize "
                  "%.3fs\n",
                  pipe[2].seconds, mat[2].seconds);
      return 1;
    }
  } else {
    std::printf("note: <4 hardware threads — wall-clock comparison reported, "
                "not gated\n");
  }
  return 0;
}
