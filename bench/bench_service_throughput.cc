// Serving-subsystem experiment: warm incremental re-convergence of a
// resident PageRank solution vs. cold full recompute, plus sustained
// multi-client mutation throughput through the admission queue.
//
// Expected: a single-edge warm round touches only the region the change
// reaches, so its latency sits orders of magnitude under the cold full
// recompute (the paper's §5–§7 claim — cost proportional to the change —
// applied to serving); concurrent writers coalesce into batches, so
// sustained mutations/sec exceeds 1/round-latency.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "algos/incremental_pagerank.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "graph/datasets.h"
#include "graph/dynamic_graph.h"
#include "obs/registry.h"
#include "service/serving_pagerank.h"

int main() {
  using namespace sfdf;
  bench::Header("Serving", "Warm re-convergence vs cold recompute",
                "warm single-edge rounds are >= 5x faster than cold full "
                "recompute; p99 stays in round-trip range; batching raises "
                "sustained mutations/sec above 1/latency");

  const double kEpsilon = 1e-9;
  Graph graph = DatasetByName("wikipedia").generate(ScaleFactor() * 0.5);
  std::printf("graph: %s\n", graph.ToString().c_str());
  const int64_t n = graph.num_vertices();

  // --- cold baseline: full recompute with one extra edge -------------------
  DynamicGraph mutated(graph);
  mutated.EnsureVertex(std::max<int64_t>(n - 1, 1));
  mutated.AddEdge(0, n / 2 + 1);
  Stopwatch cold_watch;
  IncrementalPageRankOptions cold_options;
  cold_options.epsilon = kEpsilon;
  auto cold = RunIncrementalPageRank(mutated.Freeze(), cold_options);
  if (!cold.ok()) {
    std::printf("cold error: %s\n", cold.status().ToString().c_str());
    return 1;
  }
  const double cold_seconds = cold_watch.ElapsedSeconds();

  // --- resident service ----------------------------------------------------
  ServingPageRankOptions options;
  options.epsilon = kEpsilon;
  options.max_batch = 64;
  options.max_linger = std::chrono::milliseconds(1);
  Stopwatch start_watch;
  auto started = ServingPageRank::Start(graph, options);
  if (!started.ok()) {
    std::printf("serving error: %s\n", started.status().ToString().c_str());
    return 1;
  }
  ServingPageRank& serving = **started;
  const double cold_serve_seconds = start_watch.ElapsedSeconds();

  // Expose the resident service through the unified registry — the same
  // callback-backed path the gateway's kTelemetry scrapes — and read the
  // row values back out of it below, proving the registry agrees with the
  // positional ServiceStats fields.
  MetricsRegistry& registry = MetricsRegistry::Default();
  std::vector<MetricsRegistry::Registration> registrations;
  registrations.push_back(registry.RegisterCounter(
      "sfdf_service_rounds", {{"tenant", "bench"}},
      [&serving] { return static_cast<double>(serving.stats().rounds); }));
  registrations.push_back(registry.RegisterCounter(
      "sfdf_service_mutations_applied", {{"tenant", "bench"}}, [&serving] {
        return static_cast<double>(serving.stats().mutations_applied);
      }));
  registrations.push_back(registry.RegisterHistogram(
      "sfdf_service_round_latency_ms", {{"tenant", "bench"}}, [&serving] {
        return serving.service()->round_latency_histogram();
      }));

  // --- warm single-edge-batch latency distribution -------------------------
  // Insert a fresh chord, then remove that same chord: the structure stays
  // bounded and every batch — insert and remove alike — does real residual
  // work (a remove of a never-inserted edge would be a no-op round).
  const int kRounds = 50;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(kRounds);
  for (int i = 0; i < kRounds; ++i) {
    int64_t u = ((i / 2) * 104729) % n;
    int64_t v = (u + 1 + ((i / 2) * 7919) % (n - 1)) % n;
    GraphMutation m = (i % 2 == 0) ? GraphMutation::EdgeInsert(u, v)
                                   : GraphMutation::EdgeRemove(u, v);
    Stopwatch watch;
    if (!serving.Apply({m}).ok()) {
      std::printf("warm mutation failed\n");
      return 1;
    }
    latencies_ms.push_back(watch.ElapsedMillis());
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = latencies_ms[kRounds / 2];
  const double p99 = latencies_ms[(kRounds * 99) / 100];
  const double speedup = cold_seconds * 1000.0 / p50;

  // --- sustained multi-client throughput -----------------------------------
  const int kWriters = 4;
  const int kPerWriter = 250;
  const uint64_t before_applied = serving.stats().mutations_applied;
  Stopwatch stream_watch;
  std::vector<std::thread> writers;
  std::vector<uint64_t> last_ticket(kWriters, 0);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&serving, &last_ticket, n, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        // Disjoint per-writer chords; alternate insert/remove.
        int64_t u = (w * (n / kWriters) + i / 2) % n;
        int64_t v = (u + 2 + w) % n;
        GraphMutation m = (i % 2 == 0) ? GraphMutation::EdgeInsert(u, v)
                                       : GraphMutation::EdgeRemove(u, v);
        last_ticket[w] = serving.Mutate({m});
      }
    });
  }
  for (std::thread& t : writers) t.join();
  for (int w = 0; w < kWriters; ++w) {
    if (last_ticket[w] == 0 || !serving.Await(last_ticket[w]).ok()) {
      std::printf("streamed mutation failed\n");
      return 1;
    }
  }
  const double stream_seconds = stream_watch.ElapsedSeconds();
  ServiceStats stats = serving.stats();
  const uint64_t streamed = stats.mutations_applied - before_applied;
  const double sustained =
      static_cast<double>(streamed) / std::max(stream_seconds, 1e-9);
  // Registry-sourced values for the row: counters read through the scrape
  // path, and the round p50 from the registered histogram (Value() returns
  // a histogram's median).
  const double registry_rounds =
      registry.Value("sfdf_service_rounds", {{"tenant", "bench"}})
          .value_or(-1.0);
  const double registry_applied =
      registry
          .Value("sfdf_service_mutations_applied", {{"tenant", "bench"}})
          .value_or(-1.0);
  const double registry_round_p50_ms =
      registry
          .Value("sfdf_service_round_latency_ms", {{"tenant", "bench"}})
          .value_or(-1.0);
  registrations.clear();  // callbacks must not outlive the service
  if (!serving.Stop().ok()) return 1;
  // Exchange-health counters of the whole resident execution (v2 data
  // plane): available once the session shut down cleanly.
  const auto exec = serving.final_result();
  const int64_t depth_hw = exec ? exec->queue_depth_high_water : -1;
  const int64_t pool_hits = exec ? exec->batch_pool_hits : -1;
  const int64_t pool_misses = exec ? exec->batch_pool_misses : -1;

  std::printf("%-34s %12s\n", "measure", "value");
  std::printf("%-34s %12.3f\n", "cold full recompute (s)", cold_seconds);
  std::printf("%-34s %12.3f\n", "cold convergence via service (s)",
              cold_serve_seconds);
  std::printf("%-34s %12.3f\n", "warm single-edge p50 (ms)", p50);
  std::printf("%-34s %12.3f\n", "warm single-edge p99 (ms)", p99);
  std::printf("%-34s %12.1f\n", "speedup cold/warm-p50", speedup);
  std::printf("%-34s %12.0f\n", "sustained mutations/s", sustained);
  std::printf("%-34s %12.3f\n", "service round p50 (ms)",
              registry_round_p50_ms);
  std::printf("%-34s %12.3f\n", "service round p95 (ms)",
              stats.round_p95_ms);
  std::printf("%-34s %12.3f\n", "service round p99 (ms)",
              stats.round_p99_ms);
  std::printf("%-34s %12d\n", "engine workers", stats.engine_workers);
  std::printf("%-34s %12lld\n", "engine tasks",
              static_cast<long long>(stats.engine_tasks));
  std::printf("%-34s %12.3f\n", "engine queue wait total (ms)",
              stats.engine_queue_wait_total_ms);
  std::printf("%-34s %12.3f\n", "engine queue wait max (ms)",
              stats.engine_queue_wait_max_ms);
  std::printf("%-34s %12lld\n", "engine parks",
              static_cast<long long>(stats.engine_parks));
  std::printf("%-34s %12lld\n", "engine wakes",
              static_cast<long long>(stats.engine_wakes));
  std::printf("%-34s %12llu\n", "reconfigurations",
              static_cast<unsigned long long>(stats.reconfigs));
  std::printf("%-34s %12.3f\n", "last reconfiguration (ms)",
              stats.reconfig_ms_last);
  std::printf("%-34s %12llu\n", "batched rounds (streaming phase)",
              static_cast<unsigned long long>(stats.rounds));
  std::printf("%-34s %12lld\n", "async local rounds",
              static_cast<long long>(stats.async_local_rounds));
  std::printf("%-34s %12lld\n", "async vote revocations",
              static_cast<long long>(stats.async_vote_revocations));
  std::printf("%-34s %12lld\n", "async max staleness",
              static_cast<long long>(stats.async_max_staleness));
  std::printf("%-34s %12llu\n", "mutations rejected",
              static_cast<unsigned long long>(stats.mutations_rejected));
  std::printf("%-34s %12llu\n", "admission queue depth (final)",
              static_cast<unsigned long long>(stats.admission_queue_depth));
  std::printf("%-34s %12lld\n", "exchange queue depth high-water",
              static_cast<long long>(depth_hw));
  std::printf("%-34s %12lld\n", "batch pool hits",
              static_cast<long long>(pool_hits));
  std::printf("%-34s %12lld\n", "batch pool misses",
              static_cast<long long>(pool_misses));
  std::printf(
      "row cold_s=%.3f cold_serve_s=%.3f warm_p50_ms=%.3f warm_p99_ms=%.3f "
      "speedup=%.1f sustained_per_s=%.0f streamed=%llu rounds=%llu "
      "avg_batch=%.1f queue_depth_hw=%lld pool_hits=%lld pool_misses=%lld "
      "round_p50_ms=%.3f round_p95_ms=%.3f round_p99_ms=%.3f "
      "engine_workers=%d engine_tasks=%lld engine_queue_wait_ms=%.3f "
      "engine_queue_wait_max_ms=%.3f engine_parks=%lld engine_wakes=%lld "
      "reconfigs=%llu reconfig_ms_last=%.3f mutations_rejected=%llu "
      "admission_queue_depth=%llu async_local_rounds=%lld "
      "async_vote_revocations=%lld async_max_staleness=%lld "
      "registry_rounds=%.0f registry_mutations_applied=%.0f\n",
      cold_seconds, cold_serve_seconds, p50, p99, speedup, sustained,
      static_cast<unsigned long long>(streamed),
      static_cast<unsigned long long>(stats.rounds),
      stats.rounds > 0
          ? static_cast<double>(stats.mutations_applied) /
                static_cast<double>(stats.rounds)
          : 0.0,
      static_cast<long long>(depth_hw), static_cast<long long>(pool_hits),
      static_cast<long long>(pool_misses), registry_round_p50_ms,
      stats.round_p95_ms, stats.round_p99_ms, stats.engine_workers,
      static_cast<long long>(stats.engine_tasks),
      stats.engine_queue_wait_total_ms, stats.engine_queue_wait_max_ms,
      static_cast<long long>(stats.engine_parks),
      static_cast<long long>(stats.engine_wakes),
      static_cast<unsigned long long>(stats.reconfigs),
      stats.reconfig_ms_last,
      static_cast<unsigned long long>(stats.mutations_rejected),
      static_cast<unsigned long long>(stats.admission_queue_depth),
      static_cast<long long>(stats.async_local_rounds),
      static_cast<long long>(stats.async_vote_revocations),
      static_cast<long long>(stats.async_max_staleness), registry_rounds,
      registry_applied);

  bench::PrintPeakRss();
  // Acceptance floor: warm beats cold by >= 5x on a single-edge batch.
  // Only gated at full scale — in smoke mode the cold recompute is a few
  // milliseconds while warm rounds pay a fixed admission-linger floor, so
  // the ratio is meaningless there (reported, not enforced).
  if (ScaleFactor() < 1.0) return 0;
  return speedup >= 5.0 ? 0 : 1;
}
