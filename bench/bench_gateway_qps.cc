// Network serving gateway experiment: end-to-end QPS and latency of the
// TCP RPC front-end vs the same workload driven in-process (the PR 4
// ServiceHost path), on one hosted streamed-CC tenant.
//
// Both phases use identical semantics — every mutation call blocks until
// its warm round committed, queries are epoch-consistent point reads — so
// the delta between them is exactly the network stack: frame codec, epoll
// loop, dispatch pool, completion threads and loopback TCP. Expected: the
// admission queue coalesces concurrent connections' mutations into shared
// rounds, so end-to-end mutations/s stays in the thousands (>= 1000 gate
// at full scale) and query p99 stays in round-trip range; the ping RTT is
// the floor the protocol adds per hop.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "net/client.h"
#include "service/gateway.h"
#include "service/serving_cc.h"

namespace {

using namespace sfdf;

double Quantile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  const size_t index = std::min(
      sorted->size() - 1, static_cast<size_t>(q * sorted->size()));
  return (*sorted)[index];
}

struct PhaseResult {
  double mutations_per_s = 0;
  double query_p50_ms = 0;
  double query_p95_ms = 0;
  double query_p99_ms = 0;
};

/// One writer's deterministic chord stream (disjoint per writer).
GraphMutation ChordOf(int writer, int i, int64_t n) {
  const int64_t u = (writer * (n / 8) + i * 104729) % n;
  const int64_t v = (u + 1 + (i * 7919) % (n - 1)) % n;
  return GraphMutation::EdgeInsert(u, v);
}

}  // namespace

int main() {
  bench::Header("Gateway", "TCP RPC front-end vs in-process serving",
                "mutation coalescing keeps end-to-end throughput >= 1000 "
                "mutations/s over loopback; query p99 stays in "
                "round-trip range; overhead vs in-process is bounded");

  const double scale = ScaleFactor();
  const int64_t n = std::max<int64_t>(64, static_cast<int64_t>(20000 * scale));
  const int kWriters = 4;
  const int kQueryReaders = 2;
  const int per_writer = std::max(40, static_cast<int>(400 * scale));
  const int per_reader = std::max(50, static_cast<int>(500 * scale));

  ServiceHost host(ServiceHost::Options{.workers = 2});
  ServingCc::Options options;
  options.num_vertices = n;
  options.service.max_batch = 256;
  options.service.max_linger = std::chrono::milliseconds(1);
  options.service.max_pending_mutations = 1 << 16;
  auto tenant = ServingCc::StartOn(&host, "cc", options);
  if (!tenant.ok()) {
    std::printf("tenant error: %s\n", tenant.status().ToString().c_str());
    return 1;
  }
  // The tenant owns state the resident plan flushes into: stop the host
  // before the tenant is destroyed on every path, error returns included
  // (declared after the tenant so it runs first on unwind).
  struct StopGuard {
    ServiceHost* host;
    ~StopGuard() {
      Status ignored = host->StopAll();
      (void)ignored;
    }
  } stop_guard{&host};
  IterationService& service = (*tenant)->service();
  std::printf("tenant: streamed CC over %lld vertices\n",
              static_cast<long long>(n));

  // --- phase A: in-process baseline (direct ServiceHost calls) -------------
  PhaseResult inproc;
  {
    std::atomic<bool> writers_done{false};
    std::vector<std::thread> threads;
    Stopwatch watch;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (int i = 0; i < per_writer; ++i) {
          if (!service.Apply({ChordOf(w, i, n)}).ok()) std::abort();
        }
      });
    }
    std::vector<std::vector<double>> latencies(kQueryReaders);
    std::vector<std::thread> readers;
    for (int r = 0; r < kQueryReaders; ++r) {
      readers.emplace_back([&, r] {
        for (int i = 0; i < per_reader || !writers_done.load(); ++i) {
          Stopwatch q;
          auto result = service.QueryKey((r * 7717 + i * 131) % n);
          if (!result.found) std::abort();
          latencies[r].push_back(q.ElapsedMillis());
          if (i > per_reader * 50) break;  // safety valve
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const double seconds = watch.ElapsedSeconds();
    writers_done.store(true);
    for (auto& thread : readers) thread.join();
    std::vector<double> all;
    for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    inproc.mutations_per_s = kWriters * per_writer / std::max(seconds, 1e-9);
    inproc.query_p50_ms = Quantile(&all, 0.50);
    inproc.query_p95_ms = Quantile(&all, 0.95);
    inproc.query_p99_ms = Quantile(&all, 0.99);
  }

  // --- phase B: the same workload through the TCP gateway ------------------
  auto gateway = RpcGateway::Start(&host, GatewayOptions{});
  if (!gateway.ok()) {
    std::printf("gateway error: %s\n", gateway.status().ToString().c_str());
    return 1;
  }
  const uint16_t port = (*gateway)->port();

  // Protocol floor: loopback round trip of an empty frame.
  double ping_rtt_ms = 0;
  {
    auto client = net::RpcClient::Connect("127.0.0.1", port);
    if (!client.ok()) return 1;
    std::vector<double> rtts;
    for (int i = 0; i < 200; ++i) {
      Stopwatch rtt;
      if (!(*client)->Ping().ok()) return 1;
      rtts.push_back(rtt.ElapsedMillis());
    }
    ping_rtt_ms = Quantile(&rtts, 0.50);
  }

  PhaseResult net;
  {
    std::atomic<bool> writers_done{false};
    std::vector<std::thread> threads;
    Stopwatch watch;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        auto client = net::RpcClient::Connect("127.0.0.1", port);
        if (!client.ok()) std::abort();
        for (int i = 0; i < per_writer; ++i) {
          // Offset the stream so the chords are fresh work, like phase A's.
          auto reply =
              (*client)->Mutate("cc", {ChordOf(w, per_writer + i, n)});
          if (!reply.ok()) std::abort();
        }
      });
    }
    std::vector<std::vector<double>> latencies(kQueryReaders);
    std::vector<std::thread> readers;
    for (int r = 0; r < kQueryReaders; ++r) {
      readers.emplace_back([&, r] {
        auto client = net::RpcClient::Connect("127.0.0.1", port);
        if (!client.ok()) std::abort();
        for (int i = 0; i < per_reader || !writers_done.load(); ++i) {
          Stopwatch q;
          auto result = (*client)->QueryKey("cc", (r * 7717 + i * 131) % n);
          if (!result.ok() || !result->found) std::abort();
          latencies[r].push_back(q.ElapsedMillis());
          if (i > per_reader * 50) break;  // safety valve
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const double seconds = watch.ElapsedSeconds();
    writers_done.store(true);
    for (auto& thread : readers) thread.join();
    std::vector<double> all;
    for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    net.mutations_per_s = kWriters * per_writer / std::max(seconds, 1e-9);
    net.query_p50_ms = Quantile(&all, 0.50);
    net.query_p95_ms = Quantile(&all, 0.95);
    net.query_p99_ms = Quantile(&all, 0.99);
  }

  const ServiceStats stats = service.stats();
  const RpcGateway::Counters counters = (*gateway)->counters();
  if (!(*gateway)->Stop().ok() || !host.StopAll().ok()) return 1;

  const double overhead =
      net.mutations_per_s > 0 ? inproc.mutations_per_s / net.mutations_per_s
                              : 0;
  std::printf("%-36s %12s %12s\n", "measure", "in-process", "gateway");
  std::printf("%-36s %12.0f %12.0f\n", "mutations/s (ack at commit)",
              inproc.mutations_per_s, net.mutations_per_s);
  std::printf("%-36s %12.3f %12.3f\n", "query p50 (ms)", inproc.query_p50_ms,
              net.query_p50_ms);
  std::printf("%-36s %12.3f %12.3f\n", "query p95 (ms)", inproc.query_p95_ms,
              net.query_p95_ms);
  std::printf("%-36s %12.3f %12.3f\n", "query p99 (ms)", inproc.query_p99_ms,
              net.query_p99_ms);
  std::printf("%-36s %12s %12.3f\n", "ping RTT p50 (ms)", "-", ping_rtt_ms);
  std::printf("%-36s %12s %12.1f\n", "throughput overhead (x)", "-",
              overhead);
  std::printf("%-36s %12llu\n", "rounds",
              static_cast<unsigned long long>(stats.rounds));
  std::printf("%-36s %12.1f\n", "avg mutations/round",
              stats.rounds > 0 ? static_cast<double>(stats.mutations_applied) /
                                     static_cast<double>(stats.rounds)
                               : 0.0);
  std::printf("%-36s %12llu\n", "mutations rejected",
              static_cast<unsigned long long>(stats.mutations_rejected));
  std::printf("%-36s %12llu\n", "admission queue depth (final)",
              static_cast<unsigned long long>(stats.admission_queue_depth));
  std::printf("%-36s %12llu\n", "gateway frames in",
              static_cast<unsigned long long>(counters.frames_received));
  std::printf("%-36s %12llu\n", "gateway reads paused",
              static_cast<unsigned long long>(counters.reads_paused));

  std::printf(
      "row inproc_mut_per_s=%.0f net_mut_per_s=%.0f overhead_x=%.2f "
      "inproc_q_p50_ms=%.3f inproc_q_p95_ms=%.3f inproc_q_p99_ms=%.3f "
      "net_q_p50_ms=%.3f net_q_p95_ms=%.3f net_q_p99_ms=%.3f "
      "ping_rtt_ms=%.3f rounds=%llu avg_batch=%.1f rejected=%llu "
      "queue_depth=%llu frames_in=%llu reads_paused=%llu\n",
      inproc.mutations_per_s, net.mutations_per_s, overhead,
      inproc.query_p50_ms, inproc.query_p95_ms, inproc.query_p99_ms,
      net.query_p50_ms, net.query_p95_ms, net.query_p99_ms, ping_rtt_ms,
      static_cast<unsigned long long>(stats.rounds),
      stats.rounds > 0 ? static_cast<double>(stats.mutations_applied) /
                             static_cast<double>(stats.rounds)
                       : 0.0,
      static_cast<unsigned long long>(stats.mutations_rejected),
      static_cast<unsigned long long>(stats.admission_queue_depth),
      static_cast<unsigned long long>(counters.frames_received),
      static_cast<unsigned long long>(counters.reads_paused));

  bench::PrintPeakRss();
  // Acceptance floor, full scale only: the gateway must sustain >= 1000
  // end-to-end mutations/s over loopback.
  if (scale < 1.0) return 0;
  return net.mutations_per_s >= 1000.0 ? 0 : 1;
}
