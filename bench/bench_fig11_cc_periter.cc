// Figure 11: execution times of the individual iterations for Connected
// Components on the Wikipedia dataset, across six configurations: Spark
// Full, Spark Simulated-Incremental, Giraph, Stratosphere Full, Micro
// (Match) and Incr (CoGroup).
//
// Expected shape (paper): the bulk dataflows (Spark Full, Stratosphere
// Full) have constant iteration times; the incremental configurations and
// Giraph converge to very low per-iteration times after ~4 iterations; the
// simulated incremental Spark variant decreases too but sustains at a much
// higher level — it must copy the unchanged partial solution through the
// shuffle every iteration.
#include <cstdio>
#include <vector>

#include "algos/connected_components.h"
#include "baselines/giraph/giraph.h"
#include "baselines/spark/spark.h"
#include "bench_common.h"
#include "graph/datasets.h"

namespace sfdf {
namespace {

std::vector<double> StratoSeries(const Graph& graph, CcVariant variant) {
  CcOptions options;
  options.variant = variant;
  auto result = RunConnectedComponents(graph, options);
  std::vector<double> millis;
  if (!result.ok()) return millis;
  const auto& reports = variant == CcVariant::kBulk
                            ? result->exec.bulk_reports
                            : result->exec.workset_reports;
  for (const SuperstepStats& s : reports[0].supersteps) {
    millis.push_back(s.millis);
  }
  return millis;
}

}  // namespace
}  // namespace sfdf

int main() {
  using namespace sfdf;
  bench::Header(
      "Figure 11", "CC per-iteration times, Wikipedia (ms)",
      "bulk flat; incremental + giraph collapse after ~4 iterations; "
      "spark simulated-incremental decreases but sustains high (state copy)");

  Graph graph = DatasetByName("wikipedia").generate(ScaleFactor());

  std::vector<double> spark_full;
  std::vector<double> spark_sim;
  {
    spark::SparkOptions options;
    options.memory_budget_bytes = bench::SparkBudget();
    auto full = spark::ConnectedComponents(graph, false, 1000, options);
    if (full.ok()) {
      for (const auto& it : full->stats.iterations) {
        spark_full.push_back(it.millis);
      }
    }
    auto sim = spark::ConnectedComponents(graph, true, 1000, options);
    if (sim.ok()) {
      for (const auto& it : sim->stats.iterations) {
        spark_sim.push_back(it.millis);
      }
    }
  }
  std::vector<double> giraph_ms;
  {
    giraph::GiraphOptions options;
    options.message_budget_bytes = bench::GiraphBudget();
    auto result = giraph::ConnectedComponents(graph, options);
    if (result.ok()) {
      for (const auto& s : result->stats.supersteps) {
        giraph_ms.push_back(s.millis);
      }
    }
  }
  std::vector<double> full_ms = StratoSeries(graph, CcVariant::kBulk);
  std::vector<double> micro_ms =
      StratoSeries(graph, CcVariant::kIncrementalMatch);
  std::vector<double> incr_ms =
      StratoSeries(graph, CcVariant::kIncrementalCoGroup);

  size_t rows = 0;
  for (const auto* s : {&spark_full, &spark_sim, &giraph_ms, &full_ms,
                        &micro_ms, &incr_ms}) {
    rows = std::max(rows, s->size());
  }
  auto cell = [](const std::vector<double>& series, size_t i) {
    return i < series.size() ? series[i] : -1.0;
  };
  std::printf("%-5s %11s %11s %11s %11s %11s %11s\n", "iter", "spark-ful",
              "spark-sim", "giraph", "strato-ful", "strato-mic",
              "strato-inc");
  for (size_t i = 0; i < rows; ++i) {
    std::printf("%-5zu %11.2f %11.2f %11.2f %11.2f %11.2f %11.2f\n", i + 1,
                cell(spark_full, i), cell(spark_sim, i), cell(giraph_ms, i),
                cell(full_ms, i), cell(micro_ms, i), cell(incr_ms, i));
    std::printf(
        "row iter=%zu spark_full=%.2f spark_sim=%.2f giraph=%.2f full=%.2f "
        "micro=%.2f incr=%.2f\n",
        i + 1, cell(spark_full, i), cell(spark_sim, i), cell(giraph_ms, i),
        cell(full_ms, i), cell(micro_ms, i), cell(incr_ms, i));
  }
  bench::PrintPeakRss();
  return 0;
}
