// Ablation: superstep-synchronized vs. asynchronous microstep execution
// (§5.2/5.3).
//
// The Match plan qualifies for asynchronous execution: updates take effect
// immediately, no barrier separates iterations, and termination is detected
// by quiescence. The paper's experiments ran the Match variant with
// supersteps; asynchrony removes the per-superstep synchronization floor
// that Figure 10 shows ("execution time does not drop below 1 second...
// imposed by synchronization of the steps").
//
// Expected: on a high-diameter graph (many tiny supersteps) the async mode
// wins by removing barrier overhead; on a flat graph the two are similar.
#include <benchmark/benchmark.h>

#include "algos/connected_components.h"
#include "common/env.h"
#include "graph/generators.h"

namespace sfdf {
namespace {

const Graph& DeepGraph() {
  static const Graph* graph = [] {
    ChainOfClustersOptions opt;
    opt.num_clusters = static_cast<int64_t>(128 * ScaleFactor());
    opt.cluster_size = 32;
    opt.intra_cluster_edges = 64;
    opt.seed = 42;
    return new Graph(GenerateChainOfClusters(opt));
  }();
  return *graph;
}

void RunVariant(benchmark::State& state, CcVariant variant) {
  const Graph& graph = DeepGraph();
  for (auto _ : state) {
    CcOptions options;
    options.variant = variant;
    options.max_iterations = 1000000;
    options.record_superstep_stats = false;
    auto result = RunConnectedComponents(graph, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

void BM_SuperstepMatch(benchmark::State& state) {
  RunVariant(state, CcVariant::kIncrementalMatch);
}
void BM_AsyncMicrosteps(benchmark::State& state) {
  RunVariant(state, CcVariant::kAsyncMicrostep);
}

BENCHMARK(BM_SuperstepMatch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AsyncMicrosteps)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sfdf

BENCHMARK_MAIN();
