// Live reconfiguration experiment: how long does a zero-downtime resize of
// a resident PageRank tenant actually pause the tenant, against the only
// alternative a static runtime offers — tearing the tenant down and cold
// re-converging at the new width?
//
// The pause is measured from the last committed batch to the first warm
// round completed at the new width (exactly what the service exports as
// reconfig_ms_last: quiesce + solution extraction + skeleton rebuild +
// the warm resume round). Expected: the pause is dominated by rebuild +
// ONE superstep of residual-free work, so it sits far under the tens of
// supersteps a cold reconvergence pays — gated at < 10% of the cold time
// measured in the same run, per transition.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algos/incremental_pagerank.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "graph/datasets.h"
#include "graph/dynamic_graph.h"
#include "service/serving_pagerank.h"

int main() {
  using namespace sfdf;
  bench::Header("Reconfig", "Live resize pause vs cold reconvergence",
                "an epoch-aligned repartition (4->8, 8->2) pauses the "
                "tenant for rebuild + one warm round — under 10% of a cold "
                "recompute at the new width");

  const double kEpsilon = 1e-9;
  Graph graph = DatasetByName("wikipedia").generate(ScaleFactor() * 0.5);
  std::printf("graph: %s\n", graph.ToString().c_str());
  const int64_t n = graph.num_vertices();

  ServingPageRankOptions options;
  options.epsilon = kEpsilon;
  options.parallelism = 4;
  options.max_batch = 64;
  options.max_linger = std::chrono::milliseconds(1);
  auto started = ServingPageRank::Start(graph, options);
  if (!started.ok()) {
    std::printf("serving error: %s\n", started.status().ToString().c_str());
    return 1;
  }
  ServingPageRank& serving = **started;

  // Mutable shadow so the cold baselines recompute the same adjacency the
  // resident tenant is serving at the moment of each resize.
  DynamicGraph shadow(graph);
  auto mutate_some = [&](int count, int salt) {
    for (int i = 0; i < count; ++i) {
      const int64_t u = ((i + salt) * 104729) % n;
      const int64_t v = (u + 1 + ((i + salt) * 7919) % (n - 1)) % n;
      if (!serving.Apply({GraphMutation::EdgeInsert(u, v)}).ok()) {
        return false;
      }
      shadow.AddEdge(u, v);
    }
    return true;
  };

  struct Transition {
    int from, to;
    double pause_ms, cold_ms, ratio;
  };
  std::vector<Transition> transitions = {{4, 8, 0, 0, 0}, {8, 2, 0, 0, 0}};

  bool gate_ok = true;
  for (Transition& t : transitions) {
    // A handful of warm batches first, so the tenant resizes mid-service
    // with real resident state, not straight out of the cold start.
    if (!mutate_some(8, t.from * 100)) {
      std::printf("warm mutation failed\n");
      return 1;
    }
    if (!serving.service()->Reconfigure(t.to).ok()) {
      std::printf("reconfigure %d->%d failed\n", t.from, t.to);
      return 1;
    }
    t.pause_ms = serving.stats().reconfig_ms_last;

    // Cold alternative measured in the same run: full reconvergence of the
    // same adjacency at the new width.
    Stopwatch cold_watch;
    IncrementalPageRankOptions cold_options;
    cold_options.epsilon = kEpsilon;
    cold_options.parallelism = t.to;
    auto cold = RunIncrementalPageRank(shadow.Freeze(), cold_options);
    if (!cold.ok()) {
      std::printf("cold error: %s\n", cold.status().ToString().c_str());
      return 1;
    }
    t.cold_ms = cold_watch.ElapsedMillis();
    t.ratio = t.pause_ms / std::max(t.cold_ms, 1e-9);
    gate_ok = gate_ok && t.ratio < 0.10;
  }

  const ServiceStats stats = serving.stats();
  if (!serving.Stop().ok()) return 1;

  std::printf("%-12s %14s %14s %10s\n", "transition", "pause (ms)",
              "cold (ms)", "ratio");
  for (const Transition& t : transitions) {
    std::printf("%3d -> %-5d %14.3f %14.3f %10.4f\n", t.from, t.to,
                t.pause_ms, t.cold_ms, t.ratio);
  }
  std::printf("%-34s %12llu\n", "reconfigurations",
              static_cast<unsigned long long>(stats.reconfigs));
  std::printf("%-34s %12lld\n", "engine parks",
              static_cast<long long>(stats.engine_parks));
  std::printf("%-34s %12lld\n", "engine wakes",
              static_cast<long long>(stats.engine_wakes));
  for (const Transition& t : transitions) {
    std::printf(
        "row from=%d to=%d pause_ms=%.3f cold_ms=%.3f ratio=%.4f "
        "reconfigs=%llu\n",
        t.from, t.to, t.pause_ms, t.cold_ms, t.ratio,
        static_cast<unsigned long long>(stats.reconfigs));
  }

  bench::PrintPeakRss();
  // Gate only at full scale: in smoke mode the cold run is a couple of
  // milliseconds while the pause pays fixed rebuild overhead, so the ratio
  // is meaningless there (reported, not enforced).
  if (ScaleFactor() < 1.0) return 0;
  return gate_ok ? 0 : 1;
}
