// Extension experiment (§7.2): adaptive PageRank as an incremental
// iteration vs. the bulk PageRank dataflow.
//
// The paper argues incremental iterations can express the adaptive version
// of PageRank [Kamvar et al.], which Pregel cannot express naturally. This
// bench runs both on the same graph to comparable accuracy and reports
// runtime and message volume.
//
// Expected: the adaptive version converges with fewer messages — converged
// pages stop pushing while the bulk plan recomputes every page every
// iteration.
#include <cstdio>

#include "algos/incremental_pagerank.h"
#include "algos/pagerank.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "graph/datasets.h"

int main() {
  using namespace sfdf;
  bench::Header("Extension (§7.2)",
                "Adaptive PageRank as an incremental iteration",
                "expressibility demonstration: the adaptive variant runs as "
                "a workset iteration, pages deactivate as their residual "
                "falls below the threshold (shrinking workset), and the "
                "fixpoint matches batch PageRank");

  Graph graph = DatasetByName("wikipedia").generate(ScaleFactor() * 0.5);
  std::printf("graph: %s\n", graph.ToString().c_str());
  // Ground truth: the converged fixpoint.
  std::vector<double> truth = ReferencePageRank(graph, 200, 0.85);

  // Absolute error, matching the paper's T-criterion semantics
  // (|r_old − r_new| > ε on absolute ranks).
  auto max_error = [&](const std::vector<std::pair<VertexId, double>>& ranks) {
    double err = 0;
    for (const auto& [pid, rank] : ranks) {
      if (graph.OutDegree(pid) == 0) continue;
      err = std::max(err, std::abs(rank - truth[pid]));
    }
    return err;
  };

  // Bulk PageRank, fixed 20 iterations (the paper's configuration).
  Stopwatch bulk_watch;
  PageRankOptions bulk_options;
  bulk_options.iterations = 20;
  auto bulk = RunPageRank(graph, bulk_options);
  if (!bulk.ok()) {
    std::printf("bulk error: %s\n", bulk.status().ToString().c_str());
    return 1;
  }
  double bulk_seconds = bulk_watch.ElapsedSeconds();

  // Adaptive incremental PageRank, threshold chosen for comparable
  // accuracy to 20 bulk iterations.
  Stopwatch incr_watch;
  IncrementalPageRankOptions incr_options;
  incr_options.epsilon = 3e-7;
  auto incr = RunIncrementalPageRank(graph, incr_options);
  if (!incr.ok()) {
    std::printf("incremental error: %s\n", incr.status().ToString().c_str());
    return 1;
  }
  double incr_seconds = incr_watch.ElapsedSeconds();

  std::printf("%-22s %10s %8s %14s %12s\n", "variant", "seconds", "iters",
              "messages", "max rel err");
  std::printf("%-22s %10.3f %8d %14lld %12.2e\n", "bulk (20 iters)",
              bulk_seconds, 20,
              static_cast<long long>(bulk->exec.records_shipped),
              max_error(bulk->ranks));
  std::printf("%-22s %10.3f %8d %14lld %12.2e\n", "adaptive incremental",
              incr_seconds, incr->iterations,
              static_cast<long long>(incr->exec.records_shipped),
              max_error(incr->ranks));
  std::printf(
      "row bulk_s=%.3f bulk_msgs=%lld bulk_err=%.2e incr_s=%.3f "
      "incr_msgs=%lld incr_err=%.2e incr_iters=%d\n",
      bulk_seconds, static_cast<long long>(bulk->exec.records_shipped),
      max_error(bulk->ranks), incr_seconds,
      static_cast<long long>(incr->exec.records_shipped),
      max_error(incr->ranks), incr->iterations);

  // Per-superstep workset decay: the adaptive activation at work.
  std::printf("adaptive workset per superstep:");
  for (const SuperstepStats& s : incr->exec.workset_reports[0].supersteps) {
    std::printf(" %lld", static_cast<long long>(s.workset_size));
  }
  std::printf("\n");
  bench::PrintPeakRss();
  return 0;
}
