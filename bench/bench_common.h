// Shared helpers for the experiment harness. Every bench binary regenerates
// one table or figure of the paper's evaluation section and prints:
//   * a human-readable table,
//   * machine-readable "metric=value" rows (consumed by EXPERIMENTS.md),
//   * the paper's expected shape, so deviations are visible at a glance.
//
// Scale: SFDF_SCALE (default 1.0) scales every synthetic dataset;
// SFDF_THREADS sets the worker count ("nodes").
#pragma once

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/env.h"
#include "common/result.h"
#include "common/status.h"

namespace sfdf {
namespace bench {

/// Peak resident set size of this process in MB (ru_maxrss, which Linux
/// reports in KB). Monotone over the process lifetime — a bench that wants
/// per-measurement peaks must fork per measurement (see bench_pipeline_rss).
inline double PeakRssMb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Standard memory footer: every row-format bench prints this last, so the
/// harness (bench/run_all) can track peak RSS per figure across runs.
inline void PrintPeakRss() {
  std::printf("row metric=peak_rss peak_rss_mb=%.1f\n", PeakRssMb());
}

/// Memory budget of the Spark-like baseline (boxed shuffle buffers).
/// Sized so the Wikipedia/Hollywood stand-ins fit and the Webbase/Twitter
/// stand-ins exceed it — reproducing the paper's OOM failures
/// ("the number of messages created exceeds the heap size on each node").
inline int64_t SparkBudget() {
  return static_cast<int64_t>((56LL << 20) * ScaleFactor());
}

/// Message-memory budget of the Giraph-like baseline.
inline int64_t GiraphBudget() {
  return static_cast<int64_t>((22LL << 20) * ScaleFactor());
}

inline void Header(const char* figure, const char* title,
                   const char* expected_shape) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("scale=%.3f workers=%d\n", ScaleFactor(), DefaultParallelism());
  std::printf("paper-expected shape: %s\n", expected_shape);
  std::printf("=====================================================\n");
}

/// Formats a runtime cell: seconds, "OOM", or "n/a".
inline std::string Cell(const Result<double>& seconds) {
  char buffer[64];
  if (seconds.ok()) {
    std::snprintf(buffer, sizeof(buffer), "%10.3f", *seconds);
  } else if (seconds.status().code() == StatusCode::kOutOfMemory) {
    std::snprintf(buffer, sizeof(buffer), "%10s", "OOM");
  } else {
    std::snprintf(buffer, sizeof(buffer), "%10s", "error");
  }
  return buffer;
}

}  // namespace bench
}  // namespace sfdf
