// Ablation: immediate vs. buffered delta application (§5.3).
//
// "In the general case, we cache the records in the delta set D until the
// end of the superstep and afterwards merge them with S... Under certain
// conditions, the records can be directly merged with S." When the locality
// conditions hold, immediate merging avoids the extra buffer pass and
// filters non-improving records before they fan out into the next workset.
//
// Expected: immediate application is at least as fast and produces a
// smaller workset on the Match (per-candidate) plan.
#include <benchmark/benchmark.h>

#include "algos/connected_components.h"
#include "common/env.h"
#include "graph/generators.h"

namespace sfdf {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    RmatOptions opt;
    opt.num_vertices = static_cast<int64_t>(16384 * ScaleFactor());
    opt.num_edges = static_cast<int64_t>(100000 * ScaleFactor());
    opt.seed = 42;
    return new Graph(GenerateRmat(opt));
  }();
  return *graph;
}

void RunWithApplyMode(benchmark::State& state, bool disable_immediate) {
  const Graph& graph = BenchGraph();
  int64_t workset_total = 0;
  for (auto _ : state) {
    CcOptions options;
    options.variant = CcVariant::kIncrementalMatch;
    options.disable_immediate_apply = disable_immediate;
    auto result = RunConnectedComponents(graph, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    workset_total = result->exec.workset_reports[0].TotalWorkset();
  }
  state.counters["workset_records"] = static_cast<double>(workset_total);
}

void BM_ImmediateApply(benchmark::State& state) {
  RunWithApplyMode(state, false);
}
void BM_BufferedApply(benchmark::State& state) {
  RunWithApplyMode(state, true);
}

BENCHMARK(BM_ImmediateApply)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BufferedApply)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sfdf

BENCHMARK_MAIN();
