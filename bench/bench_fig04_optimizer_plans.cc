// Figure 4: the two PageRank execution plans and the optimizer's choice.
//
// Sweeps the rank-vector size and the worker count; for each point the
// cost-based optimizer picks either the broadcast plan (replicate p, cache
// A partitioned/sorted by tid — Mahout-style, good for small models) or the
// partition plan (repartition p, cache A as the join hash table —
// Pegasus-style, good at scale).
//
// Expected shape: broadcast wins for small rank vectors / few workers;
// partitioning wins as either grows ("different implementations exist to
// efficiently handle different problem sizes; an optimizer derives the
// efficient strategy automatically").
#include <cstdio>

#include "bench_common.h"
#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"

namespace sfdf {
namespace {

Plan BuildPlan(int64_t n_pages, int64_t n_entries, std::vector<Record>* out) {
  std::vector<Record> ranks;
  for (int64_t i = 0; i < n_pages; ++i) {
    ranks.push_back(Record::OfIntDouble(i, 1.0));
  }
  std::vector<Record> matrix;
  for (int64_t i = 0; i < n_entries; ++i) {
    matrix.push_back(
        Record::OfIntIntDouble(i % n_pages, (i * 7) % n_pages, 0.1));
  }
  PlanBuilder pb;
  auto p = pb.Source("p", std::move(ranks));
  auto a = pb.Source("A", std::move(matrix));
  auto it = pb.BeginBulkIteration("pr", p, 20, {0});
  auto joined = pb.Match("joinPA", it.PartialSolution(), a, {0}, {1},
                         [](const Record& pr, const Record& ar, Collector* c) {
                           c->Emit(Record::OfIntDouble(
                               ar.GetInt(0),
                               pr.GetDouble(1) * ar.GetDouble(2)));
                         });
  pb.DeclarePreserved(joined, 1, 0, 0);
  auto next = pb.Reduce(
      "sum", joined, {0},
      [](const std::vector<Record>& group, Collector* c) {
        c->Emit(group.front());
      },
      [](const Record& x, const Record& y) {
        return Record::OfIntDouble(x.GetInt(0),
                                   x.GetDouble(1) + y.GetDouble(1));
      });
  pb.DeclarePreserved(next, 0, 0, 0);
  auto result = it.Close(next);
  pb.Sink("ranks", result, out);
  return std::move(pb).Finish();
}

bool ChoseBroadcast(const PhysicalPlan& plan) {
  for (const PhysicalTask& task : plan.tasks) {
    if (task.name != "joinPA") continue;
    for (const PhysicalInput& input : task.inputs) {
      if (input.ship == ShipStrategy::kBroadcast) return true;
    }
  }
  return false;
}

}  // namespace
}  // namespace sfdf

int main() {
  using namespace sfdf;
  bench::Header("Figure 4", "Optimizer plan choice for PageRank",
                "broadcast plan for small rank vectors / few workers, "
                "partition plan for large vectors / many workers");

  // Sweep 1: Wikipedia-like density (|A| = 13·|p|), growing worker count —
  // broadcast cost grows with the number of copies.
  const double kDegree = 13.0;
  std::printf("-- sweep 1: |A| = 13|p|, varying workers --\n");
  std::printf("%-12s %-8s %-12s %14s\n", "pages", "workers", "chosen",
              "est.cost");
  for (int64_t pages : {1000, 10000}) {
    for (int workers : {2, 4, 16, 64}) {
      std::vector<Record> out;
      Plan plan =
          BuildPlan(pages, static_cast<int64_t>(pages * kDegree), &out);
      Optimizer optimizer(OptimizerOptions{.parallelism = workers});
      auto physical = optimizer.Optimize(plan);
      if (!physical.ok()) {
        std::printf("error: %s\n", physical.status().ToString().c_str());
        return 1;
      }
      const char* chosen = ChoseBroadcast(*physical) ? "broadcast" : "partition";
      std::printf("%-12lld %-8d %-12s %14.0f\n",
                  static_cast<long long>(pages), workers, chosen,
                  physical->estimated_cost);
      std::printf("row sweep=workers pages=%lld workers=%d plan=%s cost=%.0f\n",
                  static_cast<long long>(pages), workers, chosen,
                  physical->estimated_cost);
    }
  }

  // Sweep 2: fixed matrix (130k entries), growing rank vector — the
  // paper's "smaller models" vs. "both cases" contrast: replication stops
  // paying once the vector rivals the matrix.
  std::printf("-- sweep 2: fixed |A| = 130000, varying |p|, 4 workers --\n");
  std::printf("%-12s %-8s %-12s %14s\n", "pages", "workers", "chosen",
              "est.cost");
  for (int64_t pages : {100, 1000, 10000, 50000, 100000}) {
    std::vector<Record> out;
    Plan plan = BuildPlan(pages, 130000, &out);
    Optimizer optimizer(OptimizerOptions{.parallelism = 4});
    auto physical = optimizer.Optimize(plan);
    if (!physical.ok()) {
      std::printf("error: %s\n", physical.status().ToString().c_str());
      return 1;
    }
    const char* chosen = ChoseBroadcast(*physical) ? "broadcast" : "partition";
    std::printf("%-12lld %-8d %-12s %14.0f\n", static_cast<long long>(pages),
                4, chosen, physical->estimated_cost);
    std::printf("row sweep=pages pages=%lld workers=4 plan=%s cost=%.0f\n",
                static_cast<long long>(pages), chosen,
                physical->estimated_cost);
  }
  bench::PrintPeakRss();
  return 0;
}
