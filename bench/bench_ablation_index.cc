// Ablation: solution-set index structure (§5.3).
//
// "If the optimizer chooses a hash strategy, S is stored in an updateable
// hash table; a sort-based strategy stores S in a sorted index (B+-Tree)."
// This ablation forces each structure under the same (CoGroup) plan.
//
// Expected: the hash index wins on point lookups; the B+-tree stays within
// a small factor and would enable ordered access.
#include <benchmark/benchmark.h>

#include "algos/connected_components.h"
#include "common/env.h"
#include "graph/generators.h"

namespace sfdf {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    RmatOptions opt;
    opt.num_vertices = static_cast<int64_t>(16384 * ScaleFactor());
    opt.num_edges = static_cast<int64_t>(100000 * ScaleFactor());
    opt.seed = 42;
    return new Graph(GenerateRmat(opt));
  }();
  return *graph;
}

void RunWithIndex(benchmark::State& state, int force_index) {
  const Graph& graph = BenchGraph();
  for (auto _ : state) {
    CcOptions options;
    options.variant = CcVariant::kIncrementalCoGroup;
    options.force_solution_index = force_index;
    options.record_superstep_stats = false;
    auto result = RunConnectedComponents(graph, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

void BM_HashIndex(benchmark::State& state) { RunWithIndex(state, 1); }
void BM_BTreeIndex(benchmark::State& state) { RunWithIndex(state, 2); }

BENCHMARK(BM_HashIndex)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BTreeIndex)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sfdf

BENCHMARK_MAIN();
