// Single-Source Shortest Paths as a delta/workset iteration — the Figure 5
// template applied beyond Connected Components. The solution set maps each
// vertex to its tentative distance; the workset carries relaxations; the
// comparator keeps the shorter distance on conflicts.
//
//   $ ./build/examples/sssp_delta
#include <cmath>
#include <cstdio>

#include "algos/sssp.h"
#include "graph/generators.h"

int main() {
  using namespace sfdf;

  RmatOptions graph_options;
  graph_options.num_vertices = 1 << 13;
  graph_options.num_edges = 1 << 15;
  Graph graph = GenerateRmat(graph_options);
  std::printf("graph: %s\n", graph.ToString().c_str());

  SsspOptions options;
  options.source = 0;
  options.max_weight = 16;  // deterministic pseudo-weights in [1, 16]

  auto result = RunSssp(graph, options);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("converged after %d supersteps\n", result->iterations);

  // Validate against Dijkstra.
  std::vector<double> reference =
      ReferenceSssp(graph, options.source, options.max_weight);
  int64_t reachable = 0;
  double max_diff = 0;
  for (size_t v = 0; v < reference.size(); ++v) {
    if (std::isinf(reference[v])) continue;
    ++reachable;
    max_diff = std::max(max_diff,
                        std::abs(result->distances[v] - reference[v]));
  }
  std::printf("%lld reachable vertices, max deviation from Dijkstra: %.2e\n",
              static_cast<long long>(reachable), max_diff);

  // The workset shrinks as distant regions settle.
  std::printf("%-10s %-12s %-12s\n", "superstep", "workset", "relaxed");
  for (const SuperstepStats& s : result->exec.workset_reports[0].supersteps) {
    std::printf("%-10d %-12lld %-12lld\n", s.superstep,
                static_cast<long long>(s.workset_size),
                static_cast<long long>(s.delta_applied));
  }
  return max_diff < 1e-9 ? 0 : 1;
}
