// Connected Components four ways: the bulk fixpoint plan, the two
// incremental workset plans (CoGroup = batch-incremental, Match =
// microstep-style), and the asynchronous microstep execution — all on the
// same graph, all converging to the same labeling (Table 1 of the paper).
//
//   $ ./build/examples/connected_components
#include <cstdio>

#include "algos/connected_components.h"
#include "common/stopwatch.h"
#include "graph/generators.h"
#include "graph/union_find.h"

int main() {
  using namespace sfdf;

  RmatOptions graph_options;
  graph_options.num_vertices = 1 << 14;
  graph_options.num_edges = 1 << 16;
  Graph graph = GenerateRmat(graph_options);
  std::vector<VertexId> reference = ReferenceComponents(graph);
  std::printf("graph: %s, %lld components\n", graph.ToString().c_str(),
              static_cast<long long>(CountComponents(reference)));

  struct Variant {
    CcVariant variant;
    const char* name;
  };
  const Variant variants[] = {
      {CcVariant::kBulk, "bulk (FIXPOINT-CC)"},
      {CcVariant::kIncrementalCoGroup, "incremental CoGroup (INCR-CC)"},
      {CcVariant::kIncrementalMatch, "incremental Match (MICRO-CC)"},
      {CcVariant::kAsyncMicrostep, "asynchronous microsteps"},
  };

  std::printf("%-32s %10s %8s %10s %9s\n", "variant", "seconds", "iters",
              "messages", "correct");
  for (const Variant& v : variants) {
    CcOptions options;
    options.variant = v.variant;
    Stopwatch watch;
    auto result = RunConnectedComponents(graph, options);
    if (!result.ok()) {
      std::printf("%-32s error: %s\n", v.name,
                  result.status().ToString().c_str());
      return 1;
    }
    bool correct = result->labels == reference;
    std::printf("%-32s %10.3f %8d %10lld %9s\n", v.name,
                watch.ElapsedSeconds(), result->iterations,
                static_cast<long long>(result->exec.records_shipped),
                correct ? "yes" : "NO");
    if (!correct) return 1;
  }
  return 0;
}
