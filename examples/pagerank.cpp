// PageRank as an iterative dataflow (Figure 3 of the paper).
//
// Shows the optimizer choosing between the two Figure 4 plans and compares
// their results — same fixpoint, different physical execution.
//
//   $ ./build/examples/pagerank
#include <cstdio>

#include "algos/pagerank.h"
#include "graph/generators.h"

int main() {
  using namespace sfdf;

  RmatOptions graph_options;
  graph_options.num_vertices = 1 << 13;
  graph_options.num_edges = 1 << 16;
  Graph graph = GenerateRmat(graph_options);
  std::printf("graph: %s\n", graph.ToString().c_str());

  PageRankOptions options;
  options.iterations = 15;
  options.use_termination_criterion = true;
  options.epsilon = 1e-7;

  // Let the cost-based optimizer pick the plan.
  options.plan = PageRankPlan::kAuto;
  auto auto_result = RunPageRank(graph, options);
  if (!auto_result.ok()) {
    std::printf("error: %s\n", auto_result.status().ToString().c_str());
    return 1;
  }
  std::printf("optimizer chose the %s plan; %d iterations (converged=%s)\n",
              auto_result->chose_broadcast ? "broadcast" : "partition",
              auto_result->exec.bulk_reports[0].iterations,
              auto_result->exec.bulk_reports[0].converged ? "yes" : "no");

  // Force the other plan; the fixpoint must match.
  options.plan = auto_result->chose_broadcast ? PageRankPlan::kPartition
                                              : PageRankPlan::kBroadcast;
  auto other_result = RunPageRank(graph, options);
  if (!other_result.ok()) {
    std::printf("error: %s\n", other_result.status().ToString().c_str());
    return 1;
  }

  double max_diff = 0;
  for (size_t i = 0; i < auto_result->ranks.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(auto_result->ranks[i].second -
                                 other_result->ranks[i].second));
  }
  std::printf("max rank difference between the two plans: %.2e\n", max_diff);

  std::printf("top pages by rank:\n");
  auto sorted = auto_result->ranks;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (int i = 0; i < 5 && i < static_cast<int>(sorted.size()); ++i) {
    std::printf("  page %-8lld rank %.6f\n",
                static_cast<long long>(sorted[i].first), sorted[i].second);
  }
  return max_diff < 1e-9 ? 0 : 1;
}
