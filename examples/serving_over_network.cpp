// Serving over the network: a ServiceHost with two resident CC tenants
// behind the TCP RpcGateway, driven by the blocking RpcClient over
// loopback. This is the end-to-end shape of the serving story — resident
// iterative state (PR 2), one shared worker pool (PR 4), and a binary
// frame protocol with per-tenant routing (this PR).
//
//   client ──TCP──▶ gateway ──▶ host["social"] (streamed CC)
//                           └─▶ host["roads"]  (streamed CC)
//
// Run: ./serving_over_network   (CI smoke-runs it as
// example_serving_over_network on every push, so the socket path stays
// exercised.)
#include <cstdio>

#include "net/client.h"
#include "service/gateway.h"
#include "service/serving_cc.h"

using namespace sfdf;

int main() {
  // Two tenants on one 2-worker pool.
  ServiceHost host(ServiceHost::Options{.workers = 2});
  ServingCc::Options cc_options;
  cc_options.num_vertices = 8;
  cc_options.service.max_batch = 16;
  cc_options.service.max_linger = std::chrono::milliseconds(1);
  cc_options.service.max_pending_mutations = 4096;  // bounded admission
  auto social = ServingCc::StartOn(&host, "social", cc_options);
  auto roads = ServingCc::StartOn(&host, "roads", cc_options);
  if (!social.ok() || !roads.ok()) {
    std::printf("tenant start failed\n");
    return 1;
  }
  // Tenants own state the resident plans flush into, so the host must stop
  // before they are destroyed — on EVERY path, including early error
  // returns. Declared after the tenants (and before the gateway) so it
  // runs first on unwind; the explicit StopAll below makes it a no-op on
  // the happy path.
  struct StopGuard {
    ServiceHost* host;
    ~StopGuard() {
      Status ignored = host->StopAll();
      (void)ignored;
    }
  } stop_guard{&host};

  // The gateway picks an ephemeral loopback port.
  auto gateway = RpcGateway::Start(&host, GatewayOptions{});
  if (!gateway.ok()) {
    std::printf("gateway start failed: %s\n",
                gateway.status().ToString().c_str());
    return 1;
  }
  std::printf("gateway listening on 127.0.0.1:%u\n", (*gateway)->port());

  auto client = net::RpcClient::Connect("127.0.0.1", (*gateway)->port());
  if (!client.ok()) {
    std::printf("connect failed: %s\n", client.status().ToString().c_str());
    return 1;
  }
  net::RpcClient& rpc = **client;

  // Stream a few edges into each tenant; each Mutate blocks until its warm
  // incremental round committed server-side.
  for (int i = 0; i < 5; ++i) {
    if (!rpc.Mutate("social", {GraphMutation::EdgeInsert(i, i + 1)}).ok() ||
        !rpc.Mutate("roads", {GraphMutation::EdgeInsert(0, i + 2)}).ok()) {
      std::printf("mutate failed\n");
      return 1;
    }
  }

  // Epoch-tagged point reads and a full snapshot, per tenant.
  for (const char* tenant : {"social", "roads"}) {
    auto query = rpc.QueryKey(tenant, 4);
    auto snapshot = rpc.Snapshot(tenant);
    if (!query.ok() || !query->found || !snapshot.ok()) {
      std::printf("read failed on %s\n", tenant);
      return 1;
    }
    std::printf("%-8s vertex 4 -> component %lld (epoch %llu), "
                "%zu vertices served\n",
                tenant, static_cast<long long>(query->record.GetInt(1)),
                static_cast<unsigned long long>(query->epoch),
                snapshot->records.size());
  }

  // Wire error taxonomy: CC cannot serve deletions incrementally — the
  // gateway answers kReject (client-side InvalidArgument), the connection
  // and the tenant keep serving.
  auto removed = rpc.Mutate("social", {GraphMutation::EdgeRemove(0, 1)});
  std::printf("edge remove -> %s (connection still up: %s)\n",
              removed.status().ToString().c_str(),
              rpc.Ping().ok() ? "yes" : "no");

  // Per-tenant stats over the wire.
  auto stats = rpc.Stats("social");
  if (!stats.ok()) return 1;
  std::printf("social: rounds=%.0f applied=%.0f rejected=%.0f "
              "queue_depth=%.0f round_p50=%.3fms\n",
              stats->Get(net::StatField::kRounds),
              stats->Get(net::StatField::kMutationsApplied),
              stats->Get(net::StatField::kMutationsRejected),
              stats->Get(net::StatField::kAdmissionQueueDepth),
              stats->Get(net::StatField::kRoundP50Ms));

  const RpcGateway::Counters counters = (*gateway)->counters();
  std::printf("gateway: %llu connections, %llu frames in, %llu frames out\n",
              static_cast<unsigned long long>(counters.connections_accepted),
              static_cast<unsigned long long>(counters.frames_received),
              static_cast<unsigned long long>(counters.frames_sent));

  // Orderly teardown: gateway before host, tenants after StopAll.
  if (!(*gateway)->Stop().ok() || !host.StopAll().ok()) return 1;
  std::printf("done\n");
  return 0;
}
