// The Section 7.2 claim, executable: a Pregel-style vertex program running
// on top of the workset-iteration abstraction. The partial solution holds
// the vertex states, the workset holds the messages; ∆ gathers messages,
// runs compute(), and fans new messages out along the topology.
//
//   $ ./build/examples/pregel_api
#include <algorithm>
#include <cstdio>

#include "algos/pregel.h"
#include "graph/generators.h"
#include "graph/union_find.h"

namespace {

/// Classic HCC: propagate the minimum label; halt when nothing improves.
class MinLabel : public sfdf::VertexProgram {
 public:
  bool Compute(sfdf::VertexId vid, int64_t current,
               const std::vector<int64_t>& messages,
               int64_t* new_value) const override {
    (void)vid;
    int64_t best = current;
    for (int64_t msg : messages) best = std::min(best, msg);
    if (best < current) {
      *new_value = best;
      return true;  // changed: message all neighbors
    }
    return false;  // vote to halt
  }

  int64_t MessageValue(sfdf::VertexId vid, int64_t value) const override {
    (void)vid;
    return value;
  }
};

}  // namespace

int main() {
  using namespace sfdf;

  RmatOptions graph_options;
  graph_options.num_vertices = 1 << 13;
  graph_options.num_edges = 1 << 15;
  Graph graph = GenerateRmat(graph_options);
  std::printf("graph: %s\n", graph.ToString().c_str());

  // Initial state: every vertex is its own component; superstep-0 messages
  // introduce every vertex to its neighbors.
  std::vector<int64_t> initial(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) initial[v] = v;
  std::vector<std::pair<VertexId, int64_t>> messages;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const VertexId* v = graph.NeighborsBegin(u);
         v != graph.NeighborsEnd(u); ++v) {
      messages.emplace_back(*v, u);
    }
  }

  MinLabel program;
  auto result = RunPregel(graph, std::move(initial), std::move(messages),
                          program, PregelOptions{});
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("converged after %d supersteps\n", result->supersteps);

  std::vector<VertexId> reference = ReferenceComponents(graph);
  bool correct = true;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    correct &= result->values[v] == reference[v];
  }
  std::printf("matches union-find ground truth: %s\n",
              correct ? "yes" : "NO");
  return correct ? 0 : 1;
}
