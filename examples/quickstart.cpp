// Quickstart: build a dataflow with a workset iteration and run it.
//
// Computes Connected Components on a small random graph with the
// incremental (delta) iteration of the paper, then prints the per-superstep
// statistics — watch the workset shrink as the "hot" part of the graph
// narrows down.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "algos/connected_components.h"
#include "graph/generators.h"
#include "graph/union_find.h"

int main() {
  using namespace sfdf;

  // 1. A small power-law graph (deterministic in the seed).
  RmatOptions graph_options;
  graph_options.num_vertices = 1 << 12;
  graph_options.num_edges = 1 << 14;
  Graph graph = GenerateRmat(graph_options);
  std::printf("graph: %s\n", graph.ToString().c_str());

  // 2. Run the incremental Connected Components (workset iteration).
  CcOptions options;
  options.variant = CcVariant::kIncrementalCoGroup;
  auto result = RunConnectedComponents(graph, options);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 3. Inspect the result and the per-superstep statistics.
  std::printf("converged after %d supersteps, %lld components\n",
              result->iterations,
              static_cast<long long>(CountComponents(result->labels)));
  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "superstep", "workset",
              "changed", "inspected", "millis");
  for (const SuperstepStats& s : result->exec.workset_reports[0].supersteps) {
    std::printf("%-10d %-12lld %-12lld %-12lld %-12.2f\n", s.superstep,
                static_cast<long long>(s.workset_size),
                static_cast<long long>(s.delta_applied),
                static_cast<long long>(s.solution_lookups), s.millis);
  }

  // 4. Validate against the sequential union-find ground truth.
  bool correct = result->labels == ReferenceComponents(graph);
  std::printf("matches union-find ground truth: %s\n",
              correct ? "yes" : "NO");
  return correct ? 0 : 1;
}
