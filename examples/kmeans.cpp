// K-Means as a bulk iteration — one of the paper's §1 examples of bulk
// iterative machine-learning algorithms. The points are loop-invariant
// (cached on the constant data path); only the k centroids iterate.
//
//   $ ./build/examples/kmeans
#include <cstdio>

#include "algos/kmeans.h"

int main() {
  using namespace sfdf;

  const int k = 6;
  std::vector<Point2D> points = MakeClusteredPoints(k, 500, 42);
  std::printf("%zu points, %d planted clusters\n", points.size(), k);

  KMeansOptions options;
  options.k = k;
  options.epsilon = 1e-10;
  auto result = RunKMeans(points, options);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("converged after %d iterations (converged=%s)\n",
              result->iterations, result->converged ? "yes" : "no");
  std::printf("%-10s %12s %12s\n", "centroid", "x", "y");
  for (int c = 0; c < k; ++c) {
    std::printf("%-10d %12.4f %12.4f\n", c, result->centroids[c].x,
                result->centroids[c].y);
  }
  std::printf("objective (mean squared distance): %.4f\n",
              KMeansObjective(points, result->centroids));

  // Compare against the sequential reference (same seeding).
  std::vector<Point2D> reference =
      ReferenceKMeans(points, k, result->iterations);
  double max_diff = 0;
  for (int c = 0; c < k; ++c) {
    max_diff = std::max(max_diff,
                        std::abs(result->centroids[c].x - reference[c].x) +
                            std::abs(result->centroids[c].y - reference[c].y));
  }
  std::printf("max centroid deviation from sequential reference: %.2e\n",
              max_diff);
  return max_diff < 1e-6 ? 0 : 1;
}
