// Continuous PageRank serving: converge once, stay resident, fold streamed
// edge mutations in as warm incremental rounds while point reads observe
// batch-consistent, epoch-tagged ranks (src/service/ quickstart).
//
//   $ ./build/examples/serving_pagerank
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/stopwatch.h"
#include "graph/generators.h"
#include "service/serving_pagerank.h"

int main() {
  using namespace sfdf;

  RmatOptions graph_options;
  graph_options.num_vertices = Scaled(1 << 14, 64);
  graph_options.num_edges = Scaled(1 << 16, 256);
  Graph graph = GenerateRmat(graph_options);
  std::printf("graph: %s\n", graph.ToString().c_str());

  // Cold start: one full PageRank convergence, then the solution set stays
  // resident behind the admission queue.
  ServingPageRankOptions options;
  options.epsilon = 1e-9;
  options.max_batch = 64;
  options.max_linger = std::chrono::milliseconds(1);
  Stopwatch cold_watch;
  auto started = ServingPageRank::Start(graph, options);
  if (!started.ok()) {
    std::printf("error: %s\n", started.status().ToString().c_str());
    return 1;
  }
  ServingPageRank& serving = **started;
  std::printf("cold convergence: %d supersteps in %.1f ms\n",
              serving.initial_report().iterations, cold_watch.ElapsedMillis());

  // Point reads are served from the resident solution set.
  uint64_t epoch = 0;
  auto rank = serving.Rank(0, &epoch);
  if (!rank.ok()) return 1;
  std::printf("rank(0) = %.3e @ epoch %" PRIu64 "\n", *rank, epoch);

  // A single-edge mutation re-converges warm: the round only touches the
  // region the change reaches.
  Stopwatch warm_watch;
  if (!serving.Apply({GraphMutation::EdgeInsert(0, 1)}).ok()) return 1;
  double warm_ms = warm_watch.ElapsedMillis();
  ServiceStats stats = serving.stats();
  std::printf("warm round: 1 edge in %.2f ms (%" PRId64
              " supersteps) vs %.1f ms cold\n",
              warm_ms, stats.total_supersteps, cold_watch.ElapsedMillis());

  // Many clients stream mutations while a reader takes epoch-tagged reads.
  const int kWriters = 4;
  const int kPerWriter = 50;
  Stopwatch stream_watch;
  std::vector<std::thread> writers;
  const int64_t n = graph.num_vertices();
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&serving, n, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        int64_t u = (w * 7919 + i * 104729) % n;
        int64_t v = (u + 1 + (i * 31) % (n - 1)) % n;
        serving.Mutate({GraphMutation::EdgeInsert(u, v)});
      }
    });
  }
  uint64_t last_epoch = 0;
  bool epochs_consistent = true;
  std::thread reader([&serving, &last_epoch, &epochs_consistent] {
    for (int i = 0; i < 2000; ++i) {
      uint64_t e = 0;
      auto r = serving.Rank(i % 64, &e);
      if (!r.ok() || e % 2 != 0 || e < last_epoch) epochs_consistent = false;
      last_epoch = e;
    }
  });
  for (std::thread& t : writers) t.join();
  reader.join();

  // Stop drains everything still queued before tearing the session down.
  if (!serving.Stop().ok()) return 1;
  stats = serving.stats();
  double secs = stream_watch.ElapsedMillis() / 1000.0;
  std::printf("streamed %" PRIu64 " mutations in %" PRIu64
              " batched rounds (%.0f mutations/s), final epoch %" PRIu64 "\n",
              stats.mutations_applied, stats.rounds,
              static_cast<double>(stats.mutations_applied) / secs,
              serving.epoch());
  std::printf("epoch-tagged reads consistent: %s\n",
              epochs_consistent ? "yes" : "NO");
  // kWriters * kPerWriter streamed + the single-edge warm round above.
  return epochs_consistent &&
                 stats.mutations_applied >=
                     static_cast<uint64_t>(kWriters * kPerWriter)
             ? 0
             : 1;
}
