// The paper's core motivation (§1), end to end: "an integrated approach
// enables many analytical pipelines to be expressed in a unified fashion,
// eliminating the need for an orchestration framework."
//
// One single dataflow plan — no orchestration between systems — that:
//   1. loads a raw edge list from disk,
//   2. PRE-processes it with relational-style operators (dedup, filter),
//   3. runs the incremental Connected Components iteration,
//   4. POST-processes the result (component sizes, top components),
// all compiled by one optimizer and executed by one engine.
//
//   $ ./build/examples/unified_pipeline
#include <algorithm>
#include <cstdio>

#include "dataflow/plan_builder.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "optimizer/optimizer.h"
#include "record/comparator.h"
#include "runtime/executor.h"

int main() {
  using namespace sfdf;

  // Stage 0: materialize a raw dataset on disk (simulating the crawl dump).
  RmatOptions graph_options;
  graph_options.num_vertices = 1 << 13;
  graph_options.num_edges = 1 << 15;
  Graph graph = GenerateRmat(graph_options);
  std::string path = "/tmp/sfdf_pipeline_edges.txt";
  if (!WriteEdgeList(path, graph).ok()) return 1;
  auto loaded = ReadEdgeList(path);
  if (!loaded.ok()) return 1;
  std::printf("loaded %s\n", loaded->ToString().c_str());

  // Raw inputs for the unified plan.
  std::vector<Record> edges;
  std::vector<Record> labels;
  std::vector<Record> workset;
  for (VertexId u = 0; u < loaded->num_vertices(); ++u) {
    labels.push_back(Record::OfInts(u, u));
    for (const VertexId* v = loaded->NeighborsBegin(u);
         v != loaded->NeighborsEnd(u); ++v) {
      edges.push_back(Record::OfInts(u, *v));
      workset.push_back(Record::OfInts(*v, u));
    }
  }

  std::vector<Record> component_sizes;
  PlanBuilder pb;
  // --- preprocessing: drop self-loops (defensive; relational filter) ---
  auto raw_edges = pb.Source("rawEdges", std::move(edges));
  auto clean_edges = pb.Filter("dropSelfLoops", raw_edges, [](const Record& e) {
    return e.GetInt(0) != e.GetInt(1);
  });
  auto s0 = pb.Source("labels", std::move(labels));
  auto w0 = pb.Source("workset", std::move(workset));

  // --- the incremental iteration (Figure 5) ---
  auto it = pb.BeginWorksetIteration("cc", s0, w0, {0},
                                     OrderByIntFieldDesc(1));
  auto delta = pb.Match("update", it.Workset(), it.SolutionSet(), {0}, {0},
                        [](const Record& cand, const Record& cur,
                           Collector* c) {
                          if (cand.GetInt(1) < cur.GetInt(1)) {
                            c->Emit(Record::OfInts(cand.GetInt(0),
                                                   cand.GetInt(1)));
                          }
                        });
  pb.DeclarePreserved(delta, 1, 0, 0);
  auto next = pb.Match("fanout", delta, clean_edges, {0}, {0},
                       [](const Record& d, const Record& e, Collector* c) {
                         c->Emit(Record::OfInts(e.GetInt(1), d.GetInt(1)));
                       });
  pb.DeclarePreserved(next, 1, 1, 0);
  auto components = it.Close(delta, next);

  // --- postprocessing: component histogram, keep only big components ---
  auto sizes = pb.Reduce("componentSizes", components, {1},
                         [](const std::vector<Record>& group, Collector* c) {
                           c->Emit(Record::OfInts(
                               group.front().GetInt(1),
                               static_cast<int64_t>(group.size())));
                         });
  auto big = pb.Filter("bigComponents", sizes, [](const Record& rec) {
    return rec.GetInt(1) >= 10;
  });
  pb.Sink("sizes", big, &component_sizes);
  Plan plan = std::move(pb).Finish();

  Optimizer optimizer;
  auto physical = optimizer.Optimize(plan);
  if (!physical.ok()) {
    std::printf("optimize error: %s\n", physical.status().ToString().c_str());
    return 1;
  }
  Executor executor;
  auto result = executor.Run(*physical);
  if (!result.ok()) {
    std::printf("run error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::sort(component_sizes.begin(), component_sizes.end(),
            [](const Record& a, const Record& b) {
              return a.GetInt(1) > b.GetInt(1);
            });
  std::printf("components with ≥10 members: %zu; largest:\n",
              component_sizes.size());
  for (size_t i = 0; i < 5 && i < component_sizes.size(); ++i) {
    std::printf("  component %-8lld size %lld\n",
                static_cast<long long>(component_sizes[i].GetInt(0)),
                static_cast<long long>(component_sizes[i].GetInt(1)));
  }
  std::printf("one plan, one optimizer pass, one execution — no "
              "orchestration framework.\n");
  std::remove(path.c_str());
  return 0;
}
