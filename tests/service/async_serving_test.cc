// Barrier-free warm rounds through the serving subsystem: a resident
// session running in async / bounded-stale mode must keep the epoch/seqlock
// read contract intact (a batch commits only at full quiescence — exactly
// where the superstep round commits) and re-converge to the same fixpoint
// the superstep session reaches. Runs under the CI TSan job via the
// service/ suite prefix.
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "service/serving_cc.h"
#include "service/serving_pagerank.h"
#include "service/service_host.h"

namespace sfdf {
namespace {

constexpr int64_t kVertices = 24;

Graph Ring(int64_t n) {
  GraphBuilder builder(n);
  for (int64_t v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  return builder.Build();
}

/// The deterministic chord sequence both services replay: warm rounds fold
/// the same final adjacency regardless of how batches were cut.
std::vector<GraphMutation> ChordMutations() {
  std::vector<GraphMutation> chords;
  for (int64_t v = 0; v < kVertices; ++v) {
    chords.push_back(GraphMutation::EdgeInsert(v, (v + 5) % kVertices));
  }
  return chords;
}

ServingPageRankOptions PrOptions(SyncMode mode, int staleness = 1) {
  ServingPageRankOptions options;
  options.epsilon = 1e-12;
  options.parallelism = 2;
  options.max_batch = 4;  // several warm rounds, not one big one
  options.max_linger = std::chrono::milliseconds(1);
  options.sync_mode = mode;
  options.staleness_bound = staleness;
  return options;
}

TEST(AsyncServingTest, AsyncWarmRoundsMatchSuperstepWithConcurrentReaders) {
  const Graph graph = Ring(kVertices);
  const std::vector<GraphMutation> chords = ChordMutations();

  // Reference: the same cold start + mutation stream on a superstep
  // session.
  auto sync_started = ServingPageRank::Start(graph, PrOptions(SyncMode::kSuperstep));
  ASSERT_TRUE(sync_started.ok()) << sync_started.status().ToString();
  ASSERT_TRUE((*sync_started)->Apply(chords).ok());

  for (auto [mode, staleness] :
       {std::pair<SyncMode, int>{SyncMode::kAsync, 1},
        std::pair<SyncMode, int>{SyncMode::kBoundedStale, 2}}) {
    auto started = ServingPageRank::Start(graph, PrOptions(mode, staleness));
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    ServingPageRank& serving = **started;

    // Readers race the barrier-free warm rounds: every read must still
    // observe an even, monotonically advancing epoch and a finite rank —
    // a partially quiesced round must never become visible.
    std::atomic<bool> done{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&serving, &done, r] {
        uint64_t last_epoch = 0;
        int64_t vid = r;
        while (!done.load(std::memory_order_acquire)) {
          uint64_t epoch = 0;
          auto rank = serving.Rank(vid % kVertices, &epoch);
          ASSERT_TRUE(rank.ok());
          ASSERT_TRUE(std::isfinite(*rank));
          ASSERT_GT(*rank, 0.0);
          ASSERT_EQ(epoch % 2, 0u) << "read overlapped a round";
          ASSERT_GE(epoch, last_epoch) << "epoch went backwards";
          last_epoch = epoch;
          ++vid;
        }
      });
    }

    // Stream the chords one by one so max_batch splits them into several
    // barrier-free warm rounds racing the readers above.
    uint64_t last_ticket = 0;
    for (const GraphMutation& m : chords) {
      last_ticket = serving.Mutate({m});
      ASSERT_GT(last_ticket, 0u);
    }
    ASSERT_TRUE(serving.Await(last_ticket).ok());
    done.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();

    const ServiceStats stats = serving.stats();
    EXPECT_GT(stats.rounds, 1u);
    EXPECT_GT(stats.async_local_rounds, 0);
    EXPECT_GE(stats.async_vote_revocations, 0);

    // Warm async fixpoint == warm superstep fixpoint. Residual pushes are
    // additive, so update order cannot change the served sum; both runs
    // strand at most O(ε · rounds) residual, far inside 1e-8.
    auto sync_ranks = (*sync_started)->Ranks();
    auto async_ranks = serving.Ranks();
    ASSERT_EQ(sync_ranks.ranks.size(), async_ranks.ranks.size());
    for (size_t i = 0; i < sync_ranks.ranks.size(); ++i) {
      EXPECT_EQ(sync_ranks.ranks[i].first, async_ranks.ranks[i].first);
      EXPECT_NEAR(sync_ranks.ranks[i].second, async_ranks.ranks[i].second,
                  1e-8)
          << "vertex " << sync_ranks.ranks[i].first;
    }
    EXPECT_TRUE(serving.Stop().ok());
  }
  // Superstep sessions must report no barrier-free activity.
  EXPECT_EQ((*sync_started)->stats().async_local_rounds, 0);
  EXPECT_TRUE((*sync_started)->Stop().ok());
}

TEST(AsyncServingTest, AsyncCcTenantConvergesToExactLabels) {
  // A hosted CC tenant with a barrier-free resident session: min-label
  // propagation is monotone under the "smaller cid wins" comparator, so
  // the served labels are EXACTLY the superstep tenant's labels.
  ServiceHost host(ServiceHost::Options{.workers = 2});

  auto start_tenant = [&host](const std::string& name, SyncMode mode) {
    ServingCc::Options options;
    options.num_vertices = 16;
    options.service.max_batch = 4;
    options.service.max_linger = std::chrono::milliseconds(1);
    options.service.exec.parallelism = 2;
    options.service.exec.sync_mode = mode;
    auto cc = ServingCc::StartOn(&host, name, options);
    EXPECT_TRUE(cc.ok()) << cc.status().ToString();
    return std::move(*cc);
  };
  auto sync_cc = start_tenant("cc-sync", SyncMode::kSuperstep);
  auto async_cc = start_tenant("cc-async", SyncMode::kAsync);

  // Stitch the 16 singleton components into two rings of 8.
  std::vector<GraphMutation> edges;
  for (int64_t v = 0; v < 16; ++v) {
    edges.push_back(GraphMutation::EdgeInsert(v, (v + 2) % 16));
  }
  ASSERT_TRUE(sync_cc->service().Apply(edges).ok());
  ASSERT_TRUE(async_cc->service().Apply(edges).ok());

  EXPECT_EQ(sync_cc->Labels(), async_cc->Labels());
  EXPECT_GT(async_cc->service().stats().async_local_rounds, 0);
  EXPECT_EQ(sync_cc->service().stats().async_local_rounds, 0);
  ASSERT_TRUE(host.StopAll().ok());
}

}  // namespace
}  // namespace sfdf
