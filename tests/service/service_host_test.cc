// Multi-tenant serving on one shared engine pool (runtime v3): several
// resident services over a ServiceHost, interleaved warm rounds, epoch
// reads staying batch-consistent under concurrency, and the acceptance
// shape that was structurally impossible under thread-per-instance — more
// resident services than pool workers. Runs under the CI TSan job via the
// service/ suite prefix.
#include "service/service_host.h"

#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dataflow/plan_builder.h"
#include "optimizer/optimizer.h"
#include "service/serving_cc.h"

namespace sfdf {
namespace {

// The streamed-CC tenant lives in src/service/serving_cc.h since the
// network gateway PR (the gateway tests, bench and example host the same
// workload). The tenant object owns state the resident plan references
// (adjacency, sink vector), so tests StopAll() the host while their
// tenants are alive.
std::unique_ptr<ServingCc> StartCc(ServiceHost* host, const std::string& name,
                                   int64_t num_vertices,
                                   ServiceOptions options = {}) {
  ServingCc::Options cc_options;
  cc_options.num_vertices = num_vertices;
  cc_options.service = options;
  auto cc = ServingCc::StartOn(host, name, cc_options);
  EXPECT_TRUE(cc.ok()) << cc.status().ToString();
  return std::move(*cc);
}

TEST(ServiceHostTest, FourResidentServicesOnTwoWorkers) {
  // More resident services than pool workers: impossible under the old
  // thread-per-instance runtime, routine under the shared engine.
  ServiceHost host(ServiceHost::Options{.workers = 2});
  ASSERT_EQ(host.engine().workers(), 2);

  std::vector<std::unique_ptr<ServingCc>> tenants;
  for (int i = 0; i < 4; ++i) {
    tenants.push_back(StartCc(&host, "cc-" + std::to_string(i), 6));
  }
  ASSERT_EQ(host.num_services(), 4);

  // Interleave rounds across all four tenants; each folds its own edges.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(tenants[i]
                      ->service()
                      .Apply({GraphMutation::EdgeInsert(round, round + 1)})
                      .ok());
    }
  }
  // Chain 0-1-2-3 everywhere: component 0 spans vertices 0..3.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tenants[i]->Labels(),
              (std::map<int64_t, int64_t>{
                  {0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 4}, {5, 5}}))
        << "tenant " << i;
    const ServiceStats stats = tenants[i]->service().stats();
    EXPECT_EQ(stats.rounds, 3u) << "tenant " << i;
    EXPECT_EQ(stats.engine_workers, 2) << "tenant " << i;
    EXPECT_GT(stats.engine_tasks, 0) << "tenant " << i;
    EXPECT_GT(stats.round_p50_ms, 0) << "tenant " << i;
    EXPECT_LE(stats.round_p50_ms, stats.round_p99_ms) << "tenant " << i;
  }
  EXPECT_TRUE(host.StopAll().ok());
}

TEST(ServiceHostTest, ConcurrentTenantsKeepEpochReadsConsistent) {
  // Two services sharing one pool, written and read concurrently: every
  // read must observe an even (committed) epoch and a full snapshot; the
  // round interleaving of one tenant must never bleed into the other.
  ServiceHost host(ServiceHost::Options{.workers = 2});
  ServiceOptions fast_batches;
  fast_batches.max_batch = 4;
  fast_batches.max_linger = std::chrono::milliseconds(0);
  auto left = StartCc(&host, "left", 8, fast_batches);
  auto right = StartCc(&host, "right", 8, fast_batches);

  constexpr int kEdgesPerWriter = 40;
  std::vector<std::thread> threads;
  for (ServingCc* cc : {left.get(), right.get()}) {
    threads.emplace_back([cc] {
      for (int i = 0; i < kEdgesPerWriter; ++i) {
        // Walk a ring so every insert does residual work.
        ASSERT_TRUE(
            cc->service()
                .Apply({GraphMutation::EdgeInsert(i % 7, (i + 1) % 7)})
                .ok());
      }
    });
    threads.emplace_back([cc] {
      for (int i = 0; i < 200; ++i) {
        auto snapshot = cc->service().Snapshot();
        EXPECT_EQ(snapshot.epoch % 2, 0u) << "read overlapped a round";
        EXPECT_EQ(snapshot.records.size(), 8u);
        auto query = cc->service().QueryKey(3);
        EXPECT_EQ(query.epoch % 2, 0u);
        EXPECT_TRUE(query.found);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Both tenants converged to the ring's single component over 0..6.
  for (ServingCc* cc : {left.get(), right.get()}) {
    EXPECT_EQ(cc->Labels(),
              (std::map<int64_t, int64_t>{{0, 0},
                                          {1, 0},
                                          {2, 0},
                                          {3, 0},
                                          {4, 0},
                                          {5, 0},
                                          {6, 0},
                                          {7, 7}}));
  }
  EXPECT_TRUE(host.StopAll().ok());
}

TEST(ServiceHostTest, DuplicateNamesRejectedAndLookupWorks) {
  ServiceHost host(ServiceHost::Options{.workers = 1});
  auto cc = StartCc(&host, "only", 4);
  EXPECT_EQ(host.service("only"), &cc->service());
  EXPECT_EQ(host.service("missing"), nullptr);

  // Second tenant under the same name is rejected at the door.
  PlanBuilder pb;
  std::vector<Record> out;
  auto src = pb.Source("src", std::vector<Record>{Record::OfInts(1)});
  pb.Sink("out", src, &out);
  Plan plan = std::move(pb).Finish();
  Optimizer optimizer(OptimizerOptions{});
  auto physical = optimizer.Optimize(plan);
  ASSERT_TRUE(physical.ok());
  auto duplicate = host.StartService(
      "only", std::move(*physical),
      [](ExecutionSession&, const std::vector<GraphMutation>&)
          -> Result<std::vector<Record>> { return std::vector<Record>{}; },
      ServiceOptions{});
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(host.service_names(), std::vector<std::string>{"only"});
  // Stop before `cc` (which owns the tenant's sink vector) goes out of
  // scope — the final flush writes into it.
  EXPECT_TRUE(host.StopAll().ok());
}

}  // namespace
}  // namespace sfdf
