// Multi-tenant serving on one shared engine pool (runtime v3): several
// resident services over a ServiceHost, interleaved warm rounds, epoch
// reads staying batch-consistent under concurrency, and the acceptance
// shape that was structurally impossible under thread-per-instance — more
// resident services than pool workers. Runs under the CI TSan job via the
// service/ suite prefix.
#include "service/service_host.h"

#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algos/connected_components.h"
#include "core/solution_set.h"
#include "dataflow/plan_builder.h"
#include "graph/dynamic_graph.h"
#include "optimizer/optimizer.h"
#include "record/comparator.h"

namespace sfdf {
namespace {

// ---------------------------------------------------------------------------
// A streamed Connected Components tenant (same dataflow as the
// iteration_service_test fixture) started on a shared ServiceHost. The
// tenant object owns state the resident plan references (adjacency, sink
// vector), so tests StopAll() the host while their tenants are alive.
// ---------------------------------------------------------------------------

class HostedCc {
 public:
  static std::unique_ptr<HostedCc> Start(ServiceHost* host,
                                         const std::string& name,
                                         int64_t num_vertices,
                                         ServiceOptions options = {}) {
    auto cc = std::unique_ptr<HostedCc>(new HostedCc);
    cc->graph_ = std::make_shared<DynamicGraph>(num_vertices);
    cc->output_ = std::make_unique<std::vector<Record>>();

    std::vector<Record> labels;
    for (int64_t v = 0; v < num_vertices; ++v) {
      labels.push_back(Record::OfInts(v, v));
    }
    PlanBuilder pb;
    auto labels_src = pb.Source("V", std::move(labels));
    auto workset_src = pb.Source("W0", std::vector<Record>{});
    auto it = pb.BeginWorksetIteration("host-cc", labels_src, workset_src,
                                       /*solution_key=*/{0},
                                       OrderByIntFieldDesc(1),
                                       IterationMode::kSuperstep, 1000);
    auto delta = pb.Match("update", it.Workset(), it.SolutionSet(), {0}, {0},
                          [](const Record& cand, const Record& current,
                             Collector* out) {
                            if (cand.GetInt(1) < current.GetInt(1)) {
                              out->Emit(Record::OfInts(cand.GetInt(0),
                                                       cand.GetInt(1)));
                            }
                          });
    pb.DeclarePreserved(delta, 1, 0, 0);
    std::shared_ptr<DynamicGraph> adjacency = cc->graph_;
    auto next = pb.Map("neighbors", delta,
                       [adjacency](const Record& changed, Collector* out) {
                         for (VertexId n :
                              adjacency->Neighbors(changed.GetInt(0))) {
                           out->Emit(Record::OfInts(n, changed.GetInt(1)));
                         }
                       });
    auto result = it.Close(delta, next);
    pb.Sink("labels", result, cc->output_.get());
    Plan plan = std::move(pb).Finish();

    Optimizer optimizer(OptimizerOptions{});
    auto physical = optimizer.Optimize(plan);
    EXPECT_TRUE(physical.ok()) << physical.status().ToString();

    HostedCc* raw = cc.get();
    auto service = host->StartService(
        name, std::move(*physical),
        [raw](ExecutionSession& session,
              const std::vector<GraphMutation>& batch) {
          return raw->Translate(session, batch);
        },
        options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    cc->service_ = *service;
    return cc;
  }

  IterationService& service() { return *service_; }

  std::map<int64_t, int64_t> Labels() {
    std::map<int64_t, int64_t> labels;
    for (const Record& rec : service_->Snapshot().records) {
      labels[rec.GetInt(0)] = rec.GetInt(1);
    }
    return labels;
  }

 private:
  HostedCc() = default;

  Result<std::vector<Record>> Translate(
      ExecutionSession& session, const std::vector<GraphMutation>& batch) {
    std::vector<Record> seeds;
    const KeySpec& key = session.solution_key();
    auto component_of = [&](VertexId v) -> int64_t {
      Record probe = Record::OfInts(v);
      const Record* rec =
          session.solution_partition(session.PartitionOfSolution(probe))
              ->Peek(probe, key);
      return rec != nullptr ? rec->GetInt(1) : v;
    };
    for (const GraphMutation& m : batch) {
      if (m.kind == MutationKind::kEdgeInsert) {
        graph_->EnsureVertex(std::max(m.u, m.v));
        for (VertexId v : {m.u, m.v}) {
          Record probe = Record::OfInts(v);
          SolutionSetIndex* partition =
              session.solution_partition(session.PartitionOfSolution(probe));
          if (partition->Peek(probe, key) == nullptr) {
            partition->Apply(Record::OfInts(v, v));
          }
        }
      }
      Status status = AppendCcMutationSeeds(component_of, m, &seeds);
      if (!status.ok()) return status;
      if (m.kind == MutationKind::kEdgeInsert) {
        graph_->AddEdge(m.u, m.v);
        graph_->AddEdge(m.v, m.u);
      }
    }
    return seeds;
  }

  std::shared_ptr<DynamicGraph> graph_;
  std::unique_ptr<std::vector<Record>> output_;
  IterationService* service_ = nullptr;  ///< owned by the host
};

TEST(ServiceHostTest, FourResidentServicesOnTwoWorkers) {
  // More resident services than pool workers: impossible under the old
  // thread-per-instance runtime, routine under the shared engine.
  ServiceHost host(ServiceHost::Options{.workers = 2});
  ASSERT_EQ(host.engine().workers(), 2);

  std::vector<std::unique_ptr<HostedCc>> tenants;
  for (int i = 0; i < 4; ++i) {
    tenants.push_back(HostedCc::Start(&host, "cc-" + std::to_string(i), 6));
  }
  ASSERT_EQ(host.num_services(), 4);

  // Interleave rounds across all four tenants; each folds its own edges.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(tenants[i]
                      ->service()
                      .Apply({GraphMutation::EdgeInsert(round, round + 1)})
                      .ok());
    }
  }
  // Chain 0-1-2-3 everywhere: component 0 spans vertices 0..3.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tenants[i]->Labels(),
              (std::map<int64_t, int64_t>{
                  {0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 4}, {5, 5}}))
        << "tenant " << i;
    const ServiceStats stats = tenants[i]->service().stats();
    EXPECT_EQ(stats.rounds, 3u) << "tenant " << i;
    EXPECT_EQ(stats.engine_workers, 2) << "tenant " << i;
    EXPECT_GT(stats.engine_tasks, 0) << "tenant " << i;
    EXPECT_GT(stats.round_p50_ms, 0) << "tenant " << i;
    EXPECT_LE(stats.round_p50_ms, stats.round_p99_ms) << "tenant " << i;
  }
  EXPECT_TRUE(host.StopAll().ok());
}

TEST(ServiceHostTest, ConcurrentTenantsKeepEpochReadsConsistent) {
  // Two services sharing one pool, written and read concurrently: every
  // read must observe an even (committed) epoch and a full snapshot; the
  // round interleaving of one tenant must never bleed into the other.
  ServiceHost host(ServiceHost::Options{.workers = 2});
  ServiceOptions fast_batches;
  fast_batches.max_batch = 4;
  fast_batches.max_linger = std::chrono::milliseconds(0);
  auto left = HostedCc::Start(&host, "left", 8, fast_batches);
  auto right = HostedCc::Start(&host, "right", 8, fast_batches);

  constexpr int kEdgesPerWriter = 40;
  std::vector<std::thread> threads;
  for (HostedCc* cc : {left.get(), right.get()}) {
    threads.emplace_back([cc] {
      for (int i = 0; i < kEdgesPerWriter; ++i) {
        // Walk a ring so every insert does residual work.
        ASSERT_TRUE(
            cc->service()
                .Apply({GraphMutation::EdgeInsert(i % 7, (i + 1) % 7)})
                .ok());
      }
    });
    threads.emplace_back([cc] {
      for (int i = 0; i < 200; ++i) {
        auto snapshot = cc->service().Snapshot();
        EXPECT_EQ(snapshot.epoch % 2, 0u) << "read overlapped a round";
        EXPECT_EQ(snapshot.records.size(), 8u);
        auto query = cc->service().QueryKey(3);
        EXPECT_EQ(query.epoch % 2, 0u);
        EXPECT_TRUE(query.found);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Both tenants converged to the ring's single component over 0..6.
  for (HostedCc* cc : {left.get(), right.get()}) {
    EXPECT_EQ(cc->Labels(),
              (std::map<int64_t, int64_t>{{0, 0},
                                          {1, 0},
                                          {2, 0},
                                          {3, 0},
                                          {4, 0},
                                          {5, 0},
                                          {6, 0},
                                          {7, 7}}));
  }
  EXPECT_TRUE(host.StopAll().ok());
}

TEST(ServiceHostTest, DuplicateNamesRejectedAndLookupWorks) {
  ServiceHost host(ServiceHost::Options{.workers = 1});
  auto cc = HostedCc::Start(&host, "only", 4);
  EXPECT_EQ(host.service("only"), &cc->service());
  EXPECT_EQ(host.service("missing"), nullptr);

  // Second tenant under the same name is rejected at the door.
  PlanBuilder pb;
  std::vector<Record> out;
  auto src = pb.Source("src", std::vector<Record>{Record::OfInts(1)});
  pb.Sink("out", src, &out);
  Plan plan = std::move(pb).Finish();
  Optimizer optimizer(OptimizerOptions{});
  auto physical = optimizer.Optimize(plan);
  ASSERT_TRUE(physical.ok());
  auto duplicate = host.StartService(
      "only", std::move(*physical),
      [](ExecutionSession&, const std::vector<GraphMutation>&)
          -> Result<std::vector<Record>> { return std::vector<Record>{}; },
      ServiceOptions{});
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(host.service_names(), std::vector<std::string>{"only"});
  // Stop before `cc` (which owns the tenant's sink vector) goes out of
  // scope — the final flush writes into it.
  EXPECT_TRUE(host.StopAll().ok());
}

}  // namespace
}  // namespace sfdf
